"""Build script: the package is pure Python plus ONE optional C
extension, ``repro.sim._ckern`` (the compiled engine core selected via
``REPRO_COMPILED``; see ``src/repro/sim/compiled.py``).

The extension is strictly optional: any compiler or header failure
logs a warning and the build continues, leaving the always-working
pure-Python fallback.  ``REPRO_BUILD_CKERN=0`` skips the compile
attempt outright (e.g. the CI leg that proves the fallback).

Developer build (drops the .so next to the sources)::

    python setup.py build_ext --inplace
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """build_ext that degrades to a warning on any compile failure."""

    def run(self):
        try:
            build_ext.run(self)
        except Exception as exc:  # noqa: BLE001 - any failure is non-fatal
            self._warn(exc)

    def build_extension(self, ext):
        try:
            build_ext.build_extension(self, ext)
        except Exception as exc:  # noqa: BLE001
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        sys.stderr.write(
            "warning: building repro.sim._ckern failed (%s); "
            "continuing with the pure-Python engine "
            "(REPRO_COMPILED=auto|off)\n" % (exc,))


def extensions():
    if os.environ.get("REPRO_BUILD_CKERN", "1") == "0":
        return []
    return [
        Extension(
            "repro.sim._ckern",
            sources=["src/repro/sim/_ckern.c"],
            optional=True,
        )
    ]


setup(
    ext_modules=extensions(),
    cmdclass={"build_ext": optional_build_ext},
)
