"""Per-transaction latency attribution (docs/OBSERVABILITY.md).

Decomposes every committed transaction's end-to-end latency into
mutually exclusive phases by sweeping the annotated span tree the
:class:`~repro.obs.observer.Observer` collects.  The simulator has one
global clock, so spans recorded on *different* nodes (the coordinator's
wire waits, a remote primary's handler, a backup's DMA log append) are
directly comparable: the attributor partitions the transaction's
``[started_at, committed_at]`` interval over all of them, which makes
the per-phase breakdown sum to the measured latency *exactly*.

Phases, from highest to lowest claim priority when spans overlap:

* ``backoff`` — abort-retry backoff sleeps on the coordinator host;
* ``dma`` — waits on host-memory DMA (index misses, log appends);
* ``log_wait`` — back-pressure retry loops on a full host log;
* ``nic_service`` / ``nic_queue`` — NIC-core compute split into service
  time vs time queued for a free NIC core (the runtime stamps the known
  service cost on each span);
* ``host`` — host-core compute (app logic, local fast path, completion);
* ``handler`` — residual server-side handler time not claimed above;
* ``wire`` — coordinator waits on remote request/response rounds not
  otherwise attributed (network + remote queueing);
* ``coord`` — residual coordinator-NIC phase time;
* ``other`` — whatever no span claims (PCIe hops, scheduling gaps).

``client_queue`` (open-loop admission wait, measured by the SLO harness)
rides along when a wait map is supplied; it extends the end-to-end
latency rather than partitioning it.

Aborted attempts are accounted separately: per-reason counters from the
abort instants, so abort storms are visible next to the commit-latency
breakdown instead of silently improving it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.stats import LogHistogram
from .events import InstantEvent, SpanEvent

__all__ = ["ATTRIB_PHASES", "TxnAttribution", "AttributionResult",
           "LatencyAttributor", "attribute_bench"]

# Every phase the attributor can emit, in report order.
ATTRIB_PHASES = (
    "client_queue", "backoff", "dma", "log_wait", "nic_service",
    "nic_queue", "host", "handler", "wire", "coord", "other",
)

# Claim priority under overlap: a DMA wait inside a server handler span
# inside a coordinator phase span is DMA, not handler or coord.
_PRIORITY = {
    "backoff": 90,
    "dma": 80,
    "log_wait": 75,
    "nic_service": 70,
    "nic_queue": 65,
    "host": 60,
    "handler": 40,
    "wire": 30,
    "coord": 20,
    "other": 0,
}

# Tie-break for the dominant phase when two phases hold equal time.
_DOMINANT_ORDER = {name: i for i, name in enumerate(ATTRIB_PHASES)}


class TxnAttribution:
    """One committed transaction's phase breakdown."""

    __slots__ = ("txn_id", "label", "node", "started_at", "latency_us",
                 "attempts", "phases")

    def __init__(self, txn_id: int, label: str, node: int, started_at: float,
                 latency_us: float, attempts: int,
                 phases: Dict[str, float]):
        self.txn_id = txn_id
        self.label = label
        self.node = node
        self.started_at = started_at
        self.latency_us = latency_us
        self.attempts = attempts
        self.phases = phases

    @property
    def dominant(self) -> str:
        """The critical-path phase: largest share of this txn's latency."""
        best = "other"
        best_v = -1.0
        for name, v in self.phases.items():
            if v > best_v or (v == best_v and
                              _DOMINANT_ORDER.get(name, 99)
                              < _DOMINANT_ORDER.get(best, 99)):
                best, best_v = name, v
        return best

    @property
    def total_us(self) -> float:
        """Sum over phases == client_queue + end-to-end latency."""
        return sum(self.phases.values())

    def residual_us(self) -> float:
        """|phase sum - measured latency| (client queueing excluded);
        zero up to float rounding by construction."""
        attributed = self.total_us - self.phases.get("client_queue", 0.0)
        return abs(attributed - self.latency_us)


class AttributionResult:
    """Aggregated attribution over one observed run."""

    def __init__(self):
        self.txns: List[TxnAttribution] = []
        self.phase_totals: Dict[str, float] = {p: 0.0 for p in ATTRIB_PHASES}
        self.phase_hists: Dict[str, LogHistogram] = {
            p: LogHistogram() for p in ATTRIB_PHASES}
        self.dominant_counts: Dict[str, int] = {}
        self.abort_reasons: Dict[str, int] = {}
        self.aborted_attempts = 0
        self.events_dropped = 0

    # -- accumulation ----------------------------------------------------

    def _add(self, txn: TxnAttribution) -> None:
        self.txns.append(txn)
        for name, v in txn.phases.items():
            self.phase_totals[name] += v
            if v > 0:
                self.phase_hists[name].add(v)
        dom = txn.dominant
        self.dominant_counts[dom] = self.dominant_counts.get(dom, 0) + 1

    # -- summaries -------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.txns)

    @property
    def total_latency_us(self) -> float:
        return sum(t.latency_us for t in self.txns)

    def max_residual_frac(self) -> float:
        """Worst-case |phase sum - latency| / latency over all txns."""
        worst = 0.0
        for t in self.txns:
            if t.latency_us > 0:
                worst = max(worst, t.residual_us() / t.latency_us)
        return worst

    def phase_share(self, name: str) -> float:
        total = sum(self.phase_totals.values())
        return self.phase_totals.get(name, 0.0) / total if total else 0.0

    def to_dict(self) -> dict:
        phases = {}
        for name in ATTRIB_PHASES:
            h = self.phase_hists[name]
            phases[name] = {
                "total_us": self.phase_totals[name],
                "share": self.phase_share(name),
                "txns": h.count,
                "mean_us": h.mean if h.count else 0.0,
                "p99_us": h.percentile(99) if h.count else 0.0,
            }
        return {
            "txns": self.count,
            "total_latency_us": self.total_latency_us,
            "max_residual_frac": self.max_residual_frac(),
            "phases": phases,
            "dominant": dict(sorted(self.dominant_counts.items())),
            "abort_reasons": dict(sorted(self.abort_reasons.items())),
            "aborted_attempts": self.aborted_attempts,
            "events_dropped": self.events_dropped,
        }

    def format(self) -> str:
        # Imported lazily: repro.bench imports repro.obs, so a module-level
        # import here would be circular.
        from ..bench.report import format_table

        rows = []
        for name in ATTRIB_PHASES:
            h = self.phase_hists[name]
            if not h.count and not self.phase_totals[name]:
                continue
            rows.append([
                name,
                "%.1f" % self.phase_totals[name],
                "%.1f%%" % (100.0 * self.phase_share(name)),
                h.count,
                "%.2f" % (h.mean if h.count else 0.0),
                "%.2f" % (h.percentile(99) if h.count else 0.0),
            ])
        out = [
            "latency attribution (%d txns, avg %.1fus)"
            % (self.count,
               self.total_latency_us / self.count if self.count else 0.0),
            format_table(
                ["phase", "total us", "share", "txns", "mean us", "p99 us"],
                rows),
        ]
        if self.dominant_counts:
            dom = ", ".join("%s=%d" % kv for kv in
                            sorted(self.dominant_counts.items(),
                                   key=lambda kv: -kv[1]))
            out.append("dominant phase: %s" % dom)
        if self.abort_reasons:
            ab = ", ".join("%s=%d" % kv
                           for kv in sorted(self.abort_reasons.items(),
                                            key=lambda kv: -kv[1]))
            out.append("aborted attempts: %d (%s)"
                       % (self.aborted_attempts, ab))
        out.append("max per-txn residual: %.3f%% of end-to-end latency"
                   % (100.0 * self.max_residual_frac()))
        return "\n".join(out)


class LatencyAttributor:
    """Post-hoc attribution over an Observer's event log."""

    def __init__(self, observer):
        self.observer = observer

    def attribute(
        self,
        client_queue: Optional[Dict[int, float]] = None,
        window: Optional[Tuple[float, float]] = None,
    ) -> AttributionResult:
        """Attribute every committed transaction in the log.

        ``client_queue`` maps txn_id -> open-loop admission wait (µs),
        reported as the ``client_queue`` phase.  ``window`` restricts the
        result to transactions that *committed* inside ``[lo, hi)``.
        """
        log = self.observer.log
        result = AttributionResult()
        result.events_dropped = log.dropped
        txn_spans: List[SpanEvent] = []
        by_txn: Dict[int, List[SpanEvent]] = {}
        for ev in log:
            if isinstance(ev, SpanEvent):
                if ev.cat == "txn":
                    txn_spans.append(ev)
                elif ev.txn_id is not None and ev.cat in (
                        "attrib", "server", "phase"):
                    by_txn.setdefault(ev.txn_id, []).append(ev)
            elif (isinstance(ev, InstantEvent) and ev.cat == "txn"
                  and ev.name == "abort"):
                if window is not None and not (
                        window[0] <= ev.ts < window[1]):
                    continue
                reason = (ev.args or {}).get("reason", "unknown")
                result.abort_reasons[reason] = \
                    result.abort_reasons.get(reason, 0) + 1
                result.aborted_attempts += 1
        for ev in txn_spans:
            end = ev.ts + ev.dur
            if window is not None and not (window[0] <= end < window[1]):
                continue
            phases = self._sweep(ev.ts, end,
                                 by_txn.get(ev.txn_id, ()))
            if client_queue is not None:
                wait = client_queue.get(ev.txn_id)
                if wait:
                    phases["client_queue"] = wait
            result._add(TxnAttribution(
                ev.txn_id, ev.name, ev.node, ev.ts, ev.dur,
                (ev.args or {}).get("attempts", 1), phases))
        return result

    # -- the interval sweep ----------------------------------------------

    @staticmethod
    def _intervals(s: float, e: float, spans) -> List[Tuple[float, float, str]]:
        """Labelled intervals clipped to the txn window [s, e]."""
        out: List[Tuple[float, float, str]] = []

        def clip(a: float, b: float, label: str) -> None:
            a, b = max(a, s), min(b, e)
            if b > a:
                out.append((a, b, label))

        for ev in spans:
            t0, t1 = ev.ts, ev.ts + ev.dur
            if ev.cat == "server":
                clip(t0, t1, "handler")
            elif ev.cat == "phase":
                clip(t0, t1, "coord")
            elif ev.name == "nic":
                svc = (ev.args or {}).get("svc")
                if svc is None:
                    clip(t0, t1, "nic_service")
                else:
                    mid = max(t0, t1 - svc)
                    clip(t0, mid, "nic_queue")
                    clip(mid, t1, "nic_service")
            else:
                clip(t0, t1, ev.name)
        return out

    @classmethod
    def _sweep(cls, s: float, e: float, spans) -> Dict[str, float]:
        """Partition [s, e] among the labelled intervals by priority;
        unclaimed time becomes ``other``.  Exact by construction: every
        elementary segment is charged to exactly one phase."""
        phases = {p: 0.0 for p in ATTRIB_PHASES if p != "client_queue"}
        if e <= s:
            return phases
        intervals = cls._intervals(s, e, spans)
        if not intervals:
            phases["other"] = e - s
            return phases
        # boundary sweep with an active-count per label
        events: List[Tuple[float, int, str]] = []
        for a, b, label in intervals:
            events.append((a, 1, label))
            events.append((b, -1, label))
        events.sort(key=lambda t: t[0])
        points = sorted({s, e, *(t[0] for t in events)})
        active: Dict[str, int] = {}
        idx = 0
        for i in range(len(points) - 1):
            a, b = points[i], points[i + 1]
            while idx < len(events) and events[idx][0] <= a:
                _, delta, label = events[idx]
                n = active.get(label, 0) + delta
                if n:
                    active[label] = n
                else:
                    active.pop(label, None)
                idx += 1
            if a < s or b > e:
                continue
            winner = "other"
            best = -1
            for label in active:
                pr = _PRIORITY.get(label, 0)
                if pr > best:
                    best = pr
                    winner = label
            phases[winner] += b - a
        return phases


def attribute_bench(bench, client_queue: Optional[Dict[int, float]] = None,
                    window: Optional[Tuple[float, float]] = None
                    ) -> AttributionResult:
    """Attribute a finished observed :class:`~repro.bench.runner.Bench`
    (or any object exposing ``.observer``)."""
    observer = getattr(bench, "observer", None) or bench
    return LatencyAttributor(observer).attribute(
        client_queue=client_queue, window=window)
