"""Exporters: Chrome trace-event JSON, metrics JSON, and a text summary.

The Chrome trace format (loadable in Perfetto / chrome://tracing) maps
the simulation onto processes and threads:

* **pid** — one process per node (``n0``, ``n1``, ...) plus a synthetic
  ``cluster`` process for cluster-scoped events (faults, fabric gauges);
* **tid** — one thread per track within a node, assigned in first-seen
  order: NIC core lanes (``nic.c0``...), host/worker core lanes, DMA
  queues (``dma.q0``...), the protocol-phase track, the server-handler
  track;
* transaction spans — async ``b``/``e`` pairs keyed by txn id, so a
  transaction's span overlays every node it touched;
* gauges — ``C`` counter events from the sampler's time series;
* faults — ``i`` instant events on the cluster timeline.

Timestamps are simulated microseconds, which is exactly the unit the
trace format expects.  Serialization is canonical (sorted keys, fixed
separators, deterministic event order), so the same seed produces a
byte-identical file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .events import InstantEvent, SpanEvent
from .observer import Observer

__all__ = ["chrome_trace_events", "dumps_chrome_trace", "write_chrome_trace",
           "metrics_to_dict", "write_metrics_json", "print_metrics_summary",
           "diff_metrics", "format_metrics_diff"]

# Synthetic pid for cluster-scoped events (nodes use their own ids).
CLUSTER_PID = 999


def _component_pid(component: str) -> int:
    if component.startswith("n") and component[1:].isdigit():
        return int(component[1:])
    return CLUSTER_PID


def chrome_trace_events(observer: Observer,
                        fault_trace=None) -> List[Dict[str, Any]]:
    """Assemble the full trace-event list (deterministic order)."""
    observer.snapshot_counters()
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}
    next_tid: Dict[int, int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = next_tid.get(pid, 1)
            next_tid[pid] = tid + 1
            tids[key] = tid
        return tid

    body: List[Dict[str, Any]] = []
    for ev in observer.log:
        if isinstance(ev, SpanEvent):
            if ev.cat == "txn":
                ident = "0x%x" % ev.txn_id
                common = {"cat": "txn", "id": ident, "pid": ev.node,
                          "tid": tid_for(ev.node, ev.track), "name": ev.name}
                begin = dict(common, ph="b", ts=ev.ts)
                if ev.args:
                    begin["args"] = ev.args
                body.append(begin)
                body.append(dict(common, ph="e", ts=ev.ts + ev.dur))
            else:
                rec = {"ph": "X", "cat": ev.cat, "name": ev.name,
                       "pid": ev.node, "tid": tid_for(ev.node, ev.track),
                       "ts": ev.ts, "dur": ev.dur}
                if ev.txn_id is not None:
                    rec.setdefault("args", {})["txn"] = ev.txn_id
                if ev.args:
                    rec.setdefault("args", {}).update(ev.args)
                body.append(rec)
        elif isinstance(ev, InstantEvent):
            rec = {"ph": "i", "s": "t", "cat": ev.cat, "name": ev.name,
                   "pid": ev.node, "tid": tid_for(ev.node, ev.track),
                   "ts": ev.ts}
            if ev.txn_id is not None:
                rec.setdefault("args", {})["txn"] = ev.txn_id
            if ev.args:
                rec.setdefault("args", {}).update(ev.args)
            body.append(rec)

    # Sampled gauge series -> counter tracks.
    for gauge in observer.registry.gauges.values():
        pid = _component_pid(gauge.component)
        name = "%s/%s" % (gauge.component, gauge.name)
        for ts, value in gauge.series:
            body.append({"ph": "C", "name": name, "pid": pid, "tid": 0,
                         "ts": ts, "args": {"value": value}})

    # Fault injections as instant events on the cluster timeline.
    if fault_trace is not None:
        for fe in fault_trace.events:
            body.append({
                "ph": "i", "s": "g", "cat": "fault", "name": fe.kind,
                "pid": CLUSTER_PID, "tid": 0, "ts": fe.t_us,
                "args": {"site": fe.site, "detail": fe.detail},
            })

    # Metadata first: process names, then thread names in tid order.
    pids = sorted({rec["pid"] for rec in body})
    for pid in pids:
        pname = "cluster" if pid == CLUSTER_PID else "n%d" % pid
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": pname}})
    for (pid, track), tid in sorted(tids.items(),
                                    key=lambda kv: (kv[0][0], kv[1])):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": track}})
    events.extend(body)
    return events


def dumps_chrome_trace(observer: Observer, fault_trace=None) -> str:
    doc = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(observer, fault_trace),
        "otherData": {
            "events_recorded": len(observer.log),
            "events_dropped": observer.log.dropped,
        },
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str, observer: Observer,
                       fault_trace=None) -> str:
    with open(path, "w") as fh:
        fh.write(dumps_chrome_trace(observer, fault_trace))
    return path


# ---------------------------------------------------------------------------
# metrics JSON + text summary
# ---------------------------------------------------------------------------


def metrics_to_dict(observer: Observer) -> dict:
    observer.snapshot_counters()
    return {
        "metrics": observer.registry.as_dict(),
        "spans": len(observer.log.spans()),
        "instants": len(observer.log.instants()),
        "events_dropped": observer.log.dropped,
        "sampler_ticks": observer.sampler.ticks,
    }


def write_metrics_json(path: str, observer: Observer) -> str:
    with open(path, "w") as fh:
        json.dump(metrics_to_dict(observer), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def print_metrics_summary(observer: Observer) -> None:
    # Imported lazily: repro.bench imports repro.obs, so a module-level
    # import here would be circular.
    from ..bench.report import print_table

    data = metrics_to_dict(observer)
    rows = []
    for name in sorted(data["metrics"]["counters"]):
        rows.append(["counter", name, data["metrics"]["counters"][name]])
    for name, g in sorted(data["metrics"]["gauges"].items()):
        val = g["last"] if g["last"] is not None else float("nan")
        rows.append(["gauge", name, val])
    for name, h in sorted(data["metrics"]["histograms"].items()):
        rows.append(["hist p50/p99/p999", name,
                     "%.2f / %.2f / %.2f"
                     % (h["p50"] or 0.0, h["p99"] or 0.0,
                        h.get("p999") or 0.0)])
    print_table("observability metrics", ["kind", "metric", "value"], rows)
    print("spans=%d instants=%d dropped=%d sampler_ticks=%d"
          % (data["spans"], data["instants"], data["events_dropped"],
             data["sampler_ticks"]))


# ---------------------------------------------------------------------------
# metrics diff (python -m repro metrics --diff a.json b.json)
# ---------------------------------------------------------------------------

_HIST_QUANTILES = ("p50", "p99", "p999")


def diff_metrics(a: dict, b: dict) -> dict:
    """Structured diff of two :func:`metrics_to_dict` exports.

    Counters compare as deltas (``b - a``); histograms as percentile
    shifts per quantile; gauges by their final sampled value.  Metrics
    present in only one export show the other side as ``None``.
    """
    am = a.get("metrics", a)
    bm = b.get("metrics", b)

    def union(kind):
        return sorted(set(am.get(kind, {})) | set(bm.get(kind, {})))

    counters = {}
    for name in union("counters"):
        va = am.get("counters", {}).get(name)
        vb = bm.get("counters", {}).get(name)
        counters[name] = {
            "a": va, "b": vb,
            "delta": (vb - va) if va is not None and vb is not None else None,
        }
    histograms = {}
    for name in union("histograms"):
        ha = am.get("histograms", {}).get(name) or {}
        hb = bm.get("histograms", {}).get(name) or {}
        entry = {"count_a": ha.get("count"), "count_b": hb.get("count")}
        for q in _HIST_QUANTILES:
            qa, qb = ha.get(q), hb.get(q)
            entry[q] = {
                "a": qa, "b": qb,
                "shift": (qb - qa) if qa is not None and qb is not None
                else None,
            }
        histograms[name] = entry
    gauges = {}
    for name in union("gauges"):
        ga = am.get("gauges", {}).get(name) or {}
        gb = bm.get("gauges", {}).get(name) or {}
        va, vb = ga.get("last"), gb.get("last")
        gauges[name] = {
            "a": va, "b": vb,
            "delta": (vb - va) if va is not None and vb is not None else None,
        }
    return {"counters": counters, "histograms": histograms, "gauges": gauges}


def _fmt_num(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float) and not v.is_integer():
        return "%.2f" % v
    return "%g" % v


def format_metrics_diff(diff: dict, only_changed: bool = True) -> str:
    """Render a :func:`diff_metrics` result as an aligned text table."""
    from ..bench.report import format_table

    rows = []
    for name, d in sorted(diff["counters"].items()):
        if only_changed and not d["delta"]:
            continue
        rows.append(["counter", name, _fmt_num(d["a"]), _fmt_num(d["b"]),
                     _fmt_num(d["delta"])])
    for name, d in sorted(diff["gauges"].items()):
        if only_changed and not d["delta"]:
            continue
        rows.append(["gauge", name, _fmt_num(d["a"]), _fmt_num(d["b"]),
                     _fmt_num(d["delta"])])
    for name, h in sorted(diff["histograms"].items()):
        for q in _HIST_QUANTILES:
            d = h[q]
            if only_changed and not d["shift"]:
                continue
            rows.append(["hist %s" % q, name, _fmt_num(d["a"]),
                         _fmt_num(d["b"]), _fmt_num(d["shift"])])
    if not rows:
        return "metrics diff: no changes"
    return format_table(["kind", "metric", "a", "b", "delta"], rows)
