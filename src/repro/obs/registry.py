"""Metrics registry: counters, gauges, histograms keyed by component/name.

Hardware models and the protocol publish into one registry per
`Observer`.  Gauges are callback-based: registering one costs nothing on
the hot path — the `Sampler` invokes the callback at fixed simulated-time
intervals and appends ``(t_us, value)`` to the gauge's series.  All
containers are insertion-ordered dicts, so iteration (and therefore
every export) is deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim.core import Simulator
from ..sim.stats import LogHistogram

__all__ = ["MetricKey", "CounterMetric", "GaugeMetric", "HistogramMetric",
           "MetricsRegistry", "Sampler"]

MetricKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]


def _key(component: str, name: str, labels: Dict[str, object]) -> MetricKey:
    return (component, name,
            tuple(sorted((k, str(v)) for k, v in labels.items())))


class CounterMetric:
    """A monotonically increasing count."""

    __slots__ = ("component", "name", "labels", "value")

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...]):
        self.component = component
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class GaugeMetric:
    """A sampled read-callback; `Sampler` fills ``series``."""

    __slots__ = ("component", "name", "labels", "fn", "series")

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...],
                 fn: Callable[[], float]):
        self.component = component
        self.name = name
        self.labels = labels
        self.fn = fn
        self.series: List[Tuple[float, float]] = []

    def read(self) -> float:
        return float(self.fn())

    def last(self) -> float:
        return self.series[-1][1] if self.series else self.read()


class HistogramMetric:
    """A log-scale distribution (probe lengths, vector sizes, ...)."""

    __slots__ = ("component", "name", "labels", "hist")

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...]):
        self.component = component
        self.name = name
        self.labels = labels
        self.hist = LogHistogram()

    def observe(self, x: float) -> None:
        self.hist.add(x)


class MetricsRegistry:
    """Holds every metric for one observed cluster run."""

    def __init__(self):
        self.counters: Dict[MetricKey, CounterMetric] = {}
        self.gauges: Dict[MetricKey, GaugeMetric] = {}
        self.histograms: Dict[MetricKey, HistogramMetric] = {}

    def counter(self, component: str, name: str, **labels) -> CounterMetric:
        key = _key(component, name, labels)
        metric = self.counters.get(key)
        if metric is None:
            metric = self.counters[key] = CounterMetric(component, name, key[2])
        return metric

    def gauge(self, component: str, name: str, fn: Callable[[], float],
              **labels) -> GaugeMetric:
        key = _key(component, name, labels)
        if key in self.gauges:
            raise ValueError("gauge already registered: %r" % (key,))
        metric = self.gauges[key] = GaugeMetric(component, name, key[2], fn)
        return metric

    def histogram(self, component: str, name: str, **labels) -> HistogramMetric:
        key = _key(component, name, labels)
        metric = self.histograms.get(key)
        if metric is None:
            metric = self.histograms[key] = HistogramMetric(
                component, name, key[2])
        return metric

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def as_dict(self) -> dict:
        """JSON-ready dump of every metric (gauges include final value
        and series length; full series ship with the Chrome trace)."""
        def label_str(labels):
            return ",".join("%s=%s" % kv for kv in labels)

        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for m in self.counters.values():
            name = "%s/%s" % (m.component, m.name)
            if m.labels:
                name += "{%s}" % label_str(m.labels)
            out["counters"][name] = m.value
        for m in self.gauges.values():
            name = "%s/%s" % (m.component, m.name)
            if m.labels:
                name += "{%s}" % label_str(m.labels)
            series = m.series
            out["gauges"][name] = {
                "last": series[-1][1] if series else None,
                "samples": len(series),
                "max": max((v for _, v in series), default=None),
                "mean": (sum(v for _, v in series) / len(series)
                         if series else None),
            }
        for m in self.histograms.values():
            name = "%s/%s" % (m.component, m.name)
            if m.labels:
                name += "{%s}" % label_str(m.labels)
            h = m.hist
            out["histograms"][name] = {
                "count": h.count,
                "mean": h.mean,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
                "p50": h.percentile(50) if h.count else None,
                "p99": h.percentile(99) if h.count else None,
                "p999": h.percentile(99.9) if h.count else None,
            }
        return out


class Sampler:
    """Periodic simulated-time snapshotter for every registered gauge.

    Runs as an ordinary simulation process: each tick it reads every
    gauge callback and appends to its series.  It stops itself when the
    rest of the simulation goes quiescent (its own timeout was the only
    scheduled event) and is bounded by ``max_ticks`` besides, so an
    open-ended ``sim.run()`` still terminates, and
    the process only *reads* model state — it draws no randomness and
    never blocks another process, so enabling it cannot change simulated
    results (same-timestamp FIFO ordering is preserved for all other
    events).
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry,
                 interval_us: float = 20.0, max_ticks: int = 100_000):
        self.sim = sim
        self.registry = registry
        self.interval_us = float(interval_us)
        self.max_ticks = max_ticks
        self.ticks = 0
        self._stopped = False
        self._process = None

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.spawn(self._run())

    def stop(self) -> None:
        self._stopped = True

    def sample_now(self) -> None:
        now = self.sim.now
        for gauge in self.registry.gauges.values():
            gauge.series.append((now, gauge.read()))

    def _run(self):
        while not self._stopped and self.ticks < self.max_ticks:
            yield self.sim.timeout(self.interval_us)
            if self._stopped:
                return
            self.sample_now()
            self.ticks += 1
            if self.sim.pending_events == 0:
                # Our timeout was the only thing left: the rest of the
                # simulation is quiescent and sampling further ticks
                # would just stretch the run (and the trace) with a
                # constant idle tail.
                return
