"""The Observer: one object wiring a cluster into the observability layer.

``Observer.install(cluster)`` attaches to every instrumentation point the
models expose — core groups, DMA engines, the protocol's span hooks —
registers occupancy gauges with the sampler, and interposes span wrappers
on the protocol's coordinator phases and server-side handlers.  Every
hook is reversible (``uninstall``), reads simulated time only, and adds
no simulation events beyond the sampler's own timeouts, so installing an
Observer never changes simulated results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.core import Simulator
from .events import EventLog, InstantEvent, SpanEvent
from .interpose import interpose, remove_interposers
from .registry import MetricsRegistry, Sampler

__all__ = ["Observer"]

# Coordinator-side phases (txn is args[0]); mirrors bench.trace.Tracer.
_COORD_PHASES = (
    "_phase_execute", "_run_logic", "_phase_validate", "_phase_log",
    "_phase_commit", "_multihop", "_nic_local_commit", "_nic_coordinate",
)

# Server-side handlers run at whichever node owns the shard; the value is
# the positional index (or attribute path) of the transaction id.
_SERVER_HANDLERS: Dict[str, Callable] = {
    "_execute_core": lambda args: args[1],
    "_validate_core": lambda args: args[1],
    "_log_core": lambda args: args[0].txn_id,
    "_commit_core": lambda args: args[0].txn_id,
    "_unlock_core": lambda args: args[0].txn_id,
    "_handle_exec_ship": lambda args: args[0].txn_id,
}


class Observer:
    """Unified metrics + span collection for one cluster run."""

    def __init__(self, sim: Simulator, sample_interval_us: float = 20.0,
                 max_events: int = 200_000):
        self.sim = sim
        self.registry = MetricsRegistry()
        self.log = EventLog(limit=max_events)
        self.sampler = Sampler(sim, self.registry, interval_us=sample_interval_us)
        self.cluster = None
        self._protocols: List[Any] = []
        self._core_groups: List[Any] = []
        self._dma_engines: List[Any] = []
        self._runtimes: List[Any] = []
        self._interposed: List[Tuple[Any, str]] = []

    # ------------------------------------------------------------------
    # event emission (called from the instrumented models)
    # ------------------------------------------------------------------

    def span(self, name: str, cat: str, node: int, track: str, ts: float,
             dur: float, txn_id: Optional[int] = None,
             args: Optional[dict] = None) -> None:
        self.log.append(SpanEvent(name, cat, node, track, ts, dur,
                                  txn_id=txn_id, args=args))

    def instant(self, name: str, cat: str, node: int, track: str, ts: float,
                txn_id: Optional[int] = None,
                args: Optional[dict] = None) -> None:
        self.log.append(InstantEvent(name, cat, node, track, ts,
                                     txn_id=txn_id, args=args))

    def core_job(self, node: int, track: str, slot: Optional[int],
                 start: float, end: float) -> None:
        lane = "%s.c%d" % (track, slot) if slot is not None else track
        self.log.append(SpanEvent("job", "core", node, lane, start,
                                  end - start))

    def dma_vector(self, node: int, queue: int, start: float,
                   occupancy: float, n_ops: int) -> None:
        self.registry.histogram("n%d" % node, "dma_vector_size").observe(n_ops)
        self.log.append(SpanEvent("vector", "dma", node, "dma.q%d" % queue,
                                  start, occupancy, args={"ops": n_ops}))

    def txn_commit(self, node: int, txn) -> None:
        self.registry.histogram("cluster", "txn_latency_us").observe(
            max(txn.committed_at - txn.started_at, 1e-9))
        self.log.append(SpanEvent(
            txn.spec.label, "txn", node, "txn", txn.started_at,
            txn.committed_at - txn.started_at, txn_id=txn.txn_id,
            args={"attempts": txn.attempts}))

    def attrib_span(self, phase: str, node: int, start: float, end: float,
                    txn_id: Optional[int],
                    svc: Optional[float] = None) -> None:
        """A latency-attribution interval: time a transaction spent in one
        phase (wire wait, DMA, host compute, NIC core, backoff, ...).
        ``svc`` carries the known service portion of a queue+service span
        so the attributor can split queueing from service."""
        self.log.append(SpanEvent(
            phase, "attrib", node, "attrib", start, end - start,
            txn_id=txn_id, args={"svc": svc} if svc is not None else None))

    def txn_abort(self, node: int, txn) -> None:
        args = {"attempt": txn.attempts}
        reason = getattr(txn, "abort_reason", None)
        if reason is not None:
            args["reason"] = str(reason)
        self.log.append(InstantEvent("abort", "txn", node, "txn",
                                     self.sim.now, txn_id=txn.txn_id,
                                     args=args))

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, cluster) -> "Observer":
        """Attach to a Xenic or baseline cluster and start the sampler."""
        if self.cluster is not None:
            raise RuntimeError("observer already installed")
        self.cluster = cluster
        if hasattr(cluster.nodes[0], "nic"):
            self._install_xenic(cluster)
        else:
            self._install_baseline(cluster)
        self.sampler.start()
        return self

    def _gauge(self, component: str, name: str, fn, **labels) -> None:
        self.registry.gauge(component, name, fn, **labels)

    def _attach_cores(self, group, node_id: int, track: str,
                      component: str) -> None:
        group.attach_obs(self, node_id, track)
        self._core_groups.append(group)
        self._gauge(component, track + "_in_use", lambda p=group.pool: p.in_use)
        self._gauge(component, track + "_run_queue",
                    lambda p=group.pool: p.queue_len)

    def _install_xenic(self, cluster) -> None:
        self._gauge("cluster", "fabric_messages",
                    lambda f=cluster.fabric: f.messages_delivered)
        self._gauge("cluster", "fabric_bytes",
                    lambda f=cluster.fabric: f.bytes_delivered)
        for node in cluster.nodes:
            i = node.node_id
            comp = "n%d" % i
            self._attach_cores(node.nic.cores, i, "nic", comp)
            self._attach_cores(node.host_app_cores, i, "host", comp)
            self._attach_cores(node.worker_cores, i, "worker", comp)
            node.nic.dma.attach_obs(self, i)
            self._dma_engines.append(node.nic.dma)
            self._gauge(comp, "dma_busy_queues",
                        lambda d=node.nic.dma: d.busy_queues())
            self._gauge(comp, "dma_backlog_us",
                        lambda d=node.nic.dma: d.queue_backlog_us())
            self._gauge(comp, "eth_utilization",
                        lambda p=node.nic.port: p.utilization())
        for proto in cluster.protocols:
            i = proto.node.node_id
            proto.obs = self
            self._protocols.append(proto)
            proto.runtime.obs_sink = self
            proto.runtime.obs_node = i
            self._runtimes.append(proto.runtime)
            self._gauge("n%d" % i, "nic_pending",
                        lambda p=proto.runtime.pending: len(p))
            self._interpose_protocol(proto, i)

    def _install_baseline(self, cluster) -> None:
        for node in cluster.nodes:
            i = node.node_id
            comp = "n%d" % i
            self._attach_cores(node.host_cores, i, "host", comp)
            self._gauge(comp, "rdma_inflight",
                        lambda r=node.rdma: r.inflight)
            self._gauge(comp, "rdma_wire_utilization",
                        lambda r=node.rdma: r.utilization())
        for proto in cluster.protocols:
            proto.obs = self
            self._protocols.append(proto)

    def _interpose_protocol(self, proto, node_id: int) -> None:
        for name in _COORD_PHASES:
            if hasattr(proto, name):
                interpose(proto, name, self, self._span_factory(
                    name.lstrip("_"), "phase", node_id, "proto",
                    lambda args: args[0].txn_id))
                self._interposed.append((proto, name))
        for name, txn_id_of in _SERVER_HANDLERS.items():
            if hasattr(proto, name):
                interpose(proto, name, self, self._span_factory(
                    name.lstrip("_"), "server", node_id, "nicrt",
                    txn_id_of))
                self._interposed.append((proto, name))

    def _span_factory(self, name: str, cat: str, node_id: int, track: str,
                      txn_id_of: Callable) -> Callable:
        obs = self

        def factory(call_inner):
            def wrapper(*args, **kw):
                start = obs.sim.now
                result = yield from call_inner(*args, **kw)
                obs.span(name, cat, node_id, track, start,
                         obs.sim.now - start, txn_id=txn_id_of(args))
                return result
            return wrapper

        return factory

    # ------------------------------------------------------------------
    # teardown and snapshots
    # ------------------------------------------------------------------

    def uninstall(self) -> None:
        for obj, name in self._interposed:
            remove_interposers(obj, name, self)
        self._interposed.clear()
        for proto in self._protocols:
            proto.obs = None
        for runtime in self._runtimes:
            runtime.obs_sink = None
            runtime.obs_node = 0
        self._runtimes.clear()
        for group in self._core_groups:
            group.detach_obs()
        for dma in self._dma_engines:
            dma.detach_obs()
        self.sampler.stop()
        self.cluster = None

    def snapshot_counters(self) -> None:
        """Copy every cumulative model counter into the registry (called
        by the exporters; reading at the end costs the hot path nothing)."""
        cluster = self.cluster
        reg = self.registry
        if cluster is None:
            return
        for node in cluster.nodes:
            comp = "n%d" % node.node_id
            if hasattr(node, "nic"):
                nic = node.nic
                reg.counter(comp, "nic_jobs").value = nic.cores.jobs_executed
                reg.counter(comp, "nic_busy_us").value = nic.cores.busy_us
                reg.counter(comp, "host_busy_us").value = node.host_app_cores.busy_us
                reg.counter(comp, "worker_busy_us").value = node.worker_cores.busy_us
                reg.counter(comp, "dma_ops").value = nic.dma.ops_submitted
                reg.counter(comp, "dma_vectors").value = nic.dma.vectors_submitted
                reg.counter(comp, "dma_mean_vector").value = nic.dma.vector_sizes.mean
                reg.counter(comp, "eth_messages").value = nic.port.messages_sent
                reg.counter(comp, "eth_bytes").value = nic.port.bytes_sent
                reg.counter(comp, "pcie_to_nic").value = node.pcie.to_nic_count
                reg.counter(comp, "pcie_to_host").value = node.pcie.to_host_count
                for shard in sorted(node.tables):
                    stats = node.tables[shard].probe_stats
                    reg.counter(comp, "probe_count", shard=shard).value = stats.count
                    reg.counter(comp, "probe_mean", shard=shard).value = stats.mean
            else:
                rdma = node.rdma
                reg.counter(comp, "host_busy_us").value = node.host_cores.busy_us
                for verb in sorted(rdma.ops):
                    reg.counter(comp, "rdma_ops", verb=verb).value = rdma.ops[verb]
                reg.counter(comp, "rdma_retries").value = rdma.retries
                reg.counter(comp, "rdma_wire_bytes").value = rdma.wire_bytes
        if hasattr(cluster, "fabric"):
            reg.counter("cluster", "fabric_messages_total").value = \
                cluster.fabric.messages_delivered
            reg.counter("cluster", "fabric_bytes_total").value = \
                cluster.fabric.bytes_delivered
        for proto in self._protocols:
            comp = "n%d" % proto.node.node_id
            runtime = getattr(proto, "runtime", None)
            if runtime is not None:
                reg.counter(comp, "nic_dma_reads").value = runtime.dma_reads
                reg.counter(comp, "nic_dma_writes").value = runtime.dma_writes
                reg.counter(comp, "log_appends").value = runtime.log_appends
                reg.counter(comp, "log_flushes").value = runtime.log_flushes
            for key in sorted(proto.stats.as_dict()):
                reg.counter(comp, "proto_" + key).value = proto.stats.get(key)
