"""Safe, stackable method interposition.

Both the phase tracer (`bench.trace.Tracer`) and the observability layer
(`repro.obs.Observer`) wrap protocol methods on *instances*.  Naive
wrapping corrupts the object when two interposers attach, or when one
detaches while another is still installed (the classic "restore the
original" dance restores a stale wrapper).  This module keeps the chain
explicit: every wrapper records its owner and the callable underneath
it, so any owner can be removed from anywhere in the chain and the
remainder is relinked in place.
"""

from __future__ import annotations

from typing import Any, Callable, List

__all__ = ["interpose", "remove_interposers", "interposers_of"]


class _Box:
    """Mutable indirection so relinking the chain retargets live wrappers."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn


def interpose(obj: Any, name: str, owner: Any,
              factory: Callable[[Callable], Callable]) -> Callable:
    """Wrap bound method ``name`` of ``obj`` on behalf of ``owner``.

    ``factory(call_inner)`` must return the replacement callable; it
    receives ``call_inner``, a callable that forwards to whatever sits
    underneath this wrapper *at call time* (so detaching a mid-chain
    interposer later does not strand this wrapper on a stale target).
    One owner may interpose the same method once; repeated calls for the
    same (obj, name, owner) are idempotent and keep the first wrapper.
    """
    current = getattr(obj, name)
    node = current
    while getattr(node, "_interposed_owner", None) is not None:
        if node._interposed_owner is owner:
            return current  # already attached; keep the existing chain
        node = node._interposed_box.fn
    box = _Box(current)
    wrapper = factory(lambda *a, **kw: box.fn(*a, **kw))
    wrapper._interposed_owner = owner
    wrapper._interposed_box = box
    setattr(obj, name, wrapper)
    return wrapper


def remove_interposers(obj: Any, name: str, owner: Any) -> int:
    """Remove every wrapper installed by ``owner`` on ``obj.name``.

    The rest of the chain is preserved in order.  When the chain
    empties, the instance attribute is dropped so the class method
    shows through again.  Returns the number of wrappers removed.
    """
    chain: List[Callable] = []
    node = getattr(obj, name)
    while getattr(node, "_interposed_owner", None) is not None:
        chain.append(node)
        node = node._interposed_box.fn
    base = node  # the original (bound class method)
    kept = [w for w in chain if w._interposed_owner is not owner]
    removed = len(chain) - len(kept)
    if not removed:
        return 0
    # Relink survivors bottom-up onto the base via their live boxes.
    below = base
    for w in reversed(kept):
        w._interposed_box.fn = below
        below = w
    if kept:
        setattr(obj, name, kept[0])
    else:
        cls_fn = getattr(type(obj), name, None)
        if cls_fn is not None and getattr(base, "__func__", None) is cls_fn:
            # base is the plain class method: drop the shadowing
            # instance attribute so the class definition shows through.
            delattr(obj, name)
        else:
            setattr(obj, name, base)
    return removed


def interposers_of(obj: Any, name: str) -> List[Any]:
    """The owners currently interposed on ``obj.name``, outermost first."""
    owners = []
    node = getattr(obj, name)
    while getattr(node, "_interposed_owner", None) is not None:
        owners.append(node._interposed_owner)
        node = node._interposed_box.fn
    return owners
