"""Observability layer: metrics registry, telemetry sampling, distributed
transaction spans, and Chrome-trace/JSON exporters.

Entry point: create an :class:`Observer`, ``install(cluster)`` before the
workload, run, then export::

    from repro.obs import Observer, write_chrome_trace

    obs = Observer(sim).install(cluster)
    ...  # run the workload
    write_chrome_trace("trace.json", obs)

Everything is simulated-time only and deterministic; with no Observer
installed the instrumentation hooks cost a single predicate per event.
See ``docs/OBSERVABILITY.md``.
"""

from .attrib import (ATTRIB_PHASES, AttributionResult, LatencyAttributor,
                     TxnAttribution, attribute_bench)
from .events import EventLog, InstantEvent, SpanEvent
from .export import (chrome_trace_events, diff_metrics, dumps_chrome_trace,
                     format_metrics_diff, metrics_to_dict,
                     print_metrics_summary, write_chrome_trace,
                     write_metrics_json)
from .interpose import interpose, interposers_of, remove_interposers
from .observer import Observer
from .registry import MetricsRegistry, Sampler

__all__ = [
    "Observer",
    "ATTRIB_PHASES",
    "AttributionResult",
    "LatencyAttributor",
    "TxnAttribution",
    "attribute_bench",
    "diff_metrics",
    "format_metrics_diff",
    "MetricsRegistry",
    "Sampler",
    "EventLog",
    "SpanEvent",
    "InstantEvent",
    "interpose",
    "remove_interposers",
    "interposers_of",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "write_chrome_trace",
    "metrics_to_dict",
    "write_metrics_json",
    "print_metrics_summary",
]
