"""Span/instant event records and the bounded event log.

Events carry only simulated-time stamps (microseconds); nothing in this
module reads a wall clock, so event streams are a pure function of the
simulation and replay byte-identically for a given seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["SpanEvent", "InstantEvent", "EventLog"]


class SpanEvent:
    """A completed duration on some track: a core job, a DMA vector, a
    protocol phase, or a whole transaction (when ``txn_id`` is set)."""

    __slots__ = ("name", "cat", "node", "track", "ts", "dur", "txn_id", "args")

    def __init__(self, name: str, cat: str, node: int, track: str,
                 ts: float, dur: float, txn_id: Optional[int] = None,
                 args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.cat = cat
        self.node = node
        self.track = track
        self.ts = ts
        self.dur = dur
        self.txn_id = txn_id
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("SpanEvent(%r, cat=%r, node=%d, track=%r, ts=%.3f, "
                "dur=%.3f, txn=%s)" % (self.name, self.cat, self.node,
                                       self.track, self.ts, self.dur,
                                       self.txn_id))


class InstantEvent:
    """A zero-duration marker (aborts, retries, faults)."""

    __slots__ = ("name", "cat", "node", "track", "ts", "txn_id", "args")

    def __init__(self, name: str, cat: str, node: int, track: str,
                 ts: float, txn_id: Optional[int] = None,
                 args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.cat = cat
        self.node = node
        self.track = track
        self.ts = ts
        self.txn_id = txn_id
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "InstantEvent(%r, cat=%r, node=%d, ts=%.3f)" % (
            self.name, self.cat, self.node, self.ts)


class EventLog:
    """Bounded append-only buffer of observability events.

    Appends beyond ``limit`` are counted in ``dropped`` rather than
    stored, so a runaway workload cannot exhaust memory; exporters
    surface the drop count so truncation is never silent.
    """

    def __init__(self, limit: int = 200_000):
        self.limit = limit
        self.events: List[Any] = []
        self.dropped = 0

    def append(self, event: Any) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def spans(self) -> List[SpanEvent]:
        return [e for e in self.events if isinstance(e, SpanEvent)]

    def instants(self) -> List[InstantEvent]:
        return [e for e in self.events if isinstance(e, InstantEvent)]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
