"""Network fabric: a full-bisection switch connecting node Ethernet ports.

Messages are delivered to the destination node's registered handler after
egress serialization (modeled by the sender's :class:`EthernetPort`) plus
switch propagation.  Ingress processing cost is charged by the receiver
(NIC cores for Xenic, host/RDMA NIC for the baselines), not here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..sim.core import Simulator

__all__ = ["Fabric", "NetMessage"]


class NetMessage:
    """An application-level message on the wire.

    ``size`` is the app payload plus app header bytes; wire-level framing
    (Ethernet/IP/UDP) is added by the port, once per aggregated packet.
    """

    __slots__ = ("src", "dst", "kind", "size", "payload", "sent_at", "wire_id")

    def __init__(self, src: int, dst: int, kind: str, size: int, payload: Any = None,
                 wire_id: Any = None):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.payload = payload
        self.sent_at = 0.0
        # Transport-level sequence number (set by the sender's protocol
        # engine): receivers suppress duplicate deliveries by (src, wire_id),
        # the way RC transports dedup retransmitted PSNs.  None disables
        # dedup (e.g. raw messages in unit tests).
        self.wire_id = wire_id

    def __repr__(self) -> str:  # pragma: no cover
        return "<NetMessage %s %d->%d %dB>" % (self.kind, self.src, self.dst, self.size)


class Fabric:
    """Registry of node message handlers, keyed by node id.

    An optional fault injector (see :mod:`repro.sim.faults`) may
    intercept deliveries to drop, delay, duplicate, or reorder them;
    without one every message is delivered exactly once, immediately.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._handlers: Dict[int, Callable[[NetMessage], None]] = {}
        self._ports: Dict[int, object] = {}
        self.injector = None
        self.messages_delivered = 0
        self.bytes_delivered = 0

    def set_injector(self, injector) -> None:
        self.injector = injector

    def register(self, node_id: int, handler: Callable[[NetMessage], None]) -> None:
        if node_id in self._handlers:
            raise ValueError("node %d already registered" % node_id)
        self._handlers[node_id] = handler

    def register_port(self, node_id: int, port) -> None:
        self._ports[node_id] = port

    def rx_packet(self, node_id: int, msgs) -> None:
        """Deliver one wire packet carrying ``msgs`` to the destination.
        If the destination has a registered port, the packet first passes
        its per-packet RX pipeline; otherwise it is delivered directly."""
        port = self._ports.get(node_id)
        if port is not None:
            port.receive_packet(msgs)
        else:
            for msg in msgs:
                self.deliver(node_id, msg)

    def deliver(self, node_id: int, msg: NetMessage) -> None:
        if self.injector is not None and \
                self.injector.intercept_delivery(self, node_id, msg):
            return
        self._deliver_now(node_id, msg)

    def _deliver_now(self, node_id: int, msg: NetMessage) -> None:
        handler = self._handlers.get(node_id)
        if handler is None:
            raise KeyError("no handler registered for node %d" % node_id)
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        handler(msg)
