"""LiquidIO PCIe DMA engine model (§3.5, Figure 4).

The engine exposes 8 hardware queues accepting vectored submissions of up
to 15 reads or writes.  Two ceilings are modeled:

* an op-rate ceiling — per-submission descriptor overhead plus per-op
  processing time, calibrated so full 15-element vectors across 8 queues
  reach the measured 8.7 Mops/s maximum while single-op submissions fall
  well short of it (the Figure 4a gap that motivates Xenic's batching);
* a byte ceiling — all payload bytes serialize through the shared PCIe
  link, which bounds large transfers.

Completions are asymmetric (reads ~1295 ns, writes ~570 ns, §3.5) and are
added *after* queue service, so callers that block per-DMA waste core time
while callers using the continuation-passing runtime (§4.3.1) overlap it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.core import Event, Simulator, Timeout
from ..sim.link import SerialLink
from ..sim.stats import OnlineStats
from .params import DmaParams

__all__ = ["DmaOp", "DmaEngine"]

# Engine-side per-submission overhead and per-op processing time, solved so
# that 8 queues of full 15-vectors hit 8.7 Mops/s (Figure 4a) while a
# single-op submission keeps the sub-2µs latency of Figure 4b:
#   8 * 15 / (F + 15 p) = 8.7  with  F = 0.25
_ENGINE_SUBMIT_US = 0.25
_ENGINE_PER_OP_US = 0.9027


@dataclass
class DmaOp:
    """One host-memory read or write in a DMA vector."""

    size: int
    is_read: bool
    done: Optional[Event] = None
    on_complete: Optional[Callable[[], None]] = None
    submitted_at: float = field(default=0.0)
    completed_at: float = field(default=0.0)


class DmaEngine:
    """The NIC's DMA engine: vectored, multi-queue, latency-accurate."""

    def __init__(self, sim: Simulator, params: DmaParams = None, name: str = "dma"):
        self.sim = sim
        self.params = params or DmaParams()
        self.name = name
        self._vector_name = "%s.vector" % name
        self._queue_busy_until = [0.0] * self.params.queues
        self._rr = 0
        self.pcie = SerialLink(
            sim,
            self.params.pcie_bandwidth_gbps,
            overhead_us=0.0,
            name="%s.pcie" % name,
        )
        self.ops_submitted = 0
        self.vectors_submitted = 0
        self.vector_sizes = OnlineStats()
        self.read_latency = OnlineStats()
        self.write_latency = OnlineStats()
        # Observability hook (repro.obs): emits one span per vector on the
        # queue it landed in.  None keeps submit() to a single branch.
        self.obs_sink = None
        self._obs_node = 0

    def attach_obs(self, sink, node: int) -> None:
        self.obs_sink = sink
        self._obs_node = node

    def detach_obs(self) -> None:
        self.obs_sink = None

    def busy_queues(self) -> int:
        """Queues with descriptor work still outstanding (gauge source)."""
        now = self.sim.now
        return sum(1 for t in self._queue_busy_until if t > now)

    def queue_backlog_us(self) -> float:
        """Total descriptor-processing backlog across queues, in µs."""
        now = self.sim.now
        return sum(t - now for t in self._queue_busy_until if t > now)

    @property
    def submission_cost_us(self) -> float:
        """Core time spent issuing one (possibly vectored) submission —
        charged to the submitting NIC core by the caller (§3.5: up to
        190 ns, amortized across up to 15 memory operations)."""
        return self.params.submission_us

    def submit(self, ops: List[DmaOp]) -> Event:
        """Submit a vector of up to ``max_vector`` ops to the least-loaded
        queue.  Returns an event firing when *all* ops have completed;
        each op's own ``done`` event / ``on_complete`` callback fires at
        its individual completion time."""
        if not ops:
            raise ValueError("empty DMA vector")
        if len(ops) > self.params.max_vector:
            raise ValueError(
                "vector of %d exceeds hardware maximum %d"
                % (len(ops), self.params.max_vector)
            )
        now = self.sim.now
        self.vectors_submitted += 1
        self.ops_submitted += len(ops)
        self.vector_sizes.add(len(ops))

        # Pick the earliest-free queue (ties broken round-robin).
        busy = self._queue_busy_until
        nq = len(busy)
        rr = self._rr
        q = 0
        best = (busy[0], (0 - rr) % nq)
        for i in range(1, nq):
            cand = (busy[i], (i - rr) % nq)
            if cand < best:
                best = cand
                q = i
        self._rr = (q + 1) % nq

        start = max(now, busy[q])
        all_done = Event(self.sim, self._vector_name)
        pending = [len(ops)]

        # The queue is *occupied* for the descriptor-processing time
        # (throughput model), but the engine is pipelined: an op's latency
        # is its wait for the queue plus the fixed submission/completion
        # pipeline, not the full occupancy (§3.5, Figure 4b: vectors do
        # not increase per-op latency).
        occupancy = _ENGINE_SUBMIT_US + len(ops) * _ENGINE_PER_OP_US
        self._queue_busy_until[q] = start + occupancy
        if self.obs_sink is not None:
            self.obs_sink.dma_vector(self._obs_node, q, start, occupancy,
                                     len(ops))
        for op in ops:
            op.submitted_at = now
            link_done_delay = self._pcie_busy_delay(op.size)
            pipeline_delay = (start - now) + self.params.submission_us
            finish_delay = max(pipeline_delay, link_done_delay)
            completion = (
                self.params.read_completion_us
                if op.is_read
                else self.params.write_completion_us
            )
            total_delay = finish_delay + completion
            Timeout(self.sim, total_delay).add_callback(
                lambda _e, op=op: self._complete(op, all_done, pending)
            )
        return all_done

    def _pcie_busy_delay(self, nbytes: int) -> float:
        """Reserve link time for the payload; returns delay until the bytes
        have crossed the link (relative to now)."""
        now = self.sim.now
        start = max(now, self.pcie._busy_until)
        dur = self.pcie.serialization_us(nbytes)
        self.pcie._busy_until = start + dur
        self.pcie.bytes_transferred += nbytes
        self.pcie.transfers += 1
        return (start + dur) - now

    def _complete(self, op: DmaOp, all_done: Event, pending: List[int]) -> None:
        op.completed_at = self.sim.now
        latency = op.completed_at - op.submitted_at
        (self.read_latency if op.is_read else self.write_latency).add(latency)
        if op.done is not None and not op.done.triggered:
            op.done.succeed()
        if op.on_complete is not None:
            op.on_complete()
        pending[0] -= 1
        if pending[0] == 0:
            all_done.succeed()

    # Convenience single-op helpers ---------------------------------------

    def read(self, nbytes: int) -> Event:
        # For a single-op vector the vector-completion event *is* the op's
        # completion; no per-op done event needed.
        return self.submit([DmaOp(size=nbytes, is_read=True)])

    def write(self, nbytes: int) -> Event:
        return self.submit([DmaOp(size=nbytes, is_read=False)])
