"""SmartNIC device assemblies.

:class:`SmartNic` is the on-path LiquidIO model: ARM cores on the packet
data path, on-board DRAM, a vectored DMA engine to host memory, and the
node's Ethernet port.  All inbound wire traffic lands on NIC cores.

:class:`OffPathNic` exists for the §3.1 architecture comparison: its SoC
sits behind an internal switch and reaches host memory only through
RDMA-like network requests, which is what makes off-path offload
unattractive for Xenic (the measured BlueField/Stingray latencies).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.core import Event, Simulator
from .cpu import CoreGroup
from .dma import DmaEngine
from .ethernet import EthernetPort
from .network import Fabric, NetMessage
from .params import OffPathParams, SmartNicParams

__all__ = ["SmartNic", "OffPathNic"]


class SmartNic:
    """On-path SmartNIC: cores + NIC DRAM + DMA engine + Ethernet port."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_id: int,
        params: SmartNicParams = None,
        nic_threads: Optional[int] = None,
        aggregation: bool = True,
        name: str = "",
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params or SmartNicParams()
        self.name = name or ("nic%d" % node_id)
        self.cores = CoreGroup(
            sim,
            self.params.cpu,
            cores=nic_threads,
            name="%s.cores" % self.name,
        )
        self.dma = DmaEngine(sim, self.params.dma, name="%s.dma" % self.name)
        self.port = EthernetPort(
            sim,
            fabric,
            node_id,
            params=self.params.eth,
            aggregation=aggregation,
            name="%s.eth" % self.name,
        )
        self._handler: Optional[Callable[[NetMessage], None]] = None
        fabric.register(node_id, self._on_wire_message)
        self.messages_handled = 0

    def set_handler(self, handler: Callable[[NetMessage], None]) -> None:
        """Install the firmware's message handler (the protocol engine)."""
        self._handler = handler

    def _on_wire_message(self, msg: NetMessage) -> None:
        if self._handler is None:
            raise RuntimeError("%s has no firmware handler installed" % self.name)
        self.messages_handled += 1
        self._handler(msg)

    def send(self, msg: NetMessage) -> None:
        self.port.send(msg)

    # Convenience costs used by the protocol engine ------------------------

    def handle_cost_event(self, extra_ref_us: float = 0.0) -> Event:
        """Charge one NIC core for handling one inbound message."""
        return self.cores.execute(self.params.rpc_handle_us + extra_ref_us)

    def nic_dram_access(self) -> Event:
        """NIC-local DRAM access (cache hit path): cheap fixed latency."""
        return self.sim.timeout(self.params.local_dram_us)


class OffPathNic:
    """Off-path SmartNIC latency model (§3.1 measurements only).

    The measured medians for the BlueField/Stingray show the SoC-to-host
    path costing *more* than a remote RDMA write straight to host memory —
    the observation that rules out off-path devices for Xenic.
    """

    def __init__(self, sim: Simulator, params: OffPathParams):
        self.sim = sim
        self.params = params

    def remote_write_to_host(self) -> Event:
        """Remote server writes host memory via RDMA (baseline path)."""
        return self.sim.timeout(self.params.remote_to_host_write_us)

    def remote_write_to_soc(self) -> Event:
        """Remote server writes SoC memory (offloaded-state path)."""
        return self.sim.timeout(self.params.remote_to_soc_write_us)

    def soc_write_to_host(self) -> Event:
        """Local SoC writes host memory through the internal switch."""
        return self.sim.timeout(self.params.soc_to_host_write_us)

    def offload_penalty_us(self) -> float:
        """Extra latency of handling a remote request on the SoC and then
        touching host memory, vs. RDMA straight to the host."""
        soc_path = self.params.remote_to_soc_write_us + self.params.soc_to_host_write_us
        return soc_path - self.params.remote_to_host_write_us
