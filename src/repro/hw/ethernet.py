"""Ethernet port model with gather-list aggregation (§3.4, §4.3.2).

Each node owns one port.  Outbound messages are queued and a drain loop
groups everything pending by destination into one wire packet per
destination, paying the per-packet framing overhead once — the mechanism
behind both the Figure 3 batching gains and Xenic's Ethernet aggregation
ablation (Figure 9a).  With ``aggregation=False`` every message is its own
packet.
"""

from __future__ import annotations

from ..sim.core import Simulator
from ..sim.link import BatchingLink
from .network import Fabric, NetMessage
from .params import EthernetParams

__all__ = ["EthernetPort"]


class EthernetPort:
    """A node's (possibly bonded) Ethernet interface."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_id: int,
        params: EthernetParams = None,
        aggregation: bool = True,
        name: str = "",
    ):
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.params = params or EthernetParams()
        self.name = name or ("eth%d" % node_id)
        self._link = BatchingLink(
            sim,
            bandwidth_gbps=self.params.bandwidth_gbps,
            overhead_us=self.params.per_packet_overhead_us,
            propagation_us=self.params.propagation_us,
            deliver=self._deliver,
            aggregation=aggregation,
            max_batch_bytes=self.params.mtu_bytes,
            name=self.name,
        )
        # Inbound per-packet RX pipeline: packet-buffer allocation and
        # dispatch serialize at ~1/overhead packets/s (the target-side
        # half of the §3.4 unbatched ceiling).
        from ..sim.link import SerialLink

        self._rx_pipe = SerialLink(
            sim,
            bandwidth_gbps=self.params.bandwidth_gbps,
            overhead_us=self.params.per_packet_overhead_us,
            name="%s.rx" % self.name,
        )
        fabric.register_port(node_id, self)
        self.messages_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0

    @property
    def aggregation(self) -> bool:
        return self._link.aggregation

    def send(self, msg: NetMessage) -> None:
        """Queue a message for transmission; delivery is asynchronous."""
        if msg.dst == self.node_id:
            raise ValueError("loopback send on the wire is not modeled")
        msg.sent_at = self.sim.now
        self.messages_sent += 1
        self.bytes_sent += msg.size
        # Per-message bytes on the wire; the per-packet header is charged
        # once per aggregated packet by the link's overhead model, so we
        # account only a small per-message framing residue here.
        self._link.send(msg.dst, msg.size, msg)

    def _deliver(self, dst: int, msgs) -> None:
        self.fabric.rx_packet(dst, msgs)

    def receive_packet(self, msgs) -> None:
        """Serialize one inbound packet through the RX pipeline, then hand
        its messages to the node's handler."""
        self.packets_received += 1
        if len(msgs) == 1:
            # unbatched packet (the common case off-peak): skip the sum
            # and the per-delivery list comprehension
            m0 = msgs[0]
            self._rx_pipe.transfer(m0.size).add_callback(
                lambda _e: self.fabric.deliver(self.node_id, m0)
            )
            return
        total = sum(m.size for m in msgs)
        ev = self._rx_pipe.transfer(total)
        ev.add_callback(
            lambda _e: [self.fabric.deliver(self.node_id, m) for m in msgs]
        )

    # Introspection for benches -------------------------------------------

    @property
    def packets_sent(self) -> int:
        return self._link.packets_sent

    @property
    def mean_batch(self) -> float:
        return self._link.mean_batch

    def utilization(self, since: float = 0.0) -> float:
        return self._link.link.utilization(since)
