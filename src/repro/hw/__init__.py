"""Simulated hardware: CPUs, SmartNICs, RDMA NICs, DMA engines, network."""

from .cpu import CoreGroup
from .dma import DmaEngine, DmaOp
from .ethernet import EthernetPort
from .network import Fabric, NetMessage
from .nic import OffPathNic, SmartNic
from .params import (
    BLUEFIELD_OFFPATH,
    CX5_RDMA,
    HOST,
    LIQUIDIO3,
    LIQUIDIO3_CPU,
    STINGRAY_OFFPATH,
    TESTBED,
    XEON_GOLD_5218,
    CpuParams,
    DmaParams,
    EthernetParams,
    HardwareParams,
    HostParams,
    OffPathParams,
    RdmaParams,
    SmartNicParams,
    testbed_params,
)
from .pcie import PcieChannel
from .rdma import RdmaNic

__all__ = [
    "CoreGroup",
    "DmaEngine",
    "DmaOp",
    "EthernetPort",
    "Fabric",
    "NetMessage",
    "SmartNic",
    "OffPathNic",
    "PcieChannel",
    "RdmaNic",
    "CpuParams",
    "DmaParams",
    "EthernetParams",
    "RdmaParams",
    "SmartNicParams",
    "HostParams",
    "OffPathParams",
    "HardwareParams",
    "XEON_GOLD_5218",
    "LIQUIDIO3_CPU",
    "LIQUIDIO3",
    "HOST",
    "CX5_RDMA",
    "BLUEFIELD_OFFPATH",
    "STINGRAY_OFFPATH",
    "TESTBED",
    "testbed_params",
]
