"""Mellanox CX5 RDMA NIC model used by the baseline systems (§2.1, §3.2).

One-sided verbs (READ / WRITE / ATOMIC) complete without any target host
CPU involvement; two-sided RPCs consume a host core at the target.  Both
directions share the NIC's op-rate ceiling (doorbell-batched small ops
measure 13.5-15.0 Mops/s, §3.4) and the wire bandwidth, with per-op RoCE
header overhead — the read-amplification cost that the paper's Table 2 and
Figure 8 comparisons hinge on.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Event, Simulator
from ..sim.fusion import fusion_enabled
from ..sim.link import SerialLink
from .cpu import CoreGroup
from .params import RdmaParams

__all__ = ["RdmaNic", "OneSidedVerb"]

READ = "read"
WRITE = "write"
ATOMIC = "atomic"
SEND = "send"

OneSidedVerb = str

# Request descriptor sizes on the wire (bytes of payload direction-dependent
# data are added on top).
_REQ_DESC = 28  # address + rkey + length
_ATOMIC_DESC = 48  # address + compare + swap operands
_ACK_BYTES = 12


class RdmaNic:
    """Per-node RDMA NIC.

    The constructor wires two NICs together lazily through the shared
    :class:`RdmaFabricRegistry`-style dict owned by the cluster; for
    simplicity each verb call names the target NIC object directly.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: RdmaParams = None,
        host_cores: Optional[CoreGroup] = None,
        host_rpc_handle_us: float = 16.0 / 23.0,
        host_rpc_stack_us: float = 1.5,
        name: str = "",
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params or RdmaParams()
        self.name = name or ("rdma%d" % node_id)
        # Op-rate ceilings: the measured 13.5-15 Mops/s (§3.4) is the
        # per-NIC, per-direction processing rate — separate TX (initiator)
        # and RX (target) pipes, so inbound load does not steal outbound
        # descriptor slots.
        self._tx_pipe = SerialLink(
            sim,
            bandwidth_gbps=1e9,  # rate modeled via per-op overhead only
            overhead_us=1.0 / self.params.max_ops_per_us,
            name="%s.tx" % self.name,
        )
        self._rx_pipe = SerialLink(
            sim,
            bandwidth_gbps=1e9,
            overhead_us=1.0 / self.params.max_ops_per_us,
            name="%s.rx" % self.name,
        )
        self._wire = SerialLink(
            sim,
            bandwidth_gbps=self.params.bandwidth_gbps,
            overhead_us=0.0,
            name="%s.wire" % self.name,
        )
        self.host_cores = host_cores
        self.host_rpc_handle_us = host_rpc_handle_us
        self.host_rpc_stack_us = host_rpc_stack_us
        # fixed processing latency so an unloaded verb matches the measured
        # RTT after subtracting two propagation delays
        self._fixed = {
            READ: max(0.0, self.params.read_rtt_us - 2 * self.params.propagation_us),
            WRITE: max(0.0, self.params.write_rtt_us - 2 * self.params.propagation_us),
            ATOMIC: max(0.0, self.params.atomic_rtt_us - 2 * self.params.propagation_us),
            # The RPC RTT already includes one host handling cost, which is
            # charged explicitly against a host core; keep the remainder.
            SEND: max(
                0.0,
                self.params.rpc_rtt_us
                - 2 * self.params.propagation_us
                - host_rpc_handle_us,
            ),
        }
        self.ops = {READ: 0, WRITE: 0, ATOMIC: 0, SEND: 0}
        self._verb_names = {v: "%s.%s" % (self.name, v)
                            for v in (READ, WRITE, ATOMIC)}
        self._rpc_name = "%s.rpc" % self.name
        # Optional fault injector (repro.sim.faults): transient verb
        # failures retried by the RC transport, each paying a timeout.
        self.injector = None
        self.retries = 0
        # Verbs issued but not yet completed (gauge source for repro.obs).
        self.inflight = 0
        # Delay fusion (repro.sim.fusion): merge each transfer with the
        # pure delay that follows it (wire+propagation, RX+fixed-budget)
        # into one event via SerialLink.transfer_then.  Every reservation
        # and the on_target linearization point stay at their stepwise
        # instants; checked at run time against self.injector so a chaos
        # harness installing an injector later gets the stepwise chain.
        self._fused = fusion_enabled()

    # -- introspection ----------------------------------------------------

    def utilization(self, since: float = 0.0) -> float:
        """Mean wire (payload-bandwidth) utilization over [since, now] —
        the public accessor benches and observers should use instead of
        reaching into the private ``_wire`` link."""
        return self._wire.utilization(since)

    @property
    def wire_bytes(self) -> int:
        """Total payload bytes this NIC has put on the wire."""
        return self._wire.bytes_transferred

    # -- one-sided verbs ---------------------------------------------------

    def one_sided(
        self,
        target: "RdmaNic",
        verb: OneSidedVerb,
        size: int,
        on_target=None,
    ) -> Event:
        """Issue a one-sided verb against ``target``'s host memory.

        Returns an event firing at the initiator when the response/ack
        arrives; its value is whatever ``on_target`` returned.  ``on_target``
        (if given) runs at the moment the target NIC touches host memory —
        the linearization point of the verb — so reads/CASes are atomic in
        simulated time.  ``size`` is the payload length.
        """
        if verb not in (READ, WRITE, ATOMIC):
            raise ValueError("not a one-sided verb: %r" % verb)
        self.ops[verb] += 1
        if verb == READ:
            out_bytes = _REQ_DESC + self.params.per_op_wire_bytes
            back_bytes = size + self.params.per_op_wire_bytes
        elif verb == WRITE:
            out_bytes = size + _REQ_DESC + self.params.per_op_wire_bytes
            back_bytes = _ACK_BYTES + self.params.per_op_wire_bytes
        else:  # ATOMIC
            out_bytes = _ATOMIC_DESC + self.params.per_op_wire_bytes
            back_bytes = size + self.params.per_op_wire_bytes

        name = self._verb_names[verb]
        done = self.sim.event(name=name)
        self.sim.spawn(
            self._one_sided_proc(target, verb, out_bytes, back_bytes, done,
                                 on_target),
            name=name,
        )
        return done

    def _one_sided_proc(self, target, verb, out_bytes, back_bytes, done,
                        on_target=None):
        self.inflight += 1
        # initiator NIC descriptor processing + wire out
        yield self._tx_pipe.transfer(0)
        prop = self.params.propagation_us
        if self._fused and self.injector is None:
            # Fused chain: both wire+propagation pairs become one event
            # each.  Every link reservation happens at the exact
            # stepwise instant (wire at tx-done, RX pipe at arrival,
            # response wire at the post-budget instant) and on_target
            # still runs at the linearization point.  Do NOT merge the
            # RX-pipe stage with the fixed budget: that moves the
            # on_target-carrying event's push earlier, and a same-float
            # collision with an event pushed in the moved window flips
            # CAS linearization order (observed: one abort<->commit flip
            # on a DrTM+R smallbank point).
            yield self._wire.transfer_then(out_bytes, prop)
            yield target._rx_pipe.transfer(0)
            yield self.sim.timeout(self._fixed[verb])
            result = on_target() if on_target is not None else None
            yield target._wire.transfer_then(back_bytes, prop)
            self.inflight -= 1
            done.succeed(result)
            return
        yield from self._transient_failures(verb)
        yield self._wire.transfer(out_bytes)
        yield self.sim.timeout(prop)
        # target NIC descriptor processing (incl. PCIe DMA to host memory)
        yield target._rx_pipe.transfer(0)
        # fixed processing budget reproduces the measured RTT floor
        yield self.sim.timeout(self._fixed[verb])
        result = on_target() if on_target is not None else None
        # response over target's wire
        yield target._wire.transfer(back_bytes)
        yield self.sim.timeout(prop)
        self.inflight -= 1
        done.succeed(result)

    def read(self, target: "RdmaNic", size: int, on_target=None) -> Event:
        return self.one_sided(target, READ, size, on_target)

    def write(self, target: "RdmaNic", size: int, on_target=None) -> Event:
        return self.one_sided(target, WRITE, size, on_target)

    def atomic(self, target: "RdmaNic", size: int = 8, on_target=None) -> Event:
        return self.one_sided(target, ATOMIC, size, on_target)

    # -- two-sided RPC ------------------------------------------------------

    def rpc(
        self,
        target: "RdmaNic",
        req_size: int,
        resp_size: int,
        handler_ref_us: float = 0.0,
        on_target=None,
    ) -> Event:
        """Two-sided SEND/RECV RPC: consumes a host core at the target for
        the message handling cost plus ``handler_ref_us`` of application
        work (reference-Xeon µs).  ``on_target`` runs on the target host
        right after the handler cost is paid; its return value becomes the
        completion event's value."""
        if target.host_cores is None:
            raise RuntimeError("target %s has no host cores attached" % target.name)
        self.ops[SEND] += 1
        done = self.sim.event(name=self._rpc_name)
        self.sim.spawn(
            self._rpc_proc(target, req_size, resp_size, handler_ref_us, done,
                           on_target),
            name=self._rpc_name,
        )
        return done

    def _transient_failures(self, verb: str):
        """Transient verb failures before the linearization point: the RC
        transport retries after a timeout, so the verb completes late but
        exactly once."""
        if self.injector is None:
            return
        retries = self.injector.rdma_retries(self, verb)
        for _ in range(retries):
            self.retries += 1
            yield self.sim.timeout(self.injector.spec.rdma_retry_us)

    def _rpc_proc(self, target, req_size, resp_size, handler_ref_us, done,
                  on_target=None):
        self.inflight += 1
        yield self._tx_pipe.transfer(0)
        prop = self.params.propagation_us
        if self._fused and self.injector is None:
            # Fused RPC: request wire+propagation and response
            # wire+propagation merge (two events saved); the RX-pipe
            # stage and the host-core grant stay stepwise — the core
            # reservation at RX-done and the fixed-budget start at
            # handler-done are both contended instants.
            yield self._wire.transfer_then(
                req_size + self.params.per_op_wire_bytes, prop)
            yield target._rx_pipe.transfer(0)
            yield target.host_cores.execute(
                target.host_rpc_handle_us + handler_ref_us
            )
            result = on_target() if on_target is not None else None
            yield self.sim.timeout(self._fixed[SEND])
            yield target._wire.transfer_then(
                resp_size + self.params.per_op_wire_bytes, prop)
            self.inflight -= 1
            done.succeed(result)
            return
        yield from self._transient_failures(SEND)
        yield self._wire.transfer(req_size + self.params.per_op_wire_bytes)
        yield self.sim.timeout(prop)
        yield target._rx_pipe.transfer(0)
        # Host CPU polls, handles the buffer, runs the handler, posts reply.
        yield target.host_cores.execute(
            target.host_rpc_handle_us + handler_ref_us
        )
        result = on_target() if on_target is not None else None
        yield self.sim.timeout(self._fixed[SEND])
        yield target._wire.transfer(resp_size + self.params.per_op_wire_bytes)
        yield self.sim.timeout(self.params.propagation_us)
        self.inflight -= 1
        done.succeed(result)
