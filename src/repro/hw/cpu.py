"""Core-group model: n identical cores executing work items with queueing.

Compute costs throughout the reproduction are expressed in *reference
microseconds* — the time the work takes on one host Xeon thread with all
cores active.  A :class:`CoreGroup` built from NIC ARM parameters stretches
those costs by the Coremark-derived speed ratio (Table 1), which is how the
"wimpy cores" effect enters every experiment.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from ..sim.core import Event, Simulator, Timeout
from ..sim.fusion import fusion_enabled
from ..sim.resources import Resource
from .params import CpuParams, XEON_GOLD_5218

__all__ = ["CoreGroup"]


class CoreGroup:
    """A pool of cores with FIFO dispatch.

    ``execute(ref_us)`` runs a job costing ``ref_us`` reference-Xeon
    microseconds; the returned event fires when the job completes (queueing
    + scaled service time).
    """

    def __init__(
        self,
        sim: Simulator,
        params: CpuParams,
        cores: Optional[int] = None,
        reference: CpuParams = XEON_GOLD_5218,
        name: str = "",
    ):
        self.sim = sim
        self.params = params
        self.cores = cores if cores is not None else params.cores
        if self.cores < 1:
            raise ValueError("need at least one core")
        self.name = name or params.name
        self.pool = Resource(sim, self.cores, name=self.name)
        self._job_name = "%s.job" % self.name
        self._exec_name = "%s.exec" % self.name
        # scale factor: >1 means these cores are slower than the reference
        self.slowdown = reference.coremark_per_thread / params.coremark_per_thread
        self.jobs_executed = 0
        self.busy_us = 0.0
        # Delay fusion (REPRO_FUSION): fire-and-forget charges become
        # virtual occupancies on the pool (no release event).
        self._fused = fusion_enabled()
        # Observability hook (repro.obs): when attached, each job emits a
        # per-core span.  None keeps the hot path to a single branch.
        self.obs_sink = None
        self._obs_node = 0
        self._obs_track = self.name
        self._obs_free: list = []

    def attach_obs(self, sink, node: int, track: str) -> None:
        """Attach an observability sink; jobs are attributed to logical
        core slots ``track.c<i>`` (lowest free slot first)."""
        self.obs_sink = sink
        self._obs_node = node
        self._obs_track = track
        self._obs_free = list(range(self.cores))

    def detach_obs(self) -> None:
        self.obs_sink = None

    def service_us(self, ref_us: float) -> float:
        """Wall time on one of these cores for a reference-cost job."""
        return ref_us * self.slowdown

    def execute(self, ref_us: float) -> Event:
        """Queue a job; event fires on completion."""
        done = Event(self.sim, self._job_name)
        self.sim.spawn(self._run(ref_us, done), name=self._exec_name)
        return done

    def execute_wall(self, wall_us: float) -> Event:
        """Queue a job whose cost is given in *these cores'* wall time
        (e.g. NIC handler costs measured on the NIC itself, §3.3)."""
        return self.execute(wall_us / self.slowdown)

    def charge_wall(self, wall_us: float) -> None:
        """Fire-and-forget :meth:`execute_wall`: occupy a core for
        ``wall_us`` with no completion event handed back.

        Queueing semantics match ``execute_wall`` exactly — when all cores
        are busy the charge waits its FIFO turn — but the free-core case
        runs without a Process or a done event (one Timeout instead of
        four heap entries).  Under delay fusion the release event goes
        too: the pool tracks the slot as a virtual occupancy expiring at
        the same instant the stepwise release Timeout would have fired
        (``Resource.charge_until``), so the uncontended charge costs zero
        events.  Falls back to ``execute_wall`` when an observability
        sink is attached so per-core spans stay complete."""
        if self.obs_sink is not None or not self.pool.try_acquire():
            self.execute_wall(wall_us)
            return
        self.jobs_executed += 1
        self.busy_us += wall_us
        if wall_us > 0:
            if self._fused:
                self.pool.charge_until(self.sim._now + wall_us)
            else:
                Timeout(self.sim, wall_us).add_callback(self._release_cb)
        else:
            self.pool.release()

    def _release_cb(self, _ev: Event) -> None:
        self.pool.release()

    def run_wall(self, wall_us: float):
        """Generator form of :meth:`execute_wall`."""
        return self.run(wall_us / self.slowdown)

    def _run(self, ref_us: float, done: Event):
        if not self.pool.try_acquire():
            yield self.pool.acquire()
        sink = self.obs_sink
        slot = heappop(self._obs_free) if (sink is not None and self._obs_free) else None
        start = self.sim.now
        try:
            service = self.service_us(ref_us)
            self.jobs_executed += 1
            self.busy_us += service
            if service > 0:
                yield self.sim.timeout(service)
        finally:
            if sink is not None:
                sink.core_job(self._obs_node, self._obs_track, slot,
                              start, self.sim.now)
                if slot is not None:
                    heappush(self._obs_free, slot)
            self.pool.release()
        done.succeed()

    def run(self, ref_us: float):
        """Generator form for use inside a process: ``yield from cores.run(w)``."""
        if not self.pool.try_acquire():
            yield self.pool.acquire()
        sink = self.obs_sink
        if sink is None:
            # Hot path: no span bookkeeping, no try/finally frame setup
            # beyond the one needed for correct release on interrupt.
            service = ref_us * self.slowdown
            self.jobs_executed += 1
            self.busy_us += service
            try:
                if service > 0:
                    yield Timeout(self.sim, service)
            finally:
                self.pool.release()
            return
        slot = heappop(self._obs_free) if self._obs_free else None
        start = self.sim.now
        try:
            service = self.service_us(ref_us)
            self.jobs_executed += 1
            self.busy_us += service
            if service > 0:
                yield self.sim.timeout(service)
        finally:
            sink.core_job(self._obs_node, self._obs_track, slot,
                          start, self.sim.now)
            if slot is not None:
                heappush(self._obs_free, slot)
            self.pool.release()

    def utilization(self, since: float = 0.0) -> float:
        return self.pool.utilization(since)

    def reset_utilization(self) -> None:
        self.pool.reset_utilization()
