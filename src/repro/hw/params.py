"""Hardware parameters measured in the paper's §3 characterization.

Every constant in this module is traceable to a specific measurement in the
paper (section references inline).  These numbers parameterize the
simulated devices; the transaction systems never embed latency constants
directly — they always go through a :class:`HardwareParams` bundle, so the
sensitivity of results to any one constant can be probed by overriding it.

All times are microseconds, sizes bytes, rates Gbit/s unless noted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "CpuParams",
    "DmaParams",
    "EthernetParams",
    "RdmaParams",
    "SmartNicParams",
    "HostParams",
    "OffPathParams",
    "HardwareParams",
    "XEON_GOLD_5218",
    "LIQUIDIO3_CPU",
    "LIQUIDIO3_DMA",
    "LIQUIDIO3_ETH",
    "CX5_RDMA",
    "LIQUIDIO3",
    "HOST",
    "BLUEFIELD_OFFPATH",
    "STINGRAY_OFFPATH",
    "TESTBED",
    "testbed_params",
]


@dataclass(frozen=True)
class CpuParams:
    """A group of identical cores.

    ``coremark_per_thread`` values come from Table 1 and normalize compute
    costs across the host Xeon and NIC ARM cores: a task costing ``w`` µs
    on the reference Xeon costs ``w / relative_speed`` on these cores.
    """

    name: str
    cores: int
    freq_ghz: float
    coremark_per_thread: float  # all-cores-active per-thread score (Table 1)
    coremark_single: float  # single-thread score (Table 1)

    def relative_speed(self, reference: "CpuParams") -> float:
        """Per-thread speed relative to ``reference`` with all cores active."""
        return self.coremark_per_thread / reference.coremark_per_thread


@dataclass(frozen=True)
class DmaParams:
    """LiquidIO PCIe DMA engine characteristics (§3.5, Figure 4)."""

    queues: int = 8  # hardware request queues
    max_vector: int = 15  # reads/writes per vectored submission
    submission_us: float = 0.190  # per-submission cost, amortized by vectors
    read_completion_us: float = 1.295  # typical completion latency, reads
    write_completion_us: float = 0.570  # typical completion latency, writes
    max_ops_per_us: float = 8.7  # hardware ceiling, Mops/s == ops/us
    pcie_bandwidth_gbps: float = 63.0  # PCIe 3.0 x8 usable


@dataclass(frozen=True)
class EthernetParams:
    """Wire model for a NIC port (or bonded ports)."""

    bandwidth_gbps: float = 100.0  # 2 x 50GbE bonded (testbed, §5)
    # Per-packet processing/framing overhead.  Calibrated against §3.4:
    # unbatched remote writes measure 9.0-10.4 Mops/s regardless of target
    # memory, i.e. the sender's per-packet path is the bottleneck at ~0.1us.
    per_packet_overhead_us: float = 0.100
    per_packet_header_bytes: int = 50  # Eth+IP+UDP headers per wire packet
    propagation_us: float = 0.85  # one-way switch + wire latency
    mtu_bytes: int = 9000  # jumbo frames; caps gather-list size


@dataclass(frozen=True)
class RdmaParams:
    """Mellanox CX5 RDMA NIC model (§2.1, §3.2, §3.4).

    RTTs are end-to-end medians from Figure 2(b) at 256 B; the ops/s
    ceiling is the doorbell-batched small-write limit from §3.4.
    """

    read_rtt_us: float = 3.0  # one-sided READ roundtrip
    write_rtt_us: float = 3.5  # one-sided WRITE roundtrip (§3.1 text)
    atomic_rtt_us: float = 3.9  # one-sided CAS/FAA roundtrip
    rpc_rtt_us: float = 5.6  # two-sided SEND/RECV RPC (DrTM+H framework)
    max_ops_per_us: float = 15.0  # 13.5-15.0 Mops/s doorbell-batched (§3.4)
    per_op_wire_bytes: int = 66  # RoCE per-op header overhead
    bandwidth_gbps: float = 100.0
    propagation_us: float = 0.85


@dataclass(frozen=True)
class SmartNicParams:
    """Marvell LiquidIO 3 CN3380 on-path SmartNIC (§3, §5)."""

    cpu: CpuParams = field(default_factory=lambda: LIQUIDIO3_CPU)
    dma: DmaParams = field(default_factory=lambda: LIQUIDIO3_DMA)
    eth: EthernetParams = field(default_factory=lambda: LIQUIDIO3_ETH)
    dram_bytes: int = 16 << 30  # 16 GB on-board DDR4
    # Per-message handling cost on a NIC core, from §3.3: 71.8 Mops/s
    # over 16 threads -> 0.223 us per RPC per thread.
    rpc_handle_us: float = 16.0 / 71.8
    # NIC-local DRAM access adds negligible latency relative to PCIe.
    local_dram_us: float = 0.10
    # Host <-> NIC PCIe message hand-off (coordinator-side crossing):
    # host DPDK submit + PCIe + NIC pickup.  Derived from Figure 2(a):
    # ops initiated from the host cost ~2.5us more than from the NIC.
    pcie_crossing_us: float = 1.25


@dataclass(frozen=True)
class HostParams:
    """Host server (§5 testbed)."""

    cpu: CpuParams = field(default_factory=lambda: XEON_GOLD_5218)
    dram_bytes: int = 96 << 30
    # Per-message handling cost of a host DPDK RPC thread, from §3.3:
    # 23.0 Mops/s over 16 threads -> 0.696 us per RPC per thread.
    rpc_handle_us: float = 16.0 / 23.0
    # Extra latency of traversing the host network stack vs NIC handling
    # (Figure 2: Host RPC sits well above NIC RPC).
    rpc_stack_us: float = 1.5


@dataclass(frozen=True)
class OffPathParams:
    """Off-path SmartNIC latency measurements (§3.1)."""

    name: str = "bluefield"
    remote_to_host_write_us: float = 3.5  # RDMA write to host memory
    remote_to_soc_write_us: float = 4.5  # remote write to SoC memory
    soc_to_host_write_us: float = 5.1  # local SoC write to host memory


XEON_GOLD_5218 = CpuParams(
    name="xeon-gold-5218",
    cores=32,  # 16 cores, 32 hyperthreads
    freq_ghz=2.3,
    coremark_per_thread=14771.0,  # Table 1, multi
    coremark_single=29193.0,  # Table 1, single
)

LIQUIDIO3_CPU = CpuParams(
    name="liquidio3-arm",
    cores=24,
    freq_ghz=2.2,
    coremark_per_thread=4530.0,  # Table 1, multi
    coremark_single=14294.0,  # Table 1, single
)

LIQUIDIO3_DMA = DmaParams()
LIQUIDIO3_ETH = EthernetParams()
CX5_RDMA = RdmaParams()

LIQUIDIO3 = SmartNicParams()
HOST = HostParams()

BLUEFIELD_OFFPATH = OffPathParams(
    name="bluefield-1m322a",
    remote_to_host_write_us=3.5,
    remote_to_soc_write_us=4.5,
    soc_to_host_write_us=5.1,
)

STINGRAY_OFFPATH = OffPathParams(
    name="stingray-ps225",
    remote_to_host_write_us=7.6,
    remote_to_soc_write_us=8.5,  # figure quoted as "8.5us from the local SoC"
    soc_to_host_write_us=8.5,
)

# Coremark-normalized NIC/host per-thread ratio used in Table 3 (§5.6).
NIC_HOST_CORE_RATIO = LIQUIDIO3_CPU.coremark_per_thread / XEON_GOLD_5218.coremark_per_thread


@dataclass(frozen=True)
class HardwareParams:
    """The full per-server hardware bundle used to build simulated nodes."""

    host: HostParams = field(default_factory=lambda: HOST)
    nic: SmartNicParams = field(default_factory=lambda: LIQUIDIO3)
    rdma: RdmaParams = field(default_factory=lambda: CX5_RDMA)

    def with_network_gbps(self, gbps: float) -> "HardwareParams":
        """Derive a bundle with a different wire bandwidth (e.g. the single
        50 Gbps link used for the DrTM+R comparison in §5.3)."""
        return replace(
            self,
            nic=replace(self.nic, eth=replace(self.nic.eth, bandwidth_gbps=gbps)),
            rdma=replace(self.rdma, bandwidth_gbps=gbps),
        )


TESTBED = HardwareParams()


def testbed_params(network_gbps: float = 100.0) -> HardwareParams:
    """The §5 testbed bundle, optionally at a reduced link speed."""
    if network_gbps == 100.0:
        return TESTBED
    return TESTBED.with_network_gbps(network_gbps)
