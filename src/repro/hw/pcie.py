"""Host <-> SmartNIC PCIe message channel (coordinator hand-off path).

Distinct from the DMA engine (which moves data store bytes), this channel
models the PCIe TX/RX queue crossing that carries transaction state between
the host coordinator application and the NIC firmware (§4.2 step 1/3, the
"PCIe RX/TX" path in Figure 6).  Crossings are batched the same way as
Ethernet output when Xenic's aggregation is enabled.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.core import Simulator
from ..sim.link import BatchingLink
from .params import DmaParams

__all__ = ["PcieChannel"]

_HOST = "host"
_NIC = "nic"


class PcieChannel:
    """Bidirectional host<->NIC message path over the PCIe interface."""

    def __init__(
        self,
        sim: Simulator,
        crossing_us: float,
        bandwidth_gbps: float = None,
        deliver_to_host: Callable[[Any], None] = None,
        deliver_to_nic: Callable[[Any], None] = None,
        aggregation: bool = True,
        name: str = "pcie",
    ):
        self.sim = sim
        self.crossing_us = crossing_us
        bw = bandwidth_gbps if bandwidth_gbps is not None else DmaParams().pcie_bandwidth_gbps
        self._deliver_to_host = deliver_to_host
        self._deliver_to_nic = deliver_to_nic
        # The crossing cost is mostly *latency* (DPDK submit + PCIe + pickup
        # at the other side), not queue occupancy: transfers pipeline.  A
        # small per-transfer overhead models the doorbell/descriptor work.
        self._link = BatchingLink(
            sim,
            bandwidth_gbps=bw,
            overhead_us=0.10,
            propagation_us=max(0.0, crossing_us - 0.10),
            deliver=self._deliver,
            aggregation=aggregation,
            max_batch_bytes=32768,
            name=name,
        )
        self.to_nic_count = 0
        self.to_host_count = 0

    def set_handlers(
        self,
        deliver_to_host: Callable[[Any], None],
        deliver_to_nic: Callable[[Any], None],
    ) -> None:
        self._deliver_to_host = deliver_to_host
        self._deliver_to_nic = deliver_to_nic

    def host_to_nic(self, nbytes: int, payload: Any) -> None:
        self.to_nic_count += 1
        self._link.send(_NIC, nbytes, payload)

    def nic_to_host(self, nbytes: int, payload: Any) -> None:
        self.to_host_count += 1
        self._link.send(_HOST, nbytes, payload)

    def _deliver(self, dest: str, payloads) -> None:
        if dest == _NIC:
            if self._deliver_to_nic is None:
                raise RuntimeError("no NIC-side handler set")
            for payload in payloads:
                self._deliver_to_nic(payload)
        else:
            if self._deliver_to_host is None:
                raise RuntimeError("no host-side handler set")
            for payload in payloads:
                self._deliver_to_host(payload)

    @property
    def mean_batch(self) -> float:
        return self._link.mean_batch
