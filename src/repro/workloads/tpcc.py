"""TPC-C benchmark (§5.2, §5.3).

Nine tables.  WAREHOUSE / DISTRICT / CUSTOMER / STOCK live in the
replicated hash stores (these are the cross-cluster tables); ITEM is a
read-only catalog (modeled as coordinator-local compute); ORDER /
NEW-ORDER / ORDER-LINE / HISTORY are B+ trees local to each coordinator
(§5.2), maintained by the workload and charged as host compute.

Two modes:

* **New-Order only** (``TpccNewOrder``) — DrTM+H's simplified workload:
  only new-order transactions, with item supply warehouses picked
  *uniformly at random* across the cluster ("a strenuous remote access
  pattern", §5.2).
* **Full mix** (``TpccFull``) — the standard five-type mix with
  spec-standard remote fractions (~1% remote per new-order item, 15%
  remote payment customers); throughput is counted as new-order
  transactions per second (~45% of the mix, §5.3).

Scale: the paper runs 72 warehouses/server with full TPC-C table sizes;
defaults here are scaled down (warehouses, stock rows, customers per
warehouse) with the access pattern preserved.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.txn import TxnSpec
from ..sim.rng import RngStream
from ..store.btree import BPlusTree
from .base import Workload, make_key

__all__ = ["TpccNewOrder", "TpccFull"]

# object sizes (bytes); the paper notes "a range of object sizes up to 660B"
WAREHOUSE_BYTES = 89
DISTRICT_BYTES = 96
CUSTOMER_BYTES = 660
STOCK_BYTES = 320

DISTRICTS_PER_WAREHOUSE = 10

# reference-Xeon µs costs of coordinator-local work
ITEM_LOOKUP_US = 0.10  # read-only ITEM catalog access
BTREE_OP_US = 0.35  # one B+ tree insert/lookup
PAYMENT_LOCAL_US = 1.2  # history insert + misc
ORDER_STATUS_US = 2.5  # customer-by-name + order scan
DELIVERY_US = 4.0  # new-order scan + order updates (chopped, per district)
STOCK_LEVEL_US = 3.0  # recent-order scan

FULL_MIX = [
    ("new_order", 45),
    ("payment", 43),
    ("order_status", 4),
    ("delivery", 4),
    ("stock_level", 4),
]


class _TpccBase(Workload):
    value_size = STOCK_BYTES  # dominant remote object
    # TPC-C's B+ tree manipulation is host-compute heavy (§5.6, Table 3):
    # Xenic needs ~18 host threads here, unlike Retwis/Smallbank.
    xenic_app_threads = 12
    xenic_worker_threads = 6
    baseline_host_threads = 32

    def __init__(self, n_nodes: int, warehouses_per_server: int = 8,
                 stock_per_warehouse: int = 2000,
                 customers_per_warehouse: int = 300, seed: int = 1):
        super().__init__(n_nodes, seed)
        self.w_per_server = warehouses_per_server
        self.stock_per_wh = stock_per_warehouse
        self.customers_per_wh = customers_per_warehouse
        self.total_warehouses = warehouses_per_server * n_nodes
        # local-index layout inside each shard
        w = warehouses_per_server
        self._district_base = w
        self._customer_base = self._district_base + w * DISTRICTS_PER_WAREHOUSE
        self._stock_base = (
            self._customer_base + w * customers_per_warehouse
        )
        self._keys_per_shard = self._stock_base + w * stock_per_warehouse
        # coordinator-local B+ trees: node -> table -> tree
        self.order_trees: Dict[int, BPlusTree] = {}
        self.order_line_trees: Dict[int, BPlusTree] = {}
        self._next_order_id: Dict[int, int] = {}

    # -- key layout ------------------------------------------------------------

    def node_of_warehouse(self, wid: int) -> int:
        return wid % self.n_nodes

    def _local_wid(self, wid: int) -> int:
        return wid // self.n_nodes

    def warehouse_key(self, wid: int) -> int:
        return make_key(self.node_of_warehouse(wid), self._local_wid(wid))

    def district_key(self, wid: int, did: int) -> int:
        idx = self._district_base + self._local_wid(wid) * DISTRICTS_PER_WAREHOUSE + did
        return make_key(self.node_of_warehouse(wid), idx)

    def customer_key(self, wid: int, cid: int) -> int:
        idx = self._customer_base + self._local_wid(wid) * self.customers_per_wh + cid
        return make_key(self.node_of_warehouse(wid), idx)

    def stock_key(self, wid: int, item: int) -> int:
        idx = self._stock_base + self._local_wid(wid) * self.stock_per_wh + item
        return make_key(self.node_of_warehouse(wid), idx)

    def keys_per_shard(self) -> int:
        return self._keys_per_shard

    # -- loading ------------------------------------------------------------

    def load(self, cluster) -> None:
        for wid in range(self.total_warehouses):
            cluster.load_key(self.warehouse_key(wid),
                             value={"ytd": 0}, size=WAREHOUSE_BYTES)
            for did in range(DISTRICTS_PER_WAREHOUSE):
                cluster.load_key(self.district_key(wid, did),
                                 value={"next_o_id": 1, "ytd": 0},
                                 size=DISTRICT_BYTES)
            for cid in range(self.customers_per_wh):
                cluster.load_key(self.customer_key(wid, cid),
                                 value={"balance": 0}, size=CUSTOMER_BYTES)
            for item in range(self.stock_per_wh):
                cluster.load_key(self.stock_key(wid, item),
                                 value={"qty": 100}, size=STOCK_BYTES)

    # -- new-order ------------------------------------------------------------

    def _home_warehouse(self, rng: RngStream, node_id: int) -> int:
        return node_id + self.n_nodes * rng.randrange(self.w_per_server)

    def _supply_warehouse(self, rng: RngStream, home_wid: int) -> int:
        raise NotImplementedError

    def new_order_spec(self, rng: RngStream, node_id: int) -> TxnSpec:
        home = self._home_warehouse(rng, node_id)
        did = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        n_items = 5 + rng.randrange(11)  # 5-15 items (§5.2)
        dk = self.district_key(home, did)
        stock_keys: List[int] = []
        seen = set()
        while len(stock_keys) < n_items:
            wid = self._supply_warehouse(rng, home)
            sk = self.stock_key(wid, rng.randrange(self.stock_per_wh))
            if sk not in seen:
                seen.add(sk)
                stock_keys.append(sk)

        def logic(reads, state):
            out = {}
            district = reads.get(dk) or {"next_o_id": 1}
            out[dk] = {"next_o_id": district["next_o_id"] + 1,
                       "ytd": district.get("ytd", 0)}
            for sk in stock_keys:
                stock = reads.get(sk) or {"qty": 100}
                qty = stock["qty"] - 1
                if qty < 10:
                    qty += 91  # restock per the TPC-C rule
                out[sk] = {"qty": qty}
            return out

        # coordinator-local work: ITEM catalog lookups plus ORDER /
        # ORDER-LINE B+ tree inserts
        local_us = n_items * ITEM_LOOKUP_US + (1 + n_items) * BTREE_OP_US

        def post_commit():
            self._insert_order(node_id, home, did, n_items)

        return TxnSpec(
            read_keys=[dk] + stock_keys,
            write_keys=[dk] + stock_keys,
            logic=logic,
            logic_cost_us=0.05 * (1 + n_items),
            local_compute_us=local_us,
            ship_execution=True,  # §5.3: new-order ships to the NIC
            label="new_order",
            post_commit=post_commit,
            # only a few fields of each row change (s_quantity, s_ytd,
            # d_next_o_id): replicate deltas, not whole rows
            write_bytes=24,
        )

    def _insert_order(self, node_id: int, wid: int, did: int, n_items: int) -> None:
        tree = self.order_trees.setdefault(node_id, BPlusTree(order=32))
        lines = self.order_line_trees.setdefault(node_id, BPlusTree(order=32))
        oid = self._next_order_id.get(node_id, 0)
        self._next_order_id[node_id] = oid + 1
        tree.insert((wid, did, oid), {"items": n_items})
        for line in range(n_items):
            lines.insert((wid, did, oid, line), {"qty": 1})


class TpccNewOrder(_TpccBase):
    """DrTM+H's simplified workload: new-order only, uniform-random
    supply warehouses (§5.2)."""

    name = "tpcc_no"

    def _supply_warehouse(self, rng: RngStream, home_wid: int) -> int:
        return rng.randrange(self.total_warehouses)

    def next_spec(self, rng: RngStream, node_id: int) -> TxnSpec:
        return self.new_order_spec(rng, node_id)


class TpccFull(_TpccBase):
    """The standard five-type TPC-C mix (§5.3)."""

    name = "tpcc"

    def _supply_warehouse(self, rng: RngStream, home_wid: int) -> int:
        # spec: 1% of items come from a remote warehouse
        if rng.randrange(100) == 0 and self.total_warehouses > 1:
            while True:
                wid = rng.randrange(self.total_warehouses)
                if wid != home_wid:
                    return wid
        return home_wid

    _mix_table = None

    def next_spec(self, rng: RngStream, node_id: int) -> TxnSpec:
        # 100-entry mix table indexed by the same randrange(100) draw the
        # cumulative scan used (draw-identical, one list index per txn).
        table = self._mix_table
        if table is None:
            table = []
            for kind, pct in FULL_MIX:
                table.extend([getattr(self, "_" + kind)] * pct)
            assert len(table) == 100
            self._mix_table = table
        return table[rng.randrange(100)](rng, node_id)

    def _new_order(self, rng, node_id) -> TxnSpec:
        return self.new_order_spec(rng, node_id)

    def _payment(self, rng, node_id) -> TxnSpec:
        home = self._home_warehouse(rng, node_id)
        did = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        # 15% of payments go to a remote customer (§5.3 / spec)
        if rng.randrange(100) < 15 and self.total_warehouses > 1:
            cust_wid = rng.randrange(self.total_warehouses)
        else:
            cust_wid = home
        wk = self.warehouse_key(home)
        dk = self.district_key(home, did)
        ck = self.customer_key(cust_wid, rng.randrange(self.customers_per_wh))
        amount = 10

        def logic(reads, state):
            w = reads.get(wk) or {"ytd": 0}
            d = reads.get(dk) or {"next_o_id": 1, "ytd": 0}
            c = reads.get(ck) or {"balance": 0}
            return {
                wk: {"ytd": w["ytd"] + amount},
                dk: dict(d, ytd=d.get("ytd", 0) + amount),
                ck: {"balance": c["balance"] - amount},
            }

        return TxnSpec(
            read_keys=[wk, dk, ck], write_keys=[wk, dk, ck], logic=logic,
            logic_cost_us=0.15, local_compute_us=PAYMENT_LOCAL_US,
            ship_execution=True,  # §5.3: payment ships to the NIC
            label="payment",
            write_bytes=16,  # ytd / balance field updates
        )

    def _order_status(self, rng, node_id) -> TxnSpec:
        home = self._home_warehouse(rng, node_id)
        ck = self.customer_key(home, rng.randrange(self.customers_per_wh))
        return TxnSpec(read_keys=[ck], write_keys=[], read_only=True,
                       local_compute_us=ORDER_STATUS_US,
                       ship_execution=False, label="order_status")

    def _delivery(self, rng, node_id) -> TxnSpec:
        # chopped: one district's delivery per database transaction (§5.3)
        home = self._home_warehouse(rng, node_id)
        ck = self.customer_key(home, rng.randrange(self.customers_per_wh))

        def logic(reads, state):
            c = reads.get(ck) or {"balance": 0}
            return {ck: {"balance": c["balance"] + 25}}

        return TxnSpec(read_keys=[ck], write_keys=[ck], logic=logic,
                       logic_cost_us=0.2, local_compute_us=DELIVERY_US,
                       ship_execution=False, label="delivery",
                       write_bytes=16)

    def _stock_level(self, rng, node_id) -> TxnSpec:
        home = self._home_warehouse(rng, node_id)
        did = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(home, did)
        n = min(20, self.stock_per_wh)
        stock_keys = [
            self.stock_key(home, rng.randrange(self.stock_per_wh))
            for _ in range(n)
        ]
        stock_keys = list(dict.fromkeys(stock_keys))
        return TxnSpec(read_keys=[dk] + stock_keys, write_keys=[],
                       read_only=True, local_compute_us=STOCK_LEVEL_US,
                       ship_execution=False, label="stock_level")
