"""Smallbank benchmark (§5.5).

Simple transactions over account balances with 12 B objects: 15%
read-only, up to 3 keys per transaction, and a 90%-of-ops-to-4%-of-keys
hotspot.  The paper deploys 2.4 M accounts per server; the default here is
scaled down (``accounts_per_server``) with the hotspot fractions intact.

Each customer has a checking and a savings account (two keys, same
shard).  Transaction logic is real arithmetic, so the money-conservation
property test can audit serializability end-to-end.
"""

from __future__ import annotations

from ..core.txn import TxnSpec
from ..sim.rng import HotspotGenerator, RngStream
from .base import Workload, make_key

__all__ = ["Smallbank"]

VALUE_SIZE = 12
INITIAL_BALANCE = 1000

# standard Smallbank mix (H-Store): send_payment is the 2-customer txn
MIX = [
    ("balance", 15),
    ("deposit_checking", 15),
    ("transact_savings", 15),
    ("amalgamate", 15),
    ("write_check", 15),
    ("send_payment", 25),
]


class Smallbank(Workload):
    name = "smallbank"
    value_size = VALUE_SIZE

    def __init__(self, n_nodes: int, accounts_per_server: int = 20000,
                 hot_keys_fraction: float = 0.04,
                 hot_ops_fraction: float = 0.90, seed: int = 1):
        super().__init__(n_nodes, seed)
        self.accounts_per_server = accounts_per_server
        self.total_accounts = accounts_per_server * n_nodes
        self.hot_keys_fraction = hot_keys_fraction
        self.hot_ops_fraction = hot_ops_fraction
        self._pickers = {}
        # 100-entry mix table indexed by the same randrange(100) draw the
        # cumulative scan used, replacing the scan + getattr dispatch
        # with one list index (draw-identical).
        self._mix_table = []
        for kind, pct in MIX:
            self._mix_table.extend([getattr(self, "_" + kind)] * pct)
        assert len(self._mix_table) == 100

    # -- keyspace ------------------------------------------------------------

    def checking_key(self, customer: int) -> int:
        shard = customer % self.n_nodes
        return make_key(shard, (customer // self.n_nodes) * 2)

    def savings_key(self, customer: int) -> int:
        shard = customer % self.n_nodes
        return make_key(shard, (customer // self.n_nodes) * 2 + 1)

    def keys_per_shard(self) -> int:
        return self.accounts_per_server * 2

    def load(self, cluster) -> None:
        for customer in range(self.total_accounts):
            cluster.load_key(self.checking_key(customer),
                             value=INITIAL_BALANCE, size=VALUE_SIZE)
            cluster.load_key(self.savings_key(customer),
                             value=INITIAL_BALANCE, size=VALUE_SIZE)

    def _customer(self, rng: RngStream) -> int:
        picker = self._pickers.get(rng.name)
        if picker is None:
            picker = HotspotGenerator(
                self.total_accounts, self.hot_keys_fraction,
                self.hot_ops_fraction, rng,
            )
            self._pickers[rng.name] = picker
        return picker.next()

    # -- transactions ------------------------------------------------------------

    def next_spec(self, rng: RngStream, node_id: int) -> TxnSpec:
        return self._mix_table[rng.randrange(100)](rng)

    def _balance(self, rng) -> TxnSpec:
        c = self._customer(rng)
        return TxnSpec(
            read_keys=[self.checking_key(c), self.savings_key(c)],
            write_keys=[], read_only=True, logic_cost_us=0.05,
            label="balance",
        )

    def _deposit_checking(self, rng) -> TxnSpec:
        c = self._customer(rng)
        ck = self.checking_key(c)
        amount = 10

        def logic(reads, state):
            return {ck: (reads[ck] or 0) + amount}

        return TxnSpec(read_keys=[ck], write_keys=[ck], logic=logic,
                       logic_cost_us=0.05, label="deposit_checking")

    def _transact_savings(self, rng) -> TxnSpec:
        c = self._customer(rng)
        sk = self.savings_key(c)
        amount = 20

        def logic(reads, state):
            return {sk: (reads[sk] or 0) + amount}

        return TxnSpec(read_keys=[sk], write_keys=[sk], logic=logic,
                       logic_cost_us=0.05, label="transact_savings")

    def _amalgamate(self, rng) -> TxnSpec:
        c1 = self._customer(rng)
        c2 = self._customer(rng)
        if c2 == c1:
            c2 = (c1 + 1) % self.total_accounts
        ck1, sk1 = self.checking_key(c1), self.savings_key(c1)
        ck2 = self.checking_key(c2)

        def logic(reads, state):
            moved = (reads[ck1] or 0) + (reads[sk1] or 0)
            return {ck1: 0, sk1: 0, ck2: (reads[ck2] or 0) + moved}

        return TxnSpec(read_keys=[ck1, sk1, ck2],
                       write_keys=[ck1, sk1, ck2], logic=logic,
                       logic_cost_us=0.08, label="amalgamate")

    def _write_check(self, rng) -> TxnSpec:
        c = self._customer(rng)
        ck, sk = self.checking_key(c), self.savings_key(c)
        amount = 5

        def logic(reads, state):
            total = (reads[ck] or 0) + (reads[sk] or 0)
            fee = 1 if total < amount else 0
            return {ck: (reads[ck] or 0) - amount - fee}

        return TxnSpec(read_keys=[ck, sk], write_keys=[ck], logic=logic,
                       logic_cost_us=0.05, label="write_check")

    def _send_payment(self, rng) -> TxnSpec:
        c1 = self._customer(rng)
        c2 = self._customer(rng)
        if c2 == c1:
            c2 = (c1 + 1) % self.total_accounts
        ck1, ck2 = self.checking_key(c1), self.checking_key(c2)
        amount = 5

        def logic(reads, state):
            bal1 = reads[ck1] or 0
            if bal1 < amount:
                return {ck1: bal1, ck2: reads[ck2] or 0}  # insufficient funds
            return {ck1: bal1 - amount, ck2: (reads[ck2] or 0) + amount}

        return TxnSpec(read_keys=[ck1, ck2], write_keys=[ck1, ck2],
                       logic=logic, logic_cost_us=0.05, label="send_payment")

    # -- invariants ------------------------------------------------------------

    def total_money(self, cluster) -> int:
        """Sum of all balances from the authoritative committed state.
        ``send_payment`` and ``amalgamate`` conserve money; deposits add a
        known amount, used by the conservation test."""
        total = 0
        for customer in range(self.total_accounts):
            for key in (self.checking_key(customer), self.savings_key(customer)):
                value = cluster.read_committed_value(key)
                total += value if value is not None else 0
        return total
