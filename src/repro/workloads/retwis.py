"""Retwis benchmark (§5.4): a Twitter-clone transaction mix.

50% read-only transactions, 1-10 keys per transaction, 64 B values,
Zipf α=0.5 access skew over 1 M keys per server (scaled by default).
The mix follows the TAPIR/Meerkat Retwis workloads the paper cites:
add_user 5%, follow 15%, post_tweet 30%, get_timeline 50%.

Minimal coordinator-side computation is involved (§5.4), so Xenic ships
all execution to the NIC.
"""

from __future__ import annotations

from ..core.txn import TxnSpec
from ..sim.rng import RngStream, ZipfGenerator
from .base import Workload, make_key

__all__ = ["Retwis"]

VALUE_SIZE = 64
ZIPF_ALPHA = 0.5

MIX = [
    ("add_user", 5),
    ("follow", 15),
    ("post_tweet", 30),
    ("get_timeline", 50),
]


class Retwis(Workload):
    name = "retwis"
    value_size = VALUE_SIZE

    def __init__(self, n_nodes: int, keys_per_server: int = 50000,
                 seed: int = 1):
        super().__init__(n_nodes, seed)
        self.keys_per_server = keys_per_server
        self.total_keys = keys_per_server * n_nodes
        self._zipfs = {}
        # 100-entry mix table indexed by the same randrange(100) draw the
        # cumulative scan used (draw-identical, one list index per txn).
        self._mix_table = []
        for kind, pct in MIX:
            self._mix_table.extend([getattr(self, "_" + kind)] * pct)
        assert len(self._mix_table) == 100

    def key_at(self, rank: int) -> int:
        """Map a popularity rank to a key spread round-robin over shards,
        so hot keys are distributed across the cluster."""
        shard = rank % self.n_nodes
        return make_key(shard, rank // self.n_nodes)

    def keys_per_shard(self) -> int:
        return self.keys_per_server

    def load(self, cluster) -> None:
        for rank in range(self.total_keys):
            cluster.load_key(self.key_at(rank), value=("data", rank),
                             size=VALUE_SIZE)

    def _pick_keys(self, rng: RngStream, n: int):
        zipf = self._zipfs.get(rng.name)
        if zipf is None:
            zipf = ZipfGenerator(self.total_keys, ZIPF_ALPHA, rng)
            self._zipfs[rng.name] = zipf
        nxt = zipf.next
        key_at = self.key_at
        keys = []
        seen = set()
        add = seen.add
        append = keys.append
        while len(keys) < n:
            k = key_at(nxt())
            if k not in seen:
                add(k)
                append(k)
        return keys

    def next_spec(self, rng: RngStream, node_id: int) -> TxnSpec:
        return self._mix_table[rng.randrange(100)](rng)

    def _add_user(self, rng) -> TxnSpec:
        keys = self._pick_keys(rng, 3)
        read = keys[:1]
        write = keys

        def logic(reads, state):
            return {k: ("user", k) for k in write}

        return TxnSpec(read_keys=read, write_keys=write, logic=logic,
                       logic_cost_us=0.10, label="add_user")

    def _follow(self, rng) -> TxnSpec:
        keys = self._pick_keys(rng, 2)

        def logic(reads, state):
            return {k: ("follow", reads.get(k)) for k in keys}

        return TxnSpec(read_keys=keys, write_keys=keys, logic=logic,
                       logic_cost_us=0.10, label="follow")

    def _post_tweet(self, rng) -> TxnSpec:
        keys = self._pick_keys(rng, 5)
        read = keys[:3]
        write = keys[:3] + keys[3:]

        def logic(reads, state):
            return {k: ("tweet", k) for k in write}

        return TxnSpec(read_keys=read, write_keys=write, logic=logic,
                       logic_cost_us=0.15, label="post_tweet")

    def _get_timeline(self, rng) -> TxnSpec:
        n = 1 + rng.randrange(10)
        keys = self._pick_keys(rng, n)
        return TxnSpec(read_keys=keys, write_keys=[], read_only=True,
                       logic_cost_us=0.05, label="get_timeline")
