"""Workload interface shared by the benchmark suites.

A workload owns the keyspace layout (including the key→shard partition),
loads the initial database into a cluster, and generates :class:`TxnSpec`s
for coordinator threads.  The same workload object drives Xenic and every
baseline, which is what makes the Figure 8 comparisons apples-to-apples.

Scale note: the paper's full datasets (e.g. 2.4 M Smallbank accounts per
server) are larger than a pure-Python table can hold comfortably; every
workload takes a ``scale`` knob and defaults to a reduced keyspace.  The
access *distributions* (Zipf exponents, hotspot fractions, remote-access
probabilities, keys per transaction) are kept exactly as specified, so
contention and communication patterns are preserved.
"""

from __future__ import annotations

import abc
from typing import Iterable

from ..core.txn import TxnSpec
from ..sim.rng import RngStream

__all__ = ["Workload", "SHARD_STRIDE", "make_key", "shard_of_key"]

# Keys are laid out as shard * SHARD_STRIDE + local_index, so the partition
# function is a shift and any shard can hold up to 4M keys.
SHARD_STRIDE = 1 << 22


def make_key(shard: int, local_index: int) -> int:
    if not 0 <= local_index < SHARD_STRIDE:
        raise ValueError("local index out of range: %d" % local_index)
    return shard * SHARD_STRIDE + local_index


def shard_of_key(key: int) -> int:
    return key // SHARD_STRIDE


class Workload(abc.ABC):
    """Base class for benchmark workloads."""

    name = "workload"
    value_size = 64  # representative object size for message accounting
    # Table 3-style provisioning hints: how many host threads each system
    # needs for this workload (Xenic splits app/worker; baselines pool).
    xenic_app_threads = 2
    xenic_worker_threads = 3
    baseline_host_threads = 16

    def __init__(self, n_nodes: int, seed: int = 1):
        self.n_nodes = n_nodes
        self.rng = RngStream(seed, self.name)

    # -- cluster construction ----------------------------------------------

    def partition(self, key: int) -> int:
        return shard_of_key(key)

    @abc.abstractmethod
    def keys_per_shard(self) -> int:
        """Upper bound on keys stored per shard (sizes the hash tables)."""

    @abc.abstractmethod
    def load(self, cluster) -> None:
        """Populate the cluster's replicated stores."""

    # -- transaction generation ----------------------------------------------

    @abc.abstractmethod
    def next_spec(self, rng: RngStream, node_id: int) -> TxnSpec:
        """Generate the next transaction for a coordinator on ``node_id``."""

    def generator_for(self, node_id: int, stream: str) -> "SpecStream":
        return SpecStream(self, node_id, self.rng.split("%s/%d" % (stream, node_id)))


class SpecStream:
    """Per-coordinator-context stream of transaction specs."""

    def __init__(self, workload: Workload, node_id: int, rng: RngStream):
        self.workload = workload
        self.node_id = node_id
        self.rng = rng

    def next(self) -> TxnSpec:
        return self.workload.next_spec(self.rng, self.node_id)

    def __iter__(self) -> Iterable[TxnSpec]:
        while True:
            yield self.next()
