"""Benchmark workloads: TPC-C, Retwis, Smallbank (§5.2-§5.5)."""

from .base import SHARD_STRIDE, SpecStream, Workload, make_key, shard_of_key
from .retwis import Retwis
from .smallbank import Smallbank
from .tpcc import TpccFull, TpccNewOrder

WORKLOADS = {
    "tpcc_no": TpccNewOrder,
    "tpcc": TpccFull,
    "retwis": Retwis,
    "smallbank": Smallbank,
}

__all__ = [
    "Workload",
    "SpecStream",
    "make_key",
    "shard_of_key",
    "SHARD_STRIDE",
    "TpccNewOrder",
    "TpccFull",
    "Retwis",
    "Smallbank",
    "WORKLOADS",
]
