"""Baseline transaction systems over the RDMA NIC model (§5.1)."""

from .common import BaselineCluster, BaselineCoordinator, BaselineNode
from .drtmh import DrTMH, DrTMH_NC
from .drtmr import DrTMR
from .fasst import FaSST

SYSTEMS = {
    "drtmh": DrTMH,
    "drtmh_nc": DrTMH_NC,
    "fasst": FaSST,
    "drtmr": DrTMR,
}

__all__ = [
    "BaselineCluster",
    "BaselineCoordinator",
    "BaselineNode",
    "DrTMH",
    "DrTMH_NC",
    "FaSST",
    "DrTMR",
    "SYSTEMS",
]
