"""DrTM+R baseline (§2.2.2): all-one-sided, lock-everything design.

Remote locking uses one-sided ATOMIC compare-and-swap; instead of
optimistic reads plus validation, the coordinator locks *every* key in
the transaction (reads included), reads values under lock, logs with
one-sided WRITEs, and commits with a WRITE of the value followed by an
ATOMIC unlock per key.  No validation phase exists.  The extra per-key
verbs are the cost that Figure 8 exposes.
"""

from __future__ import annotations

from .common import BaselineCoordinator, HOST_PER_KEY_US

__all__ = ["DrTMR"]


class DrTMR(BaselineCoordinator):
    """Lock-all one-sided coordinator."""

    name = "drtmr"

    # -- EXECUTE: CAS-lock every key, then READ each value --------------------

    def _remote_execute(self, txn, shard, rkeys, wkeys):
        all_keys = list(dict.fromkeys(rkeys + wkeys))
        target = self._rdma_to(shard)
        # CAS-lock every key (doorbell-batched in parallel)
        cas_evs = []
        for k in all_keys:
            def cas(k=k):
                obj = self._primary_obj(shard, k)
                if obj is None or not obj.try_lock(txn.txn_id):
                    return None
                return obj.version

            yield from self._issue()
            cas_evs.append(self.node.rdma.atomic(target, 8, on_target=cas))
        versions = yield self.sim.all_of(cas_evs)
        failed = [k for k, v in zip(all_keys, versions) if v is None]
        for k, v in zip(all_keys, versions):
            if v is not None:
                txn.record_lock(shard, k)
                txn.read_values[k] = (None, v)
        if failed:
            self.stats.inc("lock_conflicts")
            return False
        # READ each value under lock, in parallel
        read_evs = []
        for k in rkeys:
            def observe(k=k):
                obj = self._primary_obj(shard, k)
                return obj.value if obj is not None else None

            yield from self._issue()
            read_evs.append(self.node.rdma.read(
                target, self._obj_bytes(shard, k), on_target=observe
            ))
        if read_evs:
            values = yield self.sim.all_of(read_evs)
            for k, value in zip(rkeys, values):
                txn.read_values[k] = (value, txn.read_values[k][1])
        return True

    def _local_execute(self, txn, shard, rkeys, wkeys):
        """DrTM+R locks local keys too (via HTM on real hardware)."""
        all_keys = list(dict.fromkeys(rkeys + wkeys))
        yield from self.node.host_cores.run_wall(
            HOST_PER_KEY_US * max(1, len(all_keys))
        )
        for k in all_keys:
            obj = self._primary_obj(shard, k)
            if obj is None or not obj.try_lock(txn.txn_id):
                self.stats.inc("lock_conflicts")
                return False
            txn.record_lock(shard, k)
            txn.read_values[k] = (obj.value, obj.version)
        return True

    # -- VALIDATE: none (everything is locked) --------------------------------

    def _validate_phase(self, txn):
        return True
        yield  # pragma: no cover

    # -- COMMIT: WRITE value + ATOMIC unlock per key --------------------------

    def _remote_commit(self, txn, shard, writes):
        evs = [
            self.sim.spawn(self._commit_one(txn, shard, k, v), name="cmt1")
            for k, v in writes.items()
        ]
        for _ in evs:
            yield from self._issue()
            yield from self._issue()
        yield self.sim.all_of(evs)
        # release read locks on this shard (keys locked but not written)
        yield from self._unlock_read_keys(txn, shard, exclude=set(writes))

    def _commit_one(self, txn, shard, k, v):
        target = self._rdma_to(shard)
        # DrTM+R writes back the updated fields plus the version word

        def apply():
            table = self.cluster.nodes[shard].tables[shard]
            obj = table.get_object(k)
            if obj is None:
                from ..store.object import VersionedObject

                obj = VersionedObject(k, value=v,
                                      size=self.cluster.value_size)
                table.insert(k, obj)
                obj.lock_owner = txn.txn_id
            obj.commit_write(v)
            return True

        yield self.node.rdma.write(
            target, self._write_bytes(txn) + 16, on_target=apply
        )

        def unlock():
            obj = self._primary_obj(shard, k)
            if obj is not None and obj.lock_owner == txn.txn_id:
                obj.unlock(txn.txn_id)
            return True

        yield self.node.rdma.atomic(target, 8, on_target=unlock)

    def _unlock_read_keys(self, txn, shard, exclude):
        keys = [k for k in txn.locked.get(shard, []) if k not in exclude]
        target = self._rdma_to(shard)
        for k in keys:
            def unlock(k=k):
                obj = self._primary_obj(shard, k)
                if obj is not None and obj.lock_owner == txn.txn_id:
                    obj.unlock(txn.txn_id)
                return True

            if shard == self.node.node_id:
                unlock()
                continue
            yield from self._issue()
            yield self.node.rdma.atomic(target, 8, on_target=unlock)

    def _release_read_locks(self, txn):
        """Read-only transactions must still unlock everything."""
        for shard in list(txn.locked):
            if shard == self.node.node_id:
                for k in txn.locked[shard]:
                    obj = self._primary_obj(shard, k)
                    if obj is not None and obj.lock_owner == txn.txn_id:
                        obj.unlock(txn.txn_id)
            else:
                yield from self._unlock_read_keys(txn, shard, exclude=set())
        txn.clear_locks()

    # -- aborts ------------------------------------------------------------

    def _remote_unlock(self, txn, shard, keys):
        target = self._rdma_to(shard)
        for k in keys:
            def unlock(k=k):
                obj = self._primary_obj(shard, k)
                if obj is not None and obj.lock_owner == txn.txn_id:
                    obj.unlock(txn.txn_id)
                return True

            yield from self._issue()
            yield self.node.rdma.atomic(target, 8, on_target=unlock)

    def _commit_phase(self, txn):
        yield from super()._commit_phase(txn)
        # remaining read locks: read-only shards, plus the local shard's
        # read keys (remote written shards were handled by _remote_commit)
        written_shards = set(self._writes_by_shard(txn))
        for shard in list(txn.locked):
            if shard == self.node.node_id:
                for k in txn.locked[shard]:
                    if k in txn.write_values:
                        continue
                    obj = self._primary_obj(shard, k)
                    if obj is not None and obj.lock_owner == txn.txn_id:
                        obj.unlock(txn.txn_id)
            elif shard not in written_shards:
                yield from self._unlock_read_keys(txn, shard, exclude=set())
        txn.clear_locks()
