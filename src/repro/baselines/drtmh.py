"""DrTM+H and DrTM+H-NC baselines (§2.2.2, §5.1).

DrTM+H is the hybrid design: one-sided READs for execution-phase reads and
validation (one roundtrip thanks to the coordinator's remote-address
cache), one-sided WRITEs for logging, and two-sided RPCs for locking and
committing writes.

The NC ("no remote caching") variant disables the address cache, so every
remote read and validation traverses the chained bucket structure with one
one-sided READ per bucket — the read amplification and extra roundtrips
quantified in Table 2 and exposed in Figure 8a.
"""

from __future__ import annotations

from typing import List

from .common import BaselineCoordinator, HOST_PER_KEY_US, OBJ_HEADER

__all__ = ["DrTMH", "DrTMH_NC"]

RPC_HEADER = 18
PER_KEY = 10


class DrTMH(BaselineCoordinator):
    """Hybrid one-sided/two-sided design with remote address caching."""

    name = "drtmh"
    address_cache = True

    # -- reads ------------------------------------------------------------

    def _read_roundtrips(self, shard: int, key: int) -> List[int]:
        """Byte sizes of the sequential one-sided READs needed for one
        remote lookup (one entry per roundtrip)."""
        if self.address_cache:
            return [self._obj_bytes(shard, key)]
        table = self.cluster.nodes[shard].tables[shard]
        res = table.lookup(key)
        per_bucket = table.b * (self.cluster.value_size + OBJ_HEADER)
        return [per_bucket] * max(1, res.roundtrips)

    def _one_sided_read(self, txn, shard, key):
        """Sequential READ roundtrips, last one observing the object."""
        sizes = self._read_roundtrips(shard, key)
        target = self._rdma_to(shard)
        result = {}

        def observe():
            obj = self._primary_obj(shard, key)
            if obj is None:
                result[key] = (None, 0, False)
            else:
                result[key] = (
                    obj.value, obj.version,
                    obj.locked and obj.lock_owner != txn.txn_id,
                )
            return result[key]

        for i, nbytes in enumerate(sizes):
            yield from self._issue()
            last = i == len(sizes) - 1
            value = yield self.node.rdma.read(
                target, nbytes, on_target=observe if last else None
            )
        return value

    # -- EXECUTE ------------------------------------------------------------

    def _remote_execute(self, txn, shard, rkeys, wkeys):
        # every key is first fetched with one-sided READ(s): value +
        # version (+ lock word), in parallel (doorbell-batched)
        all_keys = list(dict.fromkeys(rkeys + wkeys))
        read_evs = [
            self.sim.spawn(self._one_sided_read(txn, shard, k), name="osr")
            for k in all_keys
        ]
        results = yield self.sim.all_of(read_evs)
        for k, (value, version, _locked) in zip(all_keys, results):
            txn.read_values[k] = (value, version)
        # write-set keys then need a *separate* lock RPC (writes go over
        # RPC in DrTM+H); the handler verifies the version read earlier is
        # still current, so locking doubles as write-set validation
        if not wkeys:
            return True
        expected = {k: txn.read_values[k][1] for k in wkeys}

        def lock_at_versions():
            acquired = []
            for k in wkeys:
                obj = self._primary_obj(shard, k)
                if (obj is None or obj.version != expected[k]
                        or not obj.try_lock(txn.txn_id)):
                    for kk in acquired:
                        self._primary_obj(shard, kk).unlock(txn.txn_id)
                    return False
                acquired.append(k)
            return True

        yield from self._issue()
        req = RPC_HEADER + (PER_KEY + 6) * len(wkeys)
        ok = yield self.node.rdma.rpc(
            self._rdma_to(shard), req, RPC_HEADER,
            handler_ref_us=HOST_PER_KEY_US * len(wkeys),
            on_target=lock_at_versions,
        )
        if not ok:
            self.stats.inc("lock_conflicts")
            return False
        for k in wkeys:
            txn.record_lock(shard, k)
        return True

    # -- VALIDATE ------------------------------------------------------------

    def _remote_validate(self, txn, shard, keys):
        evs = [
            self.sim.spawn(self._validate_one(txn, shard, k), name="val1")
            for k in keys
        ]
        results = yield self.sim.all_of(evs)
        return all(results)

    def _validate_one(self, txn, shard, k):
        # re-read the version word (+lock) with one-sided READ(s)
        sizes = self._read_roundtrips(shard, k)
        sizes[-1] = OBJ_HEADER  # version-only read on the final hop
        target = self._rdma_to(shard)

        def observe():
            obj = self._primary_obj(shard, k)
            if obj is None:
                return (0, True)
            return (obj.version,
                    obj.locked and obj.lock_owner != txn.txn_id)

        for i, nbytes in enumerate(sizes):
            yield from self._issue()
            last = i == len(sizes) - 1
            out = yield self.node.rdma.read(
                target, nbytes, on_target=observe if last else None
            )
        version, locked = out
        if locked or version != txn.read_values[k][1]:
            return False
        return True

    # -- COMMIT ------------------------------------------------------------

    def _remote_commit(self, txn, shard, writes):
        def apply_commit():
            self._apply_commit_at(shard, txn, writes)
            return True

        yield from self._issue()
        req = RPC_HEADER + len(writes) * (PER_KEY + self._write_bytes(txn))
        yield self.node.rdma.rpc(
            self._rdma_to(shard), req, RPC_HEADER,
            handler_ref_us=HOST_PER_KEY_US * len(writes),
            on_target=apply_commit,
        )

    # -- aborts ------------------------------------------------------------

    def _remote_unlock(self, txn, shard, keys):
        def unlock():
            for k in keys:
                obj = self._primary_obj(shard, k)
                if obj is not None and obj.lock_owner == txn.txn_id:
                    obj.unlock(txn.txn_id)
            return True

        yield from self._issue()
        req = RPC_HEADER + PER_KEY * len(keys)
        yield self.node.rdma.rpc(
            self._rdma_to(shard), req, RPC_HEADER,
            handler_ref_us=HOST_PER_KEY_US * len(keys),
            on_target=unlock,
        )


class DrTMH_NC(DrTMH):
    """DrTM+H with the coordinator's remote-address cache disabled: every
    remote lookup traverses the chained buckets over one-sided READs."""

    name = "drtmh_nc"
    address_cache = False
