"""Shared scaffolding for the RDMA-based baseline systems (§2.2.2, §5.1).

The four baselines (DrTM+H, DrTM+H-NC, FaSST, DrTM+R) share the OCC +
primary-backup commit protocol of §2.2.1, a chained-bucket store at each
primary (DrTM+H's data structure), and host-driven coordination over the
CX5 RDMA model.  They differ only in which verb implements each phase —
exactly the §5.1 comparison axes — expressed here as strategy methods that
each variant overrides.

Locks and versions live on the host :class:`VersionedObject`s; one-sided
verbs mutate them via their ``on_target`` linearization callback, and RPC
handlers charge target host cores.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..hw.cpu import CoreGroup
from ..hw.params import HardwareParams, TESTBED
from ..hw.rdma import RdmaNic
from ..sim.core import Simulator
from ..sim.stats import Counter
from ..store.chained import ChainedTable
from ..store.object import VersionedObject
from ..core.txn import Transaction, TxnSpec, TxnStatus

__all__ = ["BaselineNode", "BaselineCluster", "BaselineCoordinator"]

ABORT_BACKOFF_US = 1.5
# host core cost of issuing one RDMA verb: doorbell write, WQE build,
# completion poll amortization (FaSST/Herd report 0.2-0.4us per verb)
ISSUE_WALL_US = 0.15
# host core cost per key for local table operations
HOST_PER_KEY_US = 0.10
# host core cost of applying one replicated write at a backup
APPLY_WALL_US = 0.30
OBJ_HEADER = 16  # key + version + lock word alongside the value
RECORD_HEADER = 24


class BaselineNode:
    """One server: host cores + RDMA NIC + replicated chained tables."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        n_nodes: int,
        host_threads: int,
        keys_per_shard: int,
        value_size: int,
        replication_factor: int,
        hardware: HardwareParams,
        bucket_size: int = 8,
    ):
        self.sim = sim
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.value_size = value_size
        self.replication_factor = min(replication_factor, n_nodes)
        self.host_cores = CoreGroup(
            sim, hardware.host.cpu, cores=host_threads,
            name="b%d.host" % node_id,
        )
        self.rdma = RdmaNic(
            sim, node_id, params=hardware.rdma, host_cores=self.host_cores,
            host_rpc_handle_us=hardware.host.rpc_handle_us,
            name="b%d.rdma" % node_id,
        )
        n_buckets = max(1, int(keys_per_shard / bucket_size / 0.9))
        self.tables: Dict[int, ChainedTable] = {}
        for shard in self.replicated_shards():
            self.tables[shard] = ChainedTable(
                n_buckets, bucket_size=bucket_size, hash_salt=shard
            )
        self.txn_seq = 0

    def replicated_shards(self) -> List[int]:
        return [(self.node_id - i) % self.n_nodes
                for i in range(self.replication_factor)]

    def backups_of(self, shard: int) -> List[int]:
        return [(shard + i) % self.n_nodes
                for i in range(1, self.replication_factor)]

    def load_object(self, shard: int, key: int, value, size: int) -> None:
        self.tables[shard].insert(key, VersionedObject(key, value=value,
                                                       size=size))

    def next_txn_id(self) -> int:
        self.txn_seq += 1
        from ..core.txn import make_txn_id

        return make_txn_id(self.node_id, self.txn_seq)


class BaselineCluster:
    """A cluster of baseline nodes running one system variant."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        system: Callable,  # coordinator class
        host_threads: int = 16,
        keys_per_shard: int = 4096,
        value_size: int = 64,
        replication_factor: int = 3,
        partition: Optional[Callable[[int], int]] = None,
        hardware: HardwareParams = TESTBED,
        bucket_size: int = 8,
    ):
        self.sim = sim
        self.n_nodes = n_nodes
        self.value_size = value_size
        self.partition = partition or (lambda key: key % n_nodes)
        self.nodes = [
            BaselineNode(sim, i, n_nodes, host_threads, keys_per_shard,
                         value_size, replication_factor, hardware,
                         bucket_size)
            for i in range(n_nodes)
        ]
        self.coordinators: List[BaselineCoordinator] = [
            system(self, node) for node in self.nodes
        ]
        # uniform interface with XenicCluster
        self.protocols = self.coordinators

    def start(self) -> None:
        """No background threads needed (backup application is charged
        inline at LOG time); present for interface parity."""

    def shard_of(self, key: int) -> int:
        return self.partition(key)

    def primary_node_id(self, shard: int) -> int:
        return shard

    def backups_of(self, shard: int) -> List[int]:
        return self.nodes[shard].backups_of(shard)

    def load_key(self, key: int, value=None, size: Optional[int] = None) -> None:
        size = size if size is not None else self.value_size
        shard = self.shard_of(key)
        self.nodes[shard].load_object(shard, key, value, size)
        for backup in self.backups_of(shard):
            self.nodes[backup].load_object(shard, key, value, size)

    def read_committed_value(self, key: int):
        shard = self.shard_of(key)
        obj = self.nodes[shard].tables[shard].get_object(key)
        return obj.value if obj is not None else None


class BaselineCoordinator:
    """Base OCC coordinator; variants override the ``_remote_*`` hooks."""

    name = "baseline"

    def __init__(self, cluster: BaselineCluster, node: BaselineNode):
        self.cluster = cluster
        self.node = node
        self.sim = node.sim
        self.stats = Counter()
        # Observability sink (repro.obs.Observer); None disables spans.
        self.obs = None
        # Optional abort callback (bench harnesses record abort latencies
        # through it); called with the Transaction on every aborted attempt.
        self.on_abort = None

    # -- public API ------------------------------------------------------------

    def run_transaction(self, spec: TxnSpec):
        txn = Transaction(self.node.next_txn_id(), self.node.node_id, spec)
        txn.started_at = self.sim.now
        while True:
            ok = yield from self._attempt(txn)
            if ok:
                break
            self.stats.inc("aborts")
            if self.obs is not None:
                self.obs.txn_abort(self.node.node_id, txn)
            if self.on_abort is not None:
                self.on_abort(txn)
            txn.reset_for_retry()
            yield self.sim.timeout(ABORT_BACKOFF_US * min(txn.attempts, 16))
        txn.committed_at = self.sim.now
        txn.status = TxnStatus.COMMITTED
        self.stats.inc("commits")
        if self.obs is not None:
            self.obs.txn_commit(self.node.node_id, txn)
        return txn

    # -- shared skeleton ------------------------------------------------------------

    def _attempt(self, txn: Transaction):
        spec = txn.spec
        if spec.local_compute_us > 0:
            yield from self.node.host_cores.run(spec.local_compute_us)
        by_shard = self._group_by_shard(spec)
        ok = yield from self._execute_phase(txn, by_shard)
        if not ok:
            yield from self._abort_cleanup(txn)
            return False
        if not txn.read_only:
            if spec.logic_cost_us > 0:
                yield from self.node.host_cores.run(spec.logic_cost_us)
            txn.write_values = txn.run_logic()
        ok = yield from self._validate_phase(txn)
        if not ok:
            yield from self._abort_cleanup(txn)
            return False
        if txn.read_only:
            yield from self._release_read_locks(txn)
            return True
        ok = yield from self._log_phase(txn)
        if not ok:
            yield from self._abort_cleanup(txn)
            return False
        # commit point: writes are durable on all backups
        self.sim.spawn(self._commit_phase(txn), name="%s-commit" % self.name)
        return True

    def _group_by_shard(self, spec: TxnSpec):
        groups: Dict[int, Tuple[List[int], List[int]]] = {}
        for k in spec.read_keys:
            groups.setdefault(self.cluster.shard_of(k), ([], []))[0].append(k)
        for k in spec.write_keys:
            groups.setdefault(self.cluster.shard_of(k), ([], []))[1].append(k)
        return groups

    def _primary_obj(self, shard: int, key: int) -> Optional[VersionedObject]:
        return self.cluster.nodes[shard].tables[shard].get_object(key)

    def _obj_bytes(self, shard: int, key: int) -> int:
        obj = self._primary_obj(shard, key)
        size = obj.size if obj is not None else self.cluster.value_size
        return size + OBJ_HEADER

    def _rdma_to(self, shard: int) -> RdmaNic:
        return self.cluster.nodes[shard].rdma

    def _issue(self):
        return self.node.host_cores.run_wall(ISSUE_WALL_US)

    # -- EXECUTE ------------------------------------------------------------

    def _execute_phase(self, txn: Transaction, by_shard):
        evs = []
        for shard, (rkeys, wkeys) in by_shard.items():
            if shard == self.node.node_id:
                gen = self._local_execute(txn, shard, rkeys, wkeys)
            else:
                gen = self._remote_execute(txn, shard, rkeys, wkeys)
            evs.append(self.sim.spawn(gen, name="exec-shard"))
        results = yield self.sim.all_of(evs)
        return all(results)

    def _local_execute(self, txn, shard, rkeys, wkeys):
        yield from self.node.host_cores.run_wall(
            HOST_PER_KEY_US * max(1, len(rkeys) + len(wkeys))
        )
        for k in wkeys:
            obj = self._primary_obj(shard, k)
            if obj is None or not obj.try_lock(txn.txn_id):
                self.stats.inc("lock_conflicts")
                return False
            txn.record_lock(shard, k)
        for k in rkeys:
            obj = self._primary_obj(shard, k)
            if obj is None:
                txn.read_values[k] = (None, 0)
            else:
                txn.read_values[k] = (obj.value, obj.version)
        for k in wkeys:
            obj = self._primary_obj(shard, k)
            txn.read_values.setdefault(k, (None, obj.version if obj else 0))
        return True

    def _remote_execute(self, txn, shard, rkeys, wkeys):  # pragma: no cover
        raise NotImplementedError

    # -- VALIDATE ------------------------------------------------------------

    def _validate_phase(self, txn: Transaction):
        spec = txn.spec
        write_set = set(spec.write_keys)
        to_check = [k for k in spec.read_keys if k not in write_set]
        if not to_check:
            return True
        groups: Dict[int, List[int]] = {}
        for k in to_check:
            groups.setdefault(self.cluster.shard_of(k), []).append(k)
        evs = []
        for shard, keys in groups.items():
            if shard == self.node.node_id:
                gen = self._local_validate(txn, shard, keys)
            else:
                gen = self._remote_validate(txn, shard, keys)
            evs.append(self.sim.spawn(gen, name="validate-shard"))
        results = yield self.sim.all_of(evs)
        if not all(results):
            self.stats.inc("validate_conflicts")
            return False
        return True

    def _local_validate(self, txn, shard, keys):
        yield from self.node.host_cores.run_wall(HOST_PER_KEY_US * len(keys))
        for k in keys:
            obj = self._primary_obj(shard, k)
            _v, ver = txn.read_values[k]
            if obj is None or obj.version != ver or (
                obj.locked and obj.lock_owner != txn.txn_id
            ):
                return False
        return True

    def _remote_validate(self, txn, shard, keys):  # pragma: no cover
        raise NotImplementedError

    # -- LOG ------------------------------------------------------------

    def _record_bytes(self, writes: Dict[int, object],
                      write_bytes: Optional[int] = None) -> int:
        vb = write_bytes if write_bytes is not None else self.cluster.value_size
        return RECORD_HEADER + len(writes) * (16 + vb)

    def _log_phase(self, txn: Transaction):
        evs = []
        for shard, writes in self._writes_by_shard(txn).items():
            for backup in self.cluster.backups_of(shard):
                evs.append(
                    self.sim.spawn(
                        self._log_one(txn, shard, backup, writes),
                        name="log-one",
                    )
                )
        results = yield self.sim.all_of(evs)
        return all(results)

    def _writes_by_shard(self, txn: Transaction):
        groups: Dict[int, Dict[int, object]] = {}
        for k, v in txn.write_values.items():
            groups.setdefault(self.cluster.shard_of(k), {})[k] = v
        return groups

    def _log_one(self, txn, shard, backup, writes):
        versions = {
            k: txn.read_values.get(k, (None, 0))[1] + 1 for k in writes
        }

        def apply_at_backup():
            node = self.cluster.nodes[backup]
            table = node.tables[shard]
            # background application charged to the backup's host cores
            node.host_cores.execute_wall(APPLY_WALL_US * max(1, len(writes)))
            for k, v in writes.items():
                obj = table.get_object(k)
                if obj is None:
                    obj = VersionedObject(k, value=v, size=node.value_size)
                    table.insert(k, obj)
                obj.value = v
                obj.version = versions[k]
            return True

        if backup == self.node.node_id:
            yield from self.node.host_cores.run_wall(APPLY_WALL_US)
            apply_at_backup()
            return True
        ok = yield from self._remote_log(txn, shard, backup, writes,
                                         apply_at_backup)
        return ok

    def _write_bytes(self, txn) -> int:
        # The published baselines replicate whole objects: FaRM/DrTM+H log
        # records and DrTM+R commit WRITEs carry the full value in their
        # fixed record formats.  Field-level delta replication is part of
        # Xenic's software flexibility (§5.5), so baselines do not get it.
        return self.cluster.value_size

    def _remote_log(self, txn, shard, backup, writes, apply_fn):
        """Default: one one-sided WRITE of the record into the backup's
        log region (FaRM/DrTM+H style); the backup applies it in the
        background (charged to its host cores inside ``apply_fn``)."""
        yield from self._issue()
        ok = yield self.node.rdma.write(
            self._rdma_to(backup),
            self._record_bytes(writes, self._write_bytes(txn)),
            on_target=apply_fn,
        )
        return bool(ok)

    # -- COMMIT ------------------------------------------------------------

    def _commit_phase(self, txn: Transaction):
        for shard, writes in self._writes_by_shard(txn).items():
            if shard == self.node.node_id:
                yield from self.node.host_cores.run_wall(
                    HOST_PER_KEY_US * max(1, len(writes))
                )
                self._apply_commit_at(shard, txn, writes)
            else:
                yield from self._remote_commit(txn, shard, writes)

    def _apply_commit_at(self, shard: int, txn, writes: Dict[int, object]) -> None:
        table = self.cluster.nodes[shard].tables[shard]
        for k, v in writes.items():
            obj = table.get_object(k)
            if obj is None:
                obj = VersionedObject(k, value=v,
                                      size=self.cluster.value_size)
                table.insert(k, obj)
                obj.lock_owner = txn.txn_id
            obj.commit_write(v)
            if obj.lock_owner == txn.txn_id:
                obj.unlock(txn.txn_id)

    def _remote_commit(self, txn, shard, writes):  # pragma: no cover
        raise NotImplementedError

    # -- aborts ------------------------------------------------------------

    def _abort_cleanup(self, txn: Transaction):
        for shard, keys in list(txn.locked.items()):
            if shard == self.node.node_id:
                for k in keys:
                    obj = self._primary_obj(shard, k)
                    if obj is not None and obj.lock_owner == txn.txn_id:
                        obj.unlock(txn.txn_id)
            else:
                yield from self._remote_unlock(txn, shard, keys)
        txn.clear_locks()

    def _remote_unlock(self, txn, shard, keys):  # pragma: no cover
        raise NotImplementedError

    def _release_read_locks(self, txn: Transaction):
        """Hook for lock-all designs (DrTM+R); OCC variants do nothing."""
        return
        yield  # pragma: no cover
