"""FaSST baseline (§2.2.2): all remote operations are two-sided RPCs.

No specialized remote data structure is needed — lookups and insertions
happen locally at the RPC handler — and FaSST consolidates multiple
operations into one RPC (read + lock in a single execution-phase message
per shard).  The cost is host CPU at every node: each RPC burns a target
host core, which is what caps FaSST's throughput in Figure 8 (and its
thread count in Table 3).
"""

from __future__ import annotations

from typing import Dict

from .common import BaselineCoordinator, HOST_PER_KEY_US, OBJ_HEADER

__all__ = ["FaSST"]

RPC_HEADER = 18
PER_KEY = 10
PER_VERSION = 6


class FaSST(BaselineCoordinator):
    """All-RPC coordinator."""

    name = "fasst"

    def _rpc(self, shard, req_bytes, resp_bytes, n_keys, on_target):
        yield from self._issue()
        result = yield self.node.rdma.rpc(
            self._rdma_to(shard), req_bytes, resp_bytes,
            handler_ref_us=HOST_PER_KEY_US * max(1, n_keys),
            on_target=on_target,
        )
        return result

    # -- EXECUTE: one consolidated read+lock RPC per shard ------------------

    def _remote_execute(self, txn, shard, rkeys, wkeys):
        def handler():
            acquired = []
            out: Dict[int, tuple] = {}
            for k in wkeys:
                obj = self._primary_obj(shard, k)
                if obj is None or not obj.try_lock(txn.txn_id):
                    for kk in acquired:
                        self._primary_obj(shard, kk).unlock(txn.txn_id)
                    return None
                acquired.append(k)
                out[k] = (obj.value, obj.version)
            for k in rkeys:
                obj = self._primary_obj(shard, k)
                out[k] = (obj.value, obj.version) if obj is not None else (None, 0)
            return out

        n = len(set(rkeys) | set(wkeys))
        req = RPC_HEADER + PER_KEY * n
        resp = RPC_HEADER + n * (self.cluster.value_size + OBJ_HEADER)
        result = yield from self._rpc(shard, req, resp, n, handler)
        if result is None:
            self.stats.inc("lock_conflicts")
            return False
        for k, (value, version) in result.items():
            txn.read_values.setdefault(k, (value, version))
        for k in wkeys:
            txn.record_lock(shard, k)
        return True

    # -- VALIDATE: one RPC per shard ------------------------------------------

    def _remote_validate(self, txn, shard, keys):
        def handler():
            for k in keys:
                obj = self._primary_obj(shard, k)
                _v, ver = txn.read_values[k]
                if obj is None or obj.version != ver or (
                    obj.locked and obj.lock_owner != txn.txn_id
                ):
                    return False
            return True

        req = RPC_HEADER + (PER_KEY + PER_VERSION) * len(keys)
        ok = yield from self._rpc(shard, req, RPC_HEADER, len(keys), handler)
        return bool(ok)

    # -- LOG: RPC to each backup (no one-sided verbs at all) -----------------

    def _remote_log(self, txn, shard, backup, writes, apply_fn):
        req = self._record_bytes(writes, self._write_bytes(txn))
        ok = yield from self._rpc(backup, req, RPC_HEADER, len(writes),
                                  apply_fn)
        return bool(ok)

    # -- COMMIT ------------------------------------------------------------

    def _remote_commit(self, txn, shard, writes):
        def handler():
            self._apply_commit_at(shard, txn, writes)
            return True

        req = RPC_HEADER + len(writes) * (PER_KEY + self._write_bytes(txn))
        yield from self._rpc(shard, req, RPC_HEADER, len(writes), handler)

    def _remote_unlock(self, txn, shard, keys):
        def handler():
            for k in keys:
                obj = self._primary_obj(shard, k)
                if obj is not None and obj.lock_owner == txn.txn_id:
                    obj.unlock(txn.txn_id)
            return True

        req = RPC_HEADER + PER_KEY * len(keys)
        yield from self._rpc(shard, req, RPC_HEADER, len(keys), handler)
