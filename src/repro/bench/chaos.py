"""Chaos harness: randomized fault schedules + global invariant checks.

``run_chaos`` builds a small cluster (Xenic or a baseline), installs a
seeded :class:`~repro.sim.faults.FaultPlan`, drives a deterministic
commuting-increment workload through it, and checks the invariants that
must hold no matter what the fault layer did:

* **no limbo** — every admitted transaction reaches commit (the
  coordinator retries aborts), so every driver process finishes;
* **serializability** — increments commute, so the final committed value
  of every key must equal the reference ledger sum exactly; any lost
  update, double-apply, or phantom commit breaks the equality;
* **conservation** — the number of commits reported by the protocol
  equals the number of driver processes that finished.

Both the workload and the fault schedule derive from the single ``seed``
through independent named RNG streams, so a failing seed reproduces
byte-identically (see ``docs/FAULTS.md``).

When the spec schedules crashes the ledger/no-limbo checks are skipped:
transactions with an attempt in flight at a crashed node block forever
(the protocol has no request timeouts; recovery, not retransmission,
resolves them), which the dedicated recovery tests assert precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..baselines import SYSTEMS, BaselineCluster
from ..core import TxnSpec, XenicCluster, XenicConfig
from ..obs import Observer
from ..sim import RngStream, Simulator
from ..sim.faults import FaultPlan, FaultSpec, FaultTrace

__all__ = ["ChaosResult", "run_chaos", "DEFAULT_CHAOS_FAULTS"]

XENIC = "xenic"

# The CI smoke spec: every message primitive enabled at once.
DEFAULT_CHAOS_FAULTS = "drop=0.02,dup=0.01,delay=0.05:8,reorder=0.02"


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos run."""

    system: str
    seed: int
    spec: FaultSpec
    commits: int
    aborts: int
    limbo: int
    violations: List[str] = field(default_factory=list)
    trace: Optional[FaultTrace] = None
    sim_time_us: float = 0.0
    observer: Optional[Observer] = None
    # simulated end-state + engine work, surfaced for golden-digest checks
    # and the wall-clock perf harness (events_scheduled is the real event
    # count, not a commit-count proxy).
    final_values: Dict[int, object] = field(default_factory=dict)
    events_scheduled: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - convenience
        status = "OK" if self.ok else "VIOLATION"
        line = (
            "%s seed=%d: %s commits=%d aborts=%d faults[%s]"
            % (self.system, self.seed, status, self.commits, self.aborts,
               self.trace.summary() if self.trace else "-")
        )
        for v in self.violations:
            line += "\n  !! %s" % v
        return line


def _build_cluster(system: str, sim: Simulator, n_nodes: int, keys: int,
                   config: Optional[XenicConfig], rf: int):
    if system == XENIC:
        cfg = config or XenicConfig(replication_factor=rf)
        cluster = XenicCluster(sim, n_nodes, config=cfg,
                               keys_per_shard=max(128, keys),
                               value_size=16)
    elif system in SYSTEMS:
        cluster = BaselineCluster(sim, n_nodes, SYSTEMS[system],
                                  host_threads=4,
                                  keys_per_shard=max(128, keys),
                                  value_size=16,
                                  replication_factor=rf)
    else:
        raise ValueError("unknown system %r" % system)
    for k in range(keys):
        cluster.load_key(k, value=0)
    cluster.start()
    return cluster


def run_chaos(
    system: str = XENIC,
    seed: int = 1,
    faults: Union[str, FaultSpec] = DEFAULT_CHAOS_FAULTS,
    n_txns: int = 40,
    n_nodes: int = 3,
    keys: int = 24,
    rf: int = 3,
    span_us: float = 300.0,
    limit_us: float = 500_000.0,
    config: Optional[XenicConfig] = None,
    obs: bool = False,
) -> ChaosResult:
    """One seeded chaos run; see the module docstring for the invariants.

    With ``obs=True`` an :class:`~repro.obs.Observer` is installed before
    the workload and returned in ``ChaosResult.observer``, ready for
    trace export (fault injections from the plan land on the same
    timeline as instant events)."""
    spec = FaultSpec.parse(faults) if isinstance(faults, str) else faults
    sim = Simulator()
    cluster = _build_cluster(system, sim, n_nodes, keys, config, rf)
    plan = FaultPlan(spec, RngStream(seed, "faults")).install(cluster)
    observer = Observer(sim).install(cluster) if obs else None

    # deterministic commuting-increment workload, independent RNG stream
    wl = RngStream(seed, "workload")
    crashing = {c.node for c in spec.crashes}
    coords = [n for n in range(n_nodes) if n not in crashing] or [0]
    ops = []
    for _ in range(n_txns):
        coord = coords[wl.randrange(len(coords))]
        n_keys = wl.randint(1, 3)
        op_keys = tuple(sorted(wl.sample(range(keys), n_keys)))
        amount = wl.randint(1, 9)
        start = wl.uniform(0.0, span_us)
        ops.append((coord, op_keys, amount, start))
    reference: Dict[int, int] = {k: 0 for k in range(keys)}
    for _coord, op_keys, amount, _start in ops:
        for k in op_keys:
            reference[k] += amount

    done: List[int] = []

    def run_op(i, coord, op_keys, amount, start):
        yield sim.timeout(start)

        def logic(reads, state, keys=op_keys, amount=amount):
            return {k: (reads[k] or 0) + amount for k in keys}

        spec_ = TxnSpec(read_keys=list(op_keys), write_keys=list(op_keys),
                        logic=logic)
        yield from cluster.protocols[coord].run_transaction(spec_)
        done.append(i)

    for i, (coord, op_keys, amount, start) in enumerate(ops):
        sim.spawn(run_op(i, coord, op_keys, amount, start),
                  name="chaos-txn-%d" % i)
    sim.run(until=limit_us)

    commits = sum(p.stats.get("commits") for p in cluster.protocols)
    aborts = sum(p.stats.get("aborts") for p in cluster.protocols)
    limbo = n_txns - len(done)
    result = ChaosResult(system=system, seed=seed, spec=spec,
                         commits=commits, aborts=aborts, limbo=limbo,
                         trace=plan.trace, sim_time_us=sim.now,
                         observer=observer,
                         final_values={k: cluster.read_committed_value(k)
                                       for k in range(keys)},
                         events_scheduled=sim.events_scheduled)
    if not spec.crashes:
        if limbo:
            result.violations.append(
                "limbo: %d/%d transactions never resolved" % (limbo, n_txns))
        if commits != n_txns:
            result.violations.append(
                "commit conservation: %d commits for %d transactions"
                % (commits, n_txns))
        for k in range(keys):
            got = cluster.read_committed_value(k)
            if got != reference[k]:
                result.violations.append(
                    "serializability: key %d = %r, reference %d"
                    % (k, got, reference[k]))
    return result
