"""Open-loop SLO harness: latency vs *offered* load (docs/OBSERVABILITY.md).

The closed-loop runner (:mod:`repro.bench.runner`) measures the paper's
throughput/latency curves: N contexts per node issue transactions
back-to-back, so the system is never offered more work than it completes.
Real deployments are open-loop — clients arrive on their own schedule and
queue when the system falls behind — which is where tail latency actually
lives.  This module drives the same clusters with Poisson or bursty
arrival processes, admission-limits dispatch to ``max_inflight``
in-flight transactions per node, and reports *sojourn* time (client
queueing included) at p50/p99/p999 per offered-load point, plus the SLO
knee: the highest offered load that still meets a p99 budget while
actually sustaining the offered rate.

Sweeps are described by a picklable :class:`SloSpec`; independent load
points fan across a process pool exactly like
:func:`repro.bench.parallel.run_sweeps` (``--jobs`` on the CLI), with the
same two serial-path triggers (active observability default, pool
creation failure) and byte-identical serial/parallel results.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim import LatencyRecorder
from ..sim.rng import RngStream
from .runner import Bench, workload_by_name

__all__ = ["SloSpec", "SloPoint", "OpenLoopBench", "run_slo_point",
           "run_slo_points", "detect_knee", "slo_report",
           "format_slo_report"]

ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class SloSpec:
    """One SLO sweep: everything needed to run each offered-load point,
    as plain picklable data (mirrors :class:`~repro.bench.parallel.
    SweepSpec`)."""

    system: str
    workload: str  # key in repro.workloads.WORKLOADS (via workload_by_name)
    loads_per_node_s: Tuple[float, ...]  # offered load per node, txn/s
    arrival: str = "poisson"  # "poisson" | "bursty"
    burst_factor: float = 4.0  # burst-phase rate multiplier
    burst_fraction: float = 0.1  # fraction of each cycle spent bursting
    burst_cycle_us: float = 200.0  # on/off cycle length
    max_inflight: int = 64  # admission limit per node
    n_nodes: int = 3
    warmup_us: float = 150.0
    window_us: float = 600.0
    seed: int = 7
    # (fault spec text or FaultSpec, root seed); None inherits the
    # parent's process-wide default at run_slo_points() time.
    faults: Optional[tuple] = None
    label: str = ""

    def __post_init__(self):
        object.__setattr__(self, "loads_per_node_s",
                           tuple(float(x) for x in self.loads_per_node_s))
        if self.arrival not in ARRIVALS:
            raise ValueError("arrival must be one of %s" % (ARRIVALS,))
        if self.burst_factor * self.burst_fraction >= 1.0:
            raise ValueError("burst_factor * burst_fraction must be < 1 "
                             "(the off-phase rate would go non-positive)")
        if not self.label:
            object.__setattr__(self, "label", self.system)


@dataclass
class SloPoint:
    """One measured point of a latency-vs-offered-load curve."""

    system: str
    workload: str
    arrival: str
    offered_per_node_s: float  # target arrival rate per node
    arrived_per_node_s: float  # measured arrivals in the window
    achieved_per_node_s: float  # counted completions in the window
    p50_us: float  # sojourn: arrival -> commit, queueing included
    p99_us: float
    p999_us: float
    mean_us: float
    queue_mean_us: float  # admission-queue wait component
    queue_p99_us: float
    commits: int
    aborts: int
    backlog: int  # queued + in-flight txns left at window close
    window_us: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def goodput_frac(self) -> float:
        """Fraction of the offered load actually completed.  Compared
        against the *measured* arrival rate, not the nominal target, so
        Poisson sampling noise in short windows doesn't read as load
        shedding."""
        ref = self.arrived_per_node_s or self.offered_per_node_s
        if ref <= 0:
            return 1.0
        return self.achieved_per_node_s / ref

    def __str__(self) -> str:  # pragma: no cover - convenience
        return ("%s/%s %s offered=%.0f/s/node achieved=%.0f "
                "p50=%.1fus p99=%.1fus p999=%.1fus queue_p99=%.1fus"
                % (self.system, self.workload, self.arrival,
                   self.offered_per_node_s, self.achieved_per_node_s,
                   self.p50_us, self.p99_us, self.p999_us,
                   self.queue_p99_us))


class OpenLoopBench:
    """A cluster under open-loop load.

    Reuses :class:`~repro.bench.runner.Bench` for cluster construction
    (so faults/observability defaults apply identically), then replaces
    the closed-loop contexts with per-node arrival generators feeding a
    FIFO admission queue drained by ``max_inflight`` dispatch workers.
    The queue wait of every counted transaction is kept in
    ``queue_waits`` (txn_id -> µs) so the latency attributor can report
    it as the ``client_queue`` phase.
    """

    def __init__(self, spec: SloSpec, load_per_node_s: float, obs=None):
        workload = workload_by_name(spec.workload, spec.n_nodes,
                                    seed=spec.seed)
        self.spec = spec
        self.load_per_node_s = float(load_per_node_s)
        self.rate_us = self.load_per_node_s / 1e6  # arrivals per µs per node
        self.bench = Bench(spec.system, workload, n_nodes=spec.n_nodes,
                           seed=spec.seed, obs=obs)
        self.sim = self.bench.sim
        self.cluster = self.bench.cluster
        self.observer = self.bench.observer
        self.counted_label = self.bench.counted_label
        self._queues = [deque() for _ in range(spec.n_nodes)]
        self._idle_workers = [[] for _ in range(spec.n_nodes)]
        self._inflight = [0] * spec.n_nodes
        self._started = False
        self._counting = False
        self._arrivals = 0
        self._count = 0
        self._sojourn = LatencyRecorder()
        self._queue_wait = LatencyRecorder()
        self._abort_lat = LatencyRecorder()
        self.abort_reasons: Dict[str, int] = {}
        self.queue_waits: Dict[int, float] = {}
        for proto in self.cluster.protocols:
            proto.on_abort = self._note_abort

    # -- arrival processes -------------------------------------------------

    def _gap_us(self, rng: RngStream) -> float:
        spec = self.spec
        if spec.arrival == "poisson":
            return rng.expovariate(self.rate_us)
        # bursty: mean-preserving on/off modulated Poisson.  A fraction f
        # of each cycle runs at boost*r; the off phase compensates at
        # r*(1 - f*boost)/(1 - f), so the long-run rate is still r.
        f, boost, cycle = (spec.burst_fraction, spec.burst_factor,
                           spec.burst_cycle_us)
        phase = self.sim.now % cycle
        if phase < f * cycle:
            rate = self.rate_us * boost
        else:
            rate = self.rate_us * (1.0 - f * boost) / (1.0 - f)
        return rng.expovariate(rate)

    def _arrival_proc(self, node_id: int):
        gen = self.bench.workload.generator_for(node_id, "open")
        rng = RngStream(self.spec.seed, "slo-arrivals/%d" % node_id)
        queue = self._queues[node_id]
        idle = self._idle_workers[node_id]
        while True:
            yield self.sim.timeout(self._gap_us(rng))
            if self._counting:
                self._arrivals += 1
            queue.append((self.sim.now, gen.next()))
            if idle:
                idle.pop().succeed()

    def _worker(self, node_id: int):
        proto = self.cluster.protocols[node_id]
        queue = self._queues[node_id]
        idle = self._idle_workers[node_id]
        while True:
            while not queue:
                ev = self.sim.event(name="slo-idle")
                idle.append(ev)
                yield ev
            arrived_at, spec = queue.popleft()
            wait = self.sim.now - arrived_at
            self._inflight[node_id] += 1
            txn = yield from proto.run_transaction(spec)
            if spec.post_commit is not None:
                spec.post_commit()
            self._inflight[node_id] -= 1
            if self._counting and (
                self.counted_label is None
                or spec.label == self.counted_label
            ):
                self._count += 1
                self._sojourn.record(self.sim.now - arrived_at)
                self._queue_wait.record(wait)
                self.queue_waits[txn.txn_id] = wait

    def _note_abort(self, txn) -> None:
        if not self._counting:
            return
        self._abort_lat.record(self.sim.now - txn.started_at)
        reason = getattr(txn, "abort_reason", None) or "unknown"
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        for node_id in range(self.spec.n_nodes):
            self.sim.spawn(self._arrival_proc(node_id),
                           name="slo-arrivals-%d" % node_id)
            for k in range(self.spec.max_inflight):
                self.sim.spawn(self._worker(node_id),
                               name="slo-worker-%d-%d" % (node_id, k))

    # -- measurement -------------------------------------------------------

    def measure(self, warmup_us: Optional[float] = None,
                window_us: Optional[float] = None) -> SloPoint:
        spec = self.spec
        if warmup_us is None:
            warmup_us = spec.warmup_us
        if window_us is None:
            window_us = spec.window_us
        self._start()
        self.sim.run(until=self.sim.now + warmup_us)
        self._sojourn = LatencyRecorder()
        self._queue_wait = LatencyRecorder()
        self._abort_lat = LatencyRecorder()
        self.abort_reasons = {}
        self.queue_waits = {}
        self._arrivals = 0
        self._count = 0
        self._counting = True
        commits0 = self.bench._total_commits()
        aborts0 = self.bench._total_aborts()
        start = self.sim.now
        self.sim.run(until=start + window_us)
        self._counting = False
        elapsed = self.sim.now - start
        per_node_s = 1e6 / (elapsed * spec.n_nodes) if elapsed else 0.0
        point = SloPoint(
            system=spec.system,
            workload=self.bench.workload.name,
            arrival=spec.arrival,
            offered_per_node_s=self.load_per_node_s,
            arrived_per_node_s=self._arrivals * per_node_s,
            achieved_per_node_s=self._count * per_node_s,
            p50_us=self._sojourn.median,
            p99_us=self._sojourn.p99,
            p999_us=self._sojourn.p999,
            mean_us=self._sojourn.mean,
            queue_mean_us=self._queue_wait.mean,
            queue_p99_us=self._queue_wait.percentile(99),
            commits=self.bench._total_commits() - commits0,
            aborts=self.bench._total_aborts() - aborts0,
            backlog=sum(len(q) for q in self._queues) + sum(self._inflight),
            window_us=elapsed,
            extra=self.bench._utilization_snapshot(),
        )
        if self._abort_lat.count:
            point.extra["abort_p50_us"] = self._abort_lat.median
            point.extra["abort_p99_us"] = self._abort_lat.p99
        return point


def run_slo_point(spec: SloSpec, load_per_node_s: float) -> SloPoint:
    """Run one offered-load point on a fresh cluster."""
    return OpenLoopBench(spec, load_per_node_s).measure()


def _run_slo_load(job: Tuple[SloSpec, float]) -> SloPoint:
    """Pool worker: one load point.  Shared verbatim with the serial path
    (same determinism contract as :func:`parallel._run_spec`)."""
    spec, load = job
    from . import runner

    prev_faults = runner._DEFAULT_FAULTS
    if spec.faults is not None:
        runner.set_default_faults(spec.faults[0], spec.faults[1])
    else:
        runner.set_default_faults(None)
    try:
        return run_slo_point(spec, load)
    finally:
        runner._DEFAULT_FAULTS = prev_faults


def run_slo_points(spec: SloSpec,
                   jobs: Optional[int] = None) -> List[SloPoint]:
    """Run every load point of the sweep, optionally across a process
    pool.  Points are independent clusters, so results are identical for
    any ``jobs``; observed runs and pool-less sandboxes fall back to the
    serial path (same rules as :func:`parallel.run_sweeps`)."""
    from . import parallel, runner

    if spec.faults is None and runner._DEFAULT_FAULTS is not None:
        spec = dataclasses.replace(spec, faults=runner._DEFAULT_FAULTS)
    items = [(spec, load) for load in spec.loads_per_node_s]
    if jobs is None:
        jobs = parallel.default_jobs()
    jobs = max(1, min(int(jobs), len(items) or 1))
    if runner._DEFAULT_OBS is not None:
        jobs = 1
    if jobs == 1:
        return [_run_slo_load(it) for it in items]
    try:
        import concurrent.futures as cf

        with cf.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_slo_load, it) for it in items]
            return [f.result() for f in futures]
    except OSError:
        return [_run_slo_load(it) for it in items]


# ---------------------------------------------------------------------------
# knee detection and reports
# ---------------------------------------------------------------------------


def detect_knee(points: Sequence[SloPoint], slo_p99_us: float,
                min_goodput_frac: float = 0.9) -> Optional[SloPoint]:
    """The SLO knee: the highest offered load whose p99 sojourn meets the
    budget *and* whose completions keep up with arrivals.  The second
    condition matters because an overloaded open-loop system can report a
    flattering p99 over the few transactions it admitted while the queue
    grows without bound.  Returns ``None`` when even the lowest offered
    load violates the SLO."""
    knee = None
    for p in sorted(points, key=lambda p: p.offered_per_node_s):
        if p.p99_us <= slo_p99_us and p.goodput_frac >= min_goodput_frac:
            knee = p
    return knee


def slo_report(spec: SloSpec, points: Sequence[SloPoint],
               slo_p99_us: float,
               min_goodput_frac: float = 0.9) -> dict:
    """JSON-ready sweep report: the curve plus the detected knee."""
    knee = detect_knee(points, slo_p99_us, min_goodput_frac)
    return {
        "system": spec.system,
        "workload": spec.workload,
        "arrival": spec.arrival,
        "max_inflight": spec.max_inflight,
        "n_nodes": spec.n_nodes,
        "window_us": spec.window_us,
        "slo_p99_us": slo_p99_us,
        "min_goodput_frac": min_goodput_frac,
        "knee_offered_per_node_s": (knee.offered_per_node_s
                                    if knee is not None else None),
        "knee_p99_us": knee.p99_us if knee is not None else None,
        "points": [
            {
                "offered_per_node_s": p.offered_per_node_s,
                "arrived_per_node_s": p.arrived_per_node_s,
                "achieved_per_node_s": p.achieved_per_node_s,
                "goodput_frac": p.goodput_frac,
                "p50_us": p.p50_us,
                "p99_us": p.p99_us,
                "p999_us": p.p999_us,
                "mean_us": p.mean_us,
                "queue_mean_us": p.queue_mean_us,
                "queue_p99_us": p.queue_p99_us,
                "commits": p.commits,
                "aborts": p.aborts,
                "backlog": p.backlog,
                "meets_slo": (p.p99_us <= slo_p99_us
                              and p.goodput_frac >= min_goodput_frac),
            }
            for p in sorted(points, key=lambda p: p.offered_per_node_s)
        ],
    }


def format_slo_report(report: dict) -> str:
    """Render a :func:`slo_report` dict as an aligned text table."""
    from .report import format_table

    rows = []
    for p in report["points"]:
        rows.append([
            "%.0f" % p["offered_per_node_s"],
            "%.0f" % p["achieved_per_node_s"],
            "%.2f" % p["goodput_frac"],
            "%.1f" % p["p50_us"],
            "%.1f" % p["p99_us"],
            "%.1f" % p["p999_us"],
            "%.1f" % p["queue_p99_us"],
            p["aborts"],
            "yes" if p["meets_slo"] else "NO",
        ])
    head = ("SLO sweep: %s/%s, %s arrivals, max_inflight=%d, "
            "p99 budget %.0fus"
            % (report["system"], report["workload"], report["arrival"],
               report["max_inflight"], report["slo_p99_us"]))
    table = format_table(
        ["offered/s/node", "achieved", "goodput", "p50 us", "p99 us",
         "p999 us", "queue p99", "aborts", "SLO"], rows)
    knee = report["knee_offered_per_node_s"]
    if knee is None:
        tail = ("SLO knee: none — every offered load violates the budget "
                "or sheds load")
    else:
        tail = ("SLO knee: %.0f txn/s/node (p99 %.1fus within %.0fus "
                "budget)" % (knee, report["knee_p99_us"],
                             report["slo_p99_us"]))
    return "\n".join([head, table, tail])
