"""One entry point per table and figure of the paper's evaluation.

Every function returns plain data structures (and optionally prints a
table) so the ``benchmarks/`` suite, the examples, and EXPERIMENTS.md all
regenerate from the same code.  ``quick=True`` shrinks workload sizes and
measurement windows for CI; the shapes survive, the absolute numbers
wobble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import XenicConfig, ablation_ladder_latency, ablation_ladder_throughput
from ..hw import (
    BLUEFIELD_OFFPATH,
    CoreGroup,
    DmaEngine,
    DmaOp,
    Fabric,
    NetMessage,
    OffPathNic,
    RdmaNic,
    STINGRAY_OFFPATH,
    XEON_GOLD_5218,
)
from ..hw.params import LIQUIDIO3, LIQUIDIO3_CPU, NIC_HOST_CORE_RATIO
from ..sim import Simulator
from ..store import ChainedTable, HopscotchTable, NicIndex, RobinhoodTable
from ..workloads import Retwis, Smallbank, TpccFull, TpccNewOrder
from .report import print_curves, print_table
from .runner import Bench, RunResult, run_sweep

__all__ = [
    "figure2_latency",
    "figure3_batching",
    "figure4_dma",
    "table1_cores",
    "table2_lookup",
    "figure8a_tpcc_new_order",
    "figure8b_tpcc_full",
    "figure8c_retwis",
    "figure8d_smallbank",
    "table3_thread_counts",
    "figure9a_throughput_ablation",
    "figure9b_latency_ablation",
    "offpath_comparison",
]


# ---------------------------------------------------------------------------
# Figure 2 — remote-operation roundtrip latency
# ---------------------------------------------------------------------------


def figure2_latency(payload_bytes: int = 256, verbose: bool = False) -> Dict[str, float]:
    """Median RTTs for LiquidIO operations (from host / from NIC) and CX5
    RDMA verbs, mirroring Figure 2 (256 B payloads)."""
    results: Dict[str, float] = {}
    nicp = LIQUIDIO3

    def wire_hop(sim, port, dst, nbytes, arrive):
        port.send(NetMessage(port.node_id, dst, "m", nbytes, arrive))

    def liquidio_rtt(from_nic: bool, target_work):
        """One request/response between two SmartNIC nodes; ``target_work``
        is a generator factory run at the target NIC before replying."""
        sim = Simulator()
        fabric = Fabric(sim)
        from ..hw.nic import SmartNic

        src = SmartNic(sim, fabric, 0)
        dst = SmartNic(sim, fabric, 1)
        done = sim.event()

        def dst_handler(msg):
            def proc():
                yield from dst.cores.run_wall(nicp.rpc_handle_us)
                yield from target_work(sim, dst)
                dst.send(NetMessage(1, 0, "resp", payload_bytes, "resp"))
            sim.spawn(proc(), name="dst")

        def src_handler(msg):
            def proc():
                yield from src.cores.run_wall(nicp.rpc_handle_us)
                if not from_nic:
                    # response crosses PCIe back to the host
                    yield sim.timeout(nicp.pcie_crossing_us)
                done.succeed(sim.now)
            sim.spawn(proc(), name="src")

        dst.set_handler(dst_handler)
        src.set_handler(src_handler)

        def start():
            if not from_nic:
                yield sim.timeout(nicp.pcie_crossing_us)
            src.send(NetMessage(0, 1, "req", payload_bytes, "req"))

        sim.spawn(start(), name="start")
        return sim.run_until_event(done)

    def nop(sim, nic):
        return
        yield

    def dma_read(sim, nic):
        yield nic.dma.read(payload_bytes)

    def dma_write(sim, nic):
        yield nic.dma.write(payload_bytes)

    def host_rpc(sim, nic):
        host = CoreGroup(sim, XEON_GOLD_5218, cores=2)
        yield sim.timeout(nicp.pcie_crossing_us)
        yield host.execute(16.0 / 23.0 + 1.5)  # handle + host stack
        yield sim.timeout(nicp.pcie_crossing_us)

    for source, from_nic in (("host", False), ("nic", True)):
        results["lio_nic_rpc_from_%s" % source] = liquidio_rtt(from_nic, nop)
        results["lio_read_from_%s" % source] = liquidio_rtt(from_nic, dma_read)
        results["lio_write_from_%s" % source] = liquidio_rtt(from_nic, dma_write)
        results["lio_host_rpc_from_%s" % source] = liquidio_rtt(from_nic, host_rpc)

    # CX5 RDMA verbs
    def rdma_rtt(kind):
        sim = Simulator()
        hosts = [CoreGroup(sim, XEON_GOLD_5218, cores=2) for _ in range(2)]
        a = RdmaNic(sim, 0, host_cores=hosts[0])
        b = RdmaNic(sim, 1, host_cores=hosts[1])

        def proc():
            if kind == "rpc":
                yield a.rpc(b, payload_bytes, payload_bytes)
            else:
                yield a.one_sided(b, kind, payload_bytes)
            return sim.now

        p = sim.spawn(proc(), name="rdma")
        sim.run()
        return p.value

    results["cx5_read"] = rdma_rtt("read")
    results["cx5_write"] = rdma_rtt("write")
    results["cx5_atomic"] = rdma_rtt("atomic")
    results["cx5_rpc"] = rdma_rtt("rpc")

    if verbose:
        print_table(
            "Figure 2: roundtrip latency (us), %dB payload" % payload_bytes,
            ["operation", "RTT (us)"],
            sorted(results.items()),
        )
    return results


# ---------------------------------------------------------------------------
# Figure 3 — remote write throughput with/without batching
# ---------------------------------------------------------------------------


def figure3_batching(
    sizes: Tuple[int, ...] = (16, 32, 64, 128, 256),
    n_senders: int = 5,
    ops_per_sender: int = 400,
    verbose: bool = False,
) -> Dict[str, Dict[int, float]]:
    """Remote write throughput (Mops/s) to NIC DRAM and host DRAM, with and
    without batching, plus CX5 RDMA WRITE throughput (§3.4)."""
    out: Dict[str, Dict[int, float]] = {}

    def liquidio_run(size: int, to_host: bool, batched: bool) -> float:
        sim = Simulator()
        fabric = Fabric(sim)
        from ..core.config import XenicConfig
        from ..core.nic_runtime import NicRuntime
        from ..hw.nic import SmartNic

        target = SmartNic(sim, fabric, 0, aggregation=batched)
        # batched mode coalesces contiguous host-memory writes into
        # vectored/merged DMA ops, exactly like the log-append path
        runtime = NicRuntime(
            sim, target,
            XenicConfig(async_dma=batched, ethernet_aggregation=batched),
        )
        senders = [
            SmartNic(sim, fabric, i + 1, aggregation=batched)
            for i in range(n_senders)
        ]
        for s in senders:
            s.set_handler(lambda msg: None)
        completed = [0]
        done = sim.event()

        def handler(msg):
            def proc():
                cost = 0.12 if batched else 16.0 / 71.8
                yield from target.cores.run_wall(cost)
                if to_host:
                    yield runtime.dma_log_append(size)
                else:
                    yield target.nic_dram_access()
                completed[0] += 1
                if completed[0] == n_senders * ops_per_sender:
                    done.succeed(sim.now)
            sim.spawn(proc(), name="h")

        target.set_handler(handler)

        def sender(s):
            for _ in range(ops_per_sender):
                s.send(NetMessage(s.node_id, 0, "w", size + 16, None))
                # offered load high enough to saturate
                yield sim.timeout(0.02)

        for s in senders:
            sim.spawn(sender(s), name="snd")
        end = sim.run_until_event(done)
        return n_senders * ops_per_sender / end  # Mops/s

    def rdma_run(size: int) -> float:
        sim = Simulator()
        hosts = [CoreGroup(sim, XEON_GOLD_5218, cores=4) for _ in range(n_senders + 1)]
        target = RdmaNic(sim, 0, host_cores=hosts[0])
        nics = [RdmaNic(sim, i + 1, host_cores=hosts[i + 1]) for i in range(n_senders)]
        finished = [0]
        done = sim.event()

        def sender(nic):
            outstanding = []
            for _ in range(ops_per_sender):
                outstanding.append(nic.write(target, size))
                if len(outstanding) >= 64:  # doorbell batch window
                    yield outstanding.pop(0)
            for ev in outstanding:
                yield ev
            finished[0] += 1
            if finished[0] == n_senders:
                done.succeed(sim.now)

        for nic in nics:
            sim.spawn(sender(nic), name="s")
        end = sim.run_until_event(done)
        return n_senders * ops_per_sender / end

    for label, to_host, batched in (
        ("nic_dram_batched", False, True),
        ("nic_dram_single", False, False),
        ("host_dram_batched", True, True),
        ("host_dram_single", True, False),
    ):
        out[label] = {size: liquidio_run(size, to_host, batched) for size in sizes}
    out["cx5_rdma"] = {size: rdma_run(size) for size in sizes}

    if verbose:
        rows = []
        for label, by_size in out.items():
            for size, mops in sorted(by_size.items()):
                rows.append([label, size, "%.1f" % mops])
        print_table("Figure 3: remote write throughput (Mops/s)",
                    ["target/mode", "size (B)", "Mops/s"], rows)
    return out


# ---------------------------------------------------------------------------
# Figure 4 — DMA engine throughput and latency
# ---------------------------------------------------------------------------


def figure4_dma(
    sizes: Tuple[int, ...] = (16, 64, 256, 1024),
    total_ops: int = 2000,
    verbose: bool = False,
) -> Dict[str, Dict]:
    """DMA throughput (Mops/s) and per-op latency for single-request and
    full 15-element vectored submissions (§3.5)."""
    results: Dict[str, Dict] = {"throughput": {}, "latency": {}}

    def run(size: int, vector: int, is_read: bool):
        sim = Simulator()
        engine = DmaEngine(sim)
        max_outstanding = 2 * engine.params.queues

        def submitter():
            remaining = total_ops
            outstanding = []
            while remaining > 0:
                n = min(vector, remaining)
                ops = [DmaOp(size=size, is_read=is_read) for _ in range(n)]
                outstanding.append(engine.submit(ops))
                remaining -= n
                yield sim.timeout(engine.submission_cost_us)
                # keep the queues fed without unbounded backlog
                if len(outstanding) >= max_outstanding:
                    yield outstanding.pop(0)
            for ev in outstanding:
                yield ev

        sim.spawn(submitter(), name="sub")
        sim.run()
        tput = total_ops / sim.now
        lat = engine.read_latency.mean if is_read else engine.write_latency.mean
        return tput, lat

    for is_read, tag in ((True, "read"), (False, "write")):
        for vector, vtag in ((1, "x1"), (15, "x15")):
            key = "%s_%s" % (tag, vtag)
            results["throughput"][key] = {}
            results["latency"][key] = {}
            for size in sizes:
                tput, lat = run(size, vector, is_read)
                results["throughput"][key][size] = tput
                results["latency"][key][size] = lat

    if verbose:
        rows = []
        for key in results["throughput"]:
            for size in sizes:
                rows.append([key, size,
                             "%.2f" % results["throughput"][key][size],
                             "%.2f" % results["latency"][key][size]])
        print_table("Figure 4: DMA engine",
                    ["mode", "size (B)", "Mops/s", "latency (us)"], rows)
    return results


# ---------------------------------------------------------------------------
# Table 1 — core performance calibration
# ---------------------------------------------------------------------------


def table1_cores(verbose: bool = False) -> Dict[str, float]:
    """The ARM/Xeon performance ratios that parameterize the CPU model."""
    sim = Simulator()
    host = CoreGroup(sim, XEON_GOLD_5218, cores=1)
    nic = CoreGroup(sim, LIQUIDIO3_CPU, cores=1)
    ratios = {
        "coremark_multi_ratio": XEON_GOLD_5218.coremark_per_thread
        / LIQUIDIO3_CPU.coremark_per_thread,
        "coremark_single_ratio": XEON_GOLD_5218.coremark_single
        / LIQUIDIO3_CPU.coremark_single,
        "model_job_stretch": nic.service_us(1.0) / host.service_us(1.0),
        "nic_host_core_ratio": NIC_HOST_CORE_RATIO,
    }
    if verbose:
        print_table("Table 1: NIC ARM vs host Xeon",
                    ["metric", "value"],
                    [[k, "%.3f" % v] for k, v in ratios.items()])
    return ratios


# ---------------------------------------------------------------------------
# Table 2 — lookup efficiency at 90% occupancy
# ---------------------------------------------------------------------------


@dataclass
class LookupRow:
    structure: str
    objects_read: float
    roundtrips: float


def table2_lookup(n_keys: int = 200000, seed: int = 3,
                  verbose: bool = False) -> List[LookupRow]:
    """Mean objects read and roundtrips per lookup at 90% occupancy for
    Xenic Robinhood (Dm in {8,16,32,unlimited}), FaRM Hopscotch (H=8), and
    DrTM+H chained buckets (B in {4,8,16}).

    The paper uses 8M uniform-random keys; the default here is scaled but
    the occupancy and all structure parameters match.
    """
    from ..sim.rng import RngStream

    rng = RngStream(seed, "table2")
    keys = [rng.randint(0, 1 << 60) for _ in range(n_keys)]
    keys = list(dict.fromkeys(keys))
    rows: List[LookupRow] = []

    def robinhood(dm: Optional[int]) -> LookupRow:
        seg = 8
        capacity = (len(keys) * 10 // 9 // seg) * seg
        if dm is None:
            table = RobinhoodTable.unlimited(capacity, segment_size=seg)
            label = "Xenic Robinhood, no limit"
        else:
            table = RobinhoodTable(capacity, dm=dm, segment_size=seg)
            label = "Xenic Robinhood, Dm=%d" % dm
        for k in keys:
            table.insert(k)
        index = NicIndex(table, cache_capacity=1, value_size=64)
        # first pass warms the index's location hints (steady state);
        # the second pass measures the per-lookup cost
        for k in keys:
            index.miss_cost(k)
        objs = 0
        rts = 0
        for k in keys:
            cost = index.miss_cost(k)
            objs += cost.objects_read
            rts += cost.roundtrips
        return LookupRow(label, objs / len(keys), rts / len(keys))

    for dm in (8, 16, 32, None):
        rows.append(robinhood(dm))

    # FaRM Hopscotch H=8
    capacity = len(keys) * 10 // 9
    hop = HopscotchTable(capacity, neighborhood=8)
    for k in keys:
        hop.insert(k)
    objs = rts = 0
    for k in keys:
        res = hop.lookup(k)
        objs += res.objects_read
        rts += res.roundtrips
    rows.append(LookupRow("FaRM Hopscotch, H=8", objs / len(keys), rts / len(keys)))

    # DrTM+H chained B in {4, 8, 16}
    for b in (4, 8, 16):
        n_buckets = len(keys) * 10 // 9 // b
        table = ChainedTable(n_buckets, bucket_size=b)
        for k in keys:
            table.insert(k)
        objs = rts = 0
        for k in keys:
            res = table.lookup(k)
            objs += res.objects_read
            rts += res.roundtrips
        rows.append(LookupRow("DrTM+H Chained, B=%d" % b,
                              objs / len(keys), rts / len(keys)))

    if verbose:
        print_table("Table 2: lookup cost at 90% occupancy",
                    ["structure", "objects read", "roundtrips"],
                    [[r.structure, "%.2f" % r.objects_read,
                      "%.2f" % r.roundtrips] for r in rows])
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — benchmark throughput/latency curves
# ---------------------------------------------------------------------------

FIG8_SYSTEMS = ("xenic", "drtmh", "drtmh_nc", "fasst", "drtmr")


def _fig8_sweep(workload, workload_kwargs, concurrencies,
                systems=FIG8_SYSTEMS, n_nodes=6, window_us=400.0,
                warmup_us=150.0, verbose=False, title="",
                counted_label=None, network_gbps=None,
                jobs=None) -> Dict[str, List[RunResult]]:
    """Run one curve per system; independent curves fan out across a
    process pool when ``--jobs`` (or ``jobs=``) asks for more than one."""
    from .parallel import SweepSpec, run_sweeps

    specs = [
        SweepSpec(system=system, workload=workload,
                  workload_kwargs=workload_kwargs,
                  concurrencies=tuple(concurrencies), n_nodes=n_nodes,
                  warmup_us=warmup_us, window_us=window_us,
                  counted_label=counted_label, network_gbps=network_gbps)
        for system in systems
    ]
    curves = dict(zip(systems, run_sweeps(specs, jobs=jobs)))
    if verbose:
        print_curves(title, curves)
    return curves


def figure8a_tpcc_new_order(quick: bool = True, verbose: bool = False,
                            systems=FIG8_SYSTEMS):
    """TPC-C New-Order (DrTM+H-style uniform access), 5 systems."""
    n_nodes = 6
    # stock rows dominate contention at reduced scale: provision enough
    # that concurrent new-orders rarely collide (the paper's 100k-item
    # stock tables make conflicts negligible)
    scale = dict(warehouses_per_server=24, stock_per_warehouse=1200,
                 customers_per_warehouse=30) if quick else \
        dict(warehouses_per_server=72, stock_per_warehouse=1400,
             customers_per_warehouse=60)
    conc = (2, 8, 24, 64) if quick else (2, 8, 24, 64, 112, 176)
    return _fig8_sweep(
        "tpcc_no", scale, conc, systems=systems,
        n_nodes=n_nodes, window_us=600.0,
        verbose=verbose, title="Figure 8a: TPC-C New-Order",
    )


def figure8b_tpcc_full(quick: bool = True, verbose: bool = False,
                       systems=("xenic",), network_gbps: float = None):
    """Full TPC-C mix; throughput counts new-orders only (§5.3).

    The paper's DrTM+R comparison point is network-bound (56 Gbps at 72
    warehouses/server); at reduced scale the equivalent regime needs a
    proportionally slower wire, so the default comparison runs both
    systems at a link speed where replication traffic binds."""
    n_nodes = 6
    scale = dict(warehouses_per_server=24, stock_per_warehouse=150,
                 customers_per_warehouse=30) if quick else \
        dict(warehouses_per_server=72, stock_per_warehouse=500,
             customers_per_warehouse=100)
    conc = (2, 8, 24, 64) if quick else (2, 8, 24, 64, 112, 176)
    if network_gbps is None:
        network_gbps = 12.0 if quick else 56.0
    return _fig8_sweep(
        "tpcc", scale, conc, systems=systems, n_nodes=n_nodes,
        window_us=800.0, counted_label="new_order",
        network_gbps=network_gbps, verbose=verbose,
        title="Figure 8b: TPC-C full mix (new-orders/s)",
    )


def figure8c_retwis(quick: bool = True, verbose: bool = False,
                    systems=FIG8_SYSTEMS):
    n_nodes = 6
    keys = 20000 if quick else 50000
    conc = (2, 8, 32, 96) if quick else (2, 8, 32, 96, 160, 256)
    return _fig8_sweep(
        "retwis", dict(keys_per_server=keys), conc,
        systems=systems, n_nodes=n_nodes,
        verbose=verbose, title="Figure 8c: Retwis",
    )


def figure8d_smallbank(quick: bool = True, verbose: bool = False,
                       systems=FIG8_SYSTEMS):
    n_nodes = 6
    accounts = 8000 if quick else 20000
    conc = (2, 16, 64, 160) if quick else (2, 16, 64, 160, 320, 512)
    return _fig8_sweep(
        "smallbank",
        dict(accounts_per_server=accounts, hot_keys_fraction=0.25), conc,
        systems=systems, n_nodes=n_nodes,
        verbose=verbose, title="Figure 8d: Smallbank",
    )


# ---------------------------------------------------------------------------
# Table 3 — minimum thread counts at >= 95% of peak
# ---------------------------------------------------------------------------


def table3_thread_counts(quick: bool = True, verbose: bool = False) -> Dict[str, Dict[str, float]]:
    """Minimum threads sustaining >=95% of peak throughput, per system and
    workload; Xenic NIC threads are Coremark-normalized (x0.31)."""
    n_nodes = 3 if quick else 6
    conc = 64 if quick else 160
    window = 300.0 if quick else 500.0

    def make_wl(name):
        if name == "tpcc_no":
            return TpccNewOrder(n_nodes, warehouses_per_server=4,
                                stock_per_warehouse=400,
                                customers_per_warehouse=50)
        if name == "retwis":
            return Retwis(n_nodes, keys_per_server=10000)
        return Smallbank(n_nodes, accounts_per_server=6000,
                         hot_keys_fraction=0.25)

    def xenic_tput(wl_name, app, workers, nic):
        config = XenicConfig(host_app_threads=app, host_worker_threads=workers,
                             nic_threads=nic)
        bench = Bench("xenic", make_wl(wl_name), n_nodes=n_nodes,
                      xenic_config=config)
        return bench.measure(conc, warmup_us=120.0, window_us=window).throughput_per_server

    def baseline_tput(system, wl_name, threads):
        bench = Bench(system, make_wl(wl_name), n_nodes=n_nodes,
                      baseline_host_threads=threads)
        return bench.measure(conc, warmup_us=120.0, window_us=window).throughput_per_server

    host_grid = [2, 4, 8, 12, 16, 20, 24, 32]
    nic_grid = [4, 8, 12, 16, 20, 24]
    out: Dict[str, Dict[str, float]] = {}
    workloads = ("tpcc_no", "retwis", "smallbank")
    for wl_name in workloads:
        row: Dict[str, float] = {}
        # Xenic: fix generous NIC threads, shrink host; then shrink NIC.
        base_app, base_workers = (8, 10) if wl_name == "tpcc_no" else (2, 3)
        peak = xenic_tput(wl_name, base_app, base_workers, 24)
        nic_needed = 24
        for nic in nic_grid:
            if xenic_tput(wl_name, base_app, base_workers, nic) >= 0.95 * peak:
                nic_needed = nic
                break
        host_needed = base_app + base_workers
        row["xenic_host"] = host_needed
        row["xenic_nic"] = nic_needed
        row["xenic_norm"] = host_needed + nic_needed * NIC_HOST_CORE_RATIO
        for system in ("drtmh", "fasst"):
            peak = baseline_tput(system, wl_name, 32)
            needed = 32
            for t in host_grid:
                if baseline_tput(system, wl_name, t) >= 0.95 * peak:
                    needed = t
                    break
            row[system] = needed
        out[wl_name] = row

    if verbose:
        rows = [[wl,
                 "%.1f (%d, %d)" % (r["xenic_norm"], r["xenic_host"], r["xenic_nic"]),
                 r["drtmh"], r["fasst"]]
                for wl, r in out.items()]
        print_table("Table 3: normalized thread counts",
                    ["benchmark", "Xenic norm (host, NIC)", "DrTM+H", "FaSST"],
                    rows)
    return out


# ---------------------------------------------------------------------------
# Figure 9 — impact of optimizations
# ---------------------------------------------------------------------------


def figure9a_throughput_ablation(quick: bool = True, verbose: bool = False):
    """Retwis throughput, enabling throughput features step by step, plus
    the DrTM+H reference."""
    n_nodes = 3 if quick else 6
    keys = 10000 if quick else 50000
    conc = 96 if quick else 256
    window = 300.0 if quick else 500.0
    results = []
    for label, config in ablation_ladder_throughput():
        bench = Bench("xenic", Retwis(n_nodes, keys_per_server=keys),
                      n_nodes=n_nodes, xenic_config=config)
        r = bench.measure(conc, warmup_us=120.0, window_us=window)
        results.append((label, r.throughput_per_server))
    bench = Bench("drtmh", Retwis(n_nodes, keys_per_server=keys), n_nodes=n_nodes)
    drtmh = bench.measure(conc, warmup_us=120.0, window_us=window)
    results.append(("DrTM+H", drtmh.throughput_per_server))
    if verbose:
        base = results[0][1]
        print_table("Figure 9a: Retwis throughput ablation",
                    ["configuration", "txn/s/server", "vs baseline"],
                    [[label, "%.0f" % tput, "%.2fx" % (tput / base)]
                     for label, tput in results])
    return results


def figure9b_latency_ablation(quick: bool = True, verbose: bool = False):
    """Smallbank median latency at low load, enabling latency features
    step by step, plus the DrTM+H reference."""
    n_nodes = 3 if quick else 6
    accounts = 6000 if quick else 20000
    conc = 2
    window = 400.0
    results = []
    for label, config in ablation_ladder_latency():
        bench = Bench("xenic",
                      Smallbank(n_nodes, accounts_per_server=accounts,
                                hot_keys_fraction=0.25),
                      n_nodes=n_nodes, xenic_config=config)
        r = bench.measure(conc, warmup_us=150.0, window_us=window)
        results.append((label, r.median_latency_us))
    bench = Bench("drtmh",
                  Smallbank(n_nodes, accounts_per_server=accounts,
                            hot_keys_fraction=0.25), n_nodes=n_nodes)
    drtmh = bench.measure(conc, warmup_us=150.0, window_us=window)
    results.append(("DrTM+H", drtmh.median_latency_us))
    if verbose:
        base = results[0][1]
        print_table("Figure 9b: Smallbank latency ablation",
                    ["configuration", "median latency (us)", "vs baseline"],
                    [[label, "%.1f" % lat, "%.2fx" % (lat / base)]
                     for label, lat in results])
    return results


# ---------------------------------------------------------------------------
# §3.1 — off-path SmartNIC comparison
# ---------------------------------------------------------------------------


def offpath_comparison(verbose: bool = False) -> Dict[str, Dict[str, float]]:
    out = {}
    for params in (BLUEFIELD_OFFPATH, STINGRAY_OFFPATH):
        nic = OffPathNic(Simulator(), params)
        out[params.name] = {
            "remote_to_host_write_us": params.remote_to_host_write_us,
            "remote_to_soc_write_us": params.remote_to_soc_write_us,
            "soc_to_host_write_us": params.soc_to_host_write_us,
            "offload_penalty_us": nic.offload_penalty_us(),
        }
    if verbose:
        rows = []
        for name, vals in out.items():
            for metric, v in vals.items():
                rows.append([name, metric, "%.1f" % v])
        print_table("Off-path SmartNIC latency (us), §3.1",
                    ["device", "metric", "us"], rows)
    return out
