"""Fixed-width table and series printers for benchmark output."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["print_table", "print_curves", "format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "nan"
        if math.isinf(cell):
            return "inf" if cell > 0 else "-inf"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return "%.0f" % cell
        if abs(cell) >= 10:
            return "%.1f" % cell
        return "%.2f" % cell
    return str(cell)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    print()
    print("== %s ==" % title)
    print(format_table(headers, rows))


def print_curves(title: str, curves: Dict[str, List]) -> None:
    """Print throughput/latency curves: {system: [RunResult, ...]}."""
    print()
    print("== %s ==" % title)
    headers = ["system", "concurrency", "tput/server (txn/s)",
               "median lat (us)", "p99 (us)", "aborts"]
    rows = []
    for system, results in curves.items():
        for r in results:
            rows.append([system, r.concurrency,
                         "%.0f" % r.throughput_per_server,
                         r.median_latency_us, r.p99_latency_us, r.aborts])
    print(format_table(headers, rows))
