"""Wall-clock performance harness for the simulator *itself*.

Unlike everything else under ``repro.bench`` — which measures the modeled
systems in simulated time — this module measures how fast the simulation
runs in real time, so event-loop regressions are caught the same way
modeling regressions are.

Two kinds of benches:

* **event-loop micro benches** (``timeout_churn``, ``resource_churn``,
  ``anyof_cancel``, ``queue_churn``, ``link_stream``): tight loops over
  one engine primitive, reported as events/second dispatched
  (``queue_churn`` is the scheduler A/B workhorse: near-horizon churn
  against a large standing population of far timers);
* **model-layer micro benches** (``workload_specs``, ``store_probe``,
  ``commit_path``): the layers *above* the engine — workload spec
  generation, Robinhood probe loops, and the no-conflict commit path —
  so regressions in model code are attributed to the right layer;
* **end-to-end benches** (``fig8d_point``, ``retwis_point``,
  ``chaos_seed``): reduced figure sweep points and one chaos seed,
  exercising the full protocol stack.

Results append to a *trajectory* file (``BENCH_simperf.json`` by
default): one entry per recorded run, newest last, so the committed
baseline carries history, not just the latest number.  ``--check``
compares against the last recorded entry at the same scale and fails on
a worse-than-``max_regression``x slowdown (events/second ratio).

Usage::

    python -m repro perf                 # run + compare, informational
    python -m repro perf --check         # exit 1 on >2x regression
    python -m repro perf --update        # append an entry to the file
    PYTHONPATH=src python benchmarks/bench_wallclock.py   # standalone
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.compiled import compiled_available, selected_compiled
from ..sim.core import AnyOf, Simulator, Timeout
from ..sim.equeue import QUEUE_KINDS, selected_queue_kind
from ..sim.fusion import selected_fusion
from ..sim.link import SerialLink
from ..sim.resources import Resource

__all__ = ["run_perf", "run_queue_ab", "run_fusion_ab", "run_compiled_ab",
           "compare_entries",
           "load_trajectory", "append_entry", "baseline_entry",
           "format_results", "format_ab", "format_fusion_ab",
           "format_compiled_ab",
           "measure_scaling", "BENCH_FILE", "SCHEMA", "AB_BENCHES",
           "FUSION_AB_BENCHES", "COMPILED_AB_BENCHES"]

BENCH_FILE = "BENCH_simperf.json"
SCHEMA = 1


# ---------------------------------------------------------------------------
# the benches — each returns (wall_seconds, events_dispatched)
# ---------------------------------------------------------------------------


def _bench_timeout_churn(n: int) -> Tuple[float, int]:
    """Sequential timeout yields: the engine's single hottest pattern."""
    sim = Simulator()

    def churn():
        for _ in range(n):
            yield Timeout(sim, 1.0)

    sim.spawn(churn())
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.events_scheduled


def _bench_resource_churn(n: int) -> Tuple[float, int]:
    """8 contexts contending for a 4-slot resource: acquire/yield/release,
    half the acquisitions queueing."""
    sim = Simulator()
    res = Resource(sim, 4)

    def worker():
        for _ in range(n // 8):
            yield res.acquire()
            yield Timeout(sim, 1.0)
            res.release()

    for _ in range(8):
        sim.spawn(worker())
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.events_scheduled


def _bench_anyof_cancel(n: int) -> Tuple[float, int]:
    """First-of-two races where the loser is a far timeout: exercises
    loser detach + lazy heap deletion/compaction."""
    sim = Simulator()

    def churn():
        for _ in range(n):
            yield AnyOf(sim, [Timeout(sim, 1.0), Timeout(sim, 1000.0)])

    sim.spawn(churn())
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.events_scheduled


def _bench_queue_churn(n: int) -> Tuple[float, int]:
    """Near/far horizon mix: ``n`` sequential 1µs timeouts churning
    against a large standing population of far timers — the queue shape
    of an open-loop sweep, where every node keeps retransmission/lease
    timers parked orders of magnitude past the working band.  The heap
    pays O(log population) sifts (and their cache misses) per churn op;
    the calendar parks the far band in its buckets and keeps churn O(1).
    Only churn events count toward the rate."""
    sim = Simulator()
    standing = 16 * n
    for i in range(standing):
        # Far horizon: ~1s out, irregular spacing, never dispatched.
        Timeout(sim, 1.0e9 + 17.0 * i)
    stamps = []

    def churn():
        # Park past the warmup window, then stamp the wall clock from
        # *inside* the dispatch loop: the timed window covers exactly
        # the n churn events, excluding one-time structure setup on
        # either side (the calendar's first-activation rebalance during
        # warmup, and the far-band activation after the last churn event
        # when run(until) probes for the next entry).
        yield Timeout(sim, 32.0)
        stamps.append(time.perf_counter())
        for _ in range(n):
            yield Timeout(sim, 1.0)
        stamps.append(time.perf_counter())

    sim.spawn(churn())
    # Warm up past the first pops so the calendar pays its one-time
    # first-activation rebalance over the standing population here, not
    # in the timed window: this bench measures steady-state churn.
    sim.run(until=16.0)
    sim.run(until=64.0 + float(n))
    return stamps[1] - stamps[0], n


def _bench_link_stream(n: int) -> Tuple[float, int]:
    """Back-to-back transfers over one serialized link from 4 senders."""
    sim = Simulator()
    link = SerialLink(sim, bandwidth_gbps=100.0, overhead_us=0.1)

    def sender():
        for _ in range(n // 4):
            yield link.transfer(256)

    for _ in range(4):
        sim.spawn(sender())
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0, sim.events_scheduled


def _bench_workload_specs(n: int) -> Tuple[float, int]:
    """Model-layer: transaction-spec generation — mix-table dispatch plus
    Zipf/hotspot key draws — with no simulator in the loop."""
    from ..workloads import Retwis, Smallbank

    streams = [
        Smallbank(3, accounts_per_server=2000,
                  hot_keys_fraction=0.25).generator_for(0, "perf"),
        Retwis(3, keys_per_server=2000).generator_for(0, "perf"),
    ]
    t0 = time.perf_counter()
    for stream in streams:
        nxt = stream.next
        for _ in range(n // len(streams)):
            nxt()
    return time.perf_counter() - t0, n


def _bench_store_probe(n: int) -> Tuple[float, int]:
    """Model-layer: Robinhood probe loop at 50% load, alternating hits
    and misses (the per-key cost behind every NIC index operation)."""
    from ..store.robinhood import RobinhoodTable

    table = RobinhoodTable(capacity=4096, dm=8, segment_size=8)
    for i in range(2048):
        table.insert(i * 7)
    lookup = table.lookup
    t0 = time.perf_counter()
    for i in range(n // 2):
        lookup((i % 2048) * 7)      # hit
        lookup((i % 2048) * 7 + 3)  # miss
    return time.perf_counter() - t0, n


def _bench_commit_path(n: int) -> Tuple[float, int]:
    """Model-layer: the no-conflict commit path — one coordinator running
    disjoint single-key read-write transactions back to back through the
    full Xenic stack (execute, validate, log, commit; 1/3 local keys)."""
    from ..core import XenicCluster
    from ..core.txn import TxnSpec

    sim = Simulator()
    cluster = XenicCluster(sim, 3, keys_per_shard=4096, value_size=64)
    cluster.load_keys(range(1000))
    cluster.prewarm_nic_caches()
    cluster.start()
    proto = cluster.protocols[0]
    done = []

    def driver():
        for i in range(n):
            key = i % 1000
            yield from proto.run_transaction(TxnSpec([key], [key]))
        done.append(True)

    sim.spawn(driver(), name="commit-path")
    t0 = time.perf_counter()
    # background host workers never exit, so run in bounded slices until
    # the driver reports completion
    while not done:
        sim.run(until=sim.now + 10_000.0)
    return time.perf_counter() - t0, sim.events_scheduled


def _bench_fig8d_point(quick: bool) -> Tuple[float, int, int]:
    """One reduced Figure-8d point: Xenic on Smallbank, full protocol
    stack (NIC runtime, DMA, fabric, transactions)."""
    from ..workloads import Smallbank
    from .runner import Bench

    bench = Bench(
        "xenic",
        Smallbank(3, accounts_per_server=2000, hot_keys_fraction=0.25),
        n_nodes=3,
    )
    t0 = time.perf_counter()
    bench.measure(16 if quick else 64, warmup_us=100.0,
                  window_us=300.0 if quick else 800.0)
    wall = time.perf_counter() - t0
    return wall, bench.sim.events_scheduled, bench._total_commits()


def _bench_retwis_point(quick: bool) -> Tuple[float, int, int]:
    """One reduced Retwis point: read-dominated mix with multi-key
    timeline reads, complementing fig8d's write-heavy Smallbank."""
    from ..workloads import Retwis
    from .runner import Bench

    bench = Bench("xenic", Retwis(3, keys_per_server=2000), n_nodes=3)
    t0 = time.perf_counter()
    bench.measure(16 if quick else 64, warmup_us=100.0,
                  window_us=300.0 if quick else 800.0)
    wall = time.perf_counter() - t0
    return wall, bench.sim.events_scheduled, bench._total_commits()


def _bench_nodes64(quick: bool) -> Tuple[float, int, int]:
    """A 64-node Smallbank point: cluster construction, bulk load, and a
    short measurement window at scale.  Exists to keep construction and
    loading O(n_nodes) honest (a quadratic term that is invisible at 3
    nodes dominates here) and to exercise the fused wire/NIC/DMA paths
    across a wide fabric."""
    from ..workloads import Smallbank
    from .runner import Bench

    t0 = time.perf_counter()
    bench = Bench(
        "xenic",
        Smallbank(64, accounts_per_server=250, hot_keys_fraction=0.25),
        n_nodes=64,
    )
    bench.measure(2 if quick else 8, warmup_us=25.0 if quick else 50.0,
                  window_us=50.0 if quick else 250.0)
    wall = time.perf_counter() - t0
    return wall, bench.sim.events_scheduled, bench._total_commits()


def _bench_chaos_seed(quick: bool) -> Tuple[float, int, int]:
    """One seeded chaos run: fault injection + invariant checking."""
    from .chaos import run_chaos

    t0 = time.perf_counter()
    result = run_chaos(system="xenic", seed=3,
                       n_txns=150 if quick else 400, n_nodes=3)
    wall = time.perf_counter() - t0
    # ChaosResult surfaces the engine's real event count (sized so even
    # the quick run schedules >=10k events), making the rate column
    # comparable with the other end-to-end benches.
    return wall, result.events_scheduled, result.commits


# name -> (factory, micro?) ; micro benches take an op count, end-to-end
# benches take the quick flag.
_MICRO_N_QUICK = {
    "timeout_churn": 120_000,
    "resource_churn": 48_000,
    "anyof_cancel": 24_000,
    "queue_churn": 24_000,
    "link_stream": 48_000,
    "workload_specs": 60_000,
    "store_probe": 120_000,
    "commit_path": 1_500,
}
_MICRO_N_FULL = {
    "timeout_churn": 400_000,
    "resource_churn": 160_000,
    "anyof_cancel": 80_000,
    "queue_churn": 80_000,
    "link_stream": 160_000,
    "workload_specs": 200_000,
    "store_probe": 400_000,
    "commit_path": 5_000,
}
_MICRO: Dict[str, Callable[[int], Tuple[float, int]]] = {
    "timeout_churn": _bench_timeout_churn,
    "resource_churn": _bench_resource_churn,
    "anyof_cancel": _bench_anyof_cancel,
    "queue_churn": _bench_queue_churn,
    "link_stream": _bench_link_stream,
    "workload_specs": _bench_workload_specs,
    "store_probe": _bench_store_probe,
    "commit_path": _bench_commit_path,
}
_END_TO_END: Dict[str, Callable[[bool], Tuple[float, int, int]]] = {
    "fig8d_point": _bench_fig8d_point,
    "retwis_point": _bench_retwis_point,
    "nodes64": _bench_nodes64,
    "chaos_seed": _bench_chaos_seed,
}

# Default bench set for the heap-vs-calendar A/B: the queue-sensitive
# engine micro benches plus one end-to-end point.
AB_BENCHES = ["timeout_churn", "anyof_cancel", "queue_churn",
              "link_stream", "fig8d_point"]

# Default bench set for the fusion A/B: the link-layer micro bench plus
# the end-to-end points where fused chains dominate the event count.
FUSION_AB_BENCHES = ["link_stream", "fig8d_point", "nodes64"]

# Default bench set for the compiled-core A/B: the engine-bound micro
# benches (where the C fast paths dominate wall time) plus one
# end-to-end point (where Amdahl dilutes them — see
# docs/PERFORMANCE.md, compiled core).
COMPILED_AB_BENCHES = ["timeout_churn", "anyof_cancel", "queue_churn",
                       "link_stream", "fig8d_point"]


def run_perf(quick: bool = True, repeats: int = 3,
             benches: Optional[List[str]] = None,
             verbose: bool = False) -> Dict[str, Dict[str, float]]:
    """Run the harness; returns ``{bench: {wall_s, events,
    events_per_sec}}`` — end-to-end benches additionally carry ``txns``
    and ``events_per_txn`` (ev/s understates a win when the events
    needed per committed transaction drops) — using the best (minimum)
    wall time of ``repeats`` runs, the standard way to strip scheduler
    noise from wall-clock benchmarks."""
    sizes = _MICRO_N_QUICK if quick else _MICRO_N_FULL
    results: Dict[str, Dict[str, float]] = {}
    for name in benches or list(_MICRO) + list(_END_TO_END):
        if name in _MICRO:
            runs = [_MICRO[name](sizes[name]) for _ in range(repeats)]
        elif name in _END_TO_END:
            runs = [_END_TO_END[name](quick) for _ in range(repeats)]
        else:
            raise ValueError("unknown bench %r (have: %s)" % (
                name, ", ".join(list(_MICRO) + list(_END_TO_END))))
        best = min(runs)
        wall, events = best[0], best[1]
        results[name] = {
            "wall_s": wall,
            "events": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
        }
        if len(best) > 2 and best[2]:
            txns = best[2]
            results[name]["txns"] = txns
            results[name]["events_per_txn"] = events / txns
        if verbose:
            print("%-16s %8.3fs  %10d ev  %12.0f ev/s"
                  % (name, wall, events, results[name]["events_per_sec"]))
    return results


def run_queue_ab(quick: bool = True, repeats: int = 3,
                 benches: Optional[List[str]] = None,
                 ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run the same benches once per queue implementation (``heap`` and
    ``calendar``), returning ``{kind: results}``.  Selection goes
    through ``REPRO_QUEUE`` — every ``Simulator()`` a bench builds reads
    it at construction — and the caller's value is restored on exit."""
    saved = os.environ.get("REPRO_QUEUE")
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    try:
        for kind in QUEUE_KINDS:
            os.environ["REPRO_QUEUE"] = kind
            out[kind] = run_perf(quick=quick, repeats=repeats,
                                 benches=benches or AB_BENCHES)
    finally:
        if saved is None:
            os.environ.pop("REPRO_QUEUE", None)
        else:
            os.environ["REPRO_QUEUE"] = saved
    return out


def run_fusion_ab(quick: bool = True, repeats: int = 3,
                  benches: Optional[List[str]] = None,
                  ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run the same benches once per delay-fusion leg (``off`` then
    ``on``), returning ``{leg: results}``.  Selection goes through
    ``REPRO_FUSION`` — components capture the flag at construction, so
    each bench run builds fresh models on the requested leg — and the
    caller's value is restored on exit.  Simulated results are
    byte-identical between legs (pinned by tests/test_fusion_ab.py);
    what differs is the scheduler work needed to produce them."""
    saved = os.environ.get("REPRO_FUSION")
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    try:
        for kind in ("off", "on"):
            os.environ["REPRO_FUSION"] = kind
            out[kind] = run_perf(quick=quick, repeats=repeats,
                                 benches=benches or FUSION_AB_BENCHES)
    finally:
        if saved is None:
            os.environ.pop("REPRO_FUSION", None)
        else:
            os.environ["REPRO_FUSION"] = saved
    return out


def run_compiled_ab(quick: bool = True, repeats: int = 3,
                    benches: Optional[List[str]] = None,
                    ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run the same benches once per compiled-engine leg (``off`` then
    ``on``), returning ``{leg: results}``.  Selection goes through
    ``REPRO_COMPILED`` — every ``Simulator()`` re-reads it at
    construction and installs/removes the extension's method patches to
    match, so the two legs run in the same process — and the caller's
    value is restored on exit.  Simulated results are byte-identical
    between legs (pinned by tests/test_compiled.py); only wall time
    differs, so the headline metric is the wall ratio.

    Raises RuntimeError when the ``repro.sim._ckern`` extension is not
    importable (there is nothing to A/B against)."""
    if not compiled_available():
        raise RuntimeError(
            "repro.sim._ckern is not importable — build it with "
            "`python setup.py build_ext --inplace` before running "
            "the compiled A/B")
    saved = os.environ.get("REPRO_COMPILED")
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    try:
        for kind in ("off", "on"):
            os.environ["REPRO_COMPILED"] = kind
            out[kind] = run_perf(quick=quick, repeats=repeats,
                                 benches=benches or COMPILED_AB_BENCHES)
    finally:
        if saved is None:
            os.environ.pop("REPRO_COMPILED", None)
        else:
            os.environ["REPRO_COMPILED"] = saved
    return out


def format_fusion_ab(ab: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Per-bench off-vs-on table.  The headline column is the *event*
    ratio (fusion removes scheduler entries outright, so events/second —
    the queue-A/B metric — would understate or even invert the win);
    ev/txn columns appear for the end-to-end benches."""
    off, on = ab.get("off", {}), ab.get("on", {})
    names = [n for n in off if n in on]
    lines = ["%-16s %12s %12s %9s %9s %9s %9s"
             % ("bench", "off ev", "on ev", "ev ratio",
                "wall", "off e/t", "on e/t")]
    for name in names:
        o, n = off[name], on[name]
        ev_ratio = o["events"] / n["events"] if n["events"] else 0.0
        wall_ratio = o["wall_s"] / n["wall_s"] if n["wall_s"] else 0.0
        per_txn = (("%9.1f %9.1f" % (o["events_per_txn"],
                                     n["events_per_txn"]))
                   if "events_per_txn" in o and "events_per_txn" in n
                   else "%9s %9s" % ("-", "-"))
        lines.append("%-16s %12d %12d %8.2fx %8.2fx %s"
                     % (name, o["events"], n["events"], ev_ratio,
                        wall_ratio, per_txn))
    return "\n".join(lines)


def format_compiled_ab(ab: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Per-bench off-vs-on table for the compiled legs.  Event counts
    are identical between legs (same simulation, same schedule), so the
    headline column is the wall-time ratio off/on — >1.0 means the
    compiled leg is faster."""
    off, on = ab.get("off", {}), ab.get("on", {})
    names = [n for n in off if n in on]
    lines = ["%-16s %10s %10s %9s %12s"
             % ("bench", "off wall", "on wall", "speedup", "events")]
    for name in names:
        o, n = off[name], on[name]
        ratio = o["wall_s"] / n["wall_s"] if n["wall_s"] else 0.0
        ev = ("%12d" % o["events"] if o["events"] == n["events"]
              else "%d!=%d" % (o["events"], n["events"]))
        lines.append("%-16s %9.3fs %9.3fs %8.2fx %s"
                     % (name, o["wall_s"], n["wall_s"], ratio, ev))
    return "\n".join(lines)


def format_results(results: Dict[str, Dict[str, float]]) -> str:
    lines = ["%-16s %10s %12s %14s %8s" % ("bench", "wall_s", "events",
                                           "ev/s", "ev/txn")]
    for name, r in results.items():
        per_txn = ("%8.1f" % r["events_per_txn"]
                   if "events_per_txn" in r else "%8s" % "-")
        lines.append("%-16s %10.3f %12d %14.0f %s"
                     % (name, r["wall_s"], r["events"],
                        r["events_per_sec"], per_txn))
    return "\n".join(lines)


def format_ab(ab: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Side-by-side heap/calendar table with the speedup ratio."""
    kinds = list(ab)
    names: List[str] = []
    for results in ab.values():
        for name in results:
            if name not in names:
                names.append(name)
    lines = ["%-16s" % "bench"
             + "".join(" %14s" % ("%s ev/s" % k) for k in kinds)
             + " %10s" % "ratio"]
    for name in names:
        rates = [ab[k].get(name, {}).get("events_per_sec", 0.0)
                 for k in kinds]
        ratio = (rates[-1] / rates[0]
                 if len(rates) > 1 and rates[0] > 0 else 0.0)
        lines.append("%-16s" % name
                     + "".join(" %14.0f" % r for r in rates)
                     + " %9.2fx" % ratio)
    return "\n".join(lines)


def measure_scaling(jobs: int, quick: bool = True) -> Dict[str, float]:
    """Time the same batch of independent curves serially and across a
    ``jobs``-wide pool; ``speedup`` approaches ``jobs`` when enough cores
    are free (a 1-core CI box reports ~1.0 — that is the machine, not a
    regression, which is why --check never gates on this number)."""
    from .parallel import SweepSpec, run_sweeps

    n_curves = max(jobs, 2)
    specs = [
        SweepSpec(system="xenic", workload="smallbank",
                  workload_kwargs=dict(accounts_per_server=1500,
                                       hot_keys_fraction=0.25, seed=i + 1),
                  concurrencies=(8,), n_nodes=3, warmup_us=100.0,
                  window_us=300.0 if quick else 800.0)
        for i in range(n_curves)
    ]
    t0 = time.perf_counter()
    serial = run_sweeps(specs, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_sweeps(specs, jobs=jobs)
    parallel_s = time.perf_counter() - t0
    from .runner import to_jsonable

    identical = to_jsonable(serial) == to_jsonable(parallel)
    return {
        "curves": n_curves,
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# trajectory file
# ---------------------------------------------------------------------------


def load_trajectory(path: str = BENCH_FILE) -> dict:
    if not os.path.exists(path):
        return {"schema": SCHEMA, "trajectory": []}
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise ValueError("%s: unsupported schema %r" % (path, data.get("schema")))
    return data


def append_entry(results: Dict[str, Dict[str, float]], quick: bool,
                 path: str = BENCH_FILE, label: str = "") -> dict:
    """Append one run to the trajectory file and return the entry."""
    data = load_trajectory(path)
    entry = {
        "label": label or "run%d" % (len(data["trajectory"]) + 1),
        "python": platform.python_version(),
        "quick": bool(quick),
        "queue": selected_queue_kind(),
        "fusion": selected_fusion(),
        "compiled": selected_compiled(),
        "compiled_available": compiled_available(),
        "results": results,
    }
    data["trajectory"].append(entry)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entry


def baseline_entry(quick: bool, path: str = BENCH_FILE) -> Optional[dict]:
    """Newest comparable trajectory entry at the same scale, if any.
    Entries annotated ``"stale"`` (recorded under a since-changed bench
    definition — see docs/PERFORMANCE.md, trajectory hygiene) are never
    used as a comparison baseline."""
    data = load_trajectory(path)
    for entry in reversed(data["trajectory"]):
        if entry.get("quick") == bool(quick) and not entry.get("stale"):
            return entry
    return None


def compare_entries(results: Dict[str, Dict[str, float]], baseline: dict,
                    max_regression: float = 2.0) -> List[str]:
    """Compare a fresh run against a baseline entry; returns one message
    per bench regressing by more than ``max_regression``x in
    events/second (an empty list means the run is acceptable)."""
    failures = []
    base_results = baseline.get("results", {})
    for name, r in results.items():
        base = base_results.get(name)
        if base is None:
            continue
        base_rate = base.get("events_per_sec", 0.0)
        rate = r.get("events_per_sec", 0.0)
        if base_rate <= 0 or rate <= 0:
            continue
        slowdown = base_rate / rate
        if slowdown > max_regression:
            failures.append(
                "%s: %.0f ev/s vs baseline %.0f ev/s (%.2fx slower, "
                "limit %.1fx)" % (name, rate, base_rate, slowdown,
                                  max_regression))
    return failures
