"""Parallel sweep execution: fan independent curves across processes.

Every curve of a Figure-8-style comparison (one system, one workload,
one ascending-concurrency sweep) runs in its own :class:`~repro.sim.core.
Simulator`, so curves are embarrassingly parallel.  This module describes
a curve as a picklable :class:`SweepSpec` and runs a batch of them either
serially or across a ``concurrent.futures`` process pool (``--jobs N`` on
the CLI).

Determinism: the serial and parallel paths execute the *same* worker
function (:func:`_run_spec`) on the same specs and merge results in
submission order, so ``--jobs 4`` output is byte-identical to
``--jobs 1`` — each simulation is seeded and single-threaded, and no
result depends on pool scheduling.

Two situations force the serial path: an active observability default
(observers accumulate in-process state the parent must keep), and pool
creation failure (sandboxes without process semaphores).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["SweepSpec", "run_sweeps", "run_chaos_seeds",
           "default_jobs", "set_default_jobs"]

# Process-wide parallelism default, set from the CLI (--jobs): experiment
# entry points that do not take an explicit ``jobs`` argument use this.
_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int) -> None:
    """Install the process-wide ``--jobs`` default (clamped to >= 1)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = max(1, int(jobs))


def default_jobs() -> int:
    return _DEFAULT_JOBS


@dataclass(frozen=True)
class SweepSpec:
    """One curve: everything :func:`repro.bench.runner.run_sweep` needs,
    as plain picklable data (workloads travel as registry name + kwargs,
    not as closures)."""

    system: str
    workload: str  # key in repro.workloads.WORKLOADS
    concurrencies: Tuple[int, ...]
    workload_kwargs: Tuple[Tuple[str, Any], ...] = ()
    counted_label: Optional[str] = None
    n_nodes: int = 6
    warmup_us: float = 150.0
    window_us: float = 500.0
    network_gbps: Optional[float] = None
    baseline_host_threads: Optional[int] = None
    # (fault spec text or FaultSpec, root seed); None inherits the
    # parent's process-wide default at run_sweeps() time.
    faults: Optional[tuple] = None
    label: str = ""

    def __post_init__(self):
        if isinstance(self.workload_kwargs, dict):
            object.__setattr__(self, "workload_kwargs",
                               tuple(sorted(self.workload_kwargs.items())))
        object.__setattr__(self, "concurrencies",
                           tuple(self.concurrencies))
        if not self.label:
            object.__setattr__(self, "label", self.system)


def _run_spec(spec: SweepSpec) -> List["RunResult"]:  # noqa: F821
    """Run one curve.  Executed in a pool worker *or* inline: both paths
    share this exact function, which is what makes them byte-identical."""
    from ..workloads import WORKLOADS
    from . import runner

    prev_faults = runner._DEFAULT_FAULTS
    if spec.faults is not None:
        runner.set_default_faults(spec.faults[0], spec.faults[1])
    else:
        runner.set_default_faults(None)
    try:
        cls = WORKLOADS[spec.workload]
        kwargs = dict(spec.workload_kwargs)

        def factory():
            wl = cls(spec.n_nodes, **kwargs)
            if spec.counted_label is not None:
                wl.counted_label = spec.counted_label
            return wl

        hardware = None
        if spec.network_gbps is not None and spec.network_gbps != 100.0:
            from ..hw.params import testbed_params

            hardware = testbed_params(spec.network_gbps)
        return runner.run_sweep(
            spec.system, factory, list(spec.concurrencies),
            n_nodes=spec.n_nodes, warmup_us=spec.warmup_us,
            window_us=spec.window_us, hardware=hardware,
            baseline_host_threads=spec.baseline_host_threads,
        )
    finally:
        runner._DEFAULT_FAULTS = prev_faults


def _resolve(specs: Sequence[SweepSpec]) -> List[SweepSpec]:
    """Bake the parent's process-wide fault default into each spec so
    pool workers (which may not share our globals under the ``spawn``
    start method) reproduce the serial path's behavior."""
    from . import runner

    inherited = runner._DEFAULT_FAULTS
    if inherited is None:
        return list(specs)
    return [s if s.faults is not None
            else dataclasses.replace(s, faults=inherited)
            for s in specs]


def run_sweeps(specs: Sequence[SweepSpec],
               jobs: Optional[int] = None) -> List[List["RunResult"]]:  # noqa: F821
    """Run a batch of curves; returns one result list per spec, in spec
    order.  ``jobs=None`` uses the CLI default (:func:`set_default_jobs`);
    ``jobs=1`` (or an unusable pool) runs inline."""
    specs = _resolve(specs)
    if jobs is None:
        jobs = _DEFAULT_JOBS
    jobs = max(1, min(int(jobs), len(specs) or 1))
    from . import runner

    if runner._DEFAULT_OBS is not None:
        # Observers append to the parent's _LIVE_OBSERVERS registry and
        # hold unpicklable gauge closures: keep observed runs in-process.
        jobs = 1
    if jobs == 1:
        return [_run_spec(s) for s in specs]
    try:
        import concurrent.futures as cf

        with cf.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_spec, s) for s in specs]
            return [f.result() for f in futures]
    except OSError:
        # No process semaphores / fork support here; fall back quietly.
        return [_run_spec(s) for s in specs]


# ---------------------------------------------------------------------------
# chaos-seed fan-out
# ---------------------------------------------------------------------------


def _run_chaos_seed(kwargs: Dict[str, Any]) -> "ChaosResult":  # noqa: F821
    from .chaos import run_chaos

    return run_chaos(**kwargs)


def run_chaos_seeds(seed_kwargs: Sequence[Dict[str, Any]],
                    jobs: Optional[int] = None) -> List["ChaosResult"]:  # noqa: F821
    """Run independent chaos seeds, optionally across a process pool.

    Results come back in input order.  Runs requesting an observer stay
    serial (observers are not picklable); everything a ChaosResult carries
    otherwise (trace, violation strings, counters) crosses the pool.
    """
    seed_kwargs = list(seed_kwargs)
    if jobs is None:
        jobs = _DEFAULT_JOBS
    jobs = max(1, min(int(jobs), len(seed_kwargs) or 1))
    if jobs > 1 and any(kw.get("obs") for kw in seed_kwargs):
        jobs = 1
    if jobs == 1:
        return [_run_chaos_seed(kw) for kw in seed_kwargs]
    try:
        import concurrent.futures as cf

        with cf.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_chaos_seed, kw) for kw in seed_kwargs]
            return [f.result() for f in futures]
    except OSError:
        return [_run_chaos_seed(kw) for kw in seed_kwargs]
