"""Golden-digest determinism checks for the model layer.

The hard invariant of every wall-clock optimization PR is that the
*simulated* results stay byte-identical per seed: an "optimization" that
changes RNG draw order, event interleaving, or protocol behaviour is a
modeling change, not a speedup.  This module runs one committed seed per
experiment family, collects every simulated metric the run produces into
a canonical JSON payload, and hashes it.  ``tests/test_golden_digest.py``
pins the digests; any model-layer change that shifts simulated behaviour
fails loudly there.

The payloads deliberately include *only* simulated quantities (committed
state, counters, latencies, simulated clock) — never wall-clock times or
Python-level object counts, which optimizations are free to change.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

__all__ = ["canonical_digest", "fig8d_point_payload", "chaos_payload"]


def canonical_digest(payload: Any) -> str:
    """sha256 over the canonical (sorted-keys) JSON form of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fig8d_point_payload(obs: bool = False) -> Dict[str, Any]:
    """Simulated metrics of the reduced Figure-8d point the perf harness
    times (Xenic on Smallbank, 3 nodes, quick window).  ``obs=True`` runs
    the same seed under a live Observer — the digest must not change
    (observer neutrality)."""
    from ..workloads import Smallbank
    from .runner import Bench, to_jsonable

    bench = Bench(
        "xenic",
        Smallbank(3, accounts_per_server=2000, hot_keys_fraction=0.25),
        n_nodes=3,
        obs=obs,
    )
    result = bench.measure(16, warmup_us=100.0, window_us=300.0)
    payload = to_jsonable(result)
    payload["sim_now_us"] = bench.sim.now
    payload["total_commits"] = bench._total_commits()
    payload["total_aborts"] = bench._total_aborts()
    return payload


def chaos_payload(obs: bool = False) -> Dict[str, Any]:
    """Simulated metrics of one committed chaos seed (fault machinery +
    invariant checks), including the final committed value of every key."""
    from .chaos import run_chaos

    result = run_chaos(system="xenic", seed=3, n_txns=40, n_nodes=3,
                       keys=24, obs=obs)
    return {
        "system": result.system,
        "seed": result.seed,
        "commits": result.commits,
        "aborts": result.aborts,
        "limbo": result.limbo,
        "violations": list(result.violations),
        "sim_time_us": result.sim_time_us,
        "fault_summary": result.trace.summary() if result.trace else "",
        "final_values": {str(k): v for k, v in
                         sorted(result.final_values.items())},
    }
