"""Per-transaction event tracing for debugging and analysis.

Wraps a :class:`XenicProtocol` (non-invasively, via method interposition)
to record a timeline of protocol phases for each transaction: PCIe
hand-off, execute, logic, validate, log, commit-report.  Used by the
``trace_transactions`` helper to answer "where does the time go?" —
the same breakdown that drove the §5.7 latency ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..obs.interpose import interpose, remove_interposers

__all__ = ["PhaseSample", "TxnTrace", "Tracer"]


@dataclass
class PhaseSample:
    phase: str
    start_us: float
    end_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class TxnTrace:
    txn_id: int
    label: str
    started_at: float
    committed_at: float = 0.0
    attempts: int = 1
    phases: List[PhaseSample] = field(default_factory=list)

    @property
    def latency_us(self) -> float:
        return self.committed_at - self.started_at

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for sample in self.phases:
            totals[sample.phase] = totals.get(sample.phase, 0.0) + sample.duration_us
        return totals


class Tracer:
    """Interposes on one protocol instance and records phase timelines.

    Built on :mod:`repro.obs.interpose`, so any number of interposers
    (multiple tracers, the observability layer) can stack on the same
    protocol and attach/detach in any order without corrupting the
    wrapped methods.  ``attach``/``detach`` are idempotent.

    Usage::

        tracer = Tracer(cluster.protocols[0])
        ... run transactions ...
        tracer.detach()
        for trace in tracer.traces:
            print(trace.txn_id, trace.phase_totals())
    """

    PHASES = ("_phase_execute", "_run_logic", "_phase_validate",
              "_phase_log", "_phase_commit", "_multihop")

    def __init__(self, protocol, max_traces: int = 10000):
        self.protocol = protocol
        self.sim = protocol.sim
        self.max_traces = max_traces
        self.traces: List[TxnTrace] = []
        self._live: Dict[int, TxnTrace] = {}
        self._attached = False
        self.attach()

    # -- interposition ------------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        proto = self.protocol
        tracer = self

        def rt_factory(call_inner):
            def run_transaction(spec):
                txn = yield from call_inner(spec)
                if len(tracer.traces) < tracer.max_traces:
                    # keep the live entry registered: background phases
                    # (e.g. the COMMIT continuation) finish after the
                    # commit report and still attach their samples
                    trace = tracer._live.setdefault(
                        txn.txn_id,
                        TxnTrace(txn.txn_id, spec.label, txn.started_at),
                    )
                    trace.started_at = txn.started_at
                    trace.committed_at = txn.committed_at
                    trace.attempts = txn.attempts
                    trace.label = spec.label
                    tracer.traces.append(trace)
                    if len(tracer._live) > 4096:
                        tracer._prune()
                return txn

            return run_transaction

        interpose(proto, "run_transaction", self, rt_factory)

        for name in self.PHASES:
            def phase_factory(call_inner, _name=name):
                def wrapper(*args, **kw):
                    txn = args[0]
                    start = tracer.sim.now
                    result = yield from call_inner(*args, **kw)
                    trace = tracer._live.setdefault(
                        txn.txn_id,
                        TxnTrace(txn.txn_id, txn.spec.label, txn.started_at),
                    )
                    trace.phases.append(
                        PhaseSample(_name.lstrip("_"), start, tracer.sim.now))
                    return result

                return wrapper

            interpose(proto, name, self, phase_factory)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        for name in ("run_transaction",) + self.PHASES:
            remove_interposers(self.protocol, name, self)
        self._attached = False
        self._live.clear()

    def _prune(self) -> None:
        for txn_id in [t for t, tr in self._live.items() if tr.committed_at]:
            del self._live[txn_id]

    # -- analysis ------------------------------------------------------------

    def mean_phase_breakdown(self) -> Dict[str, float]:
        """Mean µs per phase across completed traces."""
        totals: Dict[str, float] = {}
        if not self.traces:
            return totals
        for trace in self.traces:
            for phase, dur in trace.phase_totals().items():
                totals[phase] = totals.get(phase, 0.0) + dur
        return {k: v / len(self.traces) for k, v in totals.items()}

    def mean_latency_us(self) -> float:
        if not self.traces:
            return 0.0
        return sum(t.latency_us for t in self.traces) / len(self.traces)
