"""Benchmark harness: experiment runners for every table and figure."""

from .ablations import (
    cache_capacity_sweep,
    displacement_limit_sweep,
    offpath_platform_check,
)
from .experiments import (
    figure2_latency,
    figure3_batching,
    figure4_dma,
    figure8a_tpcc_new_order,
    figure8b_tpcc_full,
    figure8c_retwis,
    figure8d_smallbank,
    figure9a_throughput_ablation,
    figure9b_latency_ablation,
    offpath_comparison,
    table1_cores,
    table2_lookup,
    table3_thread_counts,
)
from .chaos import DEFAULT_CHAOS_FAULTS, ChaosResult, run_chaos
from .parallel import (SweepSpec, default_jobs, run_chaos_seeds, run_sweeps,
                       set_default_jobs)
from .perf import run_perf
from .report import format_table, print_curves, print_table
from .runner import (Bench, RunResult, live_observers, run_point, run_sweep,
                     set_default_faults, set_default_obs, to_jsonable,
                     workload_by_name, write_results_json)
from .trace import PhaseSample, Tracer, TxnTrace

__all__ = [
    "Bench",
    "RunResult",
    "run_point",
    "run_sweep",
    "figure2_latency",
    "figure3_batching",
    "figure4_dma",
    "table1_cores",
    "table2_lookup",
    "figure8a_tpcc_new_order",
    "figure8b_tpcc_full",
    "figure8c_retwis",
    "figure8d_smallbank",
    "table3_thread_counts",
    "figure9a_throughput_ablation",
    "figure9b_latency_ablation",
    "offpath_comparison",
    "cache_capacity_sweep",
    "displacement_limit_sweep",
    "offpath_platform_check",
    "format_table",
    "print_table",
    "print_curves",
    "Tracer",
    "TxnTrace",
    "PhaseSample",
    "ChaosResult",
    "run_chaos",
    "DEFAULT_CHAOS_FAULTS",
    "set_default_faults",
    "set_default_obs",
    "live_observers",
    "to_jsonable",
    "write_results_json",
    "workload_by_name",
    "SweepSpec",
    "run_sweeps",
    "run_chaos_seeds",
    "set_default_jobs",
    "default_jobs",
    "run_perf",
]
