"""Experiment runner: build a cluster, drive closed-loop load, measure.

The measurement methodology mirrors the paper's: closed-loop coordinator
contexts (the paper's coroutines) run transactions back-to-back on every
node; sweeping the context count traces the throughput/median-latency
curves of Figure 8.  Throughput is committed transactions (optionally
filtered by label, e.g. TPC-C counts new-orders only) per simulated second
per server; latency is measured from first attempt to commit report,
retries included.

One cluster is reused across the points of a sweep (ascending
concurrency), so table-loading cost is paid once per curve.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..baselines import SYSTEMS, BaselineCluster
from ..core import XenicCluster, XenicConfig
from ..obs import Observer
from ..sim import LatencyRecorder, Simulator
from ..workloads import WORKLOADS
from ..workloads.base import Workload

__all__ = ["RunResult", "Bench", "run_point", "run_sweep",
           "set_default_faults", "set_default_obs", "live_observers",
           "to_jsonable", "write_results_json", "workload_by_name"]

XENIC = "xenic"
ALL_SYSTEMS = (XENIC, "drtmh", "drtmh_nc", "fasst", "drtmr")

# Process-wide fault-injection default, set from the CLI (--faults): every
# Bench built afterwards runs its experiment under this plan.
_DEFAULT_FAULTS: Optional[tuple] = None

# Process-wide observability default, set from the CLI (--obs /
# --trace-out): every Bench built afterwards installs an Observer, and
# the (observer, bench) pairs are kept so the CLI can export traces
# after the experiment finishes.
_DEFAULT_OBS: Optional[dict] = None
_LIVE_OBSERVERS: List[Tuple[Observer, "Bench"]] = []


def set_default_faults(spec: Optional[str], seed: int = 1234) -> None:
    """Install (or clear, with ``spec=None``) a fault spec applied to every
    subsequently built :class:`Bench` — the ``--faults`` CLI hook."""
    global _DEFAULT_FAULTS
    _DEFAULT_FAULTS = None if spec is None else (spec, seed)


def set_default_obs(enabled: bool, interval_us: float = 20.0) -> None:
    """Enable (or disable) observability on every subsequently built
    :class:`Bench` — the ``--obs``/``--trace-out`` CLI hook."""
    global _DEFAULT_OBS
    _LIVE_OBSERVERS.clear()
    _DEFAULT_OBS = {"interval_us": interval_us} if enabled else None


def live_observers() -> List[Tuple[Observer, "Bench"]]:
    """Observers created under :func:`set_default_obs`, in build order."""
    return list(_LIVE_OBSERVERS)


# ---------------------------------------------------------------------------
# machine-readable results (--json)
# ---------------------------------------------------------------------------


def to_jsonable(obj: Any) -> Any:
    """Recursively convert experiment results (dataclasses, dicts, lists,
    scalars) into JSON-serializable structures; NaN/inf become null."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return None if (math.isnan(obj) or math.isinf(obj)) else obj
    return str(obj)


def write_results_json(path: str, experiment: str, results: Any) -> str:
    """Write one experiment's results as ``{"experiment", "results"}``."""
    payload = {"experiment": experiment, "results": to_jsonable(results)}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def workload_by_name(name: str, n_nodes: int, seed: int = 1) -> Workload:
    """Build a reduced-scale workload by CLI name (trace/metrics
    subcommands; scaled like the test configurations, not the full
    benchmark keyspaces)."""
    if name not in WORKLOADS:
        raise ValueError("unknown workload %r (have: %s)"
                         % (name, ", ".join(sorted(WORKLOADS))))
    cls = WORKLOADS[name]
    if name == "smallbank":
        return cls(n_nodes, accounts_per_server=1500,
                   hot_keys_fraction=0.25, seed=seed)
    if name == "retwis":
        return cls(n_nodes, keys_per_server=1500, seed=seed)
    # tpcc / tpcc_no
    return cls(n_nodes, warehouses_per_server=2, stock_per_warehouse=100,
               customers_per_warehouse=10, seed=seed)


@dataclass
class RunResult:
    system: str
    workload: str
    concurrency: int
    throughput_per_server: float  # counted txns/s per server
    median_latency_us: float
    p99_latency_us: float
    mean_latency_us: float
    commits: int
    aborts: int
    window_us: float
    extra: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            "%s/%s c=%d: %.2fM txn/s/server, median %.1fus, p99 %.1fus"
            % (self.system, self.workload, self.concurrency,
               self.throughput_per_server / 1e6, self.median_latency_us,
               self.p99_latency_us)
        )


class Bench:
    """A (system, workload) pair under closed-loop load."""

    def __init__(
        self,
        system: str,
        workload: Workload,
        n_nodes: int = 6,
        xenic_config: Optional[XenicConfig] = None,
        baseline_host_threads: Optional[int] = None,
        hardware=None,
        seed: int = 7,
        obs=None,
        obs_interval_us: float = 20.0,
    ):
        self.system = system
        self.workload = workload
        self.n_nodes = n_nodes
        self.sim = Simulator()
        self.seed = seed
        if system.startswith(XENIC):
            config = xenic_config
            if config is None:
                config = XenicConfig(
                    host_app_threads=getattr(workload, "xenic_app_threads", 2),
                    host_worker_threads=getattr(
                        workload, "xenic_worker_threads", 3),
                )
            if hardware is not None:
                import dataclasses

                config = dataclasses.replace(config, hardware=hardware)
            self.cluster = XenicCluster(
                self.sim, n_nodes, config=config,
                keys_per_shard=workload.keys_per_shard(),
                value_size=workload.value_size,
                partition=workload.partition,
            )
        elif system in SYSTEMS:
            if baseline_host_threads is None:
                baseline_host_threads = getattr(
                    workload, "baseline_host_threads", 16)
            kw = {}
            if hardware is not None:
                kw["hardware"] = hardware
            self.cluster = BaselineCluster(
                self.sim, n_nodes, SYSTEMS[system],
                host_threads=baseline_host_threads,
                keys_per_shard=workload.keys_per_shard(),
                value_size=workload.value_size,
                partition=workload.partition,
                **kw,
            )
        else:
            raise ValueError("unknown system %r" % system)
        workload.load(self.cluster)
        if system.startswith(XENIC):
            # measure warm-cache steady state (the paper's long-running
            # systems have their hot sets resident in NIC DRAM)
            self.cluster.prewarm_nic_caches()
        self.cluster.start()
        self.fault_plan = None
        if _DEFAULT_FAULTS is not None:
            from ..sim.faults import FaultPlan, FaultSpec
            from ..sim.rng import RngStream

            spec_text, fault_seed = _DEFAULT_FAULTS
            spec = (spec_text if isinstance(spec_text, FaultSpec)
                    else FaultSpec.parse(spec_text))
            self.fault_plan = FaultPlan(
                spec, RngStream(fault_seed, "faults")).install(self.cluster)
        # Observability: an explicit Observer/True wins; otherwise the
        # process-wide default (set_default_obs) applies.
        self.observer: Optional[Observer] = None
        if obs is None and _DEFAULT_OBS is not None:
            obs = True
            obs_interval_us = _DEFAULT_OBS["interval_us"]
        if obs:
            self.observer = (obs if isinstance(obs, Observer)
                             else Observer(self.sim,
                                           sample_interval_us=obs_interval_us))
            self.observer.install(self.cluster)
            if _DEFAULT_OBS is not None:
                _LIVE_OBSERVERS.append((self.observer, self))
        self._contexts = 0
        self._recorder: Optional[LatencyRecorder] = None
        self._counting = False
        self._count = 0
        self._aborts_base = 0
        self.counted_label = getattr(workload, "counted_label", None)
        # Abort accounting: every abort during the measurement window
        # records how deep into the transaction it struck, plus a
        # per-reason counter (lock conflict, validation, ...).
        self._abort_recorder: Optional[LatencyRecorder] = None
        self._abort_reasons: Dict[str, int] = {}
        for proto in self.cluster.protocols:
            proto.on_abort = self._note_abort

    def _note_abort(self, txn) -> None:
        if not self._counting or self._abort_recorder is None:
            return
        self._abort_recorder.record(self.sim.now - txn.started_at)
        reason = getattr(txn, "abort_reason", None) or "unknown"
        self._abort_reasons[reason] = self._abort_reasons.get(reason, 0) + 1

    # -- load generation ------------------------------------------------------------

    def _context(self, node_id: int, stream_id: int):
        gen = self.workload.generator_for(node_id, "ctx%d" % stream_id)
        proto = self.cluster.protocols[node_id]
        while True:
            spec = gen.next()
            start = self.sim.now
            txn = yield from proto.run_transaction(spec)
            if spec.post_commit is not None:
                spec.post_commit()
            latency = self.sim.now - start
            if self._counting and (
                self.counted_label is None or spec.label == self.counted_label
            ):
                self._count += 1
                if self._recorder is not None:
                    self._recorder.record(latency)

    def ensure_contexts(self, concurrency_per_node: int) -> None:
        """Spawn additional contexts up to the requested count per node."""
        while self._contexts < concurrency_per_node:
            i = self._contexts
            for node_id in range(self.n_nodes):
                self.sim.spawn(
                    self._context(node_id, i),
                    name="ctx-%d-%d" % (node_id, i),
                )
            self._contexts += 1

    # -- measurement ------------------------------------------------------------

    def measure(
        self,
        concurrency_per_node: int,
        warmup_us: float = 150.0,
        window_us: float = 500.0,
    ) -> RunResult:
        if concurrency_per_node < self._contexts:
            raise ValueError(
                "sweeps must use ascending concurrency (have %d, asked %d)"
                % (self._contexts, concurrency_per_node)
            )
        self.ensure_contexts(concurrency_per_node)
        self.sim.run(until=self.sim.now + warmup_us)
        self._recorder = LatencyRecorder()
        self._abort_recorder = LatencyRecorder()
        self._abort_reasons = {}
        self._count = 0
        self._counting = True
        aborts0 = self._total_aborts()
        commits0 = self._total_commits()
        events0 = self.sim.events_scheduled
        start = self.sim.now
        self.sim.run(until=start + window_us)
        self._counting = False
        elapsed = self.sim.now - start
        throughput = self._count / elapsed * 1e6 / self.n_nodes if elapsed else 0.0
        rec = self._recorder
        result = RunResult(
            system=self.system,
            workload=self.workload.name,
            concurrency=concurrency_per_node,
            throughput_per_server=throughput,
            median_latency_us=rec.median,
            p99_latency_us=rec.p99,
            mean_latency_us=rec.mean,
            commits=self._total_commits() - commits0,
            aborts=self._total_aborts() - aborts0,
            window_us=elapsed,
            extra=self._utilization_snapshot(),
        )
        # Attached as plain instance attributes, not dataclass fields:
        # to_jsonable() serializes fields only, so pinned result digests
        # (tests/test_golden_digest.py) are unaffected.
        result.abort_latency = self._abort_recorder.summary()
        result.abort_reasons = dict(self._abort_reasons)
        # Scheduler work attribution for this window: queue entries
        # pushed during the measurement window and the same per committed
        # txn — the honest cost metric for delay fusion (REPRO_FUSION),
        # which removes events without moving any simulated timestamp.
        result.events_scheduled = self.sim.events_scheduled - events0
        result.events_per_txn = (
            result.events_scheduled / result.commits if result.commits else 0.0
        )
        return result

    def _total_commits(self) -> int:
        return sum(p.stats.get("commits") for p in self.cluster.protocols)

    def _total_aborts(self) -> int:
        return sum(p.stats.get("aborts") for p in self.cluster.protocols)

    def _utilization_snapshot(self) -> Dict[str, float]:
        extra: Dict[str, float] = {}
        if self.system.startswith(XENIC):
            nodes = self.cluster.nodes
            extra["nic_core_util"] = sum(
                n.nic.cores.utilization() for n in nodes) / len(nodes)
            extra["host_app_util"] = sum(
                n.host_app_cores.utilization() for n in nodes) / len(nodes)
            extra["worker_util"] = sum(
                n.worker_cores.utilization() for n in nodes) / len(nodes)
            extra["eth_util"] = sum(
                n.nic.port.utilization() for n in nodes) / len(nodes)
        else:
            nodes = self.cluster.nodes
            extra["host_util"] = sum(
                n.host_cores.utilization() for n in nodes) / len(nodes)
            extra["wire_util"] = sum(
                n.rdma.utilization() for n in nodes) / len(nodes)
        return extra


def run_point(
    system: str,
    workload: Workload,
    concurrency: int,
    n_nodes: int = 6,
    warmup_us: float = 150.0,
    window_us: float = 500.0,
    xenic_config: Optional[XenicConfig] = None,
    baseline_host_threads: Optional[int] = None,
) -> RunResult:
    bench = Bench(system, workload, n_nodes=n_nodes,
                  xenic_config=xenic_config,
                  baseline_host_threads=baseline_host_threads)
    return bench.measure(concurrency, warmup_us=warmup_us,
                         window_us=window_us)


def run_sweep(
    system: str,
    workload_factory,
    concurrencies: List[int],
    n_nodes: int = 6,
    warmup_us: float = 150.0,
    window_us: float = 500.0,
    xenic_config: Optional[XenicConfig] = None,
    baseline_host_threads: Optional[int] = None,
    hardware=None,
) -> List[RunResult]:
    """Trace one throughput/latency curve (one system, one workload)."""
    bench = Bench(system, workload_factory(), n_nodes=n_nodes,
                  xenic_config=xenic_config,
                  baseline_host_threads=baseline_host_threads,
                  hardware=hardware)
    results = []
    for c in sorted(concurrencies):
        results.append(bench.measure(c, warmup_us=warmup_us,
                                     window_us=window_us))
    return results
