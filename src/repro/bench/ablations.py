"""Design-choice ablations beyond the paper's Figure 9.

DESIGN.md calls out three Xenic design choices worth sweeping:

* NIC object-cache capacity — hit rate vs PCIe read pressure (§4.3.3);
* the Robinhood displacement limit ``Dm`` — lookup read size vs overflow
  rate (§4.1.2);
* the SmartNIC platform requirements of §4.3.4 — what happens to Xenic's
  latency if the NIC's host-memory path is as slow as the measured
  off-path devices.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core import XenicConfig
from ..hw.params import BLUEFIELD_OFFPATH, STINGRAY_OFFPATH
from ..sim.rng import RngStream
from ..store import NicIndex, RobinhoodTable
from ..workloads import Smallbank
from .report import print_table
from .runner import Bench

__all__ = [
    "cache_capacity_sweep",
    "displacement_limit_sweep",
    "offpath_platform_check",
]


def cache_capacity_sweep(
    capacities: Tuple[int, ...] = (64, 512, 4096, 32768, 1 << 20),
    n_nodes: int = 3,
    accounts: int = 6000,
    concurrency: int = 64,
    verbose: bool = False,
) -> List[Dict[str, float]]:
    """Sweep the NIC cache size on Smallbank: as the cache shrinks below
    the hot set, DMA lookups replace NIC-DRAM hits and throughput falls
    while latency rises (§4.3.3)."""
    rows = []
    for cap in capacities:
        config = XenicConfig(nic_cache_capacity=cap)
        bench = Bench(
            "xenic",
            Smallbank(n_nodes, accounts_per_server=accounts,
                      hot_keys_fraction=0.25),
            n_nodes=n_nodes, xenic_config=config,
        )
        r = bench.measure(concurrency, warmup_us=120.0, window_us=300.0)
        hits = sum(n.index.hits for n in bench.cluster.nodes)
        misses = sum(n.index.misses for n in bench.cluster.nodes)
        rows.append({
            "capacity": cap,
            "throughput": r.throughput_per_server,
            "median_us": r.median_latency_us,
            "hit_rate": hits / max(1, hits + misses),
        })
    if verbose:
        print_table(
            "Ablation: NIC cache capacity (Smallbank)",
            ["capacity", "txn/s/server", "median (us)", "hit rate"],
            [[row["capacity"], "%.0f" % row["throughput"],
              "%.1f" % row["median_us"], "%.2f" % row["hit_rate"]]
             for row in rows],
        )
    return rows


def displacement_limit_sweep(
    dms: Tuple[int, ...] = (2, 4, 8, 16, 32),
    n_keys: int = 20000,
    occupancy: float = 0.9,
    verbose: bool = False,
) -> List[Dict[str, float]]:
    """Sweep the Robinhood displacement limit: small Dm keeps DMA reads
    tiny but pushes more keys to overflow buckets (extra roundtrips);
    large Dm does the reverse (§4.1.2)."""
    rng = RngStream(5, "dm-sweep")
    keys = list(dict.fromkeys(rng.randint(0, 1 << 60) for _ in range(n_keys)))
    rows = []
    for dm in dms:
        seg = 8
        capacity = (int(len(keys) / occupancy) // seg) * seg
        table = RobinhoodTable(capacity, dm=dm, segment_size=seg)
        for k in keys:
            table.insert(k)
        index = NicIndex(table, cache_capacity=1, value_size=64)
        for k in keys:
            index.miss_cost(k)  # warm location hints
        objs = rts = 0
        for k in keys:
            cost = index.miss_cost(k)
            objs += cost.objects_read
            rts += cost.roundtrips
        rows.append({
            "dm": dm,
            "objects_read": objs / len(keys),
            "roundtrips": rts / len(keys),
            "overflow_frac": table.overflow_count / len(keys),
        })
    if verbose:
        print_table(
            "Ablation: Robinhood displacement limit",
            ["Dm", "objects/lookup", "roundtrips", "overflow frac"],
            [[row["dm"], "%.2f" % row["objects_read"],
              "%.3f" % row["roundtrips"], "%.3f" % row["overflow_frac"]]
             for row in rows],
        )
    return rows


def offpath_platform_check(
    n_nodes: int = 3,
    accounts: int = 4000,
    verbose: bool = False,
) -> Dict[str, float]:
    """§4.3.4: Xenic's latency edge requires an efficient NIC-to-host
    path.  Re-run Smallbank low-load latency with the PCIe crossing
    inflated to the measured off-path SoC-to-host costs; the advantage
    should evaporate."""
    import dataclasses

    results = {}
    base_cfg = XenicConfig()
    variants = {
        "onpath_liquidio": None,  # stock parameters
        "offpath_bluefield": BLUEFIELD_OFFPATH.soc_to_host_write_us,
        "offpath_stingray": STINGRAY_OFFPATH.soc_to_host_write_us,
    }
    for name, crossing in variants.items():
        cfg = base_cfg
        if crossing is not None:
            hw = base_cfg.hardware
            nic = dataclasses.replace(hw.nic, pcie_crossing_us=crossing)
            cfg = dataclasses.replace(base_cfg,
                                      hardware=dataclasses.replace(hw, nic=nic))
        bench = Bench(
            "xenic",
            Smallbank(n_nodes, accounts_per_server=accounts,
                      hot_keys_fraction=0.25),
            n_nodes=n_nodes, xenic_config=cfg,
        )
        r = bench.measure(2, warmup_us=120.0, window_us=300.0)
        results[name] = r.median_latency_us
    if verbose:
        print_table(
            "Ablation: platform host-memory path (Smallbank median, low load)",
            ["platform", "median latency (us)"],
            [[k, "%.1f" % v] for k, v in results.items()],
        )
    return results
