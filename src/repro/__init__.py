"""Xenic: SmartNIC-Accelerated Distributed Transactions (SOSP '21) —
a simulation-based reproduction.

Public API tour:

* :mod:`repro.sim` — deterministic discrete-event engine (µs clock).
* :mod:`repro.hw` — simulated hardware: SmartNICs, RDMA NICs, DMA engines,
  PCIe, Ethernet fabric, parameterized from the paper's §3 measurements.
* :mod:`repro.store` — Robinhood / Hopscotch / chained hash tables, the
  SmartNIC caching index, B+ trees, and the host-memory log.
* :mod:`repro.core` — the Xenic system: OCC commit protocol, function
  shipping, multi-hop OCC, local fast paths, recovery.
* :mod:`repro.baselines` — DrTM+H, DrTM+H-NC, FaSST, DrTM+R.
* :mod:`repro.workloads` — TPC-C, Retwis, Smallbank.
* :mod:`repro.bench` — per-table/figure experiment harness.

Quickstart::

    from repro import Simulator, XenicCluster, XenicConfig, TxnSpec

    sim = Simulator()
    cluster = XenicCluster(sim, n_nodes=3)
    for key in range(256):
        cluster.load_key(key, value=0)
    cluster.start()

    spec = TxnSpec(read_keys=[1], write_keys=[1],
                   logic=lambda reads, state: {1: reads[1] + 1})
    txn = sim.run_until_event(
        sim.spawn(cluster.protocols[0].run_transaction(spec)))
    sim.run()  # drain the background COMMIT/log application
    print(txn.status, cluster.read_committed_value(1))
"""

from .baselines import SYSTEMS, BaselineCluster, DrTMH, DrTMH_NC, DrTMR, FaSST
from .core import (
    RecoveryManager,
    Transaction,
    TxnSpec,
    TxnStatus,
    XenicCluster,
    XenicConfig,
)
from .sim import Simulator
from .workloads import WORKLOADS, Retwis, Smallbank, TpccFull, TpccNewOrder

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "XenicCluster",
    "XenicConfig",
    "TxnSpec",
    "Transaction",
    "TxnStatus",
    "RecoveryManager",
    "BaselineCluster",
    "DrTMH",
    "DrTMH_NC",
    "FaSST",
    "DrTMR",
    "SYSTEMS",
    "TpccNewOrder",
    "TpccFull",
    "Retwis",
    "Smallbank",
    "WORKLOADS",
    "__version__",
]
