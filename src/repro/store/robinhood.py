"""Xenic's host-side Robinhood hash table (§4.1.2).

A closed (open-addressing) linear-probing table that balances probe
distances by displacement stealing, with the Xenic modifications:

* a global displacement limit ``Dm``; an insertion whose carried element
  reaches ``Dm`` lands in the overflow bucket of its home segment;
* fixed-size segments, each with an optional linked overflow bucket;
* deletion by overflow-swap when possible, else bounded backward shift
  (no tombstones);
* DMA-consistent swapping: insertions compute a move chain and apply it
  from the free end backwards, so a concurrent probe-scan reader never
  misses an existing key (the copy-list construction of §4.1.2 — the
  property test in ``tests/test_store_robinhood.py`` checks exactly this).

The table tracks structural cost metrics (probe lengths, displacement per
segment) that the SmartNIC index uses to size its DMA reads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..sim.stats import OnlineStats
from .object import VersionedObject, mix64

__all__ = ["RobinhoodTable", "InsertResult", "LookupResult", "DeleteResult"]

UNLIMITED = 1 << 30


# Result records are hand-written ``__slots__`` classes: one is allocated
# per table operation, which puts them on both the bulk-load path and the
# NIC index's per-miss lookup path.


class InsertResult:
    __slots__ = ("ok", "swaps", "used_overflow", "moves")

    def __init__(self, ok: bool, swaps: int, used_overflow: bool,
                 moves: List[Tuple[int, int]]):
        self.ok = ok
        self.swaps = swaps  # elements displaced along the way
        self.used_overflow = used_overflow
        # (slot, key) writes in application order
        self.moves = moves


class LookupResult:
    __slots__ = ("found", "probe_len", "in_overflow", "slot", "displacement")

    def __init__(self, found: bool, probe_len: int, in_overflow: bool,
                 slot: Optional[int], displacement: Optional[int]):
        self.found = found
        self.probe_len = probe_len  # slots examined in the main table
        self.in_overflow = in_overflow
        self.slot = slot  # main-table slot if found there
        self.displacement = displacement  # found key's displacement from home


class DeleteResult:
    __slots__ = ("ok", "overflow_swap", "shift_len")

    def __init__(self, ok: bool, overflow_swap: bool, shift_len: int):
        self.ok = ok
        self.overflow_swap = overflow_swap
        # backward-shift distance (0 when overflow-swap used)
        self.shift_len = shift_len


class RobinhoodTable:
    """Closed Robinhood hash table with displacement limit and segments."""

    def __init__(
        self,
        capacity: int,
        dm: int = 8,
        segment_size: int = 8,
        hash_salt: int = 0,
    ):
        if capacity < segment_size:
            raise ValueError("capacity must be >= segment_size")
        if capacity % segment_size != 0:
            raise ValueError("capacity must be a multiple of segment_size")
        if dm < 1:
            raise ValueError("Dm must be >= 1 (use RobinhoodTable.unlimited)")
        self.capacity = capacity
        self.dm = dm
        self.segment_size = segment_size
        self.hash_salt = hash_salt
        self.n_segments = capacity // segment_size
        self._slots: List[Optional[int]] = [None] * capacity
        # home(key) memo: a pure function of (key, salt, capacity), all
        # fixed after construction — probe loops hit it constantly
        self._homes: Dict[int, int] = {}
        self._objects: Dict[int, VersionedObject] = {}
        # overflow buckets per segment: key lists (linked bucket model)
        self._overflow: Dict[int, List[int]] = {}
        # per-segment max displacement of keys whose *home* is in the
        # segment; None marks dirty (recompute lazily)
        self._seg_max_disp: List[Optional[int]] = [0] * self.n_segments
        self.size = 0
        # Aggregate probe-length distribution across every lookup; read by
        # the observability layer (repro.obs) as a gauge/histogram source.
        self.probe_stats = OnlineStats()

    @classmethod
    def unlimited(cls, capacity: int, segment_size: int = 8) -> "RobinhoodTable":
        """A table with no displacement limit (the 'no limit' row of
        Table 2); overflow buckets are never used."""
        table = cls(capacity, dm=1, segment_size=segment_size)
        table.dm = UNLIMITED
        return table

    # -- hashing ------------------------------------------------------------

    def home(self, key: int) -> int:
        h = self._homes.get(key)
        if h is None:
            h = self._homes[key] = mix64(key ^ self.hash_salt) % self.capacity
        return h

    def segment_of_slot(self, slot: int) -> int:
        return slot // self.segment_size

    def segment_of_key(self, key: int) -> int:
        return self.segment_of_slot(self.home(key))

    def _disp(self, key: int, slot: int) -> int:
        return (slot - self.home(key)) % self.capacity

    # -- occupancy ------------------------------------------------------------

    @property
    def occupancy(self) -> float:
        """Main-table occupancy (overflow keys excluded)."""
        in_table = self.size - sum(len(v) for v in self._overflow.values())
        return in_table / self.capacity

    @property
    def overflow_count(self) -> int:
        return sum(len(v) for v in self._overflow.values())

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: int) -> bool:
        return key in self._objects

    # -- objects ------------------------------------------------------------

    def get_object(self, key: int) -> Optional[VersionedObject]:
        return self._objects.get(key)

    def objects(self) -> Iterator[VersionedObject]:
        return iter(self._objects.values())

    # -- insertion ------------------------------------------------------------

    def insert(self, key: int, obj: Optional[VersionedObject] = None) -> InsertResult:
        """Insert ``key``; returns the structural cost of the insertion.

        Raises ``KeyError`` on duplicate insertion and ``RuntimeError``
        when the table is full.
        """
        if key in self._objects:
            raise KeyError("duplicate key %d" % key)
        if obj is None:
            obj = VersionedObject(key)
        # Compute the displacement chain without mutating, then apply the
        # moves from the free end backwards (DMA-consistent order).
        cur_key = key
        cur_disp = 0
        pos = self.home(key)
        cap = self.capacity
        dm = self.dm
        slots = self._slots
        homes = self._homes
        salt = self.hash_salt
        chain: List[Tuple[int, int]] = []  # (slot, key placed there)
        swaps = 0
        scanned = 0
        pending: Dict[int, int] = {}  # virtual writes along the chain
        while True:
            if scanned > cap:
                raise RuntimeError("robinhood table is full")
            if cur_disp >= dm:
                # the carried element hits the limit: it overflows to the
                # bucket of its own home segment
                self._overflow.setdefault(self.segment_of_key(cur_key), []).append(
                    cur_key
                )
                self._mark_dirty_for_key(cur_key)
                self._finalize_insert(key, obj, chain)
                return InsertResult(True, swaps, True, list(reversed(chain)))
            occupant = pending.get(pos, slots[pos])
            if occupant is None:
                chain.append((pos, cur_key))
                break
            occ_home = homes.get(occupant)
            if occ_home is None:
                occ_home = homes[occupant] = mix64(occupant ^ salt) % cap
            occ_disp = (pos - occ_home) % cap
            if occ_disp < cur_disp:
                # steal the slot; carry the occupant forward
                chain.append((pos, cur_key))
                pending[pos] = cur_key
                cur_key, cur_disp = occupant, occ_disp
                swaps += 1
            pos = (pos + 1) % cap
            cur_disp += 1
            scanned += 1
        self._finalize_insert(key, obj, chain)
        return InsertResult(True, swaps, False, list(reversed(chain)))

    def _finalize_insert(
        self, key: int, obj: VersionedObject, chain: List[Tuple[int, int]]
    ) -> None:
        # Apply moves last-first: the element headed to the free slot is
        # written first (duplicating it momentarily), so no key is ever
        # absent from the table during the swap sequence.
        for slot, k in reversed(chain):
            self._slots[slot] = k
            self._mark_dirty_for_key(k)
        self._objects[key] = obj
        self.size += 1

    def insert_steps(self, key: int) -> Iterator[None]:
        """Generator form of :meth:`insert` yielding after each atomic slot
        write — used by the DMA-consistency property test to interleave a
        concurrent reader between steps."""
        if key in self._objects:
            raise KeyError("duplicate key %d" % key)
        obj = VersionedObject(key)
        cur_key, cur_disp, pos = key, 0, self.home(key)
        chain: List[Tuple[int, int]] = []
        pending: Dict[int, int] = {}
        scanned = 0
        overflowed = False
        while True:
            if scanned > self.capacity:
                raise RuntimeError("robinhood table is full")
            if cur_disp >= self.dm:
                self._overflow.setdefault(self.segment_of_key(cur_key), []).append(
                    cur_key
                )
                self._mark_dirty_for_key(cur_key)
                overflowed = True
                break
            occupant = pending.get(pos, self._slots[pos])
            if occupant is None:
                chain.append((pos, cur_key))
                break
            occ_disp = self._disp(occupant, pos)
            if occ_disp < cur_disp:
                chain.append((pos, cur_key))
                pending[pos] = cur_key
                cur_key, cur_disp = occupant, occ_disp
            pos = (pos + 1) % self.capacity
            cur_disp += 1
            scanned += 1
        self._objects[key] = obj
        self.size += 1
        if overflowed:
            yield
        for slot, k in reversed(chain):
            self._slots[slot] = k
            self._mark_dirty_for_key(k)
            yield

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        """Probe for ``key`` from its home slot; falls back to the home
        segment's overflow bucket after ``Dm`` slots."""
        result = self._lookup(key)
        self.probe_stats.add(result.probe_len)
        return result

    def _lookup(self, key: int) -> LookupResult:
        home = self.home(key)
        cap = self.capacity
        dm = self.dm
        limit = dm if dm < cap else cap
        slots = self._slots
        if home + limit < cap:
            # no wraparound within the probe window: skip the per-probe
            # modulo entirely
            pos = home
            for i in range(limit + 1):
                occupant = slots[pos]
                if occupant == key:
                    return LookupResult(True, i + 1, False, pos, i)
                if occupant is None:
                    # An empty slot ends probing (no tombstones by design).
                    return self._overflow_lookup(key, i + 1)
                pos += 1
        else:
            for i in range(limit + 1):
                pos = (home + i) % cap
                occupant = slots[pos]
                if occupant == key:
                    return LookupResult(True, i + 1, False, pos, i)
                if occupant is None:
                    return self._overflow_lookup(key, i + 1)
        return self._overflow_lookup(key, limit + 1)

    def _overflow_lookup(self, key: int, probed: int) -> LookupResult:
        bucket = self._overflow.get(self.segment_of_key(key))
        if bucket and key in bucket:
            return LookupResult(True, probed, True, None, None)
        return LookupResult(False, probed, False, None, None)

    # -- deletion ------------------------------------------------------------

    def delete(self, key: int) -> DeleteResult:
        if key not in self._objects:
            raise KeyError("no such key %d" % key)
        seg = self.segment_of_key(key)
        bucket = self._overflow.get(seg)
        if bucket and key in bucket:
            bucket.remove(key)
            if not bucket:
                del self._overflow[seg]
            del self._objects[key]
            self.size -= 1
            return DeleteResult(True, False, 0)
        res = self.lookup(key)
        assert res.found and res.slot is not None
        slot = res.slot
        # Prefer swapping in an overflow element that may legally occupy
        # this slot (its home precedes the slot within Dm).
        swapped = self._try_overflow_swap(slot)
        if swapped is not None:
            del self._objects[key]
            self.size -= 1
            return DeleteResult(True, True, 0)
        # Backward shift: pull successors with positive displacement back.
        shift = 0
        pos = slot
        while True:
            nxt = (pos + 1) % self.capacity
            occupant = self._slots[nxt]
            if occupant is None or self._disp(occupant, nxt) == 0:
                self._slots[pos] = None
                break
            self._slots[pos] = occupant
            self._mark_dirty_for_key(occupant)
            pos = nxt
            shift += 1
        self._mark_dirty_for_key(key)
        del self._objects[key]
        self.size -= 1
        return DeleteResult(True, False, shift)

    def _try_overflow_swap(self, slot: int) -> Optional[int]:
        """Move an overflow element into ``slot`` if one can legally live
        there; returns the moved key or None.

        Only overflow buckets whose segments contain a home within
        ``(slot - Dm, slot]`` can hold a candidate, so the scan is local.
        """
        span = min(self.dm, self.capacity)
        lo_seg = self.segment_of_slot((slot - span) % self.capacity)
        candidate_segs = set()
        seg = lo_seg
        while True:
            candidate_segs.add(seg)
            if seg == self.segment_of_slot(slot):
                break
            seg = (seg + 1) % self.n_segments
        for seg in candidate_segs:
            bucket = self._overflow.get(seg)
            if not bucket:
                continue
            for k in bucket:
                home = self.home(k)
                disp = (slot - home) % self.capacity
                if disp < self.dm and self._path_full(home, disp):
                    bucket.remove(k)
                    if not bucket:
                        del self._overflow[seg]
                    self._slots[slot] = k
                    self._mark_dirty_for_key(k)
                    return k
        return None

    def _path_full(self, home: int, disp: int) -> bool:
        for i in range(disp):
            if self._slots[(home + i) % self.capacity] is None:
                return False
        return True

    # -- NIC index support ---------------------------------------------------

    def _mark_dirty_for_key(self, key: int) -> None:
        self._seg_max_disp[self.segment_of_key(key)] = None

    def segment_max_displacement(self, seg: int) -> int:
        """d_i: the max displacement among keys whose home lies in segment
        ``seg`` (0 when the segment is empty).  Recomputed lazily."""
        cached = self._seg_max_disp[seg]
        if cached is not None:
            return cached
        lo = seg * self.segment_size
        hi = lo + self.segment_size
        best = 0
        span = min(self.dm if self.dm != UNLIMITED else self.capacity, self.capacity)
        for i in range(self.segment_size + span):
            pos = (lo + i) % self.capacity
            occupant = self._slots[pos]
            if occupant is None:
                continue
            home = self.home(occupant)
            if lo <= home < hi:
                d = self._disp(occupant, pos)
                if d > best:
                    best = d
        self._seg_max_disp[seg] = best
        return best

    def segment_has_overflow(self, seg: int) -> bool:
        return seg in self._overflow

    def overflow_bucket_len(self, seg: int) -> int:
        return len(self._overflow.get(seg, ()))

    # -- invariants (used by property tests) ---------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants; raises AssertionError on violation."""
        seen = set()
        for pos, key in enumerate(self._slots):
            if key is None:
                continue
            assert key in self._objects, "slot key %d missing object" % key
            assert key not in seen, "key %d duplicated in table" % key
            seen.add(key)
            d = self._disp(key, pos)
            if self.dm != UNLIMITED:
                assert d < self.dm or d == 0, (
                    "key %d displacement %d exceeds Dm=%d" % (key, d, self.dm)
                )
            # no empty gap between home and the key (probe reachability)
            assert self._path_full(self.home(key), d), (
                "key %d unreachable: gap before slot %d" % (key, pos)
            )
        for seg, bucket in self._overflow.items():
            for key in bucket:
                assert key in self._objects
                assert key not in seen, "key %d in table and overflow" % key
                seen.add(key)
                assert self.segment_of_key(key) == seg
        assert len(seen) == self.size == len(self._objects)
