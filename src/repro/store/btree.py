"""B+ tree used for TPC-C's coordinator-local tables (§5.2).

TPC-C keeps ORDER / NEW-ORDER / ORDER-LINE and friends in B+ trees local
to their coordinator; manipulating them is the compute-heavy host work
that dominates Xenic's TPC-C host-thread budget (Table 3).  This is a
textbook in-memory B+ tree with ordered iteration, plus an operation cost
model (reference-Xeon µs per traversal level) that the workloads charge to
host cores.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]

# Per-level traversal cost on a reference Xeon thread, calibrated so a
# TPC-C new-order's tree work totals a few microseconds (§5.2 notes the
# B+ tree manipulation is compute-intensive relative to hash ops).
TRAVERSAL_US_PER_LEVEL = 0.12
LEAF_OP_US = 0.25


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []  # internal nodes
        self.values: List[Any] = []  # leaves
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """In-memory B+ tree with linked leaves for range scans."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._height = 1
        self.size = 0

    def __len__(self) -> int:
        return self.size

    @property
    def height(self) -> int:
        return self._height

    def op_cost_us(self) -> float:
        """Reference-Xeon cost of one point operation at current height."""
        return self._height * TRAVERSAL_US_PER_LEVEL + LEAF_OP_US

    # -- point ops ------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self.size += 1
        # split up the path as needed
        while len(node.keys) > self.order:
            mid = len(node.keys) // 2
            right = _Node(node.is_leaf)
            if node.is_leaf:
                right.keys = node.keys[mid:]
                right.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                right.next_leaf = node.next_leaf
                node.next_leaf = right
                up_key = right.keys[0]
            else:
                up_key = node.keys[mid]
                right.keys = node.keys[mid + 1 :]
                right.children = node.children[mid + 1 :]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]
            if path:
                parent, pidx = path.pop()
                parent.keys.insert(pidx, up_key)
                parent.children.insert(pidx + 1, right)
                node = parent
            else:
                new_root = _Node(is_leaf=False)
                new_root.keys = [up_key]
                new_root.children = [node, right]
                self._root = new_root
                self._height += 1
                return

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if absent.  Leaves may underflow
        (lazy deletion) — acceptable for the workload's delete rate."""
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.keys.pop(idx)
            node.values.pop(idx)
            self.size -= 1
            return True
        return False

    # -- scans ------------------------------------------------------------

    def _leftmost_leaf_for(self, key: Any) -> Tuple[_Node, int]:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            # descend to the child that may contain `key`
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node, bisect.bisect_left(node.keys, key)

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) for lo <= key < hi in order."""
        node, idx = self._leftmost_leaf_for(lo)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if key >= hi:
                    return
                yield key, node.values[idx]
                idx += 1
            node = node.next_leaf
            idx = 0

    def min_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0] if node.keys else None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for k, v in zip(node.keys, node.values):
                yield k, v
            node = node.next_leaf
