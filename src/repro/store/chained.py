"""DrTM+H's chained bucket table (§2.2.2, Table 2 comparison).

A closed array of fixed-size ``B``-element main buckets with linked
overflow buckets allocated on demand.  A remote lookup reads whole buckets
along the chain, one roundtrip each — cheap insertion at the cost of read
amplification and extra roundtrips at high occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from .object import VersionedObject, mix64

__all__ = ["ChainedTable", "ChainedLookup"]


@dataclass
class ChainedLookup:
    found: bool
    objects_read: int  # B per bucket traversed
    roundtrips: int  # buckets traversed


class _Bucket:
    __slots__ = ("keys", "next")

    def __init__(self, size: int):
        self.keys: List[Optional[int]] = [None] * size
        self.next: Optional["_Bucket"] = None


class ChainedTable:
    """Fixed-bucket chained hash table."""

    def __init__(self, n_buckets: int, bucket_size: int = 8, hash_salt: int = 0):
        if n_buckets < 1 or bucket_size < 1:
            raise ValueError("need at least one bucket of one slot")
        self.n_buckets = n_buckets
        self.b = bucket_size
        self.hash_salt = hash_salt
        self._buckets = [_Bucket(bucket_size) for _ in range(n_buckets)]
        self._objects: Dict[int, VersionedObject] = {}
        self.size = 0
        self.linked_buckets = 0

    def bucket_index(self, key: int) -> int:
        return mix64(key ^ self.hash_salt) % self.n_buckets

    @property
    def occupancy(self) -> float:
        """Occupancy relative to main-bucket capacity (the paper's metric)."""
        return self.size / (self.n_buckets * self.b)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: int) -> bool:
        bucket = self._buckets[self.bucket_index(key)]
        while bucket is not None:
            if key in bucket.keys:
                return True
            bucket = bucket.next
        return False

    def insert(self, key: int, obj: Optional[VersionedObject] = None) -> int:
        """Insert ``key``; returns the 1-based depth of the bucket used."""
        if key in self:
            raise KeyError("duplicate key %d" % key)
        self._objects[key] = obj if obj is not None else VersionedObject(key)
        bucket = self._buckets[self.bucket_index(key)]
        depth = 1
        while True:
            for i, k in enumerate(bucket.keys):
                if k is None:
                    bucket.keys[i] = key
                    self.size += 1
                    return depth
            if bucket.next is None:
                bucket.next = _Bucket(self.b)
                self.linked_buckets += 1
            bucket = bucket.next
            depth += 1

    def get_object(self, key: int) -> Optional[VersionedObject]:
        return self._objects.get(key)

    def objects(self) -> Iterator[VersionedObject]:
        return iter(self._objects.values())

    def lookup(self, key: int) -> ChainedLookup:
        bucket = self._buckets[self.bucket_index(key)]
        objects = 0
        hops = 0
        while bucket is not None:
            hops += 1
            objects += self.b
            if key in bucket.keys:
                return ChainedLookup(True, objects, hops)
            bucket = bucket.next
        return ChainedLookup(False, objects, hops)

    def delete(self, key: int) -> None:
        bucket = self._buckets[self.bucket_index(key)]
        while bucket is not None:
            for i, k in enumerate(bucket.keys):
                if k == key:
                    bucket.keys[i] = None
                    self.size -= 1
                    self._objects.pop(key, None)
                    return
            bucket = bucket.next
        raise KeyError("no such key %d" % key)
