"""Versioned key-value objects and lock words.

Every object in the database carries the OCC metadata of §2.2.1: a version
counter incremented on each committed write and a lock word naming the
transaction currently holding the write lock (or ``None``).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["VersionedObject", "mix64"]

# Objects larger than this live outside the host hash table behind a
# pointer (§4.1.2), turning one DMA lookup into a region read + a
# single-object read.
LARGE_OBJECT_THRESHOLD = 256


def mix64(x: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mixer used as
    the hash function for all table structures (keys are integers)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class VersionedObject:
    """A database object with OCC metadata."""

    __slots__ = ("key", "value", "size", "version", "lock_owner")

    def __init__(self, key: int, value: Any = None, size: int = 8):
        self.key = key
        self.value = value
        self.size = size
        self.version = 0
        self.lock_owner: Optional[int] = None

    @property
    def locked(self) -> bool:
        return self.lock_owner is not None

    @property
    def is_large(self) -> bool:
        return self.size > LARGE_OBJECT_THRESHOLD

    def try_lock(self, txn_id: int) -> bool:
        """Acquire the write lock; re-entrant for the same transaction."""
        if self.lock_owner is None or self.lock_owner == txn_id:
            self.lock_owner = txn_id
            return True
        return False

    def unlock(self, txn_id: int) -> None:
        if self.lock_owner != txn_id:
            raise RuntimeError(
                "txn %d unlocking object %d held by %r"
                % (txn_id, self.key, self.lock_owner)
            )
        self.lock_owner = None

    def commit_write(self, value: Any) -> None:
        """Install a new value and bump the version (lock must be held)."""
        self.value = value
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover
        return "<Obj %d v%d%s>" % (
            self.key,
            self.version,
            " L" if self.locked else "",
        )
