"""FaRM's Hopscotch hash table (§2.2.2, Table 2 comparison).

Every key lives within a fixed neighborhood of ``H`` slots starting at its
home position (FaRM publishes H=8).  Insertion finds a free slot by linear
probing and then "hops" it backwards into the neighborhood by displacing
elements whose own neighborhoods still cover the free slot.  When no hop
sequence exists, the key goes to the home bucket's overflow chain.

A remote lookup reads the whole H-slot neighborhood in one roundtrip and
pays a second roundtrip for overflow keys — the read-amplification /
roundtrip trade-off Table 2 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .object import mix64

__all__ = ["HopscotchTable", "HopscotchLookup"]


@dataclass
class HopscotchLookup:
    found: bool
    objects_read: int  # H for in-table, H + overflow scan otherwise
    roundtrips: int
    in_overflow: bool


class HopscotchTable:
    """Hopscotch hash table with per-home overflow chains."""

    def __init__(self, capacity: int, neighborhood: int = 8, hash_salt: int = 0):
        if neighborhood < 1:
            raise ValueError("neighborhood must be >= 1")
        if capacity < neighborhood:
            raise ValueError("capacity must be >= neighborhood")
        self.capacity = capacity
        self.h = neighborhood
        self.hash_salt = hash_salt
        self._slots: List[Optional[int]] = [None] * capacity
        self._overflow: Dict[int, List[int]] = {}
        self.size = 0

    def home(self, key: int) -> int:
        return mix64(key ^ self.hash_salt) % self.capacity

    @property
    def occupancy(self) -> float:
        in_table = self.size - self.overflow_count
        return in_table / self.capacity

    @property
    def overflow_count(self) -> int:
        return sum(len(v) for v in self._overflow.values())

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: int) -> bool:
        home = self.home(key)
        for i in range(self.h):
            if self._slots[(home + i) % self.capacity] == key:
                return True
        return key in self._overflow.get(home, ())

    # -- insertion ------------------------------------------------------------

    def insert(self, key: int) -> bool:
        """Insert ``key``; returns True if it landed in the main table,
        False if it overflowed.  Raises on duplicates."""
        if key in self:
            raise KeyError("duplicate key %d" % key)
        home = self.home(key)
        free = self._find_free(home)
        if free is None:
            return self._push_overflow(home, key)
        # hop the free slot back until it falls inside the neighborhood
        while self._dist(home, free) >= self.h:
            moved = self._hop_closer(free)
            if moved is None:
                return self._push_overflow(home, key)
            free = moved
        self._slots[free] = key
        self.size += 1
        return True

    def _push_overflow(self, home: int, key: int) -> bool:
        self._overflow.setdefault(home, []).append(key)
        self.size += 1
        return False

    def _dist(self, home: int, slot: int) -> int:
        return (slot - home) % self.capacity

    def _find_free(self, home: int, max_probe: int = 512) -> Optional[int]:
        for i in range(min(max_probe, self.capacity)):
            pos = (home + i) % self.capacity
            if self._slots[pos] is None:
                return pos
        return None

    def _hop_closer(self, free: int) -> Optional[int]:
        """Move some earlier element into ``free`` so the free slot moves
        at least one position towards the home; returns the new free slot."""
        for back in range(self.h - 1, 0, -1):
            cand = (free - back) % self.capacity
            occupant = self._slots[cand]
            if occupant is None:
                continue
            occ_home = self.home(occupant)
            # occupant may move to `free` only if free stays within its
            # own neighborhood
            if self._dist(occ_home, free) < self.h:
                self._slots[free] = occupant
                self._slots[cand] = None
                return cand
        return None

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: int) -> HopscotchLookup:
        """Remote-lookup cost model: one read of the H-slot neighborhood,
        plus one overflow-chain roundtrip if needed."""
        home = self.home(key)
        for i in range(self.h):
            if self._slots[(home + i) % self.capacity] == key:
                return HopscotchLookup(True, self.h, 1, False)
        chain = self._overflow.get(home, [])
        if key in chain:
            return HopscotchLookup(True, self.h + len(chain), 2, True)
        return HopscotchLookup(False, self.h + len(chain), 2 if chain else 1, False)

    def delete(self, key: int) -> None:
        home = self.home(key)
        for i in range(self.h):
            pos = (home + i) % self.capacity
            if self._slots[pos] == key:
                self._slots[pos] = None
                self.size -= 1
                return
        chain = self._overflow.get(home)
        if chain and key in chain:
            chain.remove(key)
            if not chain:
                del self._overflow[home]
            self.size -= 1
            return
        raise KeyError("no such key %d" % key)
