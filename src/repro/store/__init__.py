"""Data stores: Robinhood/Hopscotch/chained tables, NIC index, B+ tree, log."""

from .btree import BPlusTree
from .chained import ChainedLookup, ChainedTable
from .hopscotch import HopscotchLookup, HopscotchTable
from .log import HostLog, LogRecord, record_size_bytes
from .nic_index import DmaLookupCost, NicIndex, TxnMeta
from .object import LARGE_OBJECT_THRESHOLD, VersionedObject, mix64
from .robinhood import DeleteResult, InsertResult, LookupResult, RobinhoodTable

__all__ = [
    "VersionedObject",
    "mix64",
    "LARGE_OBJECT_THRESHOLD",
    "RobinhoodTable",
    "InsertResult",
    "LookupResult",
    "DeleteResult",
    "HopscotchTable",
    "HopscotchLookup",
    "ChainedTable",
    "ChainedLookup",
    "NicIndex",
    "TxnMeta",
    "DmaLookupCost",
    "BPlusTree",
    "HostLog",
    "LogRecord",
    "record_size_bytes",
]
