"""The SmartNIC caching index (§4.1.3).

NIC-resident metadata for the host-side Robinhood table:

* **transaction metadata** — lock word and version counter for objects
  touched by ongoing transactions.  Locks live *only* here (§4.2.1a); the
  version here is authoritative for the primary shard, with the host copy
  catching up when the Robinhood workers apply the log.
* **object cache** — hot values served from NIC DRAM, with LRU eviction
  and commit pinning: a freshly committed value is pinned until the host
  acknowledges applying the log entry, so a DMA lookup can never observe a
  stale host value (§4.2 step 6).
* **displacement hints** — per-segment ``d_i`` (max displacement of keys
  homed in the segment) plus a ``k``-slot slack; these bound the size of
  the single DMA read that serves a cache miss, and a second adjacent read
  (or overflow-page read) covers stale hints and overflow keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .robinhood import RobinhoodTable

__all__ = ["NicIndex", "TxnMeta", "DmaLookupCost"]

# Per-slot bytes transferred beyond the value itself: key, version/lock
# word, displacement byte, padding.
SLOT_HEADER_BYTES = 16
POINTER_SLOT_BYTES = 24


class TxnMeta:
    """Lock/version metadata for one object, resident in NIC DRAM.

    Slotted (one instance per concurrently-touched key on the commit
    hot path)."""

    __slots__ = ("lock_owner", "version")

    def __init__(self, lock_owner: Optional[int] = None, version: int = 0):
        self.lock_owner = lock_owner
        self.version = version

    @property
    def locked(self) -> bool:
        return self.lock_owner is not None


class DmaLookupCost:
    """Cost descriptor for one cache-miss lookup against host memory
    (slotted: one per DMA miss)."""

    __slots__ = ("found", "objects_read", "roundtrips", "first_read_bytes",
                 "second_read_bytes", "extra_object_bytes")

    def __init__(
        self,
        found: bool,
        objects_read: int,
        roundtrips: int,  # DMA roundtrips (1 common, 2 on stale hint/overflow)
        first_read_bytes: int,
        second_read_bytes: int,
        extra_object_bytes: int,  # large-object pointer chase (extra DMA op)
    ):
        self.found = found
        self.objects_read = objects_read
        self.roundtrips = roundtrips
        self.first_read_bytes = first_read_bytes
        self.second_read_bytes = second_read_bytes
        self.extra_object_bytes = extra_object_bytes

    @property
    def total_bytes(self) -> int:
        return self.first_read_bytes + self.second_read_bytes + self.extra_object_bytes


class NicIndex:
    """Caching index over one host-side Robinhood table."""

    def __init__(
        self,
        host_table: RobinhoodTable,
        cache_capacity: int = 4096,
        k_slack: int = 1,
        value_size: int = 64,
    ):
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        self.host_table = host_table
        self.cache_capacity = cache_capacity
        self.k = k_slack
        self.value_size = value_size
        self._meta: Dict[int, TxnMeta] = {}
        # key -> (value, pinned_count); ordered for LRU
        self._cache: "OrderedDict[int, list]" = OrderedDict()
        # exact location hints learned from past DMA reads: key ->
        # displacement observed in the host table.  Stale hints are safe:
        # the lookup falls back to a second adjacent read (§4.1.3).
        self._loc_hints: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.pins_blocked_eviction = 0

    # -- transaction metadata ----------------------------------------------

    def meta_for(self, key: int, create: bool = False) -> Optional[TxnMeta]:
        meta = self._meta.get(key)
        if meta is None and create:
            host_obj = self.host_table.get_object(key)
            meta = TxnMeta(version=host_obj.version if host_obj else 0)
            self._meta[key] = meta
        return meta

    def try_lock(self, key: int, txn_id: int) -> bool:
        meta = self.meta_for(key, create=True)
        if meta.lock_owner is None or meta.lock_owner == txn_id:
            meta.lock_owner = txn_id
            return True
        return False

    def is_locked(self, key: int, txn_id: Optional[int] = None) -> bool:
        """True when locked (by anyone other than ``txn_id``, if given)."""
        meta = self._meta.get(key)
        if meta is None or meta.lock_owner is None:
            return False
        return meta.lock_owner != txn_id

    def unlock(self, key: int, txn_id: int) -> None:
        meta = self._meta.get(key)
        if meta is None or meta.lock_owner != txn_id:
            raise RuntimeError(
                "txn %d unlocking key %d it does not hold" % (txn_id, key)
            )
        meta.lock_owner = None
        self._maybe_purge(key)

    def read_version(self, key: int) -> int:
        meta = self._meta.get(key)
        if meta is not None:
            return meta.version
        host_obj = self.host_table.get_object(key)
        return host_obj.version if host_obj else 0

    def apply_commit(self, key: int, value: Any) -> int:
        """Install a committed write: bump the authoritative version,
        refresh + pin the cache entry (evictable only after log ack).
        Returns the new version."""
        meta = self.meta_for(key, create=True)
        meta.version += 1
        self.install_cache(key, value, pin=True)
        return meta.version

    def log_acked(self, key: int) -> None:
        """Host applied the committed write; the cache entry may be
        evicted and idle metadata purged."""
        entry = self._cache.get(key)
        if entry is not None and entry[1] > 0:
            entry[1] -= 1
        self._maybe_purge(key)

    def _maybe_purge(self, key: int) -> None:
        meta = self._meta.get(key)
        if meta is None or meta.locked:
            return
        entry = self._cache.get(key)
        if entry is not None and entry[1] > 0:
            return
        host_obj = self.host_table.get_object(key)
        # keep metadata while the host copy is behind (version mismatch)
        if host_obj is not None and host_obj.version == meta.version and entry is None:
            del self._meta[key]

    # -- object cache --------------------------------------------------------

    def cache_lookup(self, key: int) -> Tuple[bool, Any]:
        entry = self._cache.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        self._cache.move_to_end(key)
        self.hits += 1
        return True, entry[0]

    def cache_contains(self, key: int) -> bool:
        return key in self._cache

    def install_cache(self, key: int, value: Any, pin: bool = False) -> None:
        entry = self._cache.get(key)
        if entry is not None:
            entry[0] = value
            if pin:
                entry[1] += 1
            self._cache.move_to_end(key)
            return
        self._evict_to_fit()
        self._cache[key] = [value, 1 if pin else 0]

    def pin(self, key: int) -> None:
        entry = self._cache.get(key)
        if entry is None:
            raise KeyError("pin of uncached key %d" % key)
        entry[1] += 1

    def is_pinned(self, key: int) -> bool:
        entry = self._cache.get(key)
        return entry is not None and entry[1] > 0

    def _evict_to_fit(self) -> None:
        while len(self._cache) >= self.cache_capacity:
            victim = None
            for k, entry in self._cache.items():
                if entry[1] == 0:
                    victim = k
                    break
                self.pins_blocked_eviction += 1
            if victim is None:
                # everything pinned: allow temporary over-capacity rather
                # than violating the stale-read protection
                return
            del self._cache[victim]
            self.evictions += 1
            self._maybe_purge(victim)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- DMA lookup cost (cache miss path) -----------------------------------

    def miss_cost(self, key: int) -> DmaLookupCost:
        """Size the DMA read(s) needed to fetch ``key`` from host memory.

        If a past read left an exact location hint for this key, the read
        covers exactly ``[home, home + hint]``; otherwise the segment's
        d_i hint plus the k-slot slack bounds it (§4.1.3).  Either way a
        stale hint falls back to a second adjacent read.  The observed
        location is (re)recorded so steady-state lookups of indexed keys
        read the minimal region.
        """
        table = self.host_table
        seg = table.segment_of_key(key)
        seg_overflowed = table.segment_has_overflow(seg)
        dm = min(table.dm, table.capacity)
        slot_bytes = self.value_size + SLOT_HEADER_BYTES

        res = table.lookup(key)
        loc = self._loc_hints.get(key)
        if loc is not None:
            hint_span = min(loc + 1, dm + 1)
        else:
            d_i = table.segment_max_displacement(seg)
            hint_span = min(d_i + self.k + 1, dm + 1)
        # learn the key's location from this read for next time
        if res.found and not res.in_overflow and res.displacement is not None:
            self._loc_hints[key] = res.displacement
        else:
            self._loc_hints.pop(key, None)

        first_span = hint_span
        first_bytes = first_span * slot_bytes
        second_span = 0
        second_bytes = 0
        roundtrips = 1
        if res.found and not res.in_overflow and res.displacement is not None:
            if res.displacement >= first_span:
                # stale hint: second, adjacent read up to the limit
                second_span = (dm + 1) - first_span
                second_bytes = second_span * slot_bytes
                roundtrips = 2
        elif res.found and res.in_overflow:
            # overflow page read (d_i == Dm case reads it directly as the
            # second access)
            second_span = max(1, table.overflow_bucket_len(seg))
            second_bytes = second_span * slot_bytes
            roundtrips = 2
        elif not res.found:
            if seg_overflowed:
                second_span = max(1, table.overflow_bucket_len(seg))
                second_bytes = second_span * slot_bytes
                roundtrips = 2

        extra = 0
        obj = table.get_object(key)
        if obj is not None and obj.is_large:
            # table slot holds a pointer; chase it with one more DMA op
            first_bytes = first_span * POINTER_SLOT_BYTES
            second_bytes = second_span * POINTER_SLOT_BYTES
            extra = obj.size
        return DmaLookupCost(
            found=res.found,
            objects_read=first_span + second_span,
            roundtrips=roundtrips,
            first_read_bytes=first_bytes,
            second_read_bytes=second_bytes,
            extra_object_bytes=extra,
        )
