"""Host-memory transaction log and Robinhood worker drain (§4.2).

The NIC appends LOG / COMMIT records to a hugepage region of host memory
via DMA writes; host-side worker threads poll the log, apply write sets to
the primary/backup tables off the critical path, and acknowledge so the
NIC can reclaim log space and unpin cache entries (§4.2 steps 5-7).

The log is modeled as a bounded ring of records.  Space exhaustion (hosts
falling behind) back-pressures appends, which is a real behaviour worth
keeping: an undersized log or too few workers throttles commit throughput.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["LogRecord", "HostLog"]

LOG_KIND_REPLICATE = "log"  # backup replication record
LOG_KIND_COMMIT = "commit"  # primary commit record

# Record framing bytes: txn id, kind, shard, count, checksum.
RECORD_HEADER_BYTES = 24
PER_WRITE_HEADER_BYTES = 16  # key + version per write-set element


class LogRecord:
    """One appended record (slotted: two per committed transaction on
    the hot path — a replication record per backup and a commit record)."""

    __slots__ = ("txn_id", "kind", "shard", "writes", "acked")

    def __init__(
        self,
        txn_id: int,
        kind: str,
        shard: int,
        writes: List[Tuple[int, object, int]],  # (key, value, version)
        acked: bool = False,
    ):
        self.txn_id = txn_id
        self.kind = kind
        self.shard = shard
        self.writes = writes
        self.acked = acked

    @property
    def size_bytes(self) -> int:
        payload = sum(
            PER_WRITE_HEADER_BYTES + getattr(v, "size", 8) if hasattr(v, "size")
            else PER_WRITE_HEADER_BYTES + 8
            for _k, v, _ver in self.writes
        )
        return RECORD_HEADER_BYTES + payload


def record_size_bytes(n_writes: int, value_size: int) -> int:
    """Wire/DMA size of a log record carrying ``n_writes`` values."""
    return RECORD_HEADER_BYTES + n_writes * (PER_WRITE_HEADER_BYTES + value_size)


class HostLog:
    """Bounded in-memory log with append/poll/ack."""

    def __init__(self, capacity_records: int = 1 << 16):
        if capacity_records < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity_records
        self._records: List[LogRecord] = []
        self._applied = 0  # index of next record to apply
        self._reclaimed = 0  # records dropped from the front
        self.appended = 0
        self.acked = 0
        self._on_ack: Optional[Callable[[LogRecord], None]] = None

    def set_ack_handler(self, fn: Callable[[LogRecord], None]) -> None:
        """Called for each record when the host acknowledges applying it
        (the NIC uses this to unpin cache entries)."""
        self._on_ack = fn

    @property
    def pending(self) -> int:
        """Records appended but not yet applied by workers."""
        return len(self._records) - (self._applied - self._reclaimed)

    @property
    def in_log(self) -> int:
        return len(self._records)

    @property
    def full(self) -> bool:
        return len(self._records) >= self.capacity

    def append(self, record: LogRecord) -> bool:
        """NIC-side append; returns False when the log is full
        (back-pressure: the caller must retry after acks)."""
        if self.full:
            return False
        self._records.append(record)
        self.appended += 1
        return True

    def poll(self, max_records: int = 16) -> List[LogRecord]:
        """Worker-side: fetch the next unapplied records."""
        start = self._applied - self._reclaimed
        batch = self._records[start : start + max_records]
        self._applied += len(batch)
        return batch

    def ack(self, record: LogRecord) -> None:
        """Worker finished applying ``record``; reclaim prefix space."""
        if record.acked:
            raise RuntimeError("double ack of txn %d record" % record.txn_id)
        record.acked = True
        self.acked += 1
        if self._on_ack is not None:
            self._on_ack(record)
        # reclaim the contiguous acked prefix
        while self._records and self._records[0].acked:
            self._records.pop(0)
            self._reclaimed += 1

    def stats(self) -> Dict[str, int]:
        return {
            "appended": self.appended,
            "acked": self.acked,
            "pending": self.pending,
            "in_log": self.in_log,
        }
