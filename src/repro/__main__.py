"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro list
    python -m repro fig2
    python -m repro fig8d --full
    python -m repro tab2 --keys 50000
    python -m repro ablation-cache

Each command prints the same rows/series the paper reports; ``--full``
switches from the quick CI scale to a larger (slower) configuration.

Fault injection (``docs/FAULTS.md``)::

    python -m repro chaos --faults "drop=0.02,dup=0.01" --seeds 20 --check
    python -m repro fig8d --faults "delay=0.05:8" --fault-seed 7

``chaos`` runs seeded randomized fault schedules against the invariant
checker; ``--faults`` on any experiment runs that experiment under the
given fault plan.
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    DEFAULT_CHAOS_FAULTS,
    cache_capacity_sweep,
    displacement_limit_sweep,
    figure2_latency,
    figure3_batching,
    figure4_dma,
    figure8a_tpcc_new_order,
    figure8b_tpcc_full,
    figure8c_retwis,
    figure8d_smallbank,
    figure9a_throughput_ablation,
    figure9b_latency_ablation,
    offpath_comparison,
    offpath_platform_check,
    run_chaos,
    set_default_faults,
    table1_cores,
    table2_lookup,
    table3_thread_counts,
)

COMMANDS = {
    "fig2": ("Figure 2: remote-op roundtrip latency",
             lambda a: figure2_latency(verbose=True)),
    "fig3": ("Figure 3: batched vs single remote writes",
             lambda a: figure3_batching(
                 sizes=(16, 64, 256),
                 ops_per_sender=1000 if a.full else 250, verbose=True)),
    "fig4": ("Figure 4: DMA engine throughput/latency",
             lambda a: figure4_dma(
                 sizes=(16, 64, 256),
                 total_ops=6000 if a.full else 1200, verbose=True)),
    "tab1": ("Table 1: ARM vs Xeon calibration",
             lambda a: table1_cores(verbose=True)),
    "tab2": ("Table 2: lookup cost at 90% occupancy",
             lambda a: table2_lookup(n_keys=a.keys, verbose=True)),
    "fig8a": ("Figure 8a: TPC-C New-Order curves",
              lambda a: figure8a_tpcc_new_order(quick=not a.full,
                                                verbose=True)),
    "fig8b": ("Figure 8b: full TPC-C mix",
              lambda a: figure8b_tpcc_full(quick=not a.full, verbose=True,
                                           systems=("xenic", "drtmr"))),
    "fig8c": ("Figure 8c: Retwis curves",
              lambda a: figure8c_retwis(quick=not a.full, verbose=True)),
    "fig8d": ("Figure 8d: Smallbank curves",
              lambda a: figure8d_smallbank(quick=not a.full, verbose=True)),
    "tab3": ("Table 3: thread counts at >=95% of peak",
             lambda a: table3_thread_counts(quick=not a.full, verbose=True)),
    "fig9a": ("Figure 9a: throughput feature ladder",
              lambda a: figure9a_throughput_ablation(quick=not a.full,
                                                     verbose=True)),
    "fig9b": ("Figure 9b: latency feature ladder",
              lambda a: figure9b_latency_ablation(quick=not a.full,
                                                  verbose=True)),
    "offpath": ("§3.1: off-path SmartNIC measurements",
                lambda a: offpath_comparison(verbose=True)),
    "ablation-cache": ("NIC cache capacity sweep",
                       lambda a: cache_capacity_sweep(verbose=True)),
    "ablation-dm": ("Robinhood displacement-limit sweep",
                    lambda a: displacement_limit_sweep(n_keys=a.keys,
                                                       verbose=True)),
    "ablation-offpath": ("Xenic on an off-path platform (§4.3.4)",
                         lambda a: offpath_platform_check(verbose=True)),
}


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault spec, e.g. 'drop=0.02,dup=0.01,delay=0.05:8' "
                        "(see docs/FAULTS.md)")
    p.add_argument("--fault-seed", type=int, default=1234,
                   help="root seed of the fault-injection RNG streams")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Xenic paper's tables and figures "
                    "(simulated).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--full", action="store_true")
    all_parser.add_argument("--keys", type=int, default=20000)
    _add_fault_args(all_parser)
    for name, (help_text, _fn) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--full", action="store_true",
                       help="larger, slower configuration")
        p.add_argument("--keys", type=int, default=20000,
                       help="keyspace size for table-structure experiments")
        _add_fault_args(p)
    chaos = sub.add_parser(
        "chaos",
        help="randomized fault schedules + invariant checks (docs/FAULTS.md)")
    chaos.add_argument("--faults", default=DEFAULT_CHAOS_FAULTS,
                       metavar="SPEC", help="fault spec to inject")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of consecutive seeds to run")
    chaos.add_argument("--seed", type=int, default=1,
                       help="first seed")
    chaos.add_argument("--txns", type=int, default=40,
                       help="transactions per seed")
    chaos.add_argument("--nodes", type=int, default=3,
                       help="cluster size")
    chaos.add_argument("--system", default="xenic",
                       help="xenic | drtmh | drtmh_nc | fasst | drtmr")
    chaos.add_argument("--check", action="store_true",
                       help="exit nonzero on any invariant violation")
    chaos.add_argument("--trace", action="store_true",
                       help="print the full fault trace of each run")
    return parser


def run_chaos_command(args) -> int:
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        result = run_chaos(system=args.system, seed=seed,
                           faults=args.faults, n_txns=args.txns,
                           n_nodes=args.nodes)
        print(result)
        if args.trace and result.trace is not None and len(result.trace):
            print(result.trace.format())
        if not result.ok:
            failures += 1
    print("%d/%d seeds clean" % (args.seeds - failures, args.seeds))
    if failures and args.check:
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        width = max(len(name) for name in COMMANDS)
        for name, (help_text, _fn) in COMMANDS.items():
            print("%-*s  %s" % (width, name, help_text))
        print("%-*s  %s" % (width, "chaos",
                            "randomized fault schedules + invariant checks"))
        return 0
    if args.command == "chaos":
        return run_chaos_command(args)
    if getattr(args, "faults", None):
        set_default_faults(args.faults, args.fault_seed)
    if args.command == "all":
        for name, (help_text, fn) in COMMANDS.items():
            print("\n### %s" % help_text)
            fn(args)
        return 0
    _help, fn = COMMANDS[args.command]
    fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
