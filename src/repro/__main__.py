"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro list
    python -m repro fig2
    python -m repro fig8d --full
    python -m repro tab2 --keys 50000
    python -m repro ablation-cache

Each command prints the same rows/series the paper reports; ``--full``
switches from the quick CI scale to a larger (slower) configuration.

Fault injection (``docs/FAULTS.md``)::

    python -m repro chaos --faults "drop=0.02,dup=0.01" --seeds 20 --check
    python -m repro fig8d --faults "delay=0.05:8" --fault-seed 7

``chaos`` runs seeded randomized fault schedules against the invariant
checker; ``--faults`` on any experiment runs that experiment under the
given fault plan.

Observability (``docs/OBSERVABILITY.md``)::

    python -m repro trace --workload smallbank --trace-out /tmp/t.json
    python -m repro metrics --workload retwis
    python -m repro metrics --diff a.json b.json
    python -m repro fig8d --trace-out fig8d.json
    python -m repro chaos --obs --trace-out chaos.json
    python -m repro fig8d --json        # machine-readable BENCH_fig8d.json

``trace`` runs one workload with the full observability layer and writes
a Perfetto-loadable Chrome trace; ``--obs``/``--trace-out`` on any
experiment or on ``chaos`` does the same for that run, and ``--json``
dumps every experiment's results to ``BENCH_<name>.json``.

Latency attribution and SLO curves (``docs/OBSERVABILITY.md``)::

    python -m repro attrib --workload smallbank
    python -m repro slo --loads 50000,200000,800000 --arrival bursty --json

``attrib`` decomposes every committed transaction's latency into phases
(wire, NIC queue/service, DMA, host, lock backoff, ...); ``slo`` drives
the cluster open-loop at a sweep of offered loads and reports the
p50/p99/p999 sojourn curve plus the detected SLO knee.
"""

from __future__ import annotations

import argparse
import os
import sys

from .bench import (
    DEFAULT_CHAOS_FAULTS,
    Bench,
    OpenLoopBench,
    SloSpec,
    cache_capacity_sweep,
    displacement_limit_sweep,
    figure2_latency,
    figure3_batching,
    figure4_dma,
    figure8a_tpcc_new_order,
    figure8b_tpcc_full,
    figure8c_retwis,
    figure8d_smallbank,
    figure9a_throughput_ablation,
    figure9b_latency_ablation,
    live_observers,
    offpath_comparison,
    offpath_platform_check,
    format_slo_report,
    run_chaos,
    run_chaos_seeds,
    run_slo_points,
    set_default_faults,
    set_default_jobs,
    set_default_obs,
    slo_report,
    table1_cores,
    table2_lookup,
    table3_thread_counts,
    workload_by_name,
    write_results_json,
)
from .obs import (attribute_bench, diff_metrics, format_metrics_diff,
                  print_metrics_summary, write_chrome_trace,
                  write_metrics_json)

# The trace/metrics subcommands default to a light fault plan so the
# exported timeline includes fault instant events; --faults none disables.
DEFAULT_TRACE_FAULTS = "delay=0.03:6,dup=0.01"

COMMANDS = {
    "fig2": ("Figure 2: remote-op roundtrip latency",
             lambda a: figure2_latency(verbose=True)),
    "fig3": ("Figure 3: batched vs single remote writes",
             lambda a: figure3_batching(
                 sizes=(16, 64, 256),
                 ops_per_sender=1000 if a.full else 250, verbose=True)),
    "fig4": ("Figure 4: DMA engine throughput/latency",
             lambda a: figure4_dma(
                 sizes=(16, 64, 256),
                 total_ops=6000 if a.full else 1200, verbose=True)),
    "tab1": ("Table 1: ARM vs Xeon calibration",
             lambda a: table1_cores(verbose=True)),
    "tab2": ("Table 2: lookup cost at 90% occupancy",
             lambda a: table2_lookup(n_keys=a.keys, verbose=True)),
    "fig8a": ("Figure 8a: TPC-C New-Order curves",
              lambda a: figure8a_tpcc_new_order(quick=not a.full,
                                                verbose=True)),
    "fig8b": ("Figure 8b: full TPC-C mix",
              lambda a: figure8b_tpcc_full(quick=not a.full, verbose=True,
                                           systems=("xenic", "drtmr"))),
    "fig8c": ("Figure 8c: Retwis curves",
              lambda a: figure8c_retwis(quick=not a.full, verbose=True)),
    "fig8d": ("Figure 8d: Smallbank curves",
              lambda a: figure8d_smallbank(quick=not a.full, verbose=True)),
    "tab3": ("Table 3: thread counts at >=95% of peak",
             lambda a: table3_thread_counts(quick=not a.full, verbose=True)),
    "fig9a": ("Figure 9a: throughput feature ladder",
              lambda a: figure9a_throughput_ablation(quick=not a.full,
                                                     verbose=True)),
    "fig9b": ("Figure 9b: latency feature ladder",
              lambda a: figure9b_latency_ablation(quick=not a.full,
                                                  verbose=True)),
    "offpath": ("§3.1: off-path SmartNIC measurements",
                lambda a: offpath_comparison(verbose=True)),
    "ablation-cache": ("NIC cache capacity sweep",
                       lambda a: cache_capacity_sweep(verbose=True)),
    "ablation-dm": ("Robinhood displacement-limit sweep",
                    lambda a: displacement_limit_sweep(n_keys=a.keys,
                                                       verbose=True)),
    "ablation-offpath": ("Xenic on an off-path platform (§4.3.4)",
                         lambda a: offpath_platform_check(verbose=True)),
}


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan independent curves/seeds across N worker "
                        "processes (results are identical to --jobs 1)")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="fault spec, e.g. 'drop=0.02,dup=0.01,delay=0.05:8' "
                        "(see docs/FAULTS.md)")
    p.add_argument("--fault-seed", type=int, default=1234,
                   help="root seed of the fault-injection RNG streams")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--obs", action="store_true",
                   help="install the observability layer "
                        "(docs/OBSERVABILITY.md)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON (implies --obs)")


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="smallbank",
                   choices=("smallbank", "retwis", "tpcc", "tpcc_no"),
                   help="workload to drive")
    p.add_argument("--system", default="xenic",
                   help="xenic | drtmh | drtmh_nc | fasst | drtmr")
    p.add_argument("--nodes", type=int, default=3, help="cluster size")
    p.add_argument("--concurrency", type=int, default=4,
                   help="closed-loop contexts per node")
    p.add_argument("--warmup", type=float, default=100.0,
                   help="warmup before the window, simulated µs")
    p.add_argument("--window", type=float, default=400.0,
                   help="measurement window, simulated µs")
    p.add_argument("--seed", type=int, default=7, help="workload seed")
    p.add_argument("--sample-interval", type=float, default=20.0,
                   help="gauge sampling interval, simulated µs")
    p.add_argument("--faults", default=DEFAULT_TRACE_FAULTS, metavar="SPEC",
                   help="fault spec ('none' to disable; default: %(default)s"
                        " so the timeline shows fault instants)")
    p.add_argument("--fault-seed", type=int, default=1234,
                   help="root seed of the fault-injection RNG streams")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Xenic paper's tables and figures "
                    "(simulated).",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--full", action="store_true")
    all_parser.add_argument("--keys", type=int, default=20000)
    all_parser.add_argument("--json", action="store_true",
                            help="write BENCH_<name>.json per experiment")
    _add_jobs_arg(all_parser)
    _add_fault_args(all_parser)
    _add_obs_args(all_parser)
    for name, (help_text, _fn) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--full", action="store_true",
                       help="larger, slower configuration")
        p.add_argument("--keys", type=int, default=20000,
                       help="keyspace size for table-structure experiments")
        p.add_argument("--json", action="store_true",
                       help="write machine-readable results to "
                            "BENCH_%s.json" % name)
        _add_jobs_arg(p)
        _add_fault_args(p)
        _add_obs_args(p)
    chaos = sub.add_parser(
        "chaos",
        help="randomized fault schedules + invariant checks (docs/FAULTS.md)")
    chaos.add_argument("--faults", default=DEFAULT_CHAOS_FAULTS,
                       metavar="SPEC", help="fault spec to inject")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of consecutive seeds to run")
    chaos.add_argument("--seed", type=int, default=1,
                       help="first seed")
    chaos.add_argument("--txns", type=int, default=40,
                       help="transactions per seed")
    chaos.add_argument("--nodes", type=int, default=3,
                       help="cluster size")
    chaos.add_argument("--system", default="xenic",
                       help="xenic | drtmh | drtmh_nc | fasst | drtmr")
    chaos.add_argument("--check", action="store_true",
                       help="exit nonzero on any invariant violation")
    chaos.add_argument("--trace", action="store_true",
                       help="print the full fault trace of each run")
    _add_jobs_arg(chaos)
    _add_obs_args(chaos)
    trace = sub.add_parser(
        "trace",
        help="run one workload under the observability layer and export a "
             "Chrome trace (docs/OBSERVABILITY.md)")
    _add_run_args(trace)
    trace.add_argument("--trace-out", default="trace.json", metavar="FILE",
                       help="output path for the Chrome trace-event JSON")
    trace.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="also write the metrics JSON dump")
    metrics = sub.add_parser(
        "metrics",
        help="run one workload and print the metrics-registry summary")
    _add_run_args(metrics)
    metrics.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="also write the metrics JSON dump")
    metrics.add_argument("--diff", nargs=2, default=None,
                         metavar=("A.json", "B.json"),
                         help="compare two metrics JSON dumps (no run)")
    metrics.add_argument("--all", dest="diff_all", action="store_true",
                         help="with --diff: include unchanged metrics")
    attrib = sub.add_parser(
        "attrib",
        help="run one observed workload and print the per-phase latency "
             "attribution (docs/OBSERVABILITY.md)")
    _add_run_args(attrib)
    attrib.set_defaults(faults="none")
    attrib.add_argument("--attrib-out", default=None, metavar="FILE",
                        help="also write the attribution JSON dump")
    slo = sub.add_parser(
        "slo",
        help="open-loop SLO sweep: sojourn latency vs offered load "
             "(docs/OBSERVABILITY.md)")
    slo.add_argument("--workload", default="smallbank",
                     choices=("smallbank", "retwis", "tpcc", "tpcc_no"),
                     help="workload to drive")
    slo.add_argument("--system", default="xenic",
                     help="xenic | drtmh | drtmh_nc | fasst | drtmr")
    slo.add_argument("--nodes", type=int, default=3, help="cluster size")
    slo.add_argument("--loads", default="50000,100000,200000,400000,800000",
                     metavar="R1,R2,...",
                     help="offered loads, txn/s per node "
                          "(default: %(default)s)")
    slo.add_argument("--arrival", default="poisson",
                     choices=("poisson", "bursty"),
                     help="arrival process")
    slo.add_argument("--burst-factor", type=float, default=4.0,
                     help="bursty: burst-phase rate multiplier")
    slo.add_argument("--burst-fraction", type=float, default=0.1,
                     help="bursty: fraction of each cycle spent bursting")
    slo.add_argument("--max-inflight", type=int, default=64,
                     help="admission limit per node")
    slo.add_argument("--warmup", type=float, default=150.0,
                     help="warmup before the window, simulated µs")
    slo.add_argument("--window", type=float, default=600.0,
                     help="measurement window, simulated µs")
    slo.add_argument("--seed", type=int, default=7, help="workload seed")
    slo.add_argument("--slo-p99", type=float, default=100.0, metavar="US",
                     help="p99 sojourn budget for knee detection, µs")
    slo.add_argument("--goodput", type=float, default=0.9, metavar="FRAC",
                     help="min achieved/offered fraction inside the SLO")
    slo.add_argument("--json", nargs="?", const="BENCH_slo.json",
                     default=None, metavar="FILE",
                     help="write the sweep report as JSON "
                          "(default file: BENCH_slo.json)")
    slo.add_argument("--attrib", action="store_true",
                     help="rerun the knee point under the observability "
                          "layer and print its latency attribution")
    _add_jobs_arg(slo)
    _add_fault_args(slo)
    perf = sub.add_parser(
        "perf",
        help="wall-clock performance of the simulator itself "
             "(docs/PERFORMANCE.md)")
    perf.add_argument("--full", action="store_true",
                      help="larger op counts / windows")
    perf.add_argument("--repeat", "--repeats", dest="repeats", type=int,
                      default=3,
                      help="runs per bench; best wall time wins "
                           "(default: %(default)s)")
    perf.add_argument("--quick", action="store_true",
                      help="single-shot smoke run: one repeat per bench "
                           "(skips the best-of-N noise stripping)")
    perf.add_argument("--bench", action="append", default=None,
                      metavar="NAME", help="run only this bench "
                      "(repeatable)")
    perf.add_argument("--baseline", default=None, metavar="FILE",
                      help="trajectory file to compare/append "
                           "(default: BENCH_simperf.json)")
    perf.add_argument("--check", action="store_true",
                      help="exit nonzero on a regression beyond "
                           "--max-regression")
    perf.add_argument("--max-regression", type=float, default=2.0,
                      metavar="X", help="allowed slowdown vs the baseline "
                      "(default: %(default)s)")
    perf.add_argument("--update", action="store_true",
                      help="append this run to the trajectory file")
    perf.add_argument("--label", default="", help="label for --update")
    perf.add_argument("--ab-fusion", action="store_true",
                      help="run the bench set once per REPRO_FUSION leg "
                           "(off, on) and print the event-count ratio "
                           "table (simulated results are byte-identical "
                           "between legs; only scheduler work differs)")
    perf.add_argument("--ab-queues", action="store_true",
                      help="run each bench once per event-queue "
                           "implementation (REPRO_QUEUE=heap|calendar) "
                           "and print the side-by-side ratio")
    perf.add_argument("--ab-compiled", action="store_true",
                      help="run the bench set once per compiled-engine "
                           "leg (REPRO_COMPILED=off, on) and print the "
                           "wall-time ratio table (simulated results "
                           "are byte-identical between legs; requires "
                           "the repro.sim._ckern extension)")
    perf.add_argument("--ab-out", default=None, metavar="FILE",
                      help="with --ab-queues/--ab-fusion/--ab-compiled: "
                           "also write the raw A/B results as JSON "
                           "(CI artifact)")
    perf.add_argument("--profile", action="store_true",
                      help="run the benches under cProfile and print the "
                           "hottest functions (skips baseline compare: "
                           "profiled wall times carry tracer overhead)")
    perf.add_argument("--profile-top", type=int, default=25, metavar="N",
                      help="rows of profile output (default: %(default)s)")
    perf.add_argument("--profile-out", default=None, metavar="FILE",
                      help="with --profile, also dump raw pstats data "
                           "(inspect with python -m pstats FILE)")
    _add_jobs_arg(perf)
    return parser


def _run_observed_bench(args) -> Bench:
    """Shared body of the trace/metrics subcommands: one observed run."""
    if args.faults and args.faults.lower() not in ("none", "off", ""):
        set_default_faults(args.faults, args.fault_seed)
    else:
        set_default_faults(None)
    try:
        workload = workload_by_name(args.workload, args.nodes,
                                    seed=args.seed)
        bench = Bench(args.system, workload, n_nodes=args.nodes,
                      seed=args.seed, obs=True,
                      obs_interval_us=args.sample_interval)
        result = bench.measure(args.concurrency, warmup_us=args.warmup,
                               window_us=args.window)
    finally:
        set_default_faults(None)
    print(result)
    return bench


def run_trace_command(args) -> int:
    bench = _run_observed_bench(args)
    fault_trace = bench.fault_plan.trace if bench.fault_plan else None
    path = write_chrome_trace(args.trace_out, bench.observer, fault_trace)
    print("wrote %s (%d events, %d dropped, %d sampler ticks)"
          % (path, len(bench.observer.log), bench.observer.log.dropped,
             bench.observer.sampler.ticks))
    if args.metrics_out:
        print("wrote %s" % write_metrics_json(args.metrics_out,
                                              bench.observer))
    return 0


def run_metrics_command(args) -> int:
    if args.diff:
        import json

        with open(args.diff[0]) as fh:
            a = json.load(fh)
        with open(args.diff[1]) as fh:
            b = json.load(fh)
        print(format_metrics_diff(diff_metrics(a, b),
                                  only_changed=not args.diff_all))
        return 0
    bench = _run_observed_bench(args)
    print_metrics_summary(bench.observer)
    if args.metrics_out:
        print("wrote %s" % write_metrics_json(args.metrics_out,
                                              bench.observer))
    return 0


def run_attrib_command(args) -> int:
    bench = _run_observed_bench(args)
    result = attribute_bench(bench)
    print(result.format())
    if args.attrib_out:
        import json

        with open(args.attrib_out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.attrib_out)
    return 0


def run_slo_command(args) -> int:
    if args.faults and args.faults.lower() not in ("none", "off", ""):
        set_default_faults(args.faults, args.fault_seed)
    try:
        loads = tuple(float(x) for x in args.loads.split(",") if x.strip())
        spec = SloSpec(
            system=args.system, workload=args.workload,
            loads_per_node_s=loads, arrival=args.arrival,
            burst_factor=args.burst_factor,
            burst_fraction=args.burst_fraction,
            max_inflight=args.max_inflight, n_nodes=args.nodes,
            warmup_us=args.warmup, window_us=args.window, seed=args.seed,
        )
        points = run_slo_points(spec, jobs=args.jobs)
        report = slo_report(spec, points, args.slo_p99,
                            min_goodput_frac=args.goodput)
        print(format_slo_report(report))
        if args.json:
            print("wrote %s" % write_results_json(args.json, "slo", report))
        if args.attrib:
            # Rerun one point observed: the knee if there is one, else the
            # lowest offered load, and fold the admission-queue waits into
            # the breakdown as the client_queue phase.
            load = report["knee_offered_per_node_s"]
            if load is None:
                load = min(loads)
            print("\nattributing offered load %.0f txn/s/node ..." % load)
            bench = OpenLoopBench(spec, load, obs=True)
            bench.measure()
            print(attribute_bench(bench,
                                  client_queue=bench.queue_waits).format())
    finally:
        set_default_faults(None)
    return 0


def _flush_obs_traces(trace_out) -> None:
    """Export the traces of every Bench built under --obs/--trace-out."""
    observed = live_observers()
    if not observed:
        return
    if trace_out is None:
        for observer, bench in observed:
            observer.snapshot_counters()
        return
    base, ext = os.path.splitext(trace_out)
    for k, (observer, bench) in enumerate(observed):
        if len(observed) == 1:
            path = trace_out
        else:
            path = "%s-%02d-%s-%s%s" % (base, k, bench.system,
                                        bench.workload.name, ext or ".json")
        fault_trace = bench.fault_plan.trace if bench.fault_plan else None
        write_chrome_trace(path, observer, fault_trace)
        print("wrote %s (%d events)" % (path, len(observer.log)))


def run_chaos_command(args) -> int:
    failures = 0
    obs = bool(args.obs or args.trace_out)
    base, ext = (os.path.splitext(args.trace_out) if args.trace_out
                 else ("", ""))
    seed_kwargs = [
        dict(system=args.system, seed=seed, faults=args.faults,
             n_txns=args.txns, n_nodes=args.nodes, obs=obs)
        for seed in range(args.seed, args.seed + args.seeds)
    ]
    results = run_chaos_seeds(seed_kwargs, jobs=getattr(args, "jobs", 1))
    for result in results:
        seed = result.seed
        print(result)
        if args.trace and result.trace is not None and len(result.trace):
            print(result.trace.format())
        if args.trace_out and result.observer is not None:
            path = (args.trace_out if args.seeds == 1
                    else "%s-seed%d%s" % (base, seed, ext or ".json"))
            write_chrome_trace(path, result.observer, result.trace)
            print("wrote %s (%d events)" % (path, len(result.observer.log)))
        if not result.ok:
            failures += 1
    print("%d/%d seeds clean" % (args.seeds - failures, args.seeds))
    if failures and args.check:
        return 1
    return 0


def run_perf_command(args) -> int:
    from .bench.perf import (BENCH_FILE, append_entry, baseline_entry,
                             compare_entries, format_ab, format_compiled_ab,
                             format_fusion_ab, format_results,
                             measure_scaling, run_compiled_ab, run_perf,
                             run_fusion_ab, run_queue_ab)

    quick = not args.full
    repeats = 1 if args.quick else args.repeats
    path = args.baseline or BENCH_FILE
    if args.ab_compiled:
        try:
            ab = run_compiled_ab(quick=quick, repeats=repeats,
                                 benches=args.bench)
        except RuntimeError as exc:
            print("error: %s" % exc)
            return 2
        print(format_compiled_ab(ab))
        if args.ab_out:
            import json

            with open(args.ab_out, "w") as fh:
                json.dump(ab, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print("wrote %s" % args.ab_out)
        return 0
    if args.ab_fusion:
        ab = run_fusion_ab(quick=quick, repeats=repeats,
                           benches=args.bench)
        print(format_fusion_ab(ab))
        if args.ab_out:
            import json

            with open(args.ab_out, "w") as fh:
                json.dump(ab, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print("wrote %s" % args.ab_out)
        return 0
    if args.ab_queues:
        ab = run_queue_ab(quick=quick, repeats=repeats,
                          benches=args.bench)
        print(format_ab(ab))
        if args.ab_out:
            import json

            with open(args.ab_out, "w") as fh:
                json.dump(ab, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print("wrote %s" % args.ab_out)
        return 0
    if args.profile:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        results = run_perf(quick=quick, repeats=repeats,
                           benches=args.bench, verbose=False)
        prof.disable()
        print(format_results(results))
        stats = pstats.Stats(prof)
        stats.sort_stats("cumulative")
        stats.print_stats(args.profile_top)
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print("wrote %s (raw pstats)" % args.profile_out)
        # Profiled wall times carry tracer overhead — never compare them
        # against (or record them into) the un-profiled trajectory.
        return 0
    results = run_perf(quick=quick, repeats=repeats,
                       benches=args.bench, verbose=False)
    print(format_results(results))
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        s = measure_scaling(jobs, quick=quick)
        print("scaling: %d curves, serial %.2fs, --jobs %d %.2fs "
              "(%.2fx, results %s)"
              % (s["curves"], s["serial_s"], s["jobs"], s["parallel_s"],
                 s["speedup"],
                 "identical" if s["identical"] else "DIFFER"))
    base = baseline_entry(quick, path)
    rc = 0
    if base is not None:
        failures = compare_entries(results, base,
                                   max_regression=args.max_regression)
        if failures:
            for msg in failures:
                print("REGRESSION %s" % msg)
            if args.check:
                rc = 1
        else:
            print("vs baseline %r: within %.1fx"
                  % (base.get("label", "?"), args.max_regression))
    elif args.check:
        print("no baseline at matching scale in %s; recording one" % path)
    if args.update or (args.check and base is None):
        entry = append_entry(results, quick, path=path, label=args.label)
        print("appended %r to %s" % (entry["label"], path))
    return rc


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        width = max(len(name) for name in COMMANDS)
        for name, (help_text, _fn) in COMMANDS.items():
            print("%-*s  %s" % (width, name, help_text))
        print("%-*s  %s" % (width, "chaos",
                            "randomized fault schedules + invariant checks"))
        print("%-*s  %s" % (width, "trace",
                            "observed run -> Chrome trace export"))
        print("%-*s  %s" % (width, "metrics",
                            "observed run -> metrics summary (--diff a b)"))
        print("%-*s  %s" % (width, "attrib",
                            "observed run -> per-phase latency attribution"))
        print("%-*s  %s" % (width, "slo",
                            "open-loop sweep -> latency vs offered load"))
        print("%-*s  %s" % (width, "perf",
                            "wall-clock performance of the simulator"))
        return 0
    if args.command == "chaos":
        return run_chaos_command(args)
    if args.command == "trace":
        return run_trace_command(args)
    if args.command == "metrics":
        return run_metrics_command(args)
    if args.command == "attrib":
        return run_attrib_command(args)
    if args.command == "slo":
        return run_slo_command(args)
    if args.command == "perf":
        return run_perf_command(args)
    if getattr(args, "faults", None):
        set_default_faults(args.faults, args.fault_seed)
    if getattr(args, "obs", False) or getattr(args, "trace_out", None):
        set_default_obs(True)
    set_default_jobs(getattr(args, "jobs", 1))
    try:
        if args.command == "all":
            for name, (help_text, fn) in COMMANDS.items():
                print("\n### %s" % help_text)
                result = fn(args)
                if args.json:
                    print("wrote %s" % write_results_json(
                        "BENCH_%s.json" % name, name, result))
            _flush_obs_traces(getattr(args, "trace_out", None))
            return 0
        _help, fn = COMMANDS[args.command]
        result = fn(args)
        if args.json:
            print("wrote %s" % write_results_json(
                "BENCH_%s.json" % args.command, args.command, result))
        _flush_obs_traces(getattr(args, "trace_out", None))
    finally:
        set_default_faults(None)
        set_default_obs(False)
        set_default_jobs(1)
    return 0


if __name__ == "__main__":
    sys.exit(main())
