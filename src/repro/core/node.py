"""A Xenic node: host cores + on-path SmartNIC + replicated data stores.

Each node is the primary replica of one shard (shard id == node id), a
backup replica for ``replication_factor - 1`` other shards, and a
transaction coordinator (§4).  The pieces assembled here mirror Figure 6:

* host application cores (coordinator threads A/B),
* host Robinhood-worker cores (E) draining the host-memory log,
* the SmartNIC (C/D) with its caching index,
* the PCIe message channel between them.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..hw.cpu import CoreGroup
from ..hw.network import Fabric
from ..hw.nic import SmartNic
from ..hw.pcie import PcieChannel
from ..sim.core import Simulator
from ..sim.fusion import fusion_enabled
from ..sim.resources import Semaphore
from ..store.log import HostLog, LogRecord
from ..store.nic_index import NicIndex
from ..store.object import VersionedObject
from ..store.robinhood import RobinhoodTable
from .config import XenicConfig
from .txn import TOMBSTONE, make_txn_id

__all__ = ["XenicNode"]


class XenicNode:
    """One server in a Xenic cluster."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_id: int,
        n_nodes: int,
        config: XenicConfig,
        keys_per_shard: int,
        value_size: int = 64,
    ):
        self.sim = sim
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.config = config
        self.value_size = value_size

        hw = config.hardware
        self.host_app_cores = CoreGroup(
            sim, hw.host.cpu, cores=config.host_app_threads,
            name="n%d.app" % node_id,
        )
        self.worker_cores = CoreGroup(
            sim, hw.host.cpu, cores=config.host_worker_threads,
            name="n%d.worker" % node_id,
        )
        self.nic = SmartNic(
            sim, fabric, node_id,
            params=hw.nic,
            nic_threads=config.nic_threads,
            aggregation=config.ethernet_aggregation,
            name="n%d.nic" % node_id,
        )
        self.pcie = PcieChannel(
            sim,
            crossing_us=hw.nic.pcie_crossing_us,
            aggregation=config.ethernet_aggregation,
            name="n%d.pcie" % node_id,
        )

        # shard tables: shard -> RobinhoodTable (primary shard == node_id,
        # plus the shards this node backs up)
        capacity = self._table_capacity(keys_per_shard, config)
        self.tables: Dict[int, RobinhoodTable] = {}
        for shard in self.replicated_shards():
            self.tables[shard] = RobinhoodTable(
                capacity, dm=config.dm, segment_size=config.segment_size,
                hash_salt=shard,
            )
        # NIC caching index per shard this node is *primary* for (only its
        # own shard initially; recovery can promote it for others)
        self.indexes: Dict[int, NicIndex] = {
            node_id: NicIndex(
                self.tables[node_id],
                cache_capacity=config.nic_cache_capacity,
                k_slack=config.k_slack,
                value_size=value_size,
            )
        }
        self.log = HostLog(capacity_records=config.log_capacity)
        self.log_signal = Semaphore(sim, name="n%d.log" % node_id)
        self.log.set_ack_handler(self._on_log_ack)
        # Read-through view of the own-shard commit records the NIC has
        # appended to host memory but the workers have not applied yet:
        # host coordinator threads consult it so local transactions see
        # fresh values (the log ring lives in host DRAM, §4.2 step 7).
        self.pending_local: Dict[int, tuple] = {}

        # filled in by XenicProtocol.install()
        self.protocol: Optional[Any] = None
        self.txn_seq = 0

    @staticmethod
    def _table_capacity(keys_per_shard: int, config: XenicConfig) -> int:
        raw = max(int(keys_per_shard / config.table_fill), config.segment_size)
        # round up to a segment multiple
        return int(math.ceil(raw / config.segment_size)) * config.segment_size

    # -- placement ------------------------------------------------------------

    @property
    def index(self) -> NicIndex:
        """The NIC index of this node's own shard."""
        return self.indexes[self.node_id]

    def index_for(self, shard: int) -> NicIndex:
        idx = self.indexes.get(shard)
        if idx is None:
            raise RuntimeError(
                "node %d is not primary for shard %d" % (self.node_id, shard)
            )
        return idx

    def promote_to_primary(self, shard: int) -> NicIndex:
        """Recovery: build a NIC index over this node's replica of
        ``shard``, making it the new primary (lock state starts empty and
        is rebuilt from the logs, §4.2.1)."""
        if shard not in self.tables:
            raise RuntimeError(
                "node %d holds no replica of shard %d" % (self.node_id, shard)
            )
        idx = NicIndex(
            self.tables[shard],
            cache_capacity=self.config.nic_cache_capacity,
            k_slack=self.config.k_slack,
            value_size=self.value_size,
        )
        self.indexes[shard] = idx
        return idx

    @property
    def primary_shard(self) -> int:
        return self.node_id

    def replicated_shards(self):
        """Shards this node holds a replica of (own + backed-up)."""
        rf = min(self.config.replication_factor, self.n_nodes)
        return [
            (self.node_id - i) % self.n_nodes for i in range(rf)
        ]

    def backups_of(self, shard: int):
        """Backup node ids for ``shard`` (primary is node ``shard``)."""
        rf = min(self.config.replication_factor, self.n_nodes)
        return [(shard + i) % self.n_nodes for i in range(1, rf)]

    # -- data loading ------------------------------------------------------------

    def load_object(self, shard: int, key: int, value: Any, size: int) -> None:
        """Install one replica of an object (used at cluster load time)."""
        table = self.tables[shard]
        table.insert(key, VersionedObject(key, value=value, size=size))

    # -- log application ------------------------------------------------------------

    def append_log(self, record: LogRecord) -> bool:
        ok = self.log.append(record)
        if ok:
            self.log_signal.up()
        return ok

    def note_pending_commit(self, record: LogRecord) -> None:
        """Called by the protocol when a commit record for this node's own
        shard lands in host memory (before workers apply it)."""
        if record.shard != self.node_id:
            return
        for key, value, version in record.writes:
            cur = self.pending_local.get(key)
            if cur is None or version >= cur[1]:
                self.pending_local[key] = (value, version)

    def read_local(self, key: int):
        """Host-side read of an own-shard object: the freshest of the
        applied table value and any unapplied commit record."""
        pending = self.pending_local.get(key)
        obj = self.tables[self.node_id].get_object(key)
        if pending is not None and (obj is None or pending[1] > obj.version):
            return pending
        if obj is None:
            return None, 0
        return obj.value, obj.version

    def _on_log_ack(self, record: LogRecord) -> None:
        # committed primary writes may now be evicted from the NIC cache
        if record.kind == "commit" and record.shard in self.indexes:
            idx = self.indexes[record.shard]
            for key, _value, _version in record.writes:
                idx.log_acked(key)
        if record.kind == "commit" and record.shard == self.node_id:
            for key, _value, version in record.writes:
                cur = self.pending_local.get(key)
                if cur is not None and cur[1] <= version:
                    del self.pending_local[key]

    def worker_loop(self):
        """One host Robinhood-worker thread: poll the log, apply write
        sets to the replica tables off the critical path (§4.2 step 7).
        The cluster spawns ``host_worker_threads`` of these per node.

        Delay fusion (``REPRO_FUSION``): an uncontended batch charges all
        its per-record apply costs up front and sleeps to one fused
        deadline instead of one timeout per record.  Poll instants and
        batch contents are unchanged — the deadline is the left-associated
        sum of the stepwise service times and the core accounting
        replicates the stepwise float operations term by term (including
        the busy-area summation points, via ``note_split``) — only the
        table applies and log acks shift from intermediate instants to
        the batch end.  Those are off-critical-path by design: reads
        overlay ``pending_local`` until the ack (§4.2 step 7), replica
        application is version-idempotent, and the NIC cache pins
        committed writes until ``log_acked``.  Falls back to the stepwise
        loop under an observer, a fault injector, or core contention."""
        apply_us = self.config.worker_apply_us
        cores = self.worker_cores
        run_wall = cores.run_wall
        apply_record = self._apply_record
        log = self.log
        signal_down = self.log_signal.down
        sim = self.sim
        pool = cores.pool
        slowdown = cores.slowdown
        fused = fusion_enabled()
        while True:
            yield signal_down()
            while log.pending:
                batch = log.poll(max_records=4)
                if not batch:
                    break
                if (fused and len(batch) > 1 and cores.obs_sink is None
                        and (self.protocol is None
                             or self.protocol.runtime.injector is None)
                        and pool.try_acquire()):
                    end = sim._now
                    try:
                        last = len(batch) - 1
                        for i, record in enumerate(batch):
                            cost = apply_us * max(1, len(record.writes))
                            service = (cost / slowdown) * slowdown
                            cores.jobs_executed += 1
                            cores.busy_us += service
                            end = end + service
                            if i != last:
                                pool.note_split(end)
                        if end > sim._now:
                            yield sim.call_at(end)
                    finally:
                        pool.release()
                    for record in batch:
                        apply_record(record)
                        log.ack(record)
                    continue
                for record in batch:
                    cost = apply_us * max(1, len(record.writes))
                    yield from run_wall(cost)
                    apply_record(record)
                    log.ack(record)

    def _apply_record(self, record: LogRecord) -> None:
        table = self.tables.get(record.shard)
        if table is None:
            raise RuntimeError(
                "node %d has no replica of shard %d" % (self.node_id, record.shard)
            )
        for key, value, version in record.writes:
            obj = table.get_object(key)
            # Reordered log application (fault injection can deliver LOG
            # records out of order): never roll a replica back — a record
            # older than the applied version is a no-op.
            if obj is not None and version < obj.version:
                continue
            if value is TOMBSTONE:
                if obj is not None:
                    table.delete(key)
                continue
            if obj is None:
                obj = VersionedObject(key, value=value, size=self.value_size)
                obj.version = version
                table.insert(key, obj)
            else:
                obj.value = value
                obj.version = version

    # -- transaction ids ------------------------------------------------------------

    def next_txn_id(self) -> int:
        self.txn_seq += 1
        return make_txn_id(self.node_id, self.txn_seq)
