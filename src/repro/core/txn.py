"""Transaction state: read/write sets, OCC bookkeeping, function shipping.

A transaction is specified by a :class:`TxnSpec` (what the workload wants)
and carried through the commit protocol as a :class:`Transaction` (what
the system tracks).  Transaction IDs pack (node, sequence) so any replica
can identify the coordinator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "TxnStatus",
    "TxnLogic",
    "TxnSpec",
    "Transaction",
    "NeedMoreKeys",
    "TOMBSTONE",
    "make_txn_id",
]


class _Tombstone:
    """Sentinel write value that deletes the key at commit time (§4.1.3:
    deletions ride the transaction protocol like any other write)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()

_NODE_BITS = 12


def make_txn_id(node_id: int, seq: int) -> int:
    """Pack (node, sequence) into a transaction id."""
    return (seq << _NODE_BITS) | node_id


def txn_node(txn_id: int) -> int:
    return txn_id & ((1 << _NODE_BITS) - 1)


class TxnStatus(enum.Enum):
    PENDING = "pending"
    EXECUTING = "executing"
    VALIDATING = "validating"
    LOGGING = "logging"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


# A transaction's execution logic: given the values read, produce the
# write-set values.  ``state`` is the application's external state shipped
# with the transaction (§4.2.2).  Multi-shot logic (§4.2 step 3) may
# instead return :class:`NeedMoreKeys` to request further execution
# rounds; it is re-invoked once the new keys have been read/locked.
TxnLogic = Callable[[Dict[int, Any], Any], Dict[int, Any]]


class NeedMoreKeys:
    """Returned by multi-shot transaction logic to extend the read/write
    sets; the coordinator issues additional EXECUTE requests and calls the
    logic again with the merged read values (§4.2 step 3)."""

    __slots__ = ("read_keys", "write_keys")

    def __init__(self, read_keys=(), write_keys=()):
        self.read_keys = list(read_keys)
        self.write_keys = list(write_keys)

    def __repr__(self) -> str:  # pragma: no cover
        return "<NeedMoreKeys r=%r w=%r>" % (self.read_keys, self.write_keys)


@dataclass
class TxnSpec:
    """What the workload asks for: keys, logic, and shipping hints."""

    read_keys: List[int]
    write_keys: List[int]
    logic: Optional[TxnLogic] = None
    external_state: Any = None
    external_state_bytes: int = 0
    # user annotation (§4.3.3): allow shipping execution to NIC cores
    ship_execution: bool = True
    # multi-shot transactions (logic may return NeedMoreKeys) cannot use
    # the multi-hop remote-execution pattern (§4.2.3: single round only)
    single_round: bool = True
    # reference-Xeon µs of application compute in the logic function
    logic_cost_us: float = 0.1
    # bytes per written value on the wire / in log records (defaults to
    # the workload's full object size; workloads that modify a few fields
    # replicate deltas, e.g. TPC-C stock updates)
    write_bytes: Optional[int] = None
    # host-side compute before the transaction starts (e.g. B+ tree ops)
    local_compute_us: float = 0.0
    read_only: bool = False
    label: str = "txn"
    # host-side callback after commit (e.g. local B+ tree maintenance,
    # already accounted in local_compute_us)
    post_commit: Optional[Callable[[], None]] = None

    def all_keys(self) -> List[int]:
        seen = dict.fromkeys(self.read_keys)
        for k in self.write_keys:
            seen.setdefault(k)
        return list(seen)


@dataclass
class Transaction:
    """In-flight transaction state."""

    txn_id: int
    coord_node: int
    spec: TxnSpec
    status: TxnStatus = TxnStatus.PENDING
    # key -> (value, version) captured during EXECUTE
    read_values: Dict[int, Tuple[Any, int]] = field(default_factory=dict)
    # key -> new value, produced by the logic function
    write_values: Dict[int, Any] = field(default_factory=dict)
    # shard -> keys locked there (for abort cleanup)
    locked: Dict[int, List[int]] = field(default_factory=dict)
    # keys added by multi-shot execution rounds (§4.2 step 3)
    extra_read_keys: List[int] = field(default_factory=list)
    extra_write_keys: List[int] = field(default_factory=list)
    attempts: int = 1
    started_at: float = 0.0
    committed_at: float = 0.0
    abort_reason: Optional[str] = None

    @property
    def read_only(self) -> bool:
        return not self.spec.write_keys and not self.extra_write_keys

    def effective_read_keys(self) -> List[int]:
        return list(dict.fromkeys(self.spec.read_keys + self.extra_read_keys))

    def effective_write_keys(self) -> List[int]:
        return list(dict.fromkeys(self.spec.write_keys + self.extra_write_keys))

    def add_keys(self, more: "NeedMoreKeys") -> None:
        seen_r = set(self.spec.read_keys) | set(self.extra_read_keys)
        seen_w = set(self.spec.write_keys) | set(self.extra_write_keys)
        self.extra_read_keys.extend(
            k for k in more.read_keys if k not in seen_r)
        self.extra_write_keys.extend(
            k for k in more.write_keys if k not in seen_w)

    def record_lock(self, shard: int, key: int) -> None:
        self.locked.setdefault(shard, []).append(key)

    def clear_locks(self) -> None:
        self.locked.clear()

    def run_logic(self) -> Dict[int, Any]:
        """Invoke the application logic over the captured read values."""
        values = {k: v for k, (v, _ver) in self.read_values.items()}
        if self.spec.logic is None:
            # default logic: write a tagged tuple (deterministic, testable)
            return {k: ("w", self.txn_id) for k in self.spec.write_keys}
        return self.spec.logic(values, self.spec.external_state)

    def reset_for_retry(self) -> None:
        self.status = TxnStatus.PENDING
        self.read_values.clear()
        self.write_values.clear()
        self.clear_locks()
        self.extra_read_keys.clear()
        self.extra_write_keys.clear()
        self.attempts += 1
        self.abort_reason = None
