"""Transaction state: read/write sets, OCC bookkeeping, function shipping.

A transaction is specified by a :class:`TxnSpec` (what the workload wants)
and carried through the commit protocol as a :class:`Transaction` (what
the system tracks).  Transaction IDs pack (node, sequence) so any replica
can identify the coordinator.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "TxnStatus",
    "TxnLogic",
    "TxnSpec",
    "Transaction",
    "NeedMoreKeys",
    "TOMBSTONE",
    "make_txn_id",
]


class _Tombstone:
    """Sentinel write value that deletes the key at commit time (§4.1.3:
    deletions ride the transaction protocol like any other write)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()

_NODE_BITS = 12


def make_txn_id(node_id: int, seq: int) -> int:
    """Pack (node, sequence) into a transaction id."""
    return (seq << _NODE_BITS) | node_id


def txn_node(txn_id: int) -> int:
    return txn_id & ((1 << _NODE_BITS) - 1)


class TxnStatus(enum.Enum):
    PENDING = "pending"
    EXECUTING = "executing"
    VALIDATING = "validating"
    LOGGING = "logging"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


# A transaction's execution logic: given the values read, produce the
# write-set values.  ``state`` is the application's external state shipped
# with the transaction (§4.2.2).  Multi-shot logic (§4.2 step 3) may
# instead return :class:`NeedMoreKeys` to request further execution
# rounds; it is re-invoked once the new keys have been read/locked.
TxnLogic = Callable[[Dict[int, Any], Any], Dict[int, Any]]


class NeedMoreKeys:
    """Returned by multi-shot transaction logic to extend the read/write
    sets; the coordinator issues additional EXECUTE requests and calls the
    logic again with the merged read values (§4.2 step 3)."""

    __slots__ = ("read_keys", "write_keys")

    def __init__(self, read_keys=(), write_keys=()):
        self.read_keys = list(read_keys)
        self.write_keys = list(write_keys)

    def __repr__(self) -> str:  # pragma: no cover
        return "<NeedMoreKeys r=%r w=%r>" % (self.read_keys, self.write_keys)


class TxnSpec:
    """What the workload asks for: keys, logic, and shipping hints.

    Hand-written ``__slots__`` class (CI floor is Python 3.9, no
    ``@dataclass(slots=True)``): specs are built per transaction by the
    workload generators, so construction cost and per-instance dict
    overhead sit directly on the benchmark hot path.  The key lists are
    fixed after construction (multi-shot rounds extend the
    *transaction's* extra-key lists, never the spec), so ``all_keys()``
    memoizes its result.
    """

    __slots__ = ("read_keys", "write_keys", "logic", "external_state",
                 "external_state_bytes", "ship_execution", "single_round",
                 "logic_cost_us", "write_bytes", "local_compute_us",
                 "read_only", "label", "post_commit", "_all_keys")

    def __init__(
        self,
        read_keys: List[int],
        write_keys: List[int],
        logic: Optional[TxnLogic] = None,
        external_state: Any = None,
        external_state_bytes: int = 0,
        # user annotation (§4.3.3): allow shipping execution to NIC cores
        ship_execution: bool = True,
        # multi-shot transactions (logic may return NeedMoreKeys) cannot
        # use the multi-hop remote-execution pattern (§4.2.3: single
        # round only)
        single_round: bool = True,
        # reference-Xeon µs of application compute in the logic function
        logic_cost_us: float = 0.1,
        # bytes per written value on the wire / in log records (defaults
        # to the workload's full object size; workloads that modify a few
        # fields replicate deltas, e.g. TPC-C stock updates)
        write_bytes: Optional[int] = None,
        # host-side compute before the transaction starts (e.g. B+ tree)
        local_compute_us: float = 0.0,
        read_only: bool = False,
        label: str = "txn",
        # host-side callback after commit (e.g. local B+ tree
        # maintenance, already accounted in local_compute_us)
        post_commit: Optional[Callable[[], None]] = None,
    ):
        self.read_keys = read_keys
        self.write_keys = write_keys
        self.logic = logic
        self.external_state = external_state
        self.external_state_bytes = external_state_bytes
        self.ship_execution = ship_execution
        self.single_round = single_round
        self.logic_cost_us = logic_cost_us
        self.write_bytes = write_bytes
        self.local_compute_us = local_compute_us
        self.read_only = read_only
        self.label = label
        self.post_commit = post_commit
        self._all_keys: Optional[List[int]] = None

    def all_keys(self) -> List[int]:
        keys = self._all_keys
        if keys is None:
            seen = dict.fromkeys(self.read_keys)
            for k in self.write_keys:
                seen.setdefault(k)
            keys = self._all_keys = list(seen)
        return keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("TxnSpec(%s, r=%r, w=%r)"
                % (self.label, self.read_keys, self.write_keys))


class Transaction:
    """In-flight transaction state (slotted: one per in-flight txn on the
    benchmark hot path)."""

    __slots__ = ("txn_id", "coord_node", "spec", "status", "read_values",
                 "write_values", "locked", "extra_read_keys",
                 "extra_write_keys", "attempts", "started_at",
                 "committed_at", "abort_reason")

    def __init__(
        self,
        txn_id: int,
        coord_node: int,
        spec: TxnSpec,
        status: TxnStatus = TxnStatus.PENDING,
    ):
        self.txn_id = txn_id
        self.coord_node = coord_node
        self.spec = spec
        self.status = status
        # key -> (value, version) captured during EXECUTE
        self.read_values: Dict[int, Tuple[Any, int]] = {}
        # key -> new value, produced by the logic function
        self.write_values: Dict[int, Any] = {}
        # shard -> keys locked there (for abort cleanup)
        self.locked: Dict[int, List[int]] = {}
        # keys added by multi-shot execution rounds (§4.2 step 3)
        self.extra_read_keys: List[int] = []
        self.extra_write_keys: List[int] = []
        self.attempts = 1
        self.started_at = 0.0
        self.committed_at = 0.0
        self.abort_reason: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("Transaction(txn=%d, coord=%d, %s)"
                % (self.txn_id, self.coord_node, self.status.value))

    @property
    def read_only(self) -> bool:
        return not self.spec.write_keys and not self.extra_write_keys

    def effective_read_keys(self) -> List[int]:
        return list(dict.fromkeys(self.spec.read_keys + self.extra_read_keys))

    def effective_write_keys(self) -> List[int]:
        return list(dict.fromkeys(self.spec.write_keys + self.extra_write_keys))

    def add_keys(self, more: "NeedMoreKeys") -> None:
        seen_r = set(self.spec.read_keys) | set(self.extra_read_keys)
        seen_w = set(self.spec.write_keys) | set(self.extra_write_keys)
        self.extra_read_keys.extend(
            k for k in more.read_keys if k not in seen_r)
        self.extra_write_keys.extend(
            k for k in more.write_keys if k not in seen_w)

    def record_lock(self, shard: int, key: int) -> None:
        self.locked.setdefault(shard, []).append(key)

    def clear_locks(self) -> None:
        self.locked.clear()

    def run_logic(self) -> Dict[int, Any]:
        """Invoke the application logic over the captured read values."""
        values = {k: v for k, (v, _ver) in self.read_values.items()}
        if self.spec.logic is None:
            # default logic: write a tagged tuple (deterministic, testable)
            return {k: ("w", self.txn_id) for k in self.spec.write_keys}
        return self.spec.logic(values, self.spec.external_state)

    def reset_for_retry(self) -> None:
        self.status = TxnStatus.PENDING
        self.read_values.clear()
        self.write_values.clear()
        self.clear_locks()
        self.extra_read_keys.clear()
        self.extra_write_keys.clear()
        self.attempts += 1
        self.abort_reason = None
