"""Protocol message kinds and wire-size accounting.

Wire sizes matter: three of the four benchmarks are network-bandwidth
bound at peak (§5), so per-message header economy is where Xenic's
aggregated, software-defined messaging beats per-op RDMA framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "MsgKind",
    "Request",
    "Response",
    "request_size",
    "response_size",
    "EXECUTE",
    "VALIDATE",
    "LOG",
    "COMMIT",
    "UNLOCK",
    "EXEC_SHIP",
    "LOG_ACK_TO",
]

# message kinds
EXECUTE = "execute"  # read values + lock write keys at a primary
VALIDATE = "validate"  # re-check versions at a primary
LOG = "log"  # replicate write set to a backup
COMMIT = "commit"  # apply write set at the primary
UNLOCK = "unlock"  # abort path: release locks
EXEC_SHIP = "exec_ship"  # multi-hop: ship execution to a remote primary
LOG_ACK_TO = "log_ack_to"  # backup ack redirected to the coordinator NIC

MsgKind = str

APP_HEADER = 18  # txn id, kind, shard, flags, count
PER_KEY = 10  # key + per-key flags
PER_VERSION = 6
ACK = 10


@dataclass
class Request:
    kind: MsgKind
    txn_id: int
    shard: int
    coord_node: int
    read_keys: List[int] = field(default_factory=list)
    write_keys: List[int] = field(default_factory=list)
    versions: Dict[int, int] = field(default_factory=dict)
    write_values: Dict[int, Any] = field(default_factory=dict)
    # multi-hop fields
    spec: Any = None  # TxnSpec for shipped execution
    pre_read: Dict[int, Tuple[Any, int]] = field(default_factory=dict)
    reply_to: Optional[int] = None  # node to send the (final) ack to
    value_bytes: Optional[int] = None  # per-write payload size override


@dataclass
class Response:
    kind: MsgKind
    txn_id: int
    shard: int
    ok: bool
    read_values: Dict[int, Tuple[Any, int]] = field(default_factory=dict)
    versions: Dict[int, int] = field(default_factory=dict)  # write-key versions
    write_values: Dict[int, Any] = field(default_factory=dict)  # multi-hop
    reason: Optional[str] = None


def request_size(req: Request, value_size: int) -> int:
    """Bytes of an outbound request on the wire."""
    size = APP_HEADER
    vb = req.value_bytes if req.value_bytes is not None else value_size
    size += PER_KEY * (len(req.read_keys) + len(req.write_keys))
    size += PER_VERSION * len(req.versions)
    size += (PER_KEY + vb) * len(req.write_values)
    size += (PER_KEY + PER_VERSION + value_size) * len(req.pre_read)
    if req.spec is not None:
        size += getattr(req.spec, "external_state_bytes", 0) + 8
    return size


def response_size(resp: Response, value_size: int) -> int:
    """Bytes of a response on the wire."""
    size = ACK
    size += (PER_KEY + PER_VERSION + value_size) * len(resp.read_values)
    size += PER_VERSION * len(resp.versions)
    size += (PER_KEY + value_size) * len(resp.write_values)
    return size
