"""Protocol message kinds, wire-size accounting, and message pooling.

Wire sizes matter: three of the four benchmarks are network-bandwidth
bound at peak (§5), so per-message header economy is where Xenic's
aggregated, software-defined messaging beats per-op RDMA framing.

Hot-path notes (wall-clock only; no effect on simulated results):

* :class:`Request`/:class:`Response` are hand-written ``__slots__``
  classes (not dataclasses — the CI floor is Python 3.9, which lacks
  ``@dataclass(slots=True)``).  Empty collection defaults are shared
  immutable-by-convention singletons instead of per-instance allocations;
  nothing in the codebase mutates a message field in place (checked by
  the golden-digest suite).
* A free-list pool recycles the highest-churn message objects
  (:func:`take_request`/:func:`recycle_request` and the response pair).
  Recycling is safe at the single consumption point of each message:
  transport-level duplicates are suppressed by wire id *before* the
  payload is touched (see ``XenicProtocol._on_wire``), so no late
  delivery can observe a recycled object.
* ``request_size``/``response_size`` dispatch through per-kind size
  tables; each sizer touches only the fields its kind carries instead of
  branching over every field on every send.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "MsgKind",
    "Request",
    "Response",
    "request_size",
    "response_size",
    "take_request",
    "recycle_request",
    "take_response",
    "recycle_response",
    "EXECUTE",
    "VALIDATE",
    "LOG",
    "COMMIT",
    "UNLOCK",
    "EXEC_SHIP",
    "LOG_ACK_TO",
]

# message kinds
EXECUTE = "execute"  # read values + lock write keys at a primary
VALIDATE = "validate"  # re-check versions at a primary
LOG = "log"  # replicate write set to a backup
COMMIT = "commit"  # apply write set at the primary
UNLOCK = "unlock"  # abort path: release locks
EXEC_SHIP = "exec_ship"  # multi-hop: ship execution to a remote primary
LOG_ACK_TO = "log_ack_to"  # backup ack redirected to the coordinator NIC

MsgKind = str

APP_HEADER = 18  # txn id, kind, shard, flags, count
PER_KEY = 10  # key + per-key flags
PER_VERSION = 6
ACK = 10

# Shared empty defaults: treat as immutable.  (``dict.pop`` with a
# default and ``len``/iteration are fine; in-place mutation is not.)
_EMPTY_LIST: List = []
_EMPTY_DICT: Dict = {}


class Request:
    __slots__ = ("kind", "txn_id", "shard", "coord_node", "read_keys",
                 "write_keys", "versions", "write_values", "spec",
                 "pre_read", "reply_to", "value_bytes")

    def __init__(
        self,
        kind: MsgKind,
        txn_id: int,
        shard: int,
        coord_node: int,
        read_keys: Optional[List[int]] = None,
        write_keys: Optional[List[int]] = None,
        versions: Optional[Dict[int, int]] = None,
        write_values: Optional[Dict[int, Any]] = None,
        spec: Any = None,  # TxnSpec for shipped execution
        pre_read: Optional[Dict[int, Tuple[Any, int]]] = None,
        reply_to: Optional[int] = None,  # node to send the (final) ack to
        value_bytes: Optional[int] = None,  # per-write payload size override
    ):
        self.kind = kind
        self.txn_id = txn_id
        self.shard = shard
        self.coord_node = coord_node
        self.read_keys = _EMPTY_LIST if read_keys is None else read_keys
        self.write_keys = _EMPTY_LIST if write_keys is None else write_keys
        self.versions = _EMPTY_DICT if versions is None else versions
        self.write_values = (_EMPTY_DICT if write_values is None
                             else write_values)
        self.spec = spec
        self.pre_read = _EMPTY_DICT if pre_read is None else pre_read
        self.reply_to = reply_to
        self.value_bytes = value_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("Request(%s, txn=%d, shard=%d, r=%r, w=%r)"
                % (self.kind, self.txn_id, self.shard, self.read_keys,
                   list(self.write_values) or self.write_keys))


class Response:
    __slots__ = ("kind", "txn_id", "shard", "ok", "read_values",
                 "versions", "write_values", "reason")

    def __init__(
        self,
        kind: MsgKind,
        txn_id: int,
        shard: int,
        ok: bool,
        read_values: Optional[Dict[int, Tuple[Any, int]]] = None,
        versions: Optional[Dict[int, int]] = None,  # write-key versions
        write_values: Optional[Dict[int, Any]] = None,  # multi-hop
        reason: Optional[str] = None,
    ):
        self.kind = kind
        self.txn_id = txn_id
        self.shard = shard
        self.ok = ok
        self.read_values = (_EMPTY_DICT if read_values is None
                            else read_values)
        self.versions = _EMPTY_DICT if versions is None else versions
        self.write_values = (_EMPTY_DICT if write_values is None
                             else write_values)
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("Response(%s, txn=%d, shard=%d, ok=%r%s)"
                % (self.kind, self.txn_id, self.shard, self.ok,
                   ", reason=%r" % self.reason if self.reason else ""))


# ---------------------------------------------------------------------------
# free-list pools
# ---------------------------------------------------------------------------

# Bounded so a burst (e.g. a chaos run's abort storm) cannot pin
# unbounded garbage; overflow falls through to the GC.
_POOL_MAX = 512
_request_pool: List[Request] = []
_response_pool: List[Response] = []


def take_request(*args, **kwargs) -> Request:
    """Pool-aware ``Request(...)``: reuses a recycled instance if one is
    available (same constructor signature)."""
    if _request_pool:
        req = _request_pool.pop()
        req.__init__(*args, **kwargs)
        return req
    return Request(*args, **kwargs)


def recycle_request(req: Request) -> None:
    """Return a fully consumed request to the pool.  Only call from the
    message's single consumption point (after the handler completed);
    references must not be retained."""
    if len(_request_pool) < _POOL_MAX:
        # drop object references so pooled messages don't pin specs/values
        req.read_keys = _EMPTY_LIST
        req.write_keys = _EMPTY_LIST
        req.versions = _EMPTY_DICT
        req.write_values = _EMPTY_DICT
        req.spec = None
        req.pre_read = _EMPTY_DICT
        _request_pool.append(req)


def take_response(*args, **kwargs) -> Response:
    """Pool-aware ``Response(...)`` (same constructor signature)."""
    if _response_pool:
        resp = _response_pool.pop()
        resp.__init__(*args, **kwargs)
        return resp
    return Response(*args, **kwargs)


def recycle_response(resp: Response) -> None:
    """Return a fully consumed response to the pool."""
    if len(_response_pool) < _POOL_MAX:
        resp.read_values = _EMPTY_DICT
        resp.versions = _EMPTY_DICT
        resp.write_values = _EMPTY_DICT
        _response_pool.append(resp)


# ---------------------------------------------------------------------------
# wire sizes — per-kind tables keep the per-send work to the fields the
# kind actually carries; the generic fallback covers every field.
# ---------------------------------------------------------------------------


def _req_size_generic(req: Request, value_size: int) -> int:
    size = APP_HEADER
    vb = req.value_bytes if req.value_bytes is not None else value_size
    size += PER_KEY * (len(req.read_keys) + len(req.write_keys))
    size += PER_VERSION * len(req.versions)
    size += (PER_KEY + vb) * len(req.write_values)
    size += (PER_KEY + PER_VERSION + value_size) * len(req.pre_read)
    if req.spec is not None:
        size += getattr(req.spec, "external_state_bytes", 0) + 8
    return size


def _req_size_execute(req: Request, value_size: int) -> int:
    # keys only (the inline-validate flag rides in ``versions``)
    return (APP_HEADER
            + PER_KEY * (len(req.read_keys) + len(req.write_keys))
            + PER_VERSION * len(req.versions))


def _req_size_validate(req: Request, value_size: int) -> int:
    return APP_HEADER + PER_VERSION * len(req.versions)


def _req_size_write_set(req: Request, value_size: int) -> int:
    # LOG / COMMIT: write values (+ versions on LOG, + read-key unlocks on
    # multi-hop COMMIT)
    vb = req.value_bytes if req.value_bytes is not None else value_size
    return (APP_HEADER
            + PER_KEY * len(req.read_keys)
            + PER_VERSION * len(req.versions)
            + (PER_KEY + vb) * len(req.write_values))


def _req_size_unlock(req: Request, value_size: int) -> int:
    return APP_HEADER + PER_KEY * len(req.write_keys)


_REQ_SIZERS = {
    EXECUTE: _req_size_execute,
    VALIDATE: _req_size_validate,
    LOG: _req_size_write_set,
    COMMIT: _req_size_write_set,
    UNLOCK: _req_size_unlock,
    EXEC_SHIP: _req_size_generic,  # carries spec + pre_read
}


def request_size(req: Request, value_size: int) -> int:
    """Bytes of an outbound request on the wire."""
    sizer = _REQ_SIZERS.get(req.kind)
    if sizer is None:
        return _req_size_generic(req, value_size)
    return sizer(req, value_size)


def _resp_size_generic(resp: Response, value_size: int) -> int:
    size = ACK
    size += (PER_KEY + PER_VERSION + value_size) * len(resp.read_values)
    size += PER_VERSION * len(resp.versions)
    size += (PER_KEY + value_size) * len(resp.write_values)
    return size


def _resp_size_ack(resp: Response, value_size: int) -> int:
    return ACK


def _resp_size_execute(resp: Response, value_size: int) -> int:
    return (ACK
            + (PER_KEY + PER_VERSION + value_size) * len(resp.read_values)
            + PER_VERSION * len(resp.versions))


_RESP_SIZERS = {
    EXECUTE: _resp_size_execute,
    VALIDATE: _resp_size_ack,
    LOG: _resp_size_ack,
    COMMIT: _resp_size_ack,
    UNLOCK: _resp_size_ack,
    EXEC_SHIP: _resp_size_generic,  # carries read + write values
}


def response_size(resp: Response, value_size: int) -> int:
    """Bytes of a response on the wire."""
    sizer = _RESP_SIZERS.get(resp.kind)
    if sizer is None:
        return _resp_size_generic(resp, value_size)
    return sizer(resp, value_size)
