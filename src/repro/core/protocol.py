"""Xenic's distributed OCC commit protocol (§4.2).

One :class:`XenicProtocol` instance per node plays three roles:

* **host coordinator** (``run_transaction``) — admits transactions from
  the application, runs the local fast path (§4.2.4), or hands the
  transaction state to the coordinator-side NIC over PCIe;
* **coordinator-side NIC** — drives EXECUTE / VALIDATE / LOG / COMMIT
  against remote primaries and backups, runs shipped execution logic
  (§4.2.2), and applies the multi-hop patterns of Figure 7b (§4.2.3);
* **server-side NIC** — handles inbound requests against the local
  NIC index and host table, with locks and authoritative versions living
  in NIC memory.

All compute is charged to the owning core groups; all data movement goes
through the modeled DMA engine, PCIe channel, and Ethernet fabric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hw.network import NetMessage
from ..sim.core import Timeout
from ..sim.fusion import fusion_enabled
from ..sim.stats import Counter
from ..store.log import LogRecord, record_size_bytes
from .messages import (
    COMMIT,
    EXEC_SHIP,
    EXECUTE,
    LOG,
    UNLOCK,
    VALIDATE,
    Request,
    Response,
    recycle_request,
    recycle_response,
    request_size,
    response_size,
    take_request,
    take_response,
)
from .nic_runtime import NicRuntime, PendingTable
from .txn import NeedMoreKeys, TOMBSTONE, Transaction, TxnSpec, TxnStatus

__all__ = ["XenicProtocol"]

# Abort backoff: linear in the attempt count, in microseconds.
ABORT_BACKOFF_US = 1.5
# NIC-side admission cost for a new transaction (wall-µs on a NIC core).
NIC_ADMIT_US = 0.08
# Host-side completion handling per transaction (wall-µs on an app core).
HOST_COMPLETE_US = 0.15
# Log-append retry interval when the host log is full (back-pressure).
LOG_RETRY_US = 2.0
# Small PCIe payloads (control messages).
DONE_MSG_BYTES = 24


class XenicProtocol:
    """Protocol engine for one node."""

    def __init__(self, cluster, node):
        self.cluster = cluster
        self.node = node
        self.sim = node.sim
        self.config = node.config
        self.runtime = NicRuntime(self.sim, node.nic, node.config)
        self.host_pending = PendingTable(self.sim)
        self.stats = Counter()
        # Observability sink (repro.obs.Observer); None disables span
        # emission at the cost of one branch per transaction outcome.
        self.obs = None
        # Optional abort callback (bench harnesses record abort latencies
        # through it); called with the Transaction on every aborted attempt.
        self.on_abort = None
        self._req_seq = 0
        # Transport-level exactly-once delivery: outbound messages carry a
        # per-sender wire sequence number; inbound duplicates (retransmit
        # races under fault injection) are suppressed by (src, wire_id),
        # the way an RC transport dedups PSNs.  A real NIC keeps a sliding
        # window per peer; the simulation keeps the full set.
        self._wire_seq = 0
        self._seen_wire: set = set()
        # bound-method dispatch table: saves an explicit self pass per
        # served request on the hot path
        self._handlers = {kind: handler.__get__(self)
                          for kind, handler in self._HANDLERS.items()}
        # Delay fusion (REPRO_FUSION, repro.sim.fusion): captured at
        # construction like the queue kind.  When on, inbound dispatch
        # charges the leading NIC-core cost as a single callback Timeout
        # and fan-out generators start immediately (sim.start) instead of
        # spawning a start event; every fused site falls back to the
        # stepwise path under observer/injector/contention.
        self._fused = fusion_enabled()
        self._launch = self.sim.start if self._fused else self.sim.spawn
        node.nic.set_handler(self._on_wire)
        node.pcie.set_handlers(self._on_pcie_host, self._on_pcie_nic)
        node.protocol = self

    # ------------------------------------------------------------------
    # latency attribution (repro.obs.attrib)
    # ------------------------------------------------------------------

    def _t0(self) -> float:
        """Timestamp for an attribution span; 0.0 on the unobserved fast
        path (never read: `_attrib` is a no-op without a sink)."""
        return self.sim.now if self.obs is not None else 0.0

    def _attrib(self, phase: str, t0: float, txn_id: int) -> None:
        obs = self.obs
        if obs is not None:
            obs.attrib_span(phase, self.node.node_id, t0, self.sim.now,
                            txn_id)

    # ------------------------------------------------------------------
    # host-side API
    # ------------------------------------------------------------------

    def run_transaction(self, spec: TxnSpec):
        """Host coordinator entry point (generator).  Retries on abort;
        returns the committed :class:`Transaction`."""
        txn = Transaction(self.node.next_txn_id(), self.node.node_id, spec)
        txn.started_at = self.sim.now
        while True:
            ok = yield from self._attempt(txn)
            if ok:
                break
            self.stats.inc("aborts")
            if self.obs is not None:
                self.obs.txn_abort(self.node.node_id, txn)
            if self.on_abort is not None:
                self.on_abort(txn)
            txn.reset_for_retry()
            t0 = self._t0()
            yield self.sim.timeout(ABORT_BACKOFF_US * min(txn.attempts, 16))
            self._attrib("backoff", t0, txn.txn_id)
        txn.committed_at = self.sim.now
        txn.status = TxnStatus.COMMITTED
        self.stats.inc("commits")
        if self.obs is not None:
            self.obs.txn_commit(self.node.node_id, txn)
        return txn

    def _attempt(self, txn: Transaction):
        spec = txn.spec
        if spec.local_compute_us > 0:
            t0 = self._t0()
            yield from self.node.host_app_cores.run(spec.local_compute_us)
            self._attrib("host", t0, txn.txn_id)
        shards = {self.cluster.shard_of(k) for k in spec.all_keys()}
        own = self.node.node_id
        if (spec.single_round and shards <= {own}
                and self.cluster.primary_node_id(own) == own):
            ok = yield from self._local_attempt(txn)
            return ok
        # distributed: hand the transaction state to the coordinator NIC
        fut = self.host_pending.expect(("done", txn.txn_id, txn.attempts))
        self.node.pcie.host_to_nic(self._txn_state_bytes(spec), ("start", txn))
        ok, reason = yield fut
        txn.abort_reason = None if ok else (reason or "unknown")
        t0 = self._t0()
        yield from self.node.host_app_cores.run_wall(HOST_COMPLETE_US)
        self._attrib("host", t0, txn.txn_id)
        return ok

    def _txn_state_bytes(self, spec: TxnSpec) -> int:
        return 18 + 10 * len(spec.all_keys()) + spec.external_state_bytes

    # ------------------------------------------------------------------
    # local fast path (§4.2.4)
    # ------------------------------------------------------------------

    def _local_attempt(self, txn: Transaction):
        spec = txn.spec
        shard = self.node.node_id
        table = self.node.tables[shard]
        n_keys = len(spec.all_keys())
        # optimistic execution on the host against the host-side table
        t0 = self._t0()
        yield from self.node.host_app_cores.run_wall(
            self.config.host_per_key_us * max(1, n_keys)
        )
        self._attrib("host", t0, txn.txn_id)
        for k in spec.read_keys:
            value, version = self.node.read_local(k)
            if value is TOMBSTONE:
                value = None
            txn.read_values[k] = (value, version)
        if txn.read_only:
            # no PCIe, no network: validate against host versions (atomic
            # within this handler activation)
            self.stats.inc("local_readonly")
            return True
        if spec.logic_cost_us > 0:
            t0 = self._t0()
            yield from self.node.host_app_cores.run(spec.logic_cost_us)
            self._attrib("host", t0, txn.txn_id)
        txn.write_values = txn.run_logic()
        fut = self.host_pending.expect(("done", txn.txn_id, txn.attempts))
        state_bytes = self._txn_state_bytes(spec) + sum(
            10 + self._value_bytes(k) for k in txn.write_values
        )
        self.node.pcie.host_to_nic(state_bytes, ("local_commit", txn))
        ok, reason = yield fut
        txn.abort_reason = None if ok else (reason or "unknown")
        return ok

    def _nic_local_commit(self, txn: Transaction):
        """Coordinator-NIC side of a local write transaction: lock,
        validate against the authoritative NIC versions, replicate, commit."""
        yield from self.runtime.handle_message_cost(len(txn.spec.all_keys()),
                                                    txn.txn_id)
        yield from self._nic_local_commit_rest(txn)

    def _nic_local_commit_rest(self, txn: Transaction):
        """Post-charge half of the local-commit path (fused dispatch
        enters here after its single combined core charge)."""
        index = self.node.index
        shard = self.node.node_id
        locked: List[int] = []
        ok = True
        for k in txn.write_values:
            if not index.try_lock(k, txn.txn_id):
                ok = False
                break
            locked.append(k)
        if ok:
            for k, (_v, ver) in txn.read_values.items():
                if k in txn.write_values:
                    continue
                if index.is_locked(k, txn.txn_id) or index.read_version(k) != ver:
                    ok = False
                    break
            # host may have read stale (not-yet-applied) values: versions
            # for the write set must also match
            if ok:
                for k in txn.write_values:
                    host_ver = txn.read_values.get(k, (None, None))[1]
                    if host_ver is not None and index.read_version(k) != host_ver:
                        ok = False
                        break
        if not ok:
            for k in locked:
                index.unlock(k, txn.txn_id)
            self._notify_host(txn, False, "local-conflict")
            return
        for k in locked:
            txn.record_lock(shard, k)
        versions = {k: index.read_version(k) for k in txn.write_values}
        ok = yield from self._replicate_shard(txn, shard, txn.write_values, versions)
        if not ok:
            for k in locked:
                index.unlock(k, txn.txn_id)
            self._notify_host(txn, False, "log-failed")
            return
        self._notify_host(txn, True, None)
        yield from self._commit_local(txn, shard, txn.write_values)

    # ------------------------------------------------------------------
    # coordinator-side NIC
    # ------------------------------------------------------------------

    def _nic_coordinate(self, txn: Transaction):
        yield from self.runtime.nic_compute(NIC_ADMIT_US, txn.txn_id)
        yield from self._nic_coordinate_rest(txn)

    def _nic_coordinate_rest(self, txn: Transaction):
        """Post-admission half of coordination (fused dispatch enters
        here after charging NIC_ADMIT_US as one callback event)."""
        spec = txn.spec
        by_shard = self._group_by_shard(spec)
        if self._multihop_applicable(txn, by_shard):
            yield from self._multihop(txn, by_shard)
            return
        ok, reason = yield from self._phase_execute(txn, by_shard)
        if not ok:
            yield from self._abort_cleanup(txn)
            self._notify_host(txn, False, reason)
            return
        # execution rounds: multi-shot logic may extend the key sets and
        # re-run until it produces the final write set (§4.2 step 3)
        if spec.logic is not None or not txn.read_only:
            round_no = 0
            while True:
                result = yield from self._run_logic(txn, round_no)
                if isinstance(result, NeedMoreKeys):
                    self.stats.inc("multi_shot_rounds")
                    txn.add_keys(result)
                    delta = self._group_keys(result.read_keys,
                                             result.write_keys)
                    ok, reason = yield from self._phase_execute(txn, delta)
                    if not ok:
                        yield from self._abort_cleanup(txn)
                        self._notify_host(txn, False, reason)
                        return
                    round_no += 1
                    continue
                txn.write_values = result or {}
                break
        if txn.extra_read_keys or txn.extra_write_keys:
            # multi-shot rounds may have pulled in new shards; regroup.
            # (Single-shot transactions reuse the EXECUTE grouping:
            # _phase_validate only consults the shard count and regroups
            # the version checks itself from read_values.)
            by_shard = self._group_keys(txn.effective_read_keys(),
                                        txn.effective_write_keys())
        ok, reason = yield from self._phase_validate(txn, by_shard)
        if not ok:
            yield from self._abort_cleanup(txn)
            self._notify_host(txn, False, reason)
            return
        if txn.read_only:
            self._notify_host(txn, True, None)
            return
        writes_by_shard = self._writes_by_shard(txn)
        ok = yield from self._phase_log(txn, writes_by_shard)
        if not ok:
            yield from self._abort_cleanup(txn)
            self._notify_host(txn, False, "log-failed")
            return
        # Committed: report to the host, then apply at the primaries.
        self._notify_host(txn, True, None)
        yield from self._phase_commit(txn, writes_by_shard)

    def _group_by_shard(
        self, spec: TxnSpec
    ) -> Dict[int, Tuple[List[int], List[int]]]:
        return self._group_keys(spec.read_keys, spec.write_keys)

    def _group_keys(
        self, read_keys, write_keys
    ) -> Dict[int, Tuple[List[int], List[int]]]:
        # get-then-insert instead of setdefault: avoids building a
        # throwaway ([], []) pair per key on this per-transaction path
        groups: Dict[int, Tuple[List[int], List[int]]] = {}
        shard_of = self.cluster.shard_of
        for k in read_keys:
            s = shard_of(k)
            g = groups.get(s)
            if g is None:
                g = groups[s] = ([], [])
            g[0].append(k)
        for k in write_keys:
            s = shard_of(k)
            g = groups.get(s)
            if g is None:
                g = groups[s] = ([], [])
            g[1].append(k)
        return groups

    def _run_logic(self, txn: Transaction, round_no: int = 0):
        """Run one execution round; returns the logic result (a final
        write-value dict, or NeedMoreKeys for multi-shot logic)."""
        spec = txn.spec
        if self.config.nic_execution and spec.ship_execution:
            # execute on the coordinator-side NIC (§4.2.2): reference cost
            # scaled by the wimpy-core ratio
            t0 = self._t0()
            yield from self.node.nic.cores.run(spec.logic_cost_us)
            obs = self.obs
            if obs is not None:
                obs.attrib_span(
                    "nic", self.node.node_id, t0, self.sim.now, txn.txn_id,
                    svc=self.node.nic.cores.service_us(spec.logic_cost_us))
            self.stats.inc("nic_executions")
            return txn.run_logic()
        # PCIe roundtrip to the host for application execution
        fut = self.runtime.pending.expect(
            ("logic", txn.txn_id, txn.attempts, round_no))
        read_bytes = sum(
            16 + self._value_bytes(k) for k in txn.read_values
        )
        self.node.pcie.nic_to_host(read_bytes, ("logic_req", txn, round_no))
        result = yield fut
        self.stats.inc("host_executions")
        return result

    # -- EXECUTE ------------------------------------------------------------

    def _phase_execute(self, txn: Transaction, by_shard):
        txn.status = TxnStatus.EXECUTING
        evs = []
        smart = self.config.smart_remote_ops
        own = self.node.node_id
        primary_of = self.cluster.primary_node_id
        single_shard = len(by_shard) == 1
        inline = smart and single_shard and txn.read_only
        if smart and single_shard:
            # single-shard transaction: one EXECUTE — run a local core
            # inline (no spawn) or await the single remote request
            for shard, (rkeys, wkeys) in by_shard.items():
                primary = primary_of(shard)
                if primary == own:
                    resp0 = yield from self._execute_core(
                        shard, txn.txn_id, rkeys, wkeys, inline)
                else:
                    req = take_request(
                        EXECUTE, txn.txn_id, shard, txn.coord_node,
                        read_keys=rkeys, write_keys=wkeys,
                    )
                    if inline:
                        req.versions = {"inline": 1}  # flag: validate inline
                    t0 = self._t0()
                    resp0 = yield self._send_request(primary, req)
                    self._attrib("wire", t0, txn.txn_id)
            ok = True
            reason = None
            if resp0.ok:
                read_values = txn.read_values
                read_values.update(resp0.read_values)
                for k, ver in resp0.versions.items():
                    read_values.setdefault(k, (None, ver))
                    txn.record_lock(resp0.shard, k)
            else:
                ok = False
                reason = resp0.reason or "execute-abort"
            recycle_response(resp0)
            if ok and txn.read_only:
                txn.status = TxnStatus.VALIDATING  # validated inline
            return ok, reason
        for shard, (rkeys, wkeys) in by_shard.items():
            primary = primary_of(shard)
            if primary == own:
                # in the ablation baseline, local locks move to wave 2 too
                w1_wkeys = wkeys if smart else []
                evs.append(
                    self._launch(
                        self._execute_core(shard, txn.txn_id, rkeys,
                                           w1_wkeys, inline),
                        name="exec-local",
                    )
                )
            elif smart:
                req = take_request(
                    EXECUTE, txn.txn_id, shard, txn.coord_node,
                    read_keys=rkeys, write_keys=wkeys,
                )
                if inline:
                    req.versions = {"inline": 1}  # flag: validate inline
                evs.append(self._send_request(primary, req))
            else:
                # ablation baseline: per-key read requests now; per-key
                # lock requests follow in a second wave, mirroring the
                # one-sided read -> lock -> validate sequence (§5.7)
                for k in rkeys:
                    evs.append(
                        self._send_request(
                            primary,
                            take_request(EXECUTE, txn.txn_id, shard,
                                         txn.coord_node, read_keys=[k]),
                        )
                    )
        t0 = self._t0()
        if len(evs) == 1:
            resp0 = yield evs[0]
            responses = (resp0,)
        else:
            responses = yield self.sim.all_of(evs)
        self._attrib("wire", t0, txn.txn_id)
        if not smart:
            lock_evs = []
            for shard, (_rkeys, wkeys) in by_shard.items():
                primary = primary_of(shard)
                for k in wkeys:
                    if primary == own:
                        lock_evs.append(self._launch(
                            self._execute_core(shard, txn.txn_id, [], [k]),
                            name="lock-local"))
                    else:
                        lock_evs.append(self._send_request(
                            primary,
                            take_request(EXECUTE, txn.txn_id, shard,
                                         txn.coord_node, write_keys=[k])))
            if lock_evs:
                t0 = self._t0()
                lock_responses = yield self.sim.all_of(lock_evs)
                self._attrib("wire", t0, txn.txn_id)
                responses = list(responses) + list(lock_responses)
        ok = True
        reason = None
        read_values = txn.read_values
        for resp in responses:
            if resp.ok:
                read_values.update(resp.read_values)
                # resp.versions holds exactly the write keys this request
                # locked
                for k, ver in resp.versions.items():
                    read_values.setdefault(k, (None, ver))
                    txn.record_lock(resp.shard, k)
            else:
                ok = False
                reason = resp.reason or "execute-abort"
            recycle_response(resp)
        if ok and single_shard and txn.read_only and smart:
            txn.status = TxnStatus.VALIDATING  # validated inline
        return ok, reason

    # -- VALIDATE ------------------------------------------------------------

    def _phase_validate(self, txn: Transaction, by_shard):
        txn.status = TxnStatus.VALIDATING
        write_set = set(txn.write_values) | set(txn.effective_write_keys())
        to_check = [k for k in txn.effective_read_keys()
                    if k not in write_set]
        if not to_check:
            return True, None
        if (
            self.config.smart_remote_ops
            and txn.read_only
            and len(by_shard) == 1
        ):
            return True, None  # validated inline during EXECUTE
        groups: Dict[int, Dict[int, int]] = {}
        shard_of = self.cluster.shard_of
        read_values = txn.read_values
        for k in to_check:
            s = shard_of(k)
            g = groups.get(s)
            if g is None:
                g = groups[s] = {}
            g[k] = read_values[k][1]
        if self.config.smart_remote_ops and len(groups) == 1:
            for shard, versions in groups.items():
                primary = self.cluster.primary_node_id(shard)
                if primary == self.node.node_id:
                    # single local validation: run inline, no spawn
                    resp0 = yield from self._validate_core(
                        shard, txn.txn_id, versions)
                else:
                    t0 = self._t0()
                    resp0 = yield self._send_request(
                        primary,
                        take_request(VALIDATE, txn.txn_id, shard,
                                     txn.coord_node, versions=versions),
                    )
                    self._attrib("wire", t0, txn.txn_id)
            ok = resp0.ok
            reason = None if ok else (resp0.reason or "validate-abort")
            recycle_response(resp0)
            return ok, reason
        evs = []
        for shard, versions in groups.items():
            primary = self.cluster.primary_node_id(shard)
            if primary == self.node.node_id:
                evs.append(
                    self._launch(
                        self._validate_core(shard, txn.txn_id, versions),
                        name="validate-local",
                    )
                )
            elif self.config.smart_remote_ops:
                evs.append(
                    self._send_request(
                        primary,
                        take_request(VALIDATE, txn.txn_id, shard,
                                     txn.coord_node, versions=versions),
                    )
                )
            else:
                for k, ver in versions.items():
                    evs.append(
                        self._send_request(
                            primary,
                            take_request(VALIDATE, txn.txn_id, shard,
                                         txn.coord_node, versions={k: ver}),
                        )
                    )
        t0 = self._t0()
        if len(evs) == 1:
            resp0 = yield evs[0]
            responses = (resp0,)
        else:
            responses = yield self.sim.all_of(evs)
        self._attrib("wire", t0, txn.txn_id)
        ok = True
        reason = None
        for resp in responses:
            if not resp.ok and ok:
                ok = False
                reason = resp.reason or "validate-abort"
            recycle_response(resp)
        return ok, reason

    # -- LOG ------------------------------------------------------------

    def _writes_by_shard(self, txn: Transaction) -> Dict[int, Dict[int, object]]:
        groups: Dict[int, Dict[int, object]] = {}
        shard_of = self.cluster.shard_of
        for k, v in txn.write_values.items():
            s = shard_of(k)
            g = groups.get(s)
            if g is None:
                g = groups[s] = {}
            g[k] = v
        return groups

    def _write_versions(self, txn: Transaction, keys) -> Dict[int, int]:
        versions = {}
        for k in keys:
            captured = txn.read_values.get(k)
            versions[k] = captured[1] if captured is not None else 0
        return versions

    def _phase_log(self, txn: Transaction, writes_by_shard):
        txn.status = TxnStatus.LOGGING
        if len(writes_by_shard) == 1:
            # single write shard (the common case): replicate inline in
            # this frame instead of spawning a per-shard process
            for shard, writes in writes_by_shard.items():
                versions = self._write_versions(txn, writes)
                ok = yield from self._replicate_shard(
                    txn, shard, writes, versions)
                return ok
        evs = []
        for shard, writes in writes_by_shard.items():
            versions = self._write_versions(txn, writes)
            evs.append(
                self._launch(
                    self._replicate_shard(txn, shard, writes, versions),
                    name="log-shard",
                )
            )
        results = yield self.sim.all_of(evs)
        return all(results)

    def _replicate_shard(self, txn, shard: int, writes, versions):
        """Send LOG records for one shard's write set to all its backups;
        completes when every backup has acknowledged the durable append.

        ``writes``/``versions`` are shared (not copied) into the LOG
        requests: no handler mutates a request's dict fields, and pool
        recycling only reassigns them."""
        evs = []
        own = self.node.node_id
        for backup in self.cluster.backups_of(shard):
            if backup == own:
                # plain Request: consumed by the spawned generator itself
                # (no _serve to recycle it), so keep it off the pool
                req = Request(
                    LOG, txn.txn_id, shard, txn.coord_node,
                    write_values=writes, versions=versions,
                    value_bytes=txn.spec.write_bytes,
                )
                evs.append(
                    self._launch(self._log_core(req), name="log-local")
                )
            else:
                req = take_request(
                    LOG, txn.txn_id, shard, txn.coord_node,
                    write_values=writes, versions=versions,
                    value_bytes=txn.spec.write_bytes,
                )
                evs.append(self._send_request(backup, req))
        t0 = self._t0()
        if len(evs) == 1:
            resp0 = yield evs[0]
            responses = (resp0,)
        else:
            responses = yield self.sim.all_of(evs)
        self._attrib("wire", t0, txn.txn_id)
        ok = True
        for r in responses:
            if not r.ok:
                ok = False
            recycle_response(r)
        return ok

    # -- COMMIT ------------------------------------------------------------

    def _phase_commit(self, txn: Transaction, writes_by_shard):
        txn.status = TxnStatus.COMMITTING
        own = self.node.node_id
        if len(writes_by_shard) == 1:
            for shard, writes in writes_by_shard.items():
                if self.cluster.primary_node_id(shard) == own:
                    # single local commit: run inline, no spawn
                    yield from self._commit_local(txn, shard, writes)
                else:
                    t0 = self._t0()
                    resp0 = yield self._send_request(
                        self.cluster.primary_node_id(shard),
                        take_request(COMMIT, txn.txn_id, shard,
                                     txn.coord_node, write_values=writes,
                                     value_bytes=txn.spec.write_bytes),
                    )
                    self._attrib("wire", t0, txn.txn_id)
                    recycle_response(resp0)
            return
        evs = []
        for shard, writes in writes_by_shard.items():
            primary = self.cluster.primary_node_id(shard)
            if primary == own:
                evs.append(
                    self._launch(
                        self._commit_local(txn, shard, writes),
                        name="commit-local",
                    )
                )
            else:
                evs.append(
                    self._send_request(
                        primary,
                        take_request(COMMIT, txn.txn_id, shard,
                                     txn.coord_node, write_values=writes,
                                     value_bytes=txn.spec.write_bytes),
                    )
                )
        t0 = self._t0()
        if len(evs) == 1:
            resp0 = yield evs[0]
            self._attrib("wire", t0, txn.txn_id)
            if resp0 is not None:
                recycle_response(resp0)
        else:
            responses = yield self.sim.all_of(evs)
            self._attrib("wire", t0, txn.txn_id)
            for r in responses:
                # local commits (_commit_local) recycle their own response
                # and resolve to None
                if r is not None:
                    recycle_response(r)

    def _commit_local(self, txn: Transaction, shard: int, writes):
        req = take_request(COMMIT, txn.txn_id, shard, txn.coord_node,
                           write_values=writes,
                           value_bytes=txn.spec.write_bytes)
        resp = yield from self._commit_core(req)
        recycle_request(req)
        recycle_response(resp)

    # -- abort cleanup ------------------------------------------------------------

    def _abort_cleanup(self, txn: Transaction):
        """Release locks acquired at primaries during EXECUTE.

        Remote releases are *awaited* requests, not fire-and-forget: a
        delayed oneway UNLOCK could land after a later attempt of the same
        transaction re-locked the key (same txn_id) and silently steal the
        fresh lock.  Waiting for the ack orders the release before the
        retry's next EXECUTE round."""
        evs = []
        for shard, keys in list(txn.locked.items()):
            if not keys:
                continue
            primary = self.cluster.primary_node_id(shard)
            if primary == self.node.node_id:
                index = self.node.index_for(shard)
                for k in keys:
                    meta = index._meta.get(k)
                    if meta is not None and meta.lock_owner == txn.txn_id:
                        index.unlock(k, txn.txn_id)
            else:
                req = take_request(UNLOCK, txn.txn_id, shard, txn.coord_node,
                                   write_keys=list(keys))
                evs.append(self._send_request(primary, req))
        if evs:
            t0 = self._t0()
            if len(evs) == 1:
                resp0 = yield evs[0]
                recycle_response(resp0)
            else:
                responses = yield self.sim.all_of(evs)
                for r in responses:
                    recycle_response(r)
            self._attrib("wire", t0, txn.txn_id)
        txn.clear_locks()

    # ------------------------------------------------------------------
    # multi-hop OCC (§4.2.3, Figure 7b)
    # ------------------------------------------------------------------

    def _multihop_applicable(self, txn: Transaction, by_shard) -> bool:
        if not self.config.multihop_occ:
            return False
        spec = txn.spec
        if txn.read_only or not spec.ship_execution or not spec.single_round:
            return False
        local = self.node.node_id
        remote = [s for s in by_shard if s != local]
        # single remote shard, or local + one remote shard
        return len(remote) == 1

    def _multihop(self, txn: Transaction, by_shard):
        spec = txn.spec
        local = self.node.node_id
        remote = [s for s in by_shard if s != local][0]
        remote_primary = self.cluster.primary_node_id(remote)
        index = self.node.index
        self.stats.inc("multihop")

        local_keys = []
        if local in by_shard:
            rkeys, wkeys = by_shard[local]
            local_keys = list(dict.fromkeys(rkeys + wkeys))
        # Lock every local key (reads too: execution happens remotely, so
        # the lock stands in for validation) and gather local read values.
        yield from self.runtime.nic_compute(
            NIC_ADMIT_US + self.config.nic_per_key_us * len(local_keys),
            txn.txn_id,
        )
        locked: List[int] = []
        for k in local_keys:
            if not index.try_lock(k, txn.txn_id):
                for kk in locked:
                    index.unlock(kk, txn.txn_id)
                self._notify_host(txn, False, "multihop-local-conflict")
                return
            locked.append(k)
        pre_read = {}
        local_reads = by_shard.get(local, ([], []))[0]
        if local_reads:
            if len(local_reads) == 1:
                k0 = local_reads[0]
                pre_read[k0] = yield from self._fetch_value(local, k0,
                                                            txn.txn_id)
            else:
                fetched = yield self.sim.all_of([
                    self._launch(self._fetch_value(local, k, txn.txn_id),
                                   name="fetch")
                    for k in local_reads
                ])
                for k, vv in zip(local_reads, fetched):
                    pre_read[k] = vv
        for k in by_shard.get(local, ([], []))[1]:
            if k not in pre_read:
                pre_read[k] = (None, index.read_version(k))

        # Count expected backup acks: backups of every involved shard.
        n_acks = sum(len(self.cluster.backups_of(s)) for s in by_shard)
        ack_key = ("mh_log", txn.txn_id, txn.attempts)
        fut_acks = self.runtime.pending.expect_count(ack_key, n_acks)

        rkeys, wkeys = by_shard.get(remote, ([], []))
        req = take_request(
            EXEC_SHIP, txn.txn_id, remote, txn.coord_node,
            read_keys=rkeys, write_keys=wkeys,
            spec=spec, pre_read=pre_read, reply_to=self.node.node_id,
        )
        t0 = self._t0()
        resp = yield self._send_request(remote_primary, req)
        self._attrib("wire", t0, txn.txn_id)
        if not resp.ok:
            self.runtime.pending.cancel(ack_key)
            for k in locked:
                index.unlock(k, txn.txn_id)
            self._notify_host(txn, False, resp.reason or "multihop-remote-conflict")
            recycle_response(resp)
            return
        # take the write-value dict over (the response is recycled; its
        # fields are reassigned, never cleared in place)
        txn.write_values = resp.write_values
        recycle_response(resp)
        t0 = self._t0()
        acks = yield fut_acks
        self._attrib("wire", t0, txn.txn_id)
        ok = True
        for a in acks:
            if not a.ok:
                ok = False
            recycle_response(a)
        if not ok:
            # a backup failed the append: release and retry
            for k in locked:
                index.unlock(k, txn.txn_id)
            # awaited so a delayed release can't outlive this attempt and
            # steal the lock from the retry (same txn_id re-locks)
            t0 = self._t0()
            uresp = yield self._send_request(
                remote_primary,
                take_request(UNLOCK, txn.txn_id, remote, txn.coord_node,
                             write_keys=rkeys + wkeys))
            self._attrib("wire", t0, txn.txn_id)
            recycle_response(uresp)
            self._notify_host(txn, False, "multihop-log-failed")
            return
        self._notify_host(txn, True, None)
        # commit the local shard writes, release local read locks
        local_writes = {
            k: v for k, v in txn.write_values.items()
            if self.cluster.shard_of(k) == local
        }
        if local in by_shard:
            if local_writes:
                yield from self._commit_local(txn, local, local_writes)
            for k in locked:
                if k not in local_writes:
                    index.unlock(k, txn.txn_id)
        # commit the remote shard (unlocks its read locks too; versions are
        # assigned by the primary from its own metadata)
        remote_writes = {
            k: v for k, v in txn.write_values.items()
            if self.cluster.shard_of(k) == remote
        }
        req = take_request(COMMIT, txn.txn_id, remote, txn.coord_node,
                           write_values=remote_writes,
                           value_bytes=txn.spec.write_bytes)
        req.read_keys = [k for k in rkeys if k not in remote_writes]
        t0 = self._t0()
        cresp = yield self._send_request(remote_primary, req)
        self._attrib("wire", t0, txn.txn_id)
        recycle_response(cresp)

    def _handle_exec_ship(self, req: Request):
        """Remote-primary execution (P2 in Figure 7b).

        Write keys are locked; read-only keys are fetched optimistically
        and re-validated after the fetches complete (FaRM-style: lock,
        read, validate, then log), so reads never block other readers."""
        keys = dict.fromkeys(req.read_keys + req.write_keys)
        yield from self.runtime.handle_message_cost(len(keys), req.txn_id)
        resp = yield from self._exec_ship_rest(req)
        return resp

    def _exec_ship_rest(self, req: Request):
        """Post-charge half of EXEC_SHIP."""
        index = self.node.index_for(req.shard)
        locked: List[int] = []
        for k in req.write_keys:
            if not index.try_lock(k, req.txn_id):
                for kk in locked:
                    index.unlock(kk, req.txn_id)
                return take_response(EXEC_SHIP, req.txn_id, req.shard, False,
                                     reason="ship-lock-conflict")
            locked.append(k)
        read_values: Dict[int, Tuple[object, int]] = {}
        if req.read_keys:
            if len(req.read_keys) == 1:
                k0 = req.read_keys[0]
                read_values[k0] = yield from self._fetch_value(req.shard, k0,
                                                               req.txn_id)
            else:
                fetched = yield self.sim.all_of([
                    self._launch(self._fetch_value(req.shard, k,
                                                     req.txn_id),
                                   name="fetch")
                    for k in req.read_keys
                ])
                for k, vv in zip(req.read_keys, fetched):
                    read_values[k] = vv
            # inline validation of unlocked reads (no yields below until
            # the LOGs are issued, so this is the serialization point)
            for k, (_v, ver) in read_values.items():
                if k in locked:
                    continue
                if index.is_locked(k, req.txn_id) or index.read_version(k) != ver:
                    for kk in locked:
                        index.unlock(kk, req.txn_id)
                    return take_response(EXEC_SHIP, req.txn_id, req.shard,
                                         False, reason="ship-validate")
        # merge coordinator-side pre-read values and run the logic here
        spec: TxnSpec = req.spec
        shadow = Transaction(req.txn_id, req.coord_node, spec)
        shadow.read_values.update(req.pre_read)
        shadow.read_values.update(read_values)
        t0 = self._t0()
        yield from self.node.nic.cores.run(spec.logic_cost_us)
        obs = self.obs
        if obs is not None:
            obs.attrib_span(
                "nic", self.node.node_id, t0, self.sim.now, req.txn_id,
                svc=self.node.nic.cores.service_us(spec.logic_cost_us))
        write_values = shadow.run_logic()
        self.stats.inc("shipped_executions")

        # issue LOG records for every involved shard's writes, acks
        # redirected to the coordinator NIC
        writes_by_shard: Dict[int, Dict[int, object]] = {}
        for k, v in write_values.items():
            writes_by_shard.setdefault(self.cluster.shard_of(k), {})[k] = v
        for shard, writes in writes_by_shard.items():
            versions = {}
            for k in writes:
                if k in read_values:
                    versions[k] = read_values[k][1]
                elif k in req.pre_read:
                    versions[k] = req.pre_read[k][1]
                elif shard == req.shard:
                    versions[k] = index.read_version(k)
                else:
                    versions[k] = 0
            for backup in self.cluster.backups_of(shard):
                log_req = take_request(LOG, req.txn_id, shard, req.coord_node,
                                       write_values=writes,
                                       versions=versions,
                                       reply_to=req.reply_to,
                                       value_bytes=spec.write_bytes)
                if backup == self.node.node_id:
                    self._launch(self._log_core_redirect(log_req),
                                   name="mh-log-local")
                else:
                    self._send_oneway(backup, log_req)
        return take_response(EXEC_SHIP, req.txn_id, req.shard, True,
                             read_values=read_values,
                             write_values=write_values)

    def _log_core_redirect(self, req: Request):
        resp = yield from self._log_core(req)
        self._deliver_log_ack(req.reply_to, req.txn_id, resp)
        recycle_request(req)

    def _deliver_log_ack(self, target: int, txn_id: int, resp: Response) -> None:
        if target == self.node.node_id:
            self._resolve_mh_ack(txn_id, resp)
        else:
            msg = NetMessage(
                self.node.node_id, target, "log_ack",
                response_size(resp, self.cluster.value_size),
                ("log_ack", txn_id, resp),
                wire_id=self._next_wire_id(),
            )
            self.node.nic.send(msg)

    def _resolve_mh_ack(self, txn_id: int, resp: Response) -> None:
        # attempt number is unknown to the backup; resolve the only
        # outstanding counter for this txn
        for key in list(self.runtime.pending._counters):
            if key[0] == "mh_log" and key[1] == txn_id:
                self.runtime.pending.resolve_one(key, resp)
                return
        self.stats.inc("stray_log_acks")

    # ------------------------------------------------------------------
    # server-side request handlers
    # ------------------------------------------------------------------

    def _execute_core(self, shard: int, txn_id: int, read_keys, write_keys,
                      validate_inline: bool = False):
        """EXECUTE at the primary NIC: lock write keys, fetch read values
        (NIC cache or DMA), return values + versions."""
        n_keys = len(read_keys) + len(write_keys)
        yield from self.runtime.nic_compute(
            self.config.nic_per_key_us * max(1, n_keys), txn_id
        )
        resp = yield from self._execute_rest(shard, txn_id, read_keys,
                                             write_keys, validate_inline)
        return resp

    def _execute_rest(self, shard: int, txn_id: int, read_keys, write_keys,
                      validate_inline: bool = False):
        """Post-charge half of EXECUTE (the fused dispatch enters here
        after its single combined core charge)."""
        index = self.node.index_for(shard)
        locked: List[int] = []
        for k in write_keys:
            if not index.try_lock(k, txn_id):
                for kk in locked:
                    index.unlock(kk, txn_id)
                self.stats.inc("lock_conflicts")
                return take_response(EXECUTE, txn_id, shard, False,
                                     reason="lock-conflict")
            locked.append(k)
        read_values: Dict[int, Tuple[object, int]] = {}
        if read_keys:
            if len(read_keys) == 1:
                # single fetch: run inline in this frame — no Process spawn,
                # no start event, no completion event
                k0 = read_keys[0]
                read_values[k0] = yield from self._fetch_value(shard, k0,
                                                               txn_id)
            else:
                fetched = yield self.sim.all_of([
                    self._launch(self._fetch_value(shard, k, txn_id),
                                   name="fetch")
                    for k in read_keys
                ])
                for k, vv in zip(read_keys, fetched):
                    read_values[k] = vv
        if validate_inline:
            for k, (_v, ver) in read_values.items():
                if k in locked:
                    continue
                if index.is_locked(k, txn_id) or index.read_version(k) != ver:
                    for kk in locked:
                        index.unlock(kk, txn_id)
                    return take_response(EXECUTE, txn_id, shard, False,
                                         reason="inline-validate")
        versions = {k: index.read_version(k) for k in write_keys}
        return take_response(EXECUTE, txn_id, shard, True,
                             read_values=read_values, versions=versions)

    def _fetch_value(self, shard: int, key: int, txn_id=None):
        """Fetch one object's (value, version) at this (primary) NIC:
        cache hit from NIC DRAM, else DMA read(s) sized by the index hints.

        The value and its version are read in the same synchronous step
        *after* all waits complete, mirroring the NIC's atomic access to
        its own DRAM — otherwise a commit applying during the wait could
        pair a stale value with a fresh version."""
        index = self.node.index_for(shard)
        if index.cache_contains(key):
            yield self.node.nic.nic_dram_access()
            hit, value = index.cache_lookup(key)
            if hit:
                if value is TOMBSTONE:
                    value = None
                return value, index.read_version(key)
        cost = index.miss_cost(key)
        t0 = self._t0()
        yield self.runtime.dma_read(cost.first_read_bytes)
        if cost.second_read_bytes:
            yield self.runtime.dma_read(cost.second_read_bytes)
        if cost.extra_object_bytes:
            yield self.runtime.dma_read(cost.extra_object_bytes)
        if txn_id is not None:
            self._attrib("dma", t0, txn_id)
        # a commit may have landed while the DMA was in flight, in which
        # case the fresh value is pinned in the cache — prefer it
        hit, value = index.cache_lookup(key)
        if not hit:
            obj = self.node.tables[shard].get_object(key)
            value = obj.value if obj is not None else None
            index.install_cache(key, value)
        if value is TOMBSTONE:
            value = None
        return value, index.read_version(key)

    def _validate_core(self, shard: int, txn_id: int,
                       versions: Dict[int, int]):
        yield from self.runtime.nic_compute(
            self.config.nic_per_key_us * max(1, len(versions)), txn_id
        )
        return self._validate_sync(shard, txn_id, versions)

    def _validate_sync(self, shard: int, txn_id: int,
                       versions: Dict[int, int]) -> Response:
        """Post-charge half of VALIDATE — fully synchronous, so the fused
        dispatch runs it straight from its charge callback."""
        index = self.node.index_for(shard)
        for k, ver in versions.items():
            if index.is_locked(k, txn_id) or index.read_version(k) != ver:
                self.stats.inc("validate_conflicts")
                return take_response(VALIDATE, txn_id, shard, False,
                                     reason="version-changed")
        return take_response(VALIDATE, txn_id, shard, True)

    def _log_core(self, req: Request):
        """LOG at a backup: durably append the record via DMA write."""
        writes = [
            (k, v, req.versions.get(k, 0) + 1) for k, v in req.write_values.items()
        ]
        record = LogRecord(req.txn_id, "log", req.shard, writes)
        if self.node.log.full:
            t0 = self._t0()
            while self.node.log.full:
                self.stats.inc("log_backpressure")
                yield self.sim.timeout(LOG_RETRY_US)
            self._attrib("log_wait", t0, req.txn_id)
        vb = req.value_bytes if req.value_bytes is not None \
            else self.cluster.value_size
        nbytes = record_size_bytes(len(writes), vb)
        # the DMA write IS the append: the record only becomes visible to
        # the host workers once the bytes land in host memory
        t0 = self._t0()
        yield self.runtime.dma_log_append(nbytes)
        self._attrib("dma", t0, req.txn_id)
        self.node.append_log(record)
        return take_response(LOG, req.txn_id, req.shard, True)

    def _commit_core(self, req: Request):
        """COMMIT at the primary: append the commit record, refresh the
        cache, bump versions, release locks (§4.2 step 6).

        New versions are derived from the NIC's authoritative metadata
        (current version + 1); the write locks held since EXECUTE guarantee
        they match the versions the coordinator captured."""
        index = self.node.index_for(req.shard)
        writes = [
            (k, v, index.read_version(k) + 1)
            for k, v in req.write_values.items()
        ]
        record = LogRecord(req.txn_id, "commit", req.shard, writes)
        if self.node.log.full:
            t0 = self._t0()
            while self.node.log.full:
                self.stats.inc("log_backpressure")
                yield self.sim.timeout(LOG_RETRY_US)
            self._attrib("log_wait", t0, req.txn_id)
        vb = req.value_bytes if req.value_bytes is not None \
            else self.cluster.value_size
        nbytes = record_size_bytes(len(writes), vb)
        t0 = self._t0()
        yield self.runtime.dma_log_append(nbytes)
        self._attrib("dma", t0, req.txn_id)
        # apply to the NIC cache (pinning) before the host can see the
        # record, so the unpin ack can never race ahead of the pin
        for k, v, _ver in writes:
            index.apply_commit(k, v)
        self.node.append_log(record)
        self.node.note_pending_commit(record)
        for k in req.write_values:
            meta = index._meta.get(k)
            if meta is not None and meta.lock_owner == req.txn_id:
                index.unlock(k, req.txn_id)
            else:
                # lock rebuilt/reassigned (e.g. recovery resolved this txn
                # while the COMMIT was in flight) — nothing to release
                self.stats.inc("commit_unlock_mismatch")
        # multi-hop: read keys locked during shipped execution release here
        for k in req.read_keys:
            meta = index._meta.get(k)
            if meta is not None and meta.lock_owner == req.txn_id:
                index.unlock(k, req.txn_id)
        return take_response(COMMIT, req.txn_id, req.shard, True)

    def _unlock_core(self, req: Request):
        yield from self.runtime.nic_compute(
            self.config.nic_per_key_us * max(1, len(req.write_keys)),
            req.txn_id,
        )
        return self._unlock_sync(req)

    def _unlock_sync(self, req: Request) -> Response:
        """Post-charge half of UNLOCK — fully synchronous."""
        index = self.node.index_for(req.shard)
        for k in req.write_keys:
            meta = index._meta.get(k)
            if meta is not None and meta.lock_owner == req.txn_id:
                index.unlock(k, req.txn_id)
        return take_response(UNLOCK, req.txn_id, req.shard, True)

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------

    def _send_request(self, dst: int, req: Request):
        """Send a request; returns an event resolving to its Response.

        Open-coded ``PendingTable`` single-waiter fast path: request ids
        are plain per-node-unique ints (the response resolves in *this*
        node's table, so no node qualifier is needed), stored directly in
        ``_futures`` — int keys cannot collide with the tuple keys other
        subsystems use."""
        self._req_seq += 1
        rid = self._req_seq
        fut = self.sim.event(name="pending")
        self.runtime.pending._futures[rid] = fut
        msg = NetMessage(
            self.node.node_id, dst, req.kind,
            request_size(req, self.cluster.value_size),
            ("req", rid, req),
            wire_id=self._next_wire_id(),
        )
        self.node.nic.send(msg)
        self.stats.inc("requests_sent")
        return fut

    def _send_oneway(self, dst: int, req: Request) -> None:
        if dst == self.node.node_id:
            if self._fused:
                self._oneway_fused(req)
            else:
                self.sim.spawn(self._handle_oneway_local(req),
                               name="oneway-local")
            return
        msg = NetMessage(
            self.node.node_id, dst, req.kind,
            request_size(req, self.cluster.value_size),
            ("oneway", req),
            wire_id=self._next_wire_id(),
        )
        self.node.nic.send(msg)

    def _handle_oneway_local(self, req: Request):
        yield from self._dispatch_oneway(req)

    def _next_wire_id(self) -> int:
        self._wire_seq += 1
        return self._wire_seq

    def _on_wire(self, msg: NetMessage) -> None:
        if msg.wire_id is not None:
            key = (msg.src, msg.wire_id)
            if key in self._seen_wire:
                self.stats.inc("dup_wire_dropped")
                return
            self._seen_wire.add(key)
        tag = msg.payload[0]
        if tag == "req":
            _tag, rid, req = msg.payload
            if self._fused:
                self._serve_fused(msg.src, rid, req)
            else:
                self.sim.spawn(self._serve(msg.src, rid, req), name="serve")
        elif tag == "resp":
            _tag, rid, resp = msg.payload
            self._charge_rx_then(self._resolve_response, rid, resp,
                                 self._receive_response)
        elif tag == "oneway":
            if self._fused:
                self._oneway_fused(msg.payload[1])
            else:
                self.sim.spawn(self._dispatch_oneway(msg.payload[1]),
                               name="oneway")
        elif tag == "log_ack":
            _tag, txn_id, resp = msg.payload
            self._charge_rx_then(self._resolve_mh_ack, txn_id, resp,
                                 self._receive_log_ack)
        else:  # pragma: no cover - defensive
            raise RuntimeError("unknown wire tag %r" % (tag,))

    def _charge_rx_then(self, fn, a, b, slow_gen) -> None:
        """Charge one NIC core for inbound-message handling, then run
        ``fn(a, b)`` — the no-Process form of ``yield from
        handle_message_cost(0)`` followed by a synchronous action.

        Replaces a spawned two-step generator (Process + start event +
        core-run machinery) with at most one Timeout.  When an
        observability sink is attached the spawned ``slow_gen`` path is
        used instead so per-core spans stay complete."""
        cores = self.node.nic.cores
        if cores.obs_sink is not None:
            self.sim.spawn(slow_gen(a, b), name="recv")
            return
        wall = self.runtime.msg_handle_us + self.runtime._stall_us()
        pool = cores.pool
        if pool.try_acquire():
            cores.jobs_executed += 1
            cores.busy_us += wall
            Timeout(self.sim, wall).add_callback(
                lambda _e: (pool.release(), fn(a, b)))
        else:
            pool.acquire().add_callback(
                lambda _e: self._charge_rx_granted(cores, wall, fn, a, b))

    def _charge_rx_granted(self, cores, wall, fn, a, b) -> None:
        cores.jobs_executed += 1
        cores.busy_us += wall
        Timeout(self.sim, wall).add_callback(
            lambda _e: (cores.pool.release(), fn(a, b)))

    def _resolve_response(self, rid, resp: Response) -> None:
        fut = self.runtime.pending._futures.pop(rid, None)
        if fut is None:
            self.stats.inc("stray_responses")
        else:
            fut.succeed(resp)

    def _serve(self, src: int, rid, req: Request):
        handler = self._handlers.get(req.kind)
        if handler is None:  # pragma: no cover - defensive
            raise RuntimeError("no handler for %r" % req.kind)
        resp = yield from handler(req)
        self._respond(src, rid, req, resp)

    def _respond(self, src: int, rid, req: Request, resp: Response) -> None:
        msg = NetMessage(
            self.node.node_id, src, "resp",
            response_size(resp, self.cluster.value_size),
            ("resp", rid, resp),
            wire_id=self._next_wire_id(),
        )
        self.node.nic.send(msg)
        # the request's single consumption point: any duplicate delivery
        # was already dropped by wire id before the payload is read
        recycle_request(req)

    # -- fused inbound dispatch (REPRO_FUSION, repro.sim.fusion) ------------
    #
    # The stepwise path spawns a Process per inbound request and charges
    # the NIC cores twice (message handling, then the per-key handler
    # cost).  When no observer, fault injector, or core contention needs
    # the intermediate timestamps, the fused path merges both charges
    # into ONE callback Timeout and runs the handler's post-charge half
    # from the callback — no Process, no start event, and for the fully
    # synchronous handlers (VALIDATE/UNLOCK) no generator at all.

    def _fused_dispatch(self, c1: float, c2: float, then) -> bool:
        """Try the fused inbound dispatch: charge one NIC core for the
        stepwise path's charges ``c1`` (+ ``c2``, when the stepwise path
        makes a second back-to-back charge) as a single callback event
        that runs ``then()`` at completion.  Returns False — charging
        nothing — when the stepwise spawn must be used instead (observer
        attached, fault injector present, or no core free).

        Timestamps and the core pool's busy-area summation replicate the
        stepwise float arithmetic exactly (per-charge slowdown
        round-trips, left-associated end time, ``note_split`` at the
        stepwise release point) so golden digests stay byte-identical."""
        runtime = self.runtime
        cores = self.node.nic.cores
        if (self.obs is not None or cores.obs_sink is not None
                or runtime.obs_sink is not None
                or runtime.injector is not None):
            return False
        pool = cores.pool
        if not pool.try_acquire():
            return False
        slowdown = cores.slowdown
        w1 = (c1 / slowdown) * slowdown
        cores.jobs_executed += 1
        cores.busy_us += w1
        end = self.sim._now + w1
        if c2 > 0.0:
            w2 = (c2 / slowdown) * slowdown
            cores.jobs_executed += 1
            cores.busy_us += w2
            pool.note_split(end)
            end = end + w2
        self.sim.call_at(end, lambda _e: (pool.release(), then()))
        return True

    def _serve_fused(self, src: int, rid, req: Request) -> None:
        """Fused twin of spawning ``_serve``: the leading message +
        per-key charges collapse to one event; falls back to the spawned
        stepwise path when _fused_dispatch declines."""
        per_key = self.config.nic_per_key_us
        msg_us = self.runtime.msg_handle_us
        kind = req.kind
        # (c1, c2) mirror the stepwise handler's charges: EXECUTE /
        # VALIDATE / UNLOCK charge message handling then per-key work
        # separately; LOG / COMMIT / EXEC_SHIP fold the keys into one
        # handle_message_cost call.
        if kind == EXECUTE:
            c1 = msg_us
            c2 = per_key * max(1, len(req.read_keys) + len(req.write_keys))
        elif kind == VALIDATE:
            c1 = msg_us
            c2 = per_key * max(1, len(req.versions))
        elif kind == UNLOCK:
            c1 = msg_us
            c2 = per_key * max(1, len(req.write_keys))
        elif kind == EXEC_SHIP:
            c1 = msg_us + len(dict.fromkeys(req.read_keys
                                            + req.write_keys)) * per_key
            c2 = 0.0
        else:  # LOG / COMMIT
            c1 = msg_us + len(req.write_values) * per_key
            c2 = 0.0
        if not self._fused_dispatch(
                c1, c2, lambda: self._serve_rest(src, rid, req)):
            self.sim.spawn(self._serve(src, rid, req), name="serve")

    def _serve_rest(self, src: int, rid, req: Request) -> None:
        """Post-charge half of a fused serve.  VALIDATE and UNLOCK are
        fully synchronous; the rest still need a generator (DMA, log
        back-pressure) but start it immediately with no start event."""
        kind = req.kind
        if kind == VALIDATE:
            self._respond(src, rid, req,
                          self._validate_sync(req.shard, req.txn_id,
                                              req.versions))
        elif kind == UNLOCK:
            self._respond(src, rid, req, self._unlock_sync(req))
        else:
            self.sim.start(self._serve_rest_gen(src, rid, req), name="serve")

    def _serve_rest_gen(self, src: int, rid, req: Request):
        kind = req.kind
        if kind == EXECUTE:
            inline = bool(req.versions.pop("inline", None))
            resp = yield from self._execute_rest(
                req.shard, req.txn_id, req.read_keys, req.write_keys, inline)
        elif kind == LOG:
            resp = yield from self._log_core(req)
        elif kind == COMMIT:
            resp = yield from self._commit_core(req)
        else:  # EXEC_SHIP
            resp = yield from self._exec_ship_rest(req)
        self._respond(src, rid, req, resp)

    def _oneway_fused(self, req: Request) -> None:
        """Fused twin of spawning ``_dispatch_oneway``."""
        per_key = self.config.nic_per_key_us
        msg_us = self.runtime.msg_handle_us
        if req.kind == UNLOCK:
            ok = self._fused_dispatch(
                msg_us, per_key * max(1, len(req.write_keys)),
                lambda: self._oneway_unlock_done(req))
        else:  # LOG
            ok = self._fused_dispatch(
                msg_us + len(req.write_values) * per_key, 0.0,
                lambda: self.sim.start(self._log_core_redirect(req),
                                       name="oneway"))
        if not ok:
            self.sim.spawn(self._dispatch_oneway(req), name="oneway")

    def _oneway_unlock_done(self, req: Request) -> None:
        recycle_response(self._unlock_sync(req))
        recycle_request(req)

    def _handle_execute_req(self, req: Request):
        yield from self.runtime.handle_message_cost(0, req.txn_id)
        inline = bool(req.versions.pop("inline", None))
        resp = yield from self._execute_core(
            req.shard, req.txn_id, req.read_keys, req.write_keys, inline
        )
        return resp

    def _handle_validate_req(self, req: Request):
        yield from self.runtime.handle_message_cost(0, req.txn_id)
        resp = yield from self._validate_core(req.shard, req.txn_id,
                                              req.versions)
        return resp

    def _handle_log_req(self, req: Request):
        yield from self.runtime.handle_message_cost(len(req.write_values),
                                                    req.txn_id)
        resp = yield from self._log_core(req)
        return resp

    def _handle_commit_req(self, req: Request):
        yield from self.runtime.handle_message_cost(len(req.write_values),
                                                    req.txn_id)
        resp = yield from self._commit_core(req)
        return resp

    def _handle_unlock_req(self, req: Request):
        yield from self.runtime.handle_message_cost(0, req.txn_id)
        resp = yield from self._unlock_core(req)
        return resp

    _HANDLERS = {
        EXECUTE: _handle_execute_req,
        VALIDATE: _handle_validate_req,
        LOG: _handle_log_req,
        COMMIT: _handle_commit_req,
        UNLOCK: _handle_unlock_req,
        EXEC_SHIP: _handle_exec_ship,
    }

    def _dispatch_oneway(self, req: Request):
        if req.kind == UNLOCK:
            resp = yield from self._handle_unlock_req(req)
            recycle_response(resp)
            recycle_request(req)
        elif req.kind == LOG:
            yield from self.runtime.handle_message_cost(len(req.write_values),
                                                        req.txn_id)
            resp = yield from self._log_core(req)
            self._deliver_log_ack(req.reply_to, req.txn_id, resp)
            recycle_request(req)
        else:  # pragma: no cover - defensive
            raise RuntimeError("unexpected one-way %r" % req.kind)

    def _receive_response(self, rid, resp: Response):
        yield from self.runtime.handle_message_cost(0)
        fut = self.runtime.pending._futures.pop(rid, None)
        if fut is None:
            self.stats.inc("stray_responses")
        else:
            fut.succeed(resp)

    def _receive_log_ack(self, txn_id: int, resp: Response):
        yield from self.runtime.handle_message_cost(0)
        self._resolve_mh_ack(txn_id, resp)

    # -- PCIe handlers ------------------------------------------------------------

    def _on_pcie_nic(self, payload) -> None:
        tag = payload[0]
        if tag == "start":
            txn = payload[1]
            if not (self._fused and self._fused_dispatch(
                    NIC_ADMIT_US, 0.0,
                    lambda: self.sim.start(self._nic_coordinate_rest(txn),
                                           name="nic-coord"))):
                self.sim.spawn(self._nic_coordinate(txn), name="nic-coord")
        elif tag == "local_commit":
            txn = payload[1]
            if not (self._fused and self._fused_dispatch(
                    self.runtime.msg_handle_us
                    + len(txn.spec.all_keys()) * self.config.nic_per_key_us,
                    0.0,
                    lambda: self.sim.start(self._nic_local_commit_rest(txn),
                                           name="nic-local"))):
                self.sim.spawn(self._nic_local_commit(txn), name="nic-local")
        elif tag == "logic_resp":
            _tag, txn_id, attempt, round_no, result = payload
            self.runtime.pending.resolve(
                ("logic", txn_id, attempt, round_no), result)
        else:  # pragma: no cover - defensive
            raise RuntimeError("unknown pcie->nic tag %r" % (tag,))

    def _on_pcie_host(self, payload) -> None:
        tag = payload[0]
        if tag == "done":
            _tag, txn_id, attempt, ok, reason = payload
            if not self.host_pending.resolve(("done", txn_id, attempt),
                                             (ok, reason)):
                self.stats.inc("stray_done")
        elif tag == "logic_req":
            if not (self._fused and self._host_logic_fused(payload[1],
                                                           payload[2])):
                self.sim.spawn(self._host_run_logic(payload[1], payload[2]),
                               name="host-logic")
        else:  # pragma: no cover - defensive
            raise RuntimeError("unknown pcie->host tag %r" % (tag,))

    def _host_run_logic(self, txn: Transaction, round_no: int = 0):
        t0 = self._t0()
        yield from self.node.host_app_cores.run(txn.spec.logic_cost_us)
        self._attrib("host", t0, txn.txn_id)
        self._host_logic_done(txn, round_no)

    def _host_logic_fused(self, txn: Transaction, round_no: int) -> bool:
        """Fused host-logic execution: one callback Timeout charging a
        host app core for the (known) logic cost, then the synchronous
        logic + PCIe ship.  Declines when an observer needs the host
        span or all app cores are busy."""
        cores = self.node.host_app_cores
        if (self.obs is not None or cores.obs_sink is not None
                or self.runtime.injector is not None):
            return False
        service = txn.spec.logic_cost_us * cores.slowdown
        if service <= 0:
            # stepwise resolves zero-cost logic synchronously inside the
            # start event; keep that ordering.
            return False
        pool = cores.pool
        if not pool.try_acquire():
            return False
        cores.jobs_executed += 1
        cores.busy_us += service
        Timeout(self.sim, service).add_callback(
            lambda _e: (pool.release(), self._host_logic_done(txn, round_no)))
        return True

    def _host_logic_done(self, txn: Transaction, round_no: int) -> None:
        result = txn.run_logic()
        if isinstance(result, NeedMoreKeys):
            nbytes = 16 + 10 * (len(result.read_keys) + len(result.write_keys))
        else:
            nbytes = sum(10 + self._value_bytes(k) for k in result) + 16
        self.node.pcie.host_to_nic(
            nbytes, ("logic_resp", txn.txn_id, txn.attempts, round_no, result)
        )

    def _notify_host(self, txn: Transaction, ok: bool, reason: Optional[str]) -> None:
        if not ok:
            self.stats.inc("abort:%s" % reason)
        self.node.pcie.nic_to_host(
            DONE_MSG_BYTES, ("done", txn.txn_id, txn.attempts, ok, reason)
        )

    # -- helpers ------------------------------------------------------------

    def _value_bytes(self, key: int) -> int:
        return self.cluster.value_size
