"""Xenic core: configuration, transactions, protocol, cluster, recovery."""

from .cluster import XenicCluster
from .config import XenicConfig, ablation_ladder_latency, ablation_ladder_throughput
from .messages import Request, Response
from .node import XenicNode
from .protocol import XenicProtocol
from .recovery import ClusterManager, RecoveryManager, RecoveryReport
from .txn import Transaction, TxnSpec, TxnStatus, make_txn_id

__all__ = [
    "XenicCluster",
    "XenicConfig",
    "XenicNode",
    "XenicProtocol",
    "Transaction",
    "TxnSpec",
    "TxnStatus",
    "make_txn_id",
    "Request",
    "Response",
    "ClusterManager",
    "RecoveryManager",
    "RecoveryReport",
    "ablation_ladder_throughput",
    "ablation_ladder_latency",
]
