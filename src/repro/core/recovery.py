"""Fault tolerance: leases, backup promotion, lock rebuild (§4.2.1).

Xenic adopts FaRM's reconfiguration/recovery design.  The pieces modeled
here:

* a :class:`ClusterManager` (the ZooKeeper stand-in) holding per-node
  leases; expiry triggers reconfiguration;
* :class:`RecoveryManager.recover_shard` — when a primary fails, a
  surviving backup is promoted.  Lock state lives only in (the failed)
  SmartNIC memory, so it is *rebuilt*: each surviving replica scans its
  log for transactions of the shard not yet acknowledged as committed,
  their write-set keys are re-locked at the new primary, and each
  recovering transaction is resolved — committed iff its LOG record
  reached every surviving backup replica, else aborted — before the locks
  are finally released and the shard serves again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..sim.core import Simulator
from ..store.log import LogRecord

__all__ = ["Lease", "ClusterManager", "RecoveryManager", "RecoveryReport"]


@dataclass
class Lease:
    node_id: int
    expires_at: float


class ClusterManager:
    """Lease-based membership service (off the critical path)."""

    def __init__(self, sim: Simulator, lease_us: float = 5000.0):
        self.sim = sim
        self.lease_us = lease_us
        self._leases: Dict[int, Lease] = {}
        self.config_epoch = 0
        self.expired_log: List[Tuple[float, int]] = []

    def register(self, node_id: int) -> Lease:
        lease = Lease(node_id, self.sim.now + self.lease_us)
        self._leases[node_id] = lease
        return lease

    def renew(self, node_id: int) -> None:
        lease = self._leases.get(node_id)
        if lease is None:
            raise KeyError("node %d has no lease" % node_id)
        lease.expires_at = self.sim.now + self.lease_us

    def live_nodes(self) -> Set[int]:
        """Nodes whose lease has not lapsed.

        The boundary is inclusive: a lease renewed at exactly its expiry
        instant (``expires_at == now``) is still live — the holder acted
        within its lease.  ``check_expiry`` uses the strict complement, so
        a node is never simultaneously live and expired.
        """
        return {
            nid for nid, lease in self._leases.items()
            if lease.expires_at >= self.sim.now
        }

    def check_expiry(self) -> List[int]:
        """Returns newly expired nodes and bumps the configuration epoch."""
        expired = [
            nid for nid, lease in self._leases.items()
            if lease.expires_at < self.sim.now
        ]
        for nid in expired:
            del self._leases[nid]
            self.expired_log.append((self.sim.now, nid))
        if expired:
            self.config_epoch += 1
        return expired

    def revoke(self, node_id: int) -> None:
        """Administratively drop a node's lease (fail-stop declaration),
        independent of the expiry boundary."""
        if node_id in self._leases:
            del self._leases[node_id]
            self.expired_log.append((self.sim.now, node_id))
            self.config_epoch += 1

    def renewal_loop(self, node_id: int, interval_us: Optional[float] = None,
                     alive=lambda: True):
        """Process: periodically renew a node's lease while it is alive."""
        interval = interval_us if interval_us is not None else self.lease_us / 3
        while alive() and node_id in self._leases:
            self.renew(node_id)
            yield self.sim.timeout(interval)


@dataclass
class RecoveryReport:
    shard: int
    old_primary: int
    new_primary: int
    recovering_txns: List[int] = field(default_factory=list)
    committed: List[int] = field(default_factory=list)
    aborted: List[int] = field(default_factory=list)
    locks_rebuilt: int = 0


class RecoveryManager:
    """Drives shard recovery on a :class:`XenicCluster`."""

    def __init__(self, cluster, manager: Optional[ClusterManager] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.manager = manager or ClusterManager(cluster.sim)
        for node in cluster.nodes:
            self.manager.register(node.node_id)

    def fail_node(self, node_id: int) -> None:
        """Mark a node failed (its lease is revoked immediately)."""
        self.cluster.failed.add(node_id)
        self.manager.revoke(node_id)
        self.manager.check_expiry()

    def recover_shard(self, shard: int) -> RecoveryReport:
        """Promote a surviving backup to primary for ``shard`` and resolve
        in-flight transactions from the surviving logs."""
        cluster = self.cluster
        old_primary = cluster.primary_node_id(shard)
        if old_primary not in cluster.failed:
            raise RuntimeError("primary of shard %d has not failed" % shard)
        survivors = [
            n for n in cluster.nodes[shard].backups_of(shard)
            if n not in cluster.failed
        ]
        if not survivors:
            raise RuntimeError("shard %d lost all replicas" % shard)
        new_primary = survivors[0]
        report = RecoveryReport(shard, old_primary, new_primary)

        # 1. promote: build a fresh NIC index over the replica table
        node = cluster.nodes[new_primary]
        index = node.promote_to_primary(shard)
        cluster.set_primary(shard, new_primary)

        # 2. scan surviving logs for unacknowledged records of this shard
        pending: Dict[int, Dict[int, LogRecord]] = {}  # txn -> node -> record
        for nid in survivors:
            for record in cluster.nodes[nid].log._records:
                if record.shard == shard and record.kind == "log" and not record.acked:
                    pending.setdefault(record.txn_id, {})[nid] = record
        report.recovering_txns = sorted(pending)

        # 3. re-acquire write locks for every recovering transaction
        for txn_id, by_node in pending.items():
            any_record = next(iter(by_node.values()))
            for key, _value, _version in any_record.writes:
                index.try_lock(key, txn_id)
                report.locks_rebuilt += 1

        # 4. resolve: commit iff the record reached every surviving backup
        for txn_id in sorted(pending):
            by_node = pending[txn_id]
            if set(by_node) >= set(survivors):
                record = by_node[new_primary]
                for key, value, version in record.writes:
                    obj = node.tables[shard].get_object(key)
                    if obj is None:
                        from ..store.object import VersionedObject

                        obj = VersionedObject(key, value=value,
                                              size=node.value_size)
                        node.tables[shard].insert(key, obj)
                    if version > obj.version:
                        obj.value = value
                        obj.version = version
                report.committed.append(txn_id)
            else:
                report.aborted.append(txn_id)
            any_record = next(iter(by_node.values()))
            for key, _value, _version in any_record.writes:
                meta = index._meta.get(key)
                if meta is not None and meta.lock_owner == txn_id:
                    index.unlock(key, txn_id)
        return report
