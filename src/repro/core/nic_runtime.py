"""The SmartNIC operations framework (§4.3).

Provides the two execution disciplines the paper contrasts:

* **asynchronous, vectored DMA** (§4.3.1) — operations accumulate in
  per-direction pending vectors; a vector is submitted when full (15 ops)
  or at the end of the polling burst, amortizing the submission cost and
  overlapping completion latency with other work;
* **blocking single DMA** (the Figure 9a baseline) — each DMA is
  submitted alone and a NIC core spins until completion.

It also owns request/response plumbing: outbound requests register a
pending future; responses (and redirected multi-hop acks) resolve it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..hw.dma import DmaOp
from ..hw.nic import SmartNic
from ..sim.core import Event, Simulator, Timeout
from ..sim.fusion import fusion_enabled
from .config import XenicConfig

__all__ = ["NicRuntime", "PendingTable"]

# End-of-burst flush interval for partially filled DMA vectors: the burst
# loop (§4.3.2) submits pending vectors once per iteration.
BURST_INTERVAL_US = 0.25

# Per-message handling cost on a NIC core (wall-µs).  The standalone cost
# comes from §3.3 (71.8 Mops/s over 16 threads); burst RX processing under
# aggregation amortizes the per-packet share of it.
MSG_HANDLE_WALL_US = 16.0 / 71.8
MSG_HANDLE_WALL_US_AGGREGATED = 0.12


class PendingTable:
    """Futures for outstanding requests, keyed by caller-chosen ids."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._futures: Dict[Any, Event] = {}
        self._counters: Dict[Any, List[int]] = {}

    def expect(self, key: Any) -> Event:
        if key in self._futures:
            raise RuntimeError("duplicate pending key %r" % (key,))
        ev = self.sim.event(name="pending")
        self._futures[key] = ev
        return ev

    def resolve(self, key: Any, value: Any = None) -> bool:
        ev = self._futures.pop(key, None)
        if ev is None:
            return False
        ev.succeed(value)
        return True

    def expect_count(self, key: Any, n: int) -> Event:
        """A future that fires after ``n`` resolve_one() calls; its value is
        the list of delivered values."""
        if n <= 0:
            ev = self.sim.event(name="pending-zero")
            ev.succeed([])
            return ev
        ev = self.sim.event(name="pending-count")
        self._futures[key] = ev
        self._counters[key] = [n, []]
        return ev

    def resolve_one(self, key: Any, value: Any = None) -> bool:
        state = self._counters.get(key)
        if state is None:
            return False
        state[0] -= 1
        state[1].append(value)
        if state[0] == 0:
            del self._counters[key]
            ev = self._futures.pop(key)
            ev.succeed(state[1])
        return True

    def cancel(self, key: Any) -> bool:
        """Drop a pending future without firing it (abort cleanup)."""
        self._counters.pop(key, None)
        return self._futures.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._futures)


class NicRuntime:
    """Per-node SmartNIC execution framework."""

    def __init__(self, sim: Simulator, nic: SmartNic, config: XenicConfig):
        self.sim = sim
        self.nic = nic
        self.config = config
        self.pending = PendingTable(sim)
        self._read_vec: List[DmaOp] = []
        self._write_vec: List[DmaOp] = []
        self._log_bytes = 0
        self._log_waiters: List[Event] = []
        self._flusher_running = False
        self.dma_reads = 0
        self.dma_writes = 0
        self.log_appends = 0
        self.log_flushes = 0
        # Optional fault injector (repro.sim.faults): transient NIC-core
        # scheduling stalls inflate compute slices.
        self.injector = None
        # Latency-attribution sink (repro.obs.Observer) + owning node id;
        # None keeps nic_compute/handle_message_cost on the branch-free
        # return-the-generator fast path.
        self.obs_sink = None
        self.obs_node = 0
        self.msg_handle_us = (
            MSG_HANDLE_WALL_US_AGGREGATED
            if config.ethernet_aggregation
            else MSG_HANDLE_WALL_US
        )
        # Delay fusion (REPRO_FUSION): the burst flusher self-rearms via
        # a callback Timeout instead of re-spawning a Process per burst.
        self._fused = fusion_enabled()
        self._burst_cb_bound = self._burst_cb

    # -- compute ------------------------------------------------------------

    def handle_message_cost(self, extra_keys: int = 0, txn_id=None):
        """Generator: charge a NIC core for handling one inbound message
        plus per-key index work.  ``txn_id`` labels the span for latency
        attribution when an observer is attached."""
        cost = self.msg_handle_us + extra_keys * self.config.nic_per_key_us
        return self.nic_compute(cost, txn_id)

    def nic_compute(self, wall_us: float, txn_id=None):
        # _stall_us() is drawn eagerly in both paths (exactly once per
        # call), so attaching an observer never perturbs the fault RNG.
        cost = wall_us + self._stall_us()
        if self.obs_sink is None or txn_id is None:
            return self.nic.cores.run_wall(cost)
        return self._attrib_run(cost, txn_id)

    def _attrib_run(self, wall_us: float, txn_id: int):
        """Timing-identical wrapper around ``run_wall`` that records the
        queue+service interval as an attribution span.  ``svc`` is the
        known service portion; the attributor splits the rest off as NIC
        queueing."""
        start = self.sim.now
        yield from self.nic.cores.run_wall(wall_us)
        sink = self.obs_sink
        if sink is not None:
            sink.attrib_span("nic", self.obs_node, start, self.sim.now,
                             txn_id, svc=wall_us)

    def _stall_us(self) -> float:
        if self.injector is None:
            return 0.0
        return self.injector.nic_stall_us(self)

    # -- DMA ------------------------------------------------------------

    def dma(self, nbytes: int, is_read: bool) -> Event:
        """Issue a host-memory DMA; returns the per-op completion event."""
        if is_read:
            self.dma_reads += 1
        else:
            self.dma_writes += 1
        op = DmaOp(size=nbytes, is_read=is_read, done=self.sim.event())
        if not self.config.async_dma:
            # blocking mode: single-op submission, and a NIC core spins on
            # the completion status byte for the whole DMA duration
            self.nic.dma.submit([op])
            self.sim.spawn(self._blocking_spin(op), name="dma-spin")
            return op.done
        vec = self._read_vec if is_read else self._write_vec
        vec.append(op)
        if len(vec) >= self.nic.dma.params.max_vector:
            self._flush(vec)
        elif not self._flusher_running:
            self._arm_flusher()
        return op.done

    def dma_read(self, nbytes: int) -> Event:
        return self.dma(nbytes, is_read=True)

    def dma_write(self, nbytes: int) -> Event:
        return self.dma(nbytes, is_read=False)

    def dma_log_append(self, nbytes: int) -> Event:
        """Append bytes to the host-memory log region.

        Log records target a contiguous hugepage ring, so all appends
        pending at the end of a burst coalesce into a *single* DMA write
        (one op, summed bytes) — this write-combining is what keeps the
        log path off the DMA engine's op-rate ceiling (§4.3.2).  With
        async DMA disabled each record pays a full blocking DMA write.
        """
        self.log_appends += 1
        if not self.config.async_dma:
            return self.dma(nbytes, is_read=False)
        done = self.sim.event(name="log-append")
        self._log_bytes += nbytes
        self._log_waiters.append(done)
        if self._log_bytes >= 8192:
            self._flush_log()
        elif not self._flusher_running:
            self._arm_flusher()
        return done

    def _arm_flusher(self) -> None:
        self._flusher_running = True
        if self._fused:
            Timeout(self.sim, BURST_INTERVAL_US).add_callback(
                self._burst_cb_bound)
        else:
            self.sim.spawn(self._burst_flusher(), name="dma-flusher")

    def _flush_log(self) -> None:
        if not self._log_waiters:
            return
        waiters = self._log_waiters
        nbytes = self._log_bytes
        self._log_waiters = []
        self._log_bytes = 0
        self.log_flushes += 1
        op = DmaOp(size=nbytes, is_read=False, done=self.sim.event())
        op.done.add_callback(
            lambda _e: [w.succeed() for w in waiters]
        )
        self.nic.cores.charge_wall(self.nic.dma.submission_cost_us)
        self.nic.dma.submit([op])
        self.dma_writes += 1

    def _flush(self, vec: List[DmaOp]) -> None:
        ops = vec[:]
        vec.clear()
        if not ops:
            return
        # submission cost: one core charge per vector (amortized, §3.5)
        self.nic.cores.charge_wall(self.nic.dma.submission_cost_us)
        self.nic.dma.submit(ops)

    def _burst_flusher(self):
        """Submits partially filled vectors and coalesced log appends at
        burst-loop boundaries."""
        while self._read_vec or self._write_vec or self._log_waiters:
            yield self.sim.timeout(BURST_INTERVAL_US)
            self._flush(self._read_vec)
            self._flush(self._write_vec)
            self._flush_log()
        self._flusher_running = False

    def _burst_cb(self, _ev: Event) -> None:
        """Fused burst flusher: one callback Timeout per burst boundary
        instead of a respawned Process (spawn + start event) per burst."""
        self._flush(self._read_vec)
        self._flush(self._write_vec)
        self._flush_log()
        if self._read_vec or self._write_vec or self._log_waiters:
            Timeout(self.sim, BURST_INTERVAL_US).add_callback(
                self._burst_cb_bound)
        else:
            self._flusher_running = False

    def _blocking_spin(self, op: DmaOp):
        """A NIC core busy-waits on the DMA completion (non-async mode)."""
        start = self.sim.now
        yield self.nic.cores.pool.acquire()
        try:
            if not op.done.triggered:
                yield op.done
            # the core was occupied from acquisition to completion
            self.nic.cores.busy_us += self.sim.now - start
        finally:
            self.nic.cores.pool.release()
