"""Cluster construction: nodes, partitioning, replication, loading."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..hw.network import Fabric
from ..sim.core import Simulator
from .config import XenicConfig
from .node import XenicNode
from .protocol import XenicProtocol

__all__ = ["XenicCluster"]


class XenicCluster:
    """A set of Xenic nodes over one fabric, with a keyspace partitioner.

    ``partition`` maps a key to its shard (default: modulo).  Every shard's
    primary is the same-numbered node; backups follow it round-robin.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        config: XenicConfig = None,
        keys_per_shard: int = 4096,
        value_size: int = 64,
        partition: Optional[Callable[[int], int]] = None,
    ):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        self.config = config or XenicConfig()
        self.value_size = value_size
        self.partition = partition or (lambda key: key % n_nodes)
        self.fabric = Fabric(sim)
        self.nodes: List[XenicNode] = [
            XenicNode(
                sim, self.fabric, i, n_nodes, self.config,
                keys_per_shard=keys_per_shard, value_size=value_size,
            )
            for i in range(n_nodes)
        ]
        self.protocols: List[XenicProtocol] = [
            XenicProtocol(self, node) for node in self.nodes
        ]
        self._primary: Dict[int, int] = {i: i for i in range(n_nodes)}
        self.failed: set = set()
        self._workers_started = False
        # Per-shard backup list cache for the bulk-load path: load_key
        # recomputes backups_of for every key, which at 64 nodes times
        # hundreds of thousands of keys dominates construction.  Only
        # trusted while no node has failed and no primary has moved
        # (set_primary invalidates; a non-empty failed set bypasses).
        self._backups_cache: Dict[int, List[int]] = {}

    def start(self) -> None:
        """Spawn the background host worker threads (idempotent)."""
        if self._workers_started:
            return
        self._workers_started = True
        for node in self.nodes:
            for w in range(self.config.host_worker_threads):
                self.sim.spawn(
                    node.worker_loop(), name="n%d.worker%d" % (node.node_id, w)
                )

    # -- placement ------------------------------------------------------------

    def shard_of(self, key: int) -> int:
        return self.partition(key)

    def primary_node_id(self, shard: int) -> int:
        return self._primary[shard]

    def primary_of(self, shard: int) -> XenicNode:
        return self.nodes[self._primary[shard]]

    def set_primary(self, shard: int, node_id: int) -> None:
        """Recovery: repoint a shard's primary (the node must already hold
        a replica and a NIC index for it)."""
        self.nodes[node_id].index_for(shard)  # validates
        self._primary[shard] = node_id
        self._backups_cache.clear()

    def backups_of(self, shard: int) -> List[int]:
        """Live backup node ids for ``shard`` (a promoted primary and
        failed nodes are excluded)."""
        primary = self._primary[shard]
        return [
            n
            for n in self.nodes[shard].backups_of(shard)
            if n != primary and n not in self.failed
        ]

    # -- loading ------------------------------------------------------------

    def load_key(self, key: int, value: Any = None, size: Optional[int] = None) -> None:
        """Install a key on its primary and every backup replica."""
        size = size if size is not None else self.value_size
        shard = self.shard_of(key)
        self.nodes[shard].load_object(shard, key, value, size)
        if self.failed:
            backups = self.backups_of(shard)
        else:
            backups = self._backups_cache.get(shard)
            if backups is None:
                backups = self._backups_cache[shard] = self.backups_of(shard)
        for backup in backups:
            self.nodes[backup].load_object(shard, key, value, size)

    def load_keys(self, keys, value_fn: Optional[Callable[[int], Any]] = None,
                  size: Optional[int] = None) -> None:
        for key in keys:
            self.load_key(key, value_fn(key) if value_fn else None, size)

    def prewarm_nic_caches(self) -> None:
        """Install every primary object into its NIC cache (up to
        capacity), modeling the steady state of a long-running system
        where the hot set has been pulled into NIC DRAM."""
        for shard in range(self.n_nodes):
            node = self.primary_of(shard)
            index = node.index_for(shard)
            budget = index.cache_capacity - index.cache_size
            for obj in node.tables[shard].objects():
                if budget <= 0:
                    break
                if not index.cache_contains(obj.key):
                    index.install_cache(obj.key, obj.value)
                    budget -= 1

    # -- verification helpers ------------------------------------------------

    def read_committed_value(self, key: int):
        """Authoritative committed value of a key: the primary NIC cache if
        pinned/cached, else the primary host table (follows promotions)."""
        from .txn import TOMBSTONE

        shard = self.shard_of(key)
        node = self.primary_of(shard)
        hit, value = node.index_for(shard).cache_lookup(key)
        if hit:
            return None if value is TOMBSTONE else value
        obj = node.tables[shard].get_object(key)
        if obj is None or obj.value is TOMBSTONE:
            return None
        return obj.value

    def replica_divergence(self) -> Dict[int, int]:
        """Count keys whose backup replica version lags the primary's
        *applied* host version (should be 0 once logs drain)."""
        lag = {}
        for shard in range(self.n_nodes):
            primary = self.nodes[shard].tables[shard]
            for backup_id in self.backups_of(shard):
                table = self.nodes[backup_id].tables[shard]
                for obj in primary.objects():
                    other = table.get_object(obj.key)
                    if other is None or other.version != obj.version:
                        lag[shard] = lag.get(shard, 0) + 1
        return lag

    def drain_logs(self, limit_us: float = 1e7) -> None:
        """Run the simulation until every node's log is fully applied."""
        deadline = self.sim.now + limit_us
        while any(n.log.in_log for n in self.nodes):
            if self.sim.now > deadline:
                raise RuntimeError("logs failed to drain")
            if not self.sim.step():
                break
