"""Xenic system configuration and the §5.7 ablation feature flags."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hw.params import HardwareParams, TESTBED

__all__ = ["XenicConfig", "ablation_ladder_throughput", "ablation_ladder_latency"]


@dataclass(frozen=True)
class XenicConfig:
    """Feature flags and sizing for a Xenic cluster.

    The five booleans correspond to the design features evaluated in
    Figure 9.  With all of them off, the system degenerates to the
    "Xenic baseline" of §5.7: a DrTM+H-like protocol (separate read /
    lock / validate requests, request-response only, host execution,
    blocking single DMAs) running on SmartNIC hardware.
    """

    # --- ablation flags (§5.7) -------------------------------------------
    smart_remote_ops: bool = True  # combined read+lock / read+validate ops
    ethernet_aggregation: bool = True  # gather-list Ethernet transmission
    async_dma: bool = True  # vectored, continuation-passing DMA
    nic_execution: bool = True  # ship execution to coordinator-side NIC
    multihop_occ: bool = True  # remote-primary execution (Figure 7b)

    # --- sizing ------------------------------------------------------------
    replication_factor: int = 3  # primary + 2 backups (§5)
    host_app_threads: int = 2  # txn initiation/completion threads
    host_worker_threads: int = 3  # Robinhood log-apply workers
    nic_threads: int = 16
    # The LiquidIO carries 16 GB of DRAM: at a few hundred bytes per
    # object the cache holds millions of entries, i.e. the entire hot
    # working set of every §5 benchmark (2.4 GB of TPC-C stock at paper
    # scale).  Sized in objects.
    nic_cache_capacity: int = 1 << 20
    dm: int = 8  # Robinhood displacement limit
    segment_size: int = 8
    k_slack: int = 1
    table_fill: float = 0.75  # provisioned host-table occupancy
    log_capacity: int = 1 << 14

    # --- per-op compute costs (wall-µs on the executing CPU) --------------
    nic_per_key_us: float = 0.05  # index lookup/lock per key on a NIC core
    host_per_key_us: float = 0.10  # table op per key on a host core
    # Host worker applying one log write.  Calibrated against Table 3:
    # 3 worker threads sustain Smallbank's peak (~12M txn/s/server x 3
    # records/txn), i.e. well under 100ns per applied write.
    worker_apply_us: float = 0.06

    hardware: HardwareParams = field(default_factory=lambda: TESTBED)

    def with_flags(self, **flags) -> "XenicConfig":
        return replace(self, **flags)


def ablation_ladder_throughput() -> list:
    """Figure 9a: baseline -> +smart remote ops -> +Eth aggregation ->
    +async DMA (throughput-oriented features)."""
    base = XenicConfig(
        smart_remote_ops=False,
        ethernet_aggregation=False,
        async_dma=False,
        nic_execution=False,
        multihop_occ=False,
    )
    return [
        ("Xenic baseline", base),
        ("+Smart remote ops", base.with_flags(smart_remote_ops=True)),
        ("+Eth aggregation", base.with_flags(smart_remote_ops=True,
                                             ethernet_aggregation=True)),
        ("+Async DMA", base.with_flags(smart_remote_ops=True,
                                       ethernet_aggregation=True,
                                       async_dma=True)),
    ]


def ablation_ladder_latency() -> list:
    """Figure 9b: baseline -> +smart remote ops -> +NIC execution ->
    +OCC optimization (latency-oriented features)."""
    base = XenicConfig(
        smart_remote_ops=False,
        ethernet_aggregation=True,
        async_dma=True,
        nic_execution=False,
        multihop_occ=False,
    )
    return [
        ("Xenic baseline", base),
        ("+Smart remote ops", base.with_flags(smart_remote_ops=True)),
        ("+NIC execution", base.with_flags(smart_remote_ops=True,
                                           nic_execution=True)),
        ("+OCC optimization", base.with_flags(smart_remote_ops=True,
                                              nic_execution=True,
                                              multihop_occ=True)),
    ]
