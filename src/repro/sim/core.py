"""Discrete-event simulation core.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, specialized for this reproduction.  Simulated time is measured in
**microseconds** (float).  Processes are Python generators that ``yield``
awaitables: :class:`Timeout`, :class:`Event`, another :class:`Process`, or
the :class:`AllOf` / :class:`AnyOf` combinators.

Determinism: events scheduled for the same timestamp fire in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation driven by seeded RNG streams is exactly reproducible.

Hot-path notes (see ``docs/PERFORMANCE.md``): events store their first
callback in a dedicated slot so the common single-waiter case allocates no
list; :class:`Timeout` bypasses the generic constructor and the
schedule-in-the-past check; abandoned timeouts (:class:`AnyOf` losers,
interrupted waits) are cancelled and lazily deleted from the scheduler
queue, with a periodic in-place compaction once cancelled entries
dominate; and :meth:`Simulator.run` dispatches scheduled events through
the queue's inlined drain loop with no per-event attribute lookups for
observability — a per-event hook exists (:meth:`Simulator.set_event_hook`)
but is checked once per ``run`` call, never inside the loop, so disabled
observability is zero-overhead.

The scheduler data structure itself is pluggable (``repro.sim.equeue``):
every scheduling site funnels through ``Simulator._push`` — the bound
``push`` of an :class:`~repro.sim.equeue.EventQueue` — so the engine
runs on either the calendar/bucket queue (default) or the binary-heap
fallback (``REPRO_QUEUE=heap``) with byte-identical simulated results.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Union

from .equeue import (  # noqa: F401  (_COMPACT_MIN_CANCELLED re-exported)
    _COMPACT_MIN_CANCELLED,
    EventQueue,
    make_queue,
)
from .compiled import active_kernel, ensure_leg
from .fusion import fusion_enabled

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; it may be *succeeded* with a value or
    *failed* with an exception, exactly once.  Callbacks registered before
    triggering run when the event fires; callbacks registered after it has
    fired run immediately.

    The first callback lives in ``_cb0``; only a second registration
    allocates the overflow list, so the ubiquitous one-waiter events
    (timeouts, transfers, resource grants) never build a list at all.

    ``_riders`` is the same-deadline merging hook (``REPRO_FUSION``, see
    :meth:`Simulator._riding_push`): on an event that owns a queue entry
    it holds the list of ``(event, value)`` pairs scheduled for the same
    timestamp, fired in attach order right after this event's entry pops;
    on an event that *is* a rider it holds the ``_RIDING`` marker.
    """

    __slots__ = ("sim", "_cb0", "_callbacks", "_ok", "_value", "_name",
                 "_riders")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._cb0: Optional[Callable[["Event"], None]] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._name = name
        self._riders: Any = None

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True once the event has succeeded."""
        return self._ok is True

    @property
    def cancelled(self) -> bool:
        """True if the event was abandoned via :meth:`cancel`."""
        return self._ok is False and self._value is _CANCELLED

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event %r has not been triggered" % (self._name,))
        return self._value

    @property
    def callback_count(self) -> int:
        """Callbacks currently registered (0 once triggered)."""
        n = 0 if self._cb0 is None else 1
        if self._callbacks:
            n += len(self._callbacks)
        return n

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError("event %r already triggered" % (self._name,))
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError("event %r already triggered" % (self._name,))
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._dispatch()
        return self

    def cancel(self) -> bool:
        """Abandon a pending event: it will never fire and its heap entry
        (if any) is discarded lazily by the scheduler.

        Only events with no registered callbacks may be cancelled — a
        cancelled event dispatches nothing, so a live waiter would hang
        forever.  Returns False if the event has already triggered.
        """
        if self._ok is not None:
            return False
        if self._cb0 is not None or self._callbacks:
            raise SimulationError(
                "cannot cancel %r: %d callback(s) still registered"
                % (self._name, self.callback_count))
        self._ok = False
        self._value = _CANCELLED
        if self._riders is _RIDING:
            # A cancelled rider will be skipped (not fired) by its host's
            # dispatch loop, so settle its pending-count here — mirroring
            # how stepwise compaction eventually discards a cancelled
            # queue entry.  The host's own entry stays queued, so this
            # can never fake quiescence while the cohort is live.
            self.sim._riders_pending -= 1
        return True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when this event fires (immediately if fired)."""
        if self._ok is None:
            if self._cb0 is None:
                self._cb0 = fn
            elif self._callbacks is None:
                self._callbacks = [fn]
            else:
                self._callbacks.append(fn)
        else:
            fn(self)

    def remove_callback(self, fn: Callable[["Event"], None]) -> bool:
        """Detach a previously registered callback; no-op after trigger.

        Comparison uses ``==`` so equivalent bound methods match.  Returns
        True if a callback was removed.
        """
        if self._ok is not None:
            return False
        if self._cb0 == fn:
            cbs = self._callbacks
            if cbs:
                self._cb0 = cbs.pop(0)
                if not cbs:
                    self._callbacks = None
            else:
                self._cb0 = None
            return True
        cbs = self._callbacks
        if cbs is not None:
            try:
                cbs.remove(fn)
            except ValueError:
                return False
            if not cbs:
                self._callbacks = None
            return True
        return False

    def _dispatch(self) -> None:
        cb0 = self._cb0
        callbacks = self._callbacks
        self._cb0 = None
        self._callbacks = None
        if cb0 is not None:
            cb0(self)
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return "<Event %s %s>" % (self._name or hex(id(self)), state)


# Sentinel value of a cancelled event; never handed to user code because a
# cancelled event has no callbacks and is skipped by the scheduler.
_CANCELLED = SimulationError("event cancelled")

# ``_riders`` marker for an event that was absorbed as a same-deadline
# rider instead of entering the queue (see Simulator._riding_push).  An
# empty tuple so the per-pop ``riders is not None`` check can never
# mistake it for a host's (always non-empty) rider list — a rider owns
# no queue entry, so it is never popped.
_RIDING: tuple = ()


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % (delay,))
        # Fast path: bypass Event.__init__ and _schedule_at (delay >= 0
        # means the deadline can never be in the past).
        self.sim = sim
        self._cb0 = None
        self._callbacks = None
        self._ok = None
        self._value = None
        self._name = "timeout"
        self._riders = None
        self.delay = delay
        sim._push(sim._now + delay, self, value)

    def cancel(self) -> bool:
        if not Event.cancel(self):
            return False
        if self._riders is not _RIDING:
            # A rider has no queue entry: counting its cancellation would
            # skew the lazy-deletion compaction trigger off the stepwise
            # leg's schedule.
            self.sim._note_cancelled()
        return True


class AllOf(Event):
    """Fires once every child event has succeeded; value is the list of
    child values in the original order.  Fails fast on the first child
    failure, detaching from (and unpinning) the still-pending children."""

    __slots__ = ("_pending", "_children", "_child_cb")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._pending = len(self._children)
        self._child_cb = self._on_child
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._children:
            if self._ok is not None:
                # fail-fast already triggered by an immediate child; do
                # not register on (and thereby pin) the rest
                break
            ev.add_callback(self._child_cb)

    def _on_child(self, ev: Event) -> None:
        if self._ok is not None:
            return
        if not ev.ok:
            self.fail(ev.value)
            self._detach_children()
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])

    def _detach_children(self) -> None:
        cb = self._child_cb
        for child in self._children:
            if child._ok is None:
                child.remove_callback(cb)
                if type(child) is Timeout and child._cb0 is None \
                        and not child._callbacks:
                    child.cancel()


class AnyOf(Event):
    """Fires when the first child event triggers; value is ``(index, value)``
    of the winning child.  Losing children are detached so the combinator
    pins neither them nor their values, and losing timeouts are cancelled
    out of the scheduler heap."""

    __slots__ = ("_children", "_child_cbs")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        self._child_cbs: List[Optional[Callable]] = []
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            if self._ok is not None:
                # a child triggered immediately during registration; the
                # rest are losers and must not be pinned at all
                break
            cb = lambda e, i=i: self._on_child(i, e)  # noqa: E731
            self._child_cbs.append(cb)
            ev.add_callback(cb)

    def _on_child(self, index: int, ev: Event) -> None:
        if self._ok is not None:
            return
        if ev.ok:
            self.succeed((index, ev.value))
        else:
            self.fail(ev.value)
        self._detach_losers()

    def _detach_losers(self) -> None:
        for child, cb in zip(self._children, self._child_cbs):
            if child._ok is None:
                child.remove_callback(cb)
                if type(child) is Timeout and child._cb0 is None \
                        and not child._callbacks:
                    child.cancel()
        self._child_cbs = []


def _raise(exc: BaseException) -> None:
    """throw() shim for processes built from plain iterators."""
    raise exc


class _StartNow:
    """Pre-triggered pseudo-event that seeds an immediate process start.

    Quacks like a succeeded Event as far as :meth:`Process._resume` is
    concerned (``_ok`` truthy, ``_value`` None); never scheduled, never
    dispatched, shared by every immediate start."""

    __slots__ = ()
    _ok = True
    _value = None


_START_NOW = _StartNow()


class Process(Event):
    """A running coroutine.  Also an event: it fires with the generator's
    return value when the generator completes, or fails with its uncaught
    exception."""

    __slots__ = ("_gen", "_waiting_on", "_send", "_gthrow", "_wait_cb")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "",
                 immediate: bool = False):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        # Bind the generator's send/throw and our wait callback once: the
        # resume path runs once per yield across the whole simulation, and
        # each `self._gen.send` / `self._on_wait_done` attribute access
        # would allocate a fresh bound method.  Plain iterators (no
        # coroutine protocol) still work through next()/raise shims.
        try:
            self._send = gen.send
            self._gthrow = gen.throw
        except AttributeError:
            self._send = lambda _v: next(gen)
            self._gthrow = _raise
        # Wakeups call _resume directly; its _waiting_on guard filters
        # stale wakeups (e.g. an interrupt racing the event trigger), so
        # no intermediate callback frame is needed on the per-yield path.
        self._wait_cb = self._resume
        if immediate:
            # Delay-fusion fast path (Simulator.start): drive the
            # generator to its first yield synchronously, scheduling
            # nothing — the caller's frame is the start event.
            self._waiting_on = _START_NOW
            self._resume(_START_NOW)
            return
        # Start on the next scheduler step so the spawner can keep a handle.
        start = Event(sim, name="start")
        self._waiting_on: Optional[Event] = start
        start._cb0 = self._resume
        sim._push(sim._now, start, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if self.triggered:
            return
        ev = Event(self.sim, name="interrupt")
        ev._cb0 = lambda _e: self._throw(Interrupt(cause))
        self.sim._schedule_at(self.sim._now, ev, None)

    # -- internal ---------------------------------------------------------

    def _resume(self, ev: Event) -> None:
        # Ignore stale wakeups from events we stopped waiting on, and
        # anything arriving after the generator already finished.
        if self._waiting_on is not ev or self._ok is not None:
            return
        self._waiting_on = None
        try:
            if ev._ok:
                target = self._send(ev._value)
            else:
                target = self._gthrow(ev._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return
        # Inlined _wait_for: this runs once per yield across the whole
        # simulation, so the callback registration is open-coded.
        if isinstance(target, Event):
            self._waiting_on = target
            if target._ok is None:
                if target._cb0 is None:
                    target._cb0 = self._wait_cb
                elif target._callbacks is None:
                    target._callbacks = [self._wait_cb]
                else:
                    target._callbacks.append(self._wait_cb)
            else:
                self._resume(target)  # already triggered: continue now
        else:
            self.fail(
                SimulationError(
                    "process %r yielded a non-event: %r" % (self._name, target)
                )
            )

    def _throw(self, exc: BaseException) -> None:
        if self._ok is not None:
            return
        # Detach from the event we were waiting on: the stale wakeup can
        # no longer resume us, and an abandoned timeout leaves the heap.
        prev = self._waiting_on
        self._waiting_on = None
        if prev is not None and prev._ok is None:
            prev.remove_callback(self._wait_cb)
            if type(prev) is Timeout and prev._cb0 is None \
                    and not prev._callbacks:
                prev.cancel()
        try:
            target = self._gthrow(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self.fail(raised)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    "process %r yielded a non-event: %r" % (self._name, target)
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._wait_cb)


class Simulator:
    """The event loop and simulated clock.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    # Fixed layout: the compiled kernel (repro.sim._ckern, selected via
    # REPRO_COMPILED) drives these fields through their slot offsets, so
    # the set is closed.  _open/_floors/_hwm exist only on the fused leg.
    __slots__ = ("_now", "_q", "_riders_pending", "_open", "_floors",
                 "_hwm", "_push", "_processes_spawned", "_hook")

    def __init__(self, queue: Union[str, EventQueue, None] = None):
        self._now = 0.0
        # Compiled-leg selection happens per construction (REPRO_COMPILED,
        # see repro.sim.compiled): ensure_leg() installs or removes the
        # compiled method patches to match the environment, and the
        # kernel handle below picks the compiled queue/push counterparts.
        kern = active_kernel() if ensure_leg() else None
        # The scheduler structure is pluggable (docs/PERFORMANCE.md):
        # "calendar" (default) or "heap", selected per instance, via the
        # REPRO_QUEUE environment variable, or by passing an EventQueue.
        if queue is None or isinstance(queue, str):
            queue = make_queue(queue)
        self._q = queue
        # Every scheduling path funnels through this one bound method —
        # the queue assigns seq numbers and owns the entry layout.  Under
        # delay fusion the funnel is _riding_push, which absorbs pushes
        # whose deadline collides with a pending entry as riders on that
        # entry instead of growing the queue.
        self._riders_pending = 0
        if fusion_enabled():
            # High-water mark of every timestamp ever pushed: a push
            # strictly above it cannot collide with any pending entry,
            # so _riding_push skips the slot-table work entirely for
            # monotone (push-dominated) schedules.
            self._hwm = -1.0
            self._open: dict = {}
            # Parked drain loops (repro.sim.link) by the instant their
            # skipped idle timeout would have fired.  The first push at
            # exactly that instant materializes the parked wake *first*,
            # so it hosts the timestamp and fires ahead of the incoming
            # entry — the position the stepwise timeout (pushed at round
            # start, before anything else now pending there) would hold.
            self._floors: dict = {}
            if kern is not None:
                # Compiled riding push, bound to (sim, queue) so the C
                # code reaches both without per-call attribute lookups.
                self._push = kern.RidingPush(self, queue).push
            else:
                self._push = self._riding_push
        else:
            self._push = queue.push
        self._processes_spawned = 0
        self._hook: Optional[Callable[[Event, float, Any], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """Name of the scheduler implementation ("heap"/"calendar")."""
        return self._q.kind

    @property
    def pending_events(self) -> int:
        """Scheduled events not yet fired.  Zero means quiescence: in a
        closed discrete-event simulation no process can run again.
        Riders of an in-flight pop batch (``_riding_push``) are pending
        events that already left the queue, so they are counted in —
        without them a process resumed by the batch's host entry would
        see false quiescence while its same-instant cohort still waits
        to fire."""
        return len(self._q) + self._riders_pending

    @property
    def events_scheduled(self) -> int:
        """Total queue entries pushed so far (the perf harness's
        events/second numerator)."""
        return self._q.seq

    # -- scheduling -------------------------------------------------------

    def _riding_push(self, when: float, event: Event, value: Any) -> None:
        """Same-deadline rider merging (the ``REPRO_FUSION`` queue-layer
        fast path).  Two entries with equal timestamps always pop
        consecutively in push order — nothing at another time can sort
        between them — so a push whose ``when`` collides with a *pending*
        queue entry need not enter the queue at all: it rides that host
        entry and fires, in attach order, right after the host's pop.
        This is exact by construction: the dispatch sequence is
        byte-identical to the stepwise pop order.

        ``_open`` maps each timestamp to the entry pushed for it;
        ``host._ok is None`` holds iff that entry is still queued
        (entries leave only via pop or compaction, and both set or
        require ``_ok`` — compaction keeps stale hosts whose riders
        still must fire).  A dead host is simply replaced: the new entry
        pops after any in-flight rider batch, matching the seq order the
        stepwise leg would have produced."""
        floors = self._floors
        if floors:
            parked = floors.pop(when, None)
            if parked is not None:
                for ln in parked:
                    ln._materialize(when)
        if when > self._hwm:
            # Fresh high-water mark: no entry was ever pushed at this
            # instant, so the slot probe below cannot find a host.  Skip
            # the dict work — the entry goes unregistered, and the first
            # *follower* at this timestamp claims the slot and hosts any
            # later riders.  Dispatch order is unchanged either way:
            # same-instant entries fire in (when, seq) order whether the
            # first one hosts or merely precedes the host in the queue.
            self._hwm = when
            self._q.push(when, event, value)
            return
        open_ = self._open
        # setdefault keeps the no-collision fast path at one dict probe:
        # it returns ``event`` iff the slot was empty and we just claimed
        # it; an existing pending host absorbs the push as a rider; a
        # stale host is overwritten.
        host = open_.setdefault(when, event)
        if host is not event:
            if host._ok is None:
                riders = host._riders
                if riders is None:
                    host._riders = [(event, value)]
                else:
                    riders.append((event, value))
                event._riders = _RIDING
                self._riders_pending += 1
                return
            open_[when] = event
        self._q.push(when, event, value)
        if len(open_) >= 8192 and len(open_) > (len(self._q) << 2):
            # The slot table only ever grows on distinct timestamps;
            # shed dead hosts once it dwarfs the live queue.
            self._open = {w: e for w, e in open_.items() if e._ok is None}

    def _fire_riders(self, riders: list) -> None:
        """Dispatch a popped host entry's same-deadline riders in attach
        order (slow path: step / hooked runs; the queue drain loops
        inline this).  Cancelled riders are skipped exactly like stale
        queue entries."""
        hook = self._hook
        for rev, rval in riders:
            if rev._ok is None:
                self._riders_pending -= 1
                if hook is not None:
                    hook(rev, self._now, rval)
                rev._ok = True
                rev._value = rval
                rev._dispatch()

    def _schedule_at(self, when: float, event: Event, value: Any) -> None:
        if when < self._now:
            raise SimulationError(
                "cannot schedule in the past (%.3f < %.3f)" % (when, self._now)
            )
        self._push(when, event, value)

    def _note_cancelled(self) -> None:
        """Tell the queue one of its entries was cancelled; the queue
        deletes lazily and compacts in place once stale entries dominate
        (see ``repro.sim.equeue``)."""
        self._q.abandon()

    def set_event_hook(
        self, hook: Optional[Callable[[Event, float, Any], None]]
    ) -> None:
        """Install ``hook(event, when, value)``, called for every scheduled
        entry the loop fires (debug/observability aid).  When no hook is
        installed — the default — the run loop takes an inlined fast path
        that never looks the hook up per event, so disabled observability
        costs nothing."""
        self._hook = hook

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def call_at(self, when: float,
                fn: Optional[Callable[[Event], None]] = None) -> Event:
        """Schedule ``fn(event)`` at *absolute* simulated time ``when``
        (must be >= now — not checked, hot path).  With ``fn=None`` the
        bare event is returned for a process to ``yield`` on.

        The absolute-time counterpart of ``Timeout(...).add_callback``
        for fused delay chains (``repro.sim.fusion``): a chain replacing
        ``timeout(a) → timeout(b)`` must land on exactly the float
        timestamp ``(now + a) + b``, which ``Timeout(sim, a + b)`` does
        not guarantee (float addition is not associative)."""
        ev = Event(self, "fused")
        ev._cb0 = fn
        self._push(when, ev, None)
        return ev

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a concurrently running process."""
        self._processes_spawned += 1
        return Process(self, gen, name=name)

    def start(self, gen: Generator, name: str = "") -> Process:
        """Spawn a process that starts *immediately*: the generator runs
        to its first yield inside this call, with no start event pushed
        through the scheduler.

        The delay-fusion fast path (``REPRO_FUSION``, see
        ``repro.sim.fusion``): a ``spawn`` defers the generator's first
        slice to the next same-timestamp scheduler step, which costs one
        queue entry purely to preserve hand-off laziness the fused call
        sites do not rely on.  Semantics otherwise match :meth:`spawn` —
        the returned :class:`Process` is still an event that fires with
        the generator's return value (possibly already triggered, if the
        generator never yields)."""
        self._processes_spawned += 1
        return Process(self, gen, name=name, immediate=True)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    def _fire(self, event: Event, value: Any) -> None:
        """Trigger one scheduled entry (slow path: step / hooked runs)."""
        if self._hook is not None:
            self._hook(event, self._now, value)
        event._ok = True
        event._value = value
        event._dispatch()

    def step(self) -> bool:
        """Process one scheduled entry (plus any same-deadline riders it
        carries); returns False if the queue is empty."""
        pop = self._q.pop_min
        while True:
            entry = pop()
            if entry is None:
                return False
            when, _seq, event, value = entry
            self._now = when
            if event._ok is not None:
                # A Timeout that was abandoned (e.g. AnyOf loser) cannot be
                # re-triggered; skip it — but its riders are live entries
                # in their own right and still fire here.
                riders = event._riders
                if riders is not None:
                    event._riders = None
                    self._fire_riders(riders)
                    return True
                continue
            self._fire(event, value)
            riders = event._riders
            if riders is not None:
                event._riders = None
                self._fire_riders(riders)
            return True

    def _step_bounded(self, until: float) -> bool:
        """Fire the next live entry if it is due at or before ``until``;
        stale entries up to ``until`` are discarded (advancing the clock,
        like :meth:`step`) but a live entry past ``until`` is left queued."""
        q = self._q
        while True:
            when = q.peek_time()
            if when is None or when > until:
                return False
            entry = q.pop_min()
            self._now = when
            event = entry[2]
            if event._ok is not None:
                riders = event._riders
                if riders is not None:
                    event._riders = None
                    self._fire_riders(riders)
                    return True
                continue
            self._fire(event, entry[3])
            riders = event._riders
            if riders is not None:
                event._riders = None
                self._fire_riders(riders)
            return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, or until simulated time ``until``.

        Returns the simulated time at which execution stopped: the last
        event time when draining, exactly ``until`` otherwise.  Events
        scheduled past ``until`` are never fired — not even when stale
        abandoned entries precede them in the queue.

        The no-hook fast paths delegate to the queue's inlined drain
        loops (``drain_all``/``drain_until``), which fire and dispatch
        without per-event method calls; the hooked paths go through
        :meth:`step` so every fired entry is reported.
        """
        if until is None:
            if self._hook is not None:
                while self.step():
                    pass
            else:
                self._q.drain_all(self)
            return self._now
        if until < self._now:
            raise SimulationError("until=%r is in the past" % (until,))
        if self._hook is not None:
            while self._step_bounded(until):
                pass
        else:
            self._q.drain_until(self, until)
        # The loop only fires entries <= until, so the clock never
        # overruns; land exactly on the boundary in both queue states.
        if self._now < until:
            self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains (or ``limit`` is
        reached) without the event firing.
        """
        peek = self._q.peek_time
        while not event.triggered:
            if limit is not None:
                head = peek()
                if head is not None and head > limit:
                    raise SimulationError(
                        "time limit reached before event fired")
            if not self.step():
                raise SimulationError("simulation drained before event fired")
        if not event.ok:
            raise event.value
        return event.value
