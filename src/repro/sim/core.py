"""Discrete-event simulation core.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, specialized for this reproduction.  Simulated time is measured in
**microseconds** (float).  Processes are Python generators that ``yield``
awaitables: :class:`Timeout`, :class:`Event`, another :class:`Process`, or
the :class:`AllOf` / :class:`AnyOf` combinators.

Determinism: events scheduled for the same timestamp fire in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation driven by seeded RNG streams is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; it may be *succeeded* with a value or
    *failed* with an exception, exactly once.  Callbacks registered before
    triggering run when the event fires; callbacks registered after it has
    fired run immediately.
    """

    __slots__ = ("sim", "_callbacks", "_ok", "_value", "_name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._name = name

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True once the event has succeeded."""
        return self._ok is True

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event %r has not been triggered" % (self._name,))
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError("event %r already triggered" % (self._name,))
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError("event %r already triggered" % (self._name,))
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._dispatch()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when this event fires (immediately if fired)."""
        if self._ok is None:
            assert self._callbacks is not None
            self._callbacks.append(fn)
        else:
            fn(self)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return "<Event %s %s>" % (self._name or hex(id(self)), state)


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % (delay,))
        super().__init__(sim, name="timeout")
        self.delay = delay
        sim._schedule_at(sim.now + delay, self, value)


class AllOf(Event):
    """Fires once every child event has succeeded; value is the list of
    child values in the original order.  Fails fast on the first child
    failure."""

    __slots__ = ("_pending", "_children")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event triggers; value is ``(index, value)``
    of the winning child."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed((index, ev.value))
        else:
            self.fail(ev.value)


class Process(Event):
    """A running coroutine.  Also an event: it fires with the generator's
    return value when the generator completes, or fails with its uncaught
    exception."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Start on the next scheduler step so the spawner can keep a handle.
        start = Event(sim, name="start")
        start.add_callback(self._resume)
        sim._schedule_at(sim.now, start, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if self.triggered:
            return
        ev = Event(self.sim, name="interrupt")
        ev.add_callback(lambda _e: self._throw(Interrupt(cause)))
        self.sim._schedule_at(self.sim.now, ev, None)

    # -- internal ---------------------------------------------------------

    def _resume(self, ev: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if ev.ok:
                target = self._gen.send(ev.value)
            else:
                target = self._gen.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return
        self._wait_for(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self.fail(raised)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    "process %r yielded a non-event: %r" % (self._name, target)
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def _on_wait_done(self, ev: Event) -> None:
        # Ignore stale wakeups from events we stopped waiting on
        # (e.g. after an interrupt raced with the event trigger).
        if self._waiting_on is not ev:
            return
        self._resume(ev)


class Simulator:
    """The event loop and simulated clock.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self):
        self._now = 0.0
        self._queue: List = []  # heap of (time, seq, event, value)
        self._seq = 0
        self._processes_spawned = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Scheduled events not yet fired.  Zero means quiescence: in a
        closed discrete-event simulation no process can run again."""
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def _schedule_at(self, when: float, event: Event, value: Any) -> None:
        if when < self._now:
            raise SimulationError(
                "cannot schedule in the past (%.3f < %.3f)" % (when, self._now)
            )
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, event, value))

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a concurrently running process."""
        self._processes_spawned += 1
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process one scheduled entry; returns False if the queue is empty."""
        while self._queue:
            when, _seq, event, value = heapq.heappop(self._queue)
            self._now = when
            if event.triggered:
                # A Timeout that was abandoned (e.g. AnyOf loser) cannot be
                # re-triggered; skip it.
                continue
            event.succeed(value)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, or until simulated time ``until``.

        Returns the simulated time at which execution stopped.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        if until < self._now:
            raise SimulationError("until=%r is in the past" % (until,))
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self._now = max(self._now, until) if self._queue else max(self._now, until)
        return self._now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains (or ``limit`` is
        reached) without the event firing.
        """
        while not event.triggered:
            if limit is not None and self._queue and self._queue[0][0] > limit:
                raise SimulationError("time limit reached before event fired")
            if not self.step():
                raise SimulationError("simulation drained before event fired")
        if not event.ok:
            raise event.value
        return event.value
