"""``REPRO_COMPILED`` leg selection: the optional compiled engine core.

The extension module :mod:`repro.sim._ckern` (hand-written CPython C
API; see ``setup.py``) reimplements the scheduler hot loop — event
dispatch, the riding push, ``Timeout``/``call_at``, process resume,
both :mod:`repro.sim.equeue` queues, and the ``Request``/``Response``
constructors behind the :mod:`repro.core.messages` free-lists — as a
line-for-line transliteration of the pure-Python code.  This module is
the switch:

* ``REPRO_COMPILED=auto`` (default): use the extension if importable,
  silently fall back to pure Python otherwise.
* ``REPRO_COMPILED=on``: require the extension; :class:`RuntimeError`
  if it is not importable.
* ``REPRO_COMPILED=off``: pure Python, even when the extension exists.

Selection is re-evaluated at every ``Simulator()`` construction
(:func:`ensure_leg`), which is what makes the same-process
``perf --ab-compiled`` harness possible: activation installs the
compiled methods on the pure-Python classes (via the extension's
``patches()`` map) and deactivation restores the saved originals.

The pure-Python classes remain the single source of truth for object
layout — the extension reads their ``__slots__`` offsets at bind time
and drives the same objects, so the legs cannot disagree structurally
and the golden digests (byte-identical simulated results) gate every
compiled × fusion × queue combination.
"""

import os
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "DEFAULT_COMPILED",
    "COMPILED_KINDS",
    "selected_compiled",
    "compiled_available",
    "compiled_active",
    "active_kernel",
    "ensure_leg",
]

DEFAULT_COMPILED = "auto"
COMPILED_KINDS = ("auto", "on", "off")

_kern: Optional[Any] = None  # the imported extension module, if any
_import_failed = False
_bound = False
_active = False
# "Class.method" -> (owner class, method name, original function)
_ORIG: Dict[str, Tuple[type, str, Any]] = {}


def selected_compiled() -> str:
    """The ``REPRO_COMPILED`` leg a ``Simulator()`` built right now
    would request (before availability is considered)."""
    kind = os.environ.get("REPRO_COMPILED", DEFAULT_COMPILED).lower()
    return kind if kind in COMPILED_KINDS else DEFAULT_COMPILED


def compiled_available() -> bool:
    """True if the :mod:`repro.sim._ckern` extension is importable.
    The first failed import is cached — a build appearing mid-process
    is not picked up (the A/B harness relies on flip consistency)."""
    global _kern, _import_failed
    if _kern is not None:
        return True
    if _import_failed:
        return False
    try:
        from . import _ckern as mod
    except ImportError:
        _import_failed = True
        return False
    _kern = mod
    return True


def compiled_active() -> bool:
    """True while the compiled methods are installed."""
    return _active


def active_kernel() -> Optional[Any]:
    """The extension module when the compiled leg is active, else
    ``None`` (how :func:`repro.sim.equeue.make_queue` and
    ``Simulator.__init__`` pick their compiled counterparts)."""
    return _kern if _active else None


def ensure_leg() -> bool:
    """Align process state with ``REPRO_COMPILED`` and report whether
    the compiled leg is active.  Cheap when nothing changes (one env
    read and two flag checks); called per ``Simulator()``."""
    kind = selected_compiled()
    if kind == "off":
        _deactivate()
        return False
    if not compiled_available():
        if kind == "on":
            raise RuntimeError(
                "REPRO_COMPILED=on but repro.sim._ckern is not importable"
                " — build it with `python setup.py build_ext --inplace`"
                " (pure-Python fallback: REPRO_COMPILED=auto|off)")
        return False
    _activate()
    return True


def _activate() -> None:
    global _active, _bound
    if _active:
        return
    from . import core
    from ..core import messages

    assert _kern is not None
    if not _bound:
        _kern.bind(core, messages)  # raises RuntimeError on layout drift
        _bound = True
    owners = {
        "Event": core.Event,
        "Timeout": core.Timeout,
        "Process": core.Process,
        "Simulator": core.Simulator,
        "Request": messages.Request,
        "Response": messages.Response,
    }
    for key, fn in _kern.patches().items():
        cls_name, _, meth = key.partition(".")
        cls = owners[cls_name]
        if key not in _ORIG:
            _ORIG[key] = (cls, meth, cls.__dict__[meth])
        setattr(cls, meth, fn)
    _active = True


def _deactivate() -> None:
    global _active
    if not _active:
        return
    for cls, meth, orig in _ORIG.values():
        setattr(cls, meth, orig)
    _active = False
