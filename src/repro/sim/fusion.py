"""Delay-fusion feature flag (``REPRO_FUSION``).

Delay fusion collapses stepwise delay chains — a spawned generator
yielding ``timeout(a) → timeout(b) → timeout(c)`` for what is, absent
faults and contention, one known-length delay — into a single
callback-based event (the pattern PR 5 introduced with
``_charge_rx_then``).  Fused fast paths live in ``repro.core.protocol``,
``repro.core.nic_runtime``, ``repro.sim.link``, and ``repro.hw.rdma``;
each one falls back to the stepwise path whenever a fault injector,
observer annotation point, or resource contention needs the intermediate
timestamps, so simulated results stay byte-identical either way
(``tests/test_golden_digest.py`` pins this on both legs).

Selection mirrors ``REPRO_QUEUE`` (:mod:`repro.sim.equeue`): the
``REPRO_FUSION`` environment variable is read at *model construction*
time (each component captures the flag in ``__init__``), so flipping the
variable between runs inside one process works, but flipping it
mid-simulation does not retroactively change built components.  The
default is ``on``; ``off`` keeps every chain stepwise and is the A/B
reference (``perf --ab-fusion``).
"""

from __future__ import annotations

import os

__all__ = ["FUSION_KINDS", "DEFAULT_FUSION", "selected_fusion",
           "fusion_enabled"]

DEFAULT_FUSION = "on"
FUSION_KINDS = ("on", "off")


def selected_fusion() -> str:
    """The fusion leg a component built right now would use."""
    kind = os.environ.get("REPRO_FUSION", DEFAULT_FUSION)
    return kind if kind in FUSION_KINDS else DEFAULT_FUSION


def fusion_enabled() -> bool:
    """True when components built right now should install fused paths."""
    return selected_fusion() == "on"
