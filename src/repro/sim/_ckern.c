/* Compiled engine kernel (REPRO_COMPILED): the hot loop of
 * repro.sim.core, both repro.sim.equeue queue implementations, and the
 * message constructors behind the repro.core.messages free-lists,
 * hand-written against the CPython C API.
 *
 * Design contract (see repro/sim/compiled.py and docs/PERFORMANCE.md):
 *
 * - The pure-Python classes stay the single source of truth for object
 *   layout.  bind() reads the __slots__ member-descriptor offsets off
 *   Event/Timeout/Process/Simulator/Request/Response at activation time
 *   and the C code drives those exact objects through direct slot
 *   access — there is no parallel compiled object model, so the two
 *   legs cannot disagree structurally.
 * - Every algorithm here is a line-for-line transliteration of the
 *   Python it replaces, including the lazy-deletion/compaction and
 *   calendar rebalance triggers (digest-visible) and the riding-push
 *   slot-table/high-water-mark logic.  Pop order is total (when, seq)
 *   order in both legs, so heap layout and qsort instability are
 *   digest-neutral by construction.
 * - Patched methods are exposed as instancemethod-wrapped C functions
 *   (repro/sim/compiled.py installs/uninstalls them), so activation is
 *   reversible within one process — that is what makes the same-process
 *   `perf --ab-compiled` harness possible.
 *
 * Supported CPython: 3.9 - 3.12 (PyMemberDescrObject layout and the
 * fastcall APIs used here are stable across that span).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* bound state: classes, slot offsets, interned names, singletons      */
/* ------------------------------------------------------------------ */

#define REQ_NFIELDS 12
#define RESP_NFIELDS 8

typedef struct {
    int bound;
    /* classes (strong refs) from repro.sim.core / repro.core.messages */
    PyObject *EventType, *TimeoutType, *ProcessType, *SimulatorType;
    PyObject *RequestType, *ResponseType;
    PyObject *SimError;       /* SimulationError */
    PyObject *riding_marker;  /* core._RIDING (identity-compared) */
    PyObject *empty_list, *empty_dict;  /* messages singletons */
    /* Event slot offsets (shared by every Event subclass) */
    Py_ssize_t ev_sim, ev_cb0, ev_cbs, ev_ok, ev_value, ev_name, ev_riders;
    Py_ssize_t to_delay;
    Py_ssize_t pr_waiting, pr_send, pr_throw, pr_waitcb;
    Py_ssize_t sim_now, sim_riders_pending, sim_open, sim_floors,
               sim_hwm, sim_push;
    Py_ssize_t req_off[REQ_NFIELDS], resp_off[RESP_NFIELDS];
    /* interned strings */
    PyObject *str_timeout, *str_fused, *str_stopvalue, *str_push,
             *str_materialize, *str_ok_attr, *str_value_attr,
             *str_riders_attr, *str_dispatch;
    PyObject *req_names[REQ_NFIELDS], *resp_names[RESP_NFIELDS];
} KState;

static KState K;

static const char *REQ_FIELDS[REQ_NFIELDS] = {
    "kind", "txn_id", "shard", "coord_node", "read_keys", "write_keys",
    "versions", "write_values", "spec", "pre_read", "reply_to",
    "value_bytes",
};
/* which Request fields default to the shared empty list/dict/None:
 * 0 = stored raw (required positional), 1 = _EMPTY_LIST, 2 = _EMPTY_DICT,
 * 3 = plain None */
static const char REQ_DEFAULT[REQ_NFIELDS] = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 2, 3, 3,
};
static const char *RESP_FIELDS[RESP_NFIELDS] = {
    "kind", "txn_id", "shard", "ok", "read_values", "versions",
    "write_values", "reason",
};
static const char RESP_DEFAULT[RESP_NFIELDS] = {
    0, 0, 0, 0, 2, 2, 2, 3,
};

/* ------------------------------------------------------------------ */
/* slot access helpers                                                 */
/* ------------------------------------------------------------------ */

#define SLOT(o, off) (*(PyObject **)((char *)(o) + (off)))

/* store a new reference (steals v); decrefs the old value */
static inline void
slot_setref(PyObject *o, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(o, off);
    SLOT(o, off) = v;
    Py_XDECREF(old);
}

static inline void
slot_set(PyObject *o, Py_ssize_t off, PyObject *v)
{
    Py_INCREF(v);
    slot_setref(o, off, v);
}

static inline int
is_event(PyObject *o)
{
    PyTypeObject *t = Py_TYPE(o);
    return (PyObject *)t == K.EventType
        || PyType_IsSubtype(t, (PyTypeObject *)K.EventType);
}

static inline int
is_sim(PyObject *o)
{
    PyTypeObject *t = Py_TYPE(o);
    return (PyObject *)t == K.SimulatorType
        || PyType_IsSubtype(t, (PyTypeObject *)K.SimulatorType);
}

/* event._ok as a borrowed ref; NULL slot reads as None (uninitialized
 * slots never occur on engine-created events; this is belt-and-braces) */
static inline PyObject *
ev_ok(PyObject *ev)
{
    PyObject *ok = SLOT(ev, K.ev_ok);
    return ok ? ok : Py_None;
}

/* ------------------------------------------------------------------ */
/* event firing: dispatch + riders (transliterates the drain loops)    */
/* ------------------------------------------------------------------ */

/* Run the callbacks of an already-marked event.  Mirrors the inlined
 * dispatch in the Python drain loops / Event._dispatch: clear the
 * slots first, then call.  Returns 0, or -1 with an exception set. */
static int
dispatch_slots(PyObject *ev)
{
    PyObject *cb0 = SLOT(ev, K.ev_cb0);
    PyObject *cbs = SLOT(ev, K.ev_cbs);
    if (cb0 == NULL)
        cb0 = Py_None;
    if (cbs == NULL)
        cbs = Py_None;
    Py_INCREF(cb0);
    Py_INCREF(cbs);
    if (cb0 != Py_None) {
        slot_set(ev, K.ev_cb0, Py_None);
        slot_set(ev, K.ev_cbs, Py_None);
        PyObject *r = PyObject_CallOneArg(cb0, ev);
        if (r == NULL)
            goto error;
        Py_DECREF(r);
        if (cbs != Py_None) {
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
                PyObject *fn = PyList_GET_ITEM(cbs, i);
                Py_INCREF(fn);
                r = PyObject_CallOneArg(fn, ev);
                Py_DECREF(fn);
                if (r == NULL)
                    goto error;
                Py_DECREF(r);
            }
        }
    }
    else if (cbs != Py_None && PyList_GET_SIZE(cbs) > 0) {
        slot_set(ev, K.ev_cbs, Py_None);
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
            PyObject *fn = PyList_GET_ITEM(cbs, i);
            Py_INCREF(fn);
            PyObject *r = PyObject_CallOneArg(fn, ev);
            Py_DECREF(fn);
            if (r == NULL)
                goto error;
            Py_DECREF(r);
        }
    }
    Py_DECREF(cb0);
    Py_DECREF(cbs);
    return 0;
error:
    Py_DECREF(cb0);
    Py_DECREF(cbs);
    return -1;
}

/* sim._riders_pending += delta (the slot holds a Python int) */
static int
riders_pending_add(PyObject *sim, long delta)
{
    PyObject *cur = SLOT(sim, K.sim_riders_pending);
    long v = PyLong_AsLong(cur);
    if (v == -1 && PyErr_Occurred())
        return -1;
    PyObject *nv = PyLong_FromLong(v + delta);
    if (nv == NULL)
        return -1;
    slot_setref(sim, K.sim_riders_pending, nv);
    return 0;
}

/* Fire a popped host's rider list in attach order (the inlined rider
 * loop of the Python drains).  Cancelled riders are skipped. */
static int
fire_riders_c(PyObject *sim, PyObject *riders)
{
    if (!PyList_Check(riders))
        return 0;  /* the () _RIDING marker: nothing to fire */
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(riders); i++) {
        PyObject *pair = PyList_GET_ITEM(riders, i);
        Py_INCREF(pair);
        PyObject *rev = PyTuple_GET_ITEM(pair, 0);
        PyObject *rval = PyTuple_GET_ITEM(pair, 1);
        Py_INCREF(rev);
        Py_INCREF(rval);
        if (is_event(rev)) {
            if (ev_ok(rev) == Py_None) {
                if (riders_pending_add(sim, -1) < 0)
                    goto error;
                slot_set(rev, K.ev_ok, Py_True);
                slot_set(rev, K.ev_value, rval);
                if (dispatch_slots(rev) < 0)
                    goto error;
            }
        }
        else {
            /* foreign rider object: generic attribute path */
            PyObject *ok = PyObject_GetAttr(rev, K.str_ok_attr);
            if (ok == NULL)
                goto error;
            int pending = (ok == Py_None);
            Py_DECREF(ok);
            if (pending) {
                if (riders_pending_add(sim, -1) < 0)
                    goto error;
                if (PyObject_SetAttr(rev, K.str_ok_attr, Py_True) < 0
                    || PyObject_SetAttr(rev, K.str_value_attr, rval) < 0)
                    goto error;
                PyObject *r = PyObject_CallMethodNoArgs(rev, K.str_dispatch);
                if (r == NULL)
                    goto error;
                Py_DECREF(r);
            }
        }
        Py_DECREF(rval);
        Py_DECREF(rev);
        Py_DECREF(pair);
        continue;
    error:
        Py_DECREF(rval);
        Py_DECREF(rev);
        Py_DECREF(pair);
        return -1;
    }
    return 0;
}

/* Fire one popped queue entry: mark + dispatch if still pending, then
 * fire any riders.  Mirrors one iteration of the Python drain loops. */
static int
fire_entry(PyObject *sim, PyObject *ev, PyObject *val)
{
    if (is_event(ev)) {
        if (ev_ok(ev) == Py_None) {
            slot_set(ev, K.ev_ok, Py_True);
            slot_set(ev, K.ev_value, val);
            if (dispatch_slots(ev) < 0)
                return -1;
        }
        PyObject *riders = SLOT(ev, K.ev_riders);
        if (riders != NULL && riders != Py_None) {
            Py_INCREF(riders);
            slot_set(ev, K.ev_riders, Py_None);
            int r = fire_riders_c(sim, riders);
            Py_DECREF(riders);
            return r;
        }
        return 0;
    }
    /* foreign event object: generic attribute path (rare; test-only) */
    PyObject *ok = PyObject_GetAttr(ev, K.str_ok_attr);
    if (ok == NULL)
        return -1;
    int pending = (ok == Py_None);
    Py_DECREF(ok);
    if (pending) {
        if (PyObject_SetAttr(ev, K.str_ok_attr, Py_True) < 0
            || PyObject_SetAttr(ev, K.str_value_attr, val) < 0)
            return -1;
        PyObject *r = PyObject_CallMethodNoArgs(ev, K.str_dispatch);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    PyObject *riders = PyObject_GetAttr(ev, K.str_riders_attr);
    if (riders == NULL)
        return -1;
    if (riders != Py_None) {
        if (PyObject_SetAttr(ev, K.str_riders_attr, Py_None) < 0) {
            Py_DECREF(riders);
            return -1;
        }
        int r = fire_riders_c(sim, riders);
        Py_DECREF(riders);
        return r;
    }
    Py_DECREF(riders);
    return 0;
}

/* sim._now = when */
static int
set_now(PyObject *sim, double when)
{
    PyObject *w = PyFloat_FromDouble(when);
    if (w == NULL)
        return -1;
    slot_setref(sim, K.sim_now, w);
    return 0;
}

/* ------------------------------------------------------------------ */
/* entry vectors, bucket map, bucket-id heap                           */
/* ------------------------------------------------------------------ */

typedef struct {
    double when;
    long long seq;
    PyObject *ev;   /* owned */
    PyObject *val;  /* owned */
} CEntry;

typedef struct {
    CEntry *a;
    Py_ssize_t n, cap;
} EVec;

static int
evec_reserve(EVec *v, Py_ssize_t need)
{
    if (need <= v->cap)
        return 0;
    Py_ssize_t cap = v->cap ? v->cap : 8;
    while (cap < need)
        cap += cap >> 1 ? cap >> 1 : 8;
    CEntry *a = (CEntry *)PyMem_Realloc(v->a, (size_t)cap * sizeof(CEntry));
    if (a == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    v->a = a;
    v->cap = cap;
    return 0;
}

/* takes ownership of e.ev / e.val */
static int
evec_push(EVec *v, CEntry e)
{
    if (evec_reserve(v, v->n + 1) < 0) {
        Py_DECREF(e.ev);
        Py_XDECREF(e.val);
        return -1;
    }
    v->a[v->n++] = e;
    return 0;
}

static void
evec_release(EVec *v, Py_ssize_t from)
{
    for (Py_ssize_t i = from; i < v->n; i++) {
        Py_XDECREF(v->a[i].ev);
        Py_XDECREF(v->a[i].val);
    }
    v->n = 0;
    PyMem_Free(v->a);
    v->a = NULL;
    v->cap = 0;
}

static inline int
entry_lt(const CEntry *a, const CEntry *b)
{
    if (a->when != b->when)
        return a->when < b->when;
    return a->seq < b->seq;
}

static int
entry_cmp_qsort(const void *pa, const void *pb)
{
    const CEntry *a = (const CEntry *)pa, *b = (const CEntry *)pb;
    if (a->when != b->when)
        return a->when < b->when ? -1 : 1;
    return a->seq < b->seq ? -1 : 1;  /* seq unique: never equal */
}

/* open-addressed map: long long bucket id -> EVec* (malloc'd) */
typedef struct {
    long long key;
    EVec *vec;
    char state;  /* 0 empty, 1 used, 2 tombstone */
} MapSlot;

typedef struct {
    MapSlot *slots;
    Py_ssize_t mask;   /* capacity - 1 (capacity is a power of two) */
    Py_ssize_t used;   /* live keys */
    Py_ssize_t fill;   /* live + tombstones */
} BMap;

static int
bmap_init(BMap *m, Py_ssize_t cap)
{
    m->slots = (MapSlot *)PyMem_Calloc((size_t)cap, sizeof(MapSlot));
    if (m->slots == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    m->mask = cap - 1;
    m->used = 0;
    m->fill = 0;
    return 0;
}

static inline size_t
bmap_hash(long long key)
{
    unsigned long long h = (unsigned long long)key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return (size_t)h;
}

static MapSlot *
bmap_find(BMap *m, long long key)
{
    size_t i = bmap_hash(key) & (size_t)m->mask;
    MapSlot *first_tomb = NULL;
    for (;;) {
        MapSlot *s = &m->slots[i];
        if (s->state == 0)
            return first_tomb ? first_tomb : s;
        if (s->state == 2) {
            if (first_tomb == NULL)
                first_tomb = s;
        }
        else if (s->key == key)
            return s;
        i = (i + 1) & (size_t)m->mask;
    }
}

static int bmap_grow(BMap *m);

/* get-or-create the vector for key; NULL on allocation failure */
static EVec *
bmap_put(BMap *m, long long key)
{
    if (3 * (m->fill + 1) >= 2 * (m->mask + 1)) {
        if (bmap_grow(m) < 0)
            return NULL;
    }
    MapSlot *s = bmap_find(m, key);
    if (s->state == 1)
        return s->vec;
    EVec *v = (EVec *)PyMem_Calloc(1, sizeof(EVec));
    if (v == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    if (s->state == 0)
        m->fill++;
    s->state = 1;
    s->key = key;
    s->vec = v;
    m->used++;
    return v;
}

static int
bmap_grow(BMap *m)
{
    Py_ssize_t oldcap = m->mask + 1;
    MapSlot *old = m->slots;
    Py_ssize_t cap = oldcap;
    while (3 * (m->used + 1) >= 2 * cap)
        cap <<= 1;
    if (bmap_init(m, cap) < 0) {
        m->slots = old;
        m->mask = oldcap - 1;
        return -1;
    }
    for (Py_ssize_t i = 0; i < oldcap; i++) {
        if (old[i].state == 1) {
            MapSlot *s = bmap_find(m, old[i].key);
            s->state = 1;
            s->key = old[i].key;
            s->vec = old[i].vec;
            m->used++;
            m->fill++;
        }
    }
    PyMem_Free(old);
    return 0;
}

/* remove and return the vector at key, or NULL if absent */
static EVec *
bmap_pop(BMap *m, long long key)
{
    MapSlot *s = bmap_find(m, key);
    if (s->state != 1)
        return NULL;
    EVec *v = s->vec;
    s->state = 2;
    s->vec = NULL;
    m->used--;
    return v;
}

static void
bmap_dispose(BMap *m, int release_refs)
{
    if (m->slots == NULL)
        return;
    for (Py_ssize_t i = 0; i <= m->mask; i++) {
        if (m->slots[i].state == 1) {
            if (release_refs)
                evec_release(m->slots[i].vec, 0);
            else {
                PyMem_Free(m->slots[i].vec->a);
            }
            PyMem_Free(m->slots[i].vec);
        }
    }
    PyMem_Free(m->slots);
    m->slots = NULL;
    m->mask = -1;
    m->used = 0;
    m->fill = 0;
}

/* min/max over live keys (callers guarantee used > 0) */
static void
bmap_minmax(BMap *m, long long *lo, long long *hi)
{
    int seen = 0;
    for (Py_ssize_t i = 0; i <= m->mask; i++) {
        if (m->slots[i].state == 1) {
            long long k = m->slots[i].key;
            if (!seen) {
                *lo = *hi = k;
                seen = 1;
            }
            else {
                if (k < *lo)
                    *lo = k;
                if (k > *hi)
                    *hi = k;
            }
        }
    }
}

/* long long min-heap for bucket ids */
typedef struct {
    long long *a;
    Py_ssize_t n, cap;
} LHeap;

static int
lheap_reserve(LHeap *h, Py_ssize_t need)
{
    if (need <= h->cap)
        return 0;
    Py_ssize_t cap = h->cap ? h->cap : 16;
    while (cap < need)
        cap <<= 1;
    long long *a = (long long *)PyMem_Realloc(h->a,
                                              (size_t)cap * sizeof(long long));
    if (a == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    h->a = a;
    h->cap = cap;
    return 0;
}

static int
lheap_push(LHeap *h, long long v)
{
    if (lheap_reserve(h, h->n + 1) < 0)
        return -1;
    Py_ssize_t i = h->n++;
    h->a[i] = v;
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (h->a[p] <= h->a[i])
            break;
        long long t = h->a[p];
        h->a[p] = h->a[i];
        h->a[i] = t;
        i = p;
    }
    return 0;
}

static long long
lheap_pop(LHeap *h)
{
    long long top = h->a[0];
    h->a[0] = h->a[--h->n];
    Py_ssize_t i = 0, n = h->n;
    for (;;) {
        Py_ssize_t l = 2 * i + 1, r = l + 1, s = i;
        if (l < n && h->a[l] < h->a[s])
            s = l;
        if (r < n && h->a[r] < h->a[s])
            s = r;
        if (s == i)
            break;
        long long t = h->a[s];
        h->a[s] = h->a[i];
        h->a[i] = t;
        i = s;
    }
    return top;
}

/* when -> bucket id: exact for power-of-two widths (like Python's
 * int(when * inv)); saturated so pathological magnitudes stay defined
 * (saturation keeps id order monotone in `when`, which is all pop
 * order relies on). */
static inline long long
bucket_id(double when, double inv)
{
    double b = when * inv;
    if (b >= 9.0e18)
        return (long long)4611686018427387904LL;  /* 2^62 */
    if (b <= -9.0e18)
        return (long long)-4611686018427387904LL;
    return (long long)b;  /* C truncation == Python int() toward zero */
}

/* ------------------------------------------------------------------ */
/* CHeapQueue: the binary-heap scheduler (HeapEventQueue)              */
/* ------------------------------------------------------------------ */

/* Tuning constants mirrored from repro.sim.equeue (digest-visible). */
#define COMPACT_MIN_CANCELLED 64
#define DENSE_BUCKET 96
#define SPARSE_ACTS 32
#define SPARSE_PUSHES_PER_ACT 16
#define TARGET_LOAD 4.0
#define MIN_WIDTH 9.5367431640625e-07   /* 2^-20 */
#define MAX_WIDTH 16777216.0            /* 2^24 */
#define REBALANCE_MIN 128
/* Simulator._riding_push slot-table shed trigger. */
#define OPEN_SHED_MIN 8192

typedef struct {
    PyObject_HEAD
    long long seq;
    long long cancelled;
    EVec h;  /* binary min-heap on (when, seq) */
} CHeap;

static void
heap_siftup(EVec *h, Py_ssize_t i)
{
    CEntry e = h->a[i];
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (!entry_lt(&e, &h->a[p]))
            break;
        h->a[i] = h->a[p];
        i = p;
    }
    h->a[i] = e;
}

static void
heap_siftdown(EVec *h, Py_ssize_t i)
{
    Py_ssize_t n = h->n;
    CEntry e = h->a[i];
    for (;;) {
        Py_ssize_t l = 2 * i + 1, r = l + 1, s = i;
        const CEntry *best = &e;
        if (l < n && entry_lt(&h->a[l], best)) {
            s = l;
            best = &h->a[l];
        }
        if (r < n && entry_lt(&h->a[r], best))
            s = r;
        if (s == i)
            break;
        h->a[i] = h->a[s];
        i = s;
    }
    h->a[i] = e;
}

static void
heap_heapify(EVec *h)
{
    for (Py_ssize_t i = h->n / 2 - 1; i >= 0; i--)
        heap_siftdown(h, i);
}

/* push: takes new references to ev/val */
static int
cheap_push_c(CHeap *q, double when, PyObject *ev, PyObject *val)
{
    CEntry e;
    q->seq += 1;
    e.when = when;
    e.seq = q->seq;
    Py_INCREF(ev);
    Py_XINCREF(val);
    e.ev = ev;
    e.val = val ? val : Py_None;
    if (val == NULL)
        Py_INCREF(Py_None);
    if (evec_push(&q->h, e) < 0)
        return -1;
    heap_siftup(&q->h, q->h.n - 1);
    return 0;
}

/* pop the root into *out (ownership transferred); 0 if empty, 1 ok */
static int
cheap_pop_c(CHeap *q, CEntry *out)
{
    EVec *h = &q->h;
    if (h->n == 0)
        return 0;
    *out = h->a[0];
    h->n -= 1;
    if (h->n > 0) {
        h->a[0] = h->a[h->n];
        heap_siftdown(h, 0);
    }
    return 1;
}

/* keep an entry through compaction iff its event is still pending or
 * still carries riders (stale hosts must pop to fire their riders) */
static int
entry_live(PyObject *ev)
{
    if (is_event(ev)) {
        if (ev_ok(ev) == Py_None)
            return 1;
        PyObject *r = SLOT(ev, K.ev_riders);
        return r != NULL && r != Py_None;
    }
    PyObject *ok = PyObject_GetAttr(ev, K.str_ok_attr);
    if (ok == NULL)
        return -1;
    int live = (ok == Py_None);
    Py_DECREF(ok);
    if (live)
        return 1;
    PyObject *r = PyObject_GetAttr(ev, K.str_riders_attr);
    if (r == NULL)
        return -1;
    live = (r != Py_None);
    Py_DECREF(r);
    return live;
}

static PyObject *
cheap_push(CHeap *q, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "push(when, event, value)");
        return NULL;
    }
    double when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (cheap_push_c(q, when, args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
entry_tuple(CEntry *e)
{
    /* consumes e's references on success or failure */
    PyObject *w = PyFloat_FromDouble(e->when);
    PyObject *s = w ? PyLong_FromLongLong(e->seq) : NULL;
    PyObject *t = s ? PyTuple_New(4) : NULL;
    if (t == NULL) {
        Py_XDECREF(w);
        Py_XDECREF(s);
        Py_DECREF(e->ev);
        Py_DECREF(e->val);
        return NULL;
    }
    PyTuple_SET_ITEM(t, 0, w);
    PyTuple_SET_ITEM(t, 1, s);
    PyTuple_SET_ITEM(t, 2, e->ev);
    PyTuple_SET_ITEM(t, 3, e->val);
    return t;
}

static PyObject *
cheap_pop_min(CHeap *q, PyObject *Py_UNUSED(ignored))
{
    CEntry e;
    if (!cheap_pop_c(q, &e))
        Py_RETURN_NONE;
    return entry_tuple(&e);
}

static PyObject *
cheap_peek_time(CHeap *q, PyObject *Py_UNUSED(ignored))
{
    if (q->h.n == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(q->h.a[0].when);
}

static PyObject *
cheap_abandon(CHeap *q, PyObject *Py_UNUSED(ignored))
{
    q->cancelled += 1;
    if (q->cancelled >= COMPACT_MIN_CANCELLED
        && 2 * q->cancelled >= q->h.n) {
        EVec *h = &q->h;
        Py_ssize_t w = 0;
        for (Py_ssize_t i = 0; i < h->n; i++) {
            int live = entry_live(h->a[i].ev);
            if (live < 0)
                return NULL;
            if (live)
                h->a[w++] = h->a[i];
            else {
                Py_DECREF(h->a[i].ev);
                Py_DECREF(h->a[i].val);
            }
        }
        h->n = w;
        heap_heapify(h);
        q->cancelled = 0;
    }
    Py_RETURN_NONE;
}

static PyObject *
cheap_drain_all(CHeap *q, PyObject *sim)
{
    CEntry e;
    while (cheap_pop_c(q, &e)) {
        if (set_now(sim, e.when) < 0)
            goto error;
        if (fire_entry(sim, e.ev, e.val) < 0)
            goto error;
        Py_DECREF(e.ev);
        Py_DECREF(e.val);
    }
    Py_RETURN_NONE;
error:
    Py_DECREF(e.ev);
    Py_DECREF(e.val);
    return NULL;
}

static PyObject *
cheap_drain_until(CHeap *q, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "drain_until(sim, until)");
        return NULL;
    }
    PyObject *sim = args[0];
    double until = PyFloat_AsDouble(args[1]);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    while (q->h.n > 0 && q->h.a[0].when <= until) {
        CEntry e;
        (void)cheap_pop_c(q, &e);
        if (set_now(sim, e.when) < 0 || fire_entry(sim, e.ev, e.val) < 0) {
            Py_DECREF(e.ev);
            Py_DECREF(e.val);
            return NULL;
        }
        Py_DECREF(e.ev);
        Py_DECREF(e.val);
    }
    Py_RETURN_NONE;
}

static Py_ssize_t
cheap_len(CHeap *q)
{
    return q->h.n;
}

static PyObject *
cheap_get_seq(CHeap *q, void *closure)
{
    return PyLong_FromLongLong(q->seq);
}

static PyObject *
cheap_get_kind(CHeap *q, void *closure)
{
    return PyUnicode_FromString("heap");
}

static int
cheap_traverse(CHeap *q, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < q->h.n; i++) {
        Py_VISIT(q->h.a[i].ev);
        Py_VISIT(q->h.a[i].val);
    }
    return 0;
}

static int
cheap_clear(CHeap *q)
{
    EVec tmp = q->h;
    q->h.a = NULL;
    q->h.n = 0;
    q->h.cap = 0;
    evec_release(&tmp, 0);
    return 0;
}

static void
cheap_dealloc(CHeap *q)
{
    PyObject_GC_UnTrack(q);
    cheap_clear(q);
    Py_TYPE(q)->tp_free((PyObject *)q);
}

static int
cheap_init(CHeap *q, PyObject *args, PyObject *kwargs)
{
    if (!PyArg_ParseTuple(args, ""))
        return -1;
    return 0;
}

static PyMethodDef cheap_methods[] = {
    {"push", (PyCFunction)(void (*)(void))cheap_push, METH_FASTCALL, NULL},
    {"pop_min", (PyCFunction)cheap_pop_min, METH_NOARGS, NULL},
    {"peek_time", (PyCFunction)cheap_peek_time, METH_NOARGS, NULL},
    {"abandon", (PyCFunction)cheap_abandon, METH_NOARGS, NULL},
    {"drain_all", (PyCFunction)cheap_drain_all, METH_O, NULL},
    {"drain_until", (PyCFunction)(void (*)(void))cheap_drain_until,
     METH_FASTCALL, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef cheap_getset[] = {
    {"seq", (getter)cheap_get_seq, NULL, NULL, NULL},
    {"kind", (getter)cheap_get_kind, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods cheap_as_sequence = {
    .sq_length = (lenfunc)cheap_len,
};

static PyTypeObject CHeapType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckern.CHeapQueue",
    .tp_basicsize = sizeof(CHeap),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled binary-heap event queue (HeapEventQueue twin).",
    .tp_methods = cheap_methods,
    .tp_getset = cheap_getset,
    .tp_as_sequence = &cheap_as_sequence,
    .tp_traverse = (traverseproc)cheap_traverse,
    .tp_clear = (inquiry)cheap_clear,
    .tp_dealloc = (destructor)cheap_dealloc,
    .tp_init = (initproc)cheap_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* CCalendarQueue: the calendar/bucket scheduler (CalendarEventQueue)  */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long seq, removed, cancelled, seq_mark;
    long long cur_id;       /* bids <= cur_id route into cur; -1 = none */
    long long acts;
    double width, inv;
    EVec cur;               /* activated bucket, ascending (when, seq) */
    Py_ssize_t head;        /* live region is cur.a[head .. cur.n) */
    BMap map;               /* bucket id -> EVec* of unsorted entries */
    LHeap bids;
} CCal;

static inline long long
ccal_len(CCal *q)
{
    return q->seq - q->removed;
}

/* append an entry (ownership taken) to the bucket for `when`, or
 * insort it into the active band.  Transliterates CalendarEventQueue.push. */
static int
ccal_push_c(CCal *q, double when, PyObject *ev, PyObject *val)
{
    CEntry e;
    q->seq += 1;
    e.when = when;
    e.seq = q->seq;
    Py_INCREF(ev);
    e.ev = ev;
    if (val == NULL)
        val = Py_None;
    Py_INCREF(val);
    e.val = val;
    long long bid = bucket_id(when, q->inv);
    if (bid <= q->cur_id) {
        /* binary search in the live region [head, n) for the insertion
         * point (ascending (when, seq)), then shift */
        EVec *c = &q->cur;
        if (evec_reserve(c, c->n + 1) < 0) {
            Py_DECREF(e.ev);
            Py_DECREF(e.val);
            return -1;
        }
        Py_ssize_t lo = q->head, hi = c->n;
        while (lo < hi) {
            Py_ssize_t mid = (lo + hi) >> 1;
            if (entry_lt(&c->a[mid], &e))
                lo = mid + 1;
            else
                hi = mid;
        }
        memmove(&c->a[lo + 1], &c->a[lo],
                (size_t)(c->n - lo) * sizeof(CEntry));
        c->a[lo] = e;
        c->n += 1;
        return 0;
    }
    EVec *b = bmap_put(&q->map, bid);
    if (b == NULL) {
        Py_DECREF(e.ev);
        Py_DECREF(e.val);
        return -1;
    }
    if (b->n == 0) {
        if (lheap_push(&q->bids, bid) < 0) {
            Py_DECREF(e.ev);
            Py_DECREF(e.val);
            return -1;
        }
    }
    return evec_push(b, e);
}

/* Re-derive the width from the live span and re-bucket everything.
 * extra: the in-flight bucket a trigger hands over (consumed only on
 * success), may be NULL.  floor > 0 applies the sparse-trigger minimum.
 * Returns 1 rebalanced, 0 declined (nothing mutated), -1 error. */
static int
ccal_rebalance(CCal *q, EVec *extra, double floor_)
{
    long long n = ccal_len(q);
    if (n < 1)
        return 0;
    int have = 0;
    double lo = 0.0, hi = 0.0;
    if (q->map.used > 0) {
        long long blo = 0, bhi = 0;
        bmap_minmax(&q->map, &blo, &bhi);
        lo = (double)blo * q->width;
        hi = ((double)bhi + 1.0) * q->width;
        have = 1;
    }
    if (extra != NULL && extra->n > 0) {
        double plo = extra->a[0].when, phi = extra->a[0].when;
        for (Py_ssize_t i = 1; i < extra->n; i++) {
            double w = extra->a[i].when;
            if (w < plo)
                plo = w;
            if (w > phi)
                phi = w;
        }
        if (!have) {
            lo = plo;
            hi = phi;
            have = 1;
        }
        else {
            if (plo < lo)
                lo = plo;
            if (phi > hi)
                hi = phi;
        }
    }
    if (q->cur.n > q->head) {
        /* cur is sorted ascending: min at head, max at the tail */
        double plo = q->cur.a[q->head].when;
        double phi = q->cur.a[q->cur.n - 1].when;
        if (!have) {
            lo = plo;
            hi = phi;
            have = 1;
        }
        else {
            if (plo < lo)
                lo = plo;
            if (phi > hi)
                hi = phi;
        }
    }
    double target = 0.0;
    if (have) {
        double span = hi - lo;
        if (span > 0.0) {
            double denom = (double)n / TARGET_LOAD;
            if (denom < 8.0)
                denom = 8.0;
            target = span / denom;
        }
    }
    if (floor_ > 0.0 && floor_ > target)
        target = floor_;
    if (target <= 0.0)
        return 0;
    double width = MIN_WIDTH;
    while (width < target && width < MAX_WIDTH)
        width *= 2.0;
    if (width == q->width)
        return 0;

    /* gather every live entry, then re-bucket at the new width */
    EVec all = {NULL, 0, 0};
    Py_ssize_t total = (q->cur.n - q->head) + (extra ? extra->n : 0);
    for (Py_ssize_t i = 0; i <= q->map.mask; i++)
        if (q->map.slots[i].state == 1)
            total += q->map.slots[i].vec->n;
    if (evec_reserve(&all, total) < 0)
        return -1;
    for (Py_ssize_t i = q->head; i < q->cur.n; i++)
        all.a[all.n++] = q->cur.a[i];
    if (extra != NULL) {
        for (Py_ssize_t i = 0; i < extra->n; i++)
            all.a[all.n++] = extra->a[i];
        extra->n = 0;
        PyMem_Free(extra->a);
        extra->a = NULL;
        extra->cap = 0;
    }
    for (Py_ssize_t i = 0; i <= q->map.mask; i++) {
        if (q->map.slots[i].state == 1) {
            EVec *b = q->map.slots[i].vec;
            for (Py_ssize_t j = 0; j < b->n; j++)
                all.a[all.n++] = b->a[j];
            b->n = 0;
        }
    }
    /* entries moved out; dispose the old map + bucket shells */
    bmap_dispose(&q->map, 0);
    q->cur.n = 0;
    q->head = 0;
    PyMem_Free(q->cur.a);
    q->cur.a = NULL;
    q->cur.cap = 0;
    q->bids.n = 0;

    q->width = width;
    q->inv = 1.0 / width;
    if (bmap_init(&q->map, 64) < 0)
        goto fatal;
    for (Py_ssize_t i = 0; i < all.n; i++) {
        long long bid = bucket_id(all.a[i].when, q->inv);
        EVec *b = bmap_put(&q->map, bid);
        if (b == NULL)
            goto fatal;
        if (evec_push(b, all.a[i]) < 0) {
            /* evec_push released this entry's refs on failure */
            for (Py_ssize_t j = i + 1; j < all.n; j++) {
                Py_DECREF(all.a[j].ev);
                Py_DECREF(all.a[j].val);
            }
            all.n = 0;
            PyMem_Free(all.a);
            return -1;
        }
    }
    all.n = 0;
    PyMem_Free(all.a);
    all.a = NULL;
    /* rebuild the id heap from the new map */
    for (Py_ssize_t i = 0; i <= q->map.mask; i++) {
        if (q->map.slots[i].state == 1) {
            if (lheap_push(&q->bids, q->map.slots[i].key) < 0)
                return -1;
        }
    }
    q->cur_id = -1;
    q->acts = 0;
    q->seq_mark = q->seq;
    return 1;
fatal:
    for (Py_ssize_t i = 0; i < all.n; i++) {
        Py_XDECREF(all.a[i].ev);
        Py_XDECREF(all.a[i].val);
    }
    PyMem_Free(all.a);
    return -1;
}

/* Activate the next non-empty bucket into cur.  1 activated, 0 drained,
 * -1 error.  Transliterates CalendarEventQueue._advance, including the
 * digest-visible trigger accounting. */
static int
ccal_advance(CCal *q)
{
    /* the previous band is fully consumed by now; reset the vector so
     * the dead prefix cannot grow without bound */
    if (q->head >= q->cur.n) {
        q->cur.n = 0;
        q->head = 0;
    }
    long long n = ccal_len(q);
    if (q->cur_id == -1 && n >= REBALANCE_MIN
        && 2 * (long long)q->map.used >= n) {
        int r = ccal_rebalance(q, NULL, 0.0);
        if (r < 0)
            return -1;
    }
    while (q->bids.n > 0) {
        long long bid = lheap_pop(&q->bids);
        EVec *b = bmap_pop(&q->map, bid);
        if (b == NULL)
            continue;  /* stale id (compaction emptied the bucket) */
        q->acts += 1;
        int probed = 0;
        if (q->acts >= SPARSE_ACTS) {
            long long pushes = q->seq - q->seq_mark;
            q->acts = 0;
            q->seq_mark = q->seq;
            if (pushes < (long long)SPARSE_PUSHES_PER_ACT * SPARSE_ACTS) {
                probed = 1;
                int r = ccal_rebalance(q, b, 2.0 * q->width);
                if (r < 0) {
                    evec_release(b, 0);
                    PyMem_Free(b);
                    return -1;
                }
                if (r == 1) {
                    PyMem_Free(b->a);
                    PyMem_Free(b);
                    continue;
                }
            }
        }
        if (!probed && b->n > DENSE_BUCKET) {
            int r = ccal_rebalance(q, b, 0.0);
            if (r < 0) {
                evec_release(b, 0);
                PyMem_Free(b);
                return -1;
            }
            if (r == 1) {
                PyMem_Free(b->a);
                PyMem_Free(b);
                continue;
            }
        }
        qsort(b->a, (size_t)b->n, sizeof(CEntry), entry_cmp_qsort);
        PyMem_Free(q->cur.a);
        q->cur = *b;
        q->head = 0;
        PyMem_Free(b);
        q->cur_id = bid;
        return 1;
    }
    return 0;
}

/* pop the minimum live-region entry (ownership out); 1 ok, 0 empty,
 * -1 error */
static int
ccal_pop_c(CCal *q, CEntry *out)
{
    while (q->head >= q->cur.n) {
        int r = ccal_advance(q);
        if (r <= 0)
            return r;
    }
    *out = q->cur.a[q->head];
    q->head += 1;
    q->removed += 1;
    return 1;
}

static PyObject *
ccal_push(CCal *q, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "push(when, event, value)");
        return NULL;
    }
    double when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (ccal_push_c(q, when, args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ccal_pop_min(CCal *q, PyObject *Py_UNUSED(ignored))
{
    CEntry e;
    int r = ccal_pop_c(q, &e);
    if (r < 0)
        return NULL;
    if (r == 0)
        Py_RETURN_NONE;
    return entry_tuple(&e);
}

static PyObject *
ccal_peek_time(CCal *q, PyObject *Py_UNUSED(ignored))
{
    while (q->head >= q->cur.n) {
        int r = ccal_advance(q);
        if (r < 0)
            return NULL;
        if (r == 0)
            Py_RETURN_NONE;
    }
    return PyFloat_FromDouble(q->cur.a[q->head].when);
}

/* drop every already-triggered entry (keeping stale hosts with riders);
 * transliterates CalendarEventQueue._compact */
static int
ccal_compact(CCal *q)
{
    EVec *c = &q->cur;
    Py_ssize_t w = q->head;
    for (Py_ssize_t i = q->head; i < c->n; i++) {
        int live = entry_live(c->a[i].ev);
        if (live < 0)
            return -1;
        if (live)
            c->a[w++] = c->a[i];
        else {
            Py_DECREF(c->a[i].ev);
            Py_DECREF(c->a[i].val);
        }
    }
    c->n = w;
    long long total = c->n - q->head;
    for (Py_ssize_t i = 0; i <= q->map.mask; i++) {
        if (q->map.slots[i].state != 1)
            continue;
        EVec *b = q->map.slots[i].vec;
        Py_ssize_t bw = 0;
        for (Py_ssize_t j = 0; j < b->n; j++) {
            int live = entry_live(b->a[j].ev);
            if (live < 0)
                return -1;
            if (live)
                b->a[bw++] = b->a[j];
            else {
                Py_DECREF(b->a[j].ev);
                Py_DECREF(b->a[j].val);
            }
        }
        b->n = bw;
        if (bw == 0) {
            /* empty bucket leaves the map; its id goes stale in bids */
            PyMem_Free(b->a);
            PyMem_Free(b);
            q->map.slots[i].state = 2;
            q->map.slots[i].vec = NULL;
            q->map.used--;
        }
        else
            total += bw;
    }
    q->removed = q->seq - total;
    q->cancelled = 0;
    return 0;
}

static PyObject *
ccal_abandon(CCal *q, PyObject *Py_UNUSED(ignored))
{
    q->cancelled += 1;
    if (q->cancelled >= COMPACT_MIN_CANCELLED
        && 2 * q->cancelled >= ccal_len(q)) {
        if (ccal_compact(q) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
ccal_drain_all(CCal *q, PyObject *sim)
{
    for (;;) {
        while (q->head < q->cur.n) {
            /* move ownership out before firing: callbacks may push into
             * the active band and realloc cur.a */
            CEntry e = q->cur.a[q->head];
            q->head += 1;
            q->removed += 1;
            if (set_now(sim, e.when) < 0
                || fire_entry(sim, e.ev, e.val) < 0) {
                Py_DECREF(e.ev);
                Py_DECREF(e.val);
                return NULL;
            }
            Py_DECREF(e.ev);
            Py_DECREF(e.val);
        }
        int r = ccal_advance(q);
        if (r < 0)
            return NULL;
        if (r == 0)
            Py_RETURN_NONE;
    }
}

static PyObject *
ccal_drain_until(CCal *q, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "drain_until(sim, until)");
        return NULL;
    }
    PyObject *sim = args[0];
    double until = PyFloat_AsDouble(args[1]);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    for (;;) {
        while (q->head < q->cur.n) {
            if (q->cur.a[q->head].when > until)
                Py_RETURN_NONE;  /* head stays queued */
            CEntry e = q->cur.a[q->head];
            q->head += 1;
            q->removed += 1;
            if (set_now(sim, e.when) < 0
                || fire_entry(sim, e.ev, e.val) < 0) {
                Py_DECREF(e.ev);
                Py_DECREF(e.val);
                return NULL;
            }
            Py_DECREF(e.ev);
            Py_DECREF(e.val);
        }
        int r = ccal_advance(q);
        if (r < 0)
            return NULL;
        if (r == 0)
            Py_RETURN_NONE;
    }
}

static Py_ssize_t
ccal_sq_len(CCal *q)
{
    return (Py_ssize_t)ccal_len(q);
}

static PyObject *
ccal_get_seq(CCal *q, void *closure)
{
    return PyLong_FromLongLong(q->seq);
}

static PyObject *
ccal_get_kind(CCal *q, void *closure)
{
    return PyUnicode_FromString("calendar");
}

static PyObject *
ccal_get_width(CCal *q, void *closure)
{
    return PyFloat_FromDouble(q->width);
}

static PyObject *
ccal_get_active_buckets(CCal *q, void *closure)
{
    Py_ssize_t n = q->map.used + (q->cur.n > q->head ? 1 : 0);
    return PyLong_FromSsize_t(n);
}

static int
ccal_traverse(CCal *q, visitproc visit, void *arg)
{
    for (Py_ssize_t i = q->head; i < q->cur.n; i++) {
        Py_VISIT(q->cur.a[i].ev);
        Py_VISIT(q->cur.a[i].val);
    }
    if (q->map.slots != NULL) {
        for (Py_ssize_t i = 0; i <= q->map.mask; i++) {
            if (q->map.slots[i].state == 1) {
                EVec *b = q->map.slots[i].vec;
                for (Py_ssize_t j = 0; j < b->n; j++) {
                    Py_VISIT(b->a[j].ev);
                    Py_VISIT(b->a[j].val);
                }
            }
        }
    }
    return 0;
}

static int
ccal_clear_gc(CCal *q)
{
    EVec tmp = q->cur;
    Py_ssize_t head = q->head;
    q->cur.a = NULL;
    q->cur.n = 0;
    q->cur.cap = 0;
    q->head = 0;
    evec_release(&tmp, head);
    bmap_dispose(&q->map, 1);
    PyMem_Free(q->bids.a);
    q->bids.a = NULL;
    q->bids.n = 0;
    q->bids.cap = 0;
    return 0;
}

static void
ccal_dealloc(CCal *q)
{
    PyObject_GC_UnTrack(q);
    ccal_clear_gc(q);
    Py_TYPE(q)->tp_free((PyObject *)q);
}

static int
ccal_init(CCal *q, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"width", NULL};
    double width = 1.0;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|d", kwlist, &width))
        return -1;
    q->seq = 0;
    q->removed = 0;
    q->cancelled = 0;
    q->seq_mark = 0;
    q->cur_id = -1;
    q->acts = 0;
    q->width = width;
    q->inv = 1.0 / width;
    q->head = 0;
    if (q->map.slots == NULL) {
        if (bmap_init(&q->map, 64) < 0)
            return -1;
    }
    return 0;
}

static PyMethodDef ccal_methods[] = {
    {"push", (PyCFunction)(void (*)(void))ccal_push, METH_FASTCALL, NULL},
    {"pop_min", (PyCFunction)ccal_pop_min, METH_NOARGS, NULL},
    {"peek_time", (PyCFunction)ccal_peek_time, METH_NOARGS, NULL},
    {"abandon", (PyCFunction)ccal_abandon, METH_NOARGS, NULL},
    {"drain_all", (PyCFunction)ccal_drain_all, METH_O, NULL},
    {"drain_until", (PyCFunction)(void (*)(void))ccal_drain_until,
     METH_FASTCALL, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef ccal_getset[] = {
    {"seq", (getter)ccal_get_seq, NULL, NULL, NULL},
    {"kind", (getter)ccal_get_kind, NULL, NULL, NULL},
    {"width", (getter)ccal_get_width, NULL, NULL, NULL},
    {"active_buckets", (getter)ccal_get_active_buckets, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods ccal_as_sequence = {
    .sq_length = (lenfunc)ccal_sq_len,
};

static PyTypeObject CCalType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckern.CCalendarQueue",
    .tp_basicsize = sizeof(CCal),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled calendar/bucket event queue "
              "(CalendarEventQueue twin).",
    .tp_methods = ccal_methods,
    .tp_getset = ccal_getset,
    .tp_as_sequence = &ccal_as_sequence,
    .tp_traverse = (traverseproc)ccal_traverse,
    .tp_clear = (inquiry)ccal_clear_gc,
    .tp_dealloc = (destructor)ccal_dealloc,
    .tp_init = (initproc)ccal_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* RidingPush: compiled Simulator._riding_push (the REPRO_FUSION path) */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *sim;    /* borrowed-by-design?  No: owned (GC-tracked)  */
    PyObject *queue;  /* owned */
} RPush;

static PyTypeObject RPushType;  /* forward */

/* push an entry into whatever queue object the sim carries */
static int
queue_push(PyObject *queue, double when, PyObject *wobj,
           PyObject *ev, PyObject *val)
{
    PyTypeObject *t = Py_TYPE(queue);
    if (t == &CHeapType)
        return cheap_push_c((CHeap *)queue, when, ev, val);
    if (t == &CCalType)
        return ccal_push_c((CCal *)queue, when, ev, val);
    /* generic EventQueue: queue.push(when, event, value) */
    PyObject *w = wobj;
    if (w == NULL) {
        w = PyFloat_FromDouble(when);
        if (w == NULL)
            return -1;
    }
    else
        Py_INCREF(w);
    PyObject *r = PyObject_CallMethodObjArgs(
        queue, K.str_push, w, ev, val ? val : Py_None, NULL);
    Py_DECREF(w);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Transliterates Simulator._riding_push line for line.  wobj_in, if
 * non-NULL, is a borrowed boxed `when` (saves re-boxing on the hot
 * Timeout path).  Reads _floors/_open through the sim slots on every
 * use: repro.sim.link sheds by REBINDING _floors, and the reentrant
 * pushes issued by ln._materialize() can shed _open. */
static int
riding_core(PyObject *sim, double when, PyObject *wobj_in,
            PyObject *ev, PyObject *val, PyObject *queue)
{
    PyObject *wobj = wobj_in;
    int wobj_owned = 0;
    if (val == NULL)
        val = Py_None;

    /* floors: wake link drainers parked at exactly this instant first,
     * so the materialized wake hosts the timestamp */
    PyObject *floors = SLOT(sim, K.sim_floors);
    if (floors != NULL && PyDict_GET_SIZE(floors) > 0) {
        if (wobj == NULL) {
            wobj = PyFloat_FromDouble(when);
            if (wobj == NULL)
                return -1;
            wobj_owned = 1;
        }
        PyObject *parked = PyDict_GetItemWithError(floors, wobj);
        if (parked == NULL) {
            if (PyErr_Occurred())
                goto error;
        }
        else {
            Py_INCREF(parked);
            if (PyDict_DelItem(floors, wobj) < 0) {
                Py_DECREF(parked);
                goto error;
            }
            if (PyList_Check(parked)) {
                for (Py_ssize_t i = 0; i < PyList_GET_SIZE(parked); i++) {
                    PyObject *ln = PyList_GET_ITEM(parked, i);
                    Py_INCREF(ln);
                    PyObject *r = PyObject_CallMethodObjArgs(
                        ln, K.str_materialize, wobj, NULL);
                    Py_DECREF(ln);
                    if (r == NULL) {
                        Py_DECREF(parked);
                        goto error;
                    }
                    Py_DECREF(r);
                }
                Py_DECREF(parked);
            }
            else {
                PyObject *it = PyObject_GetIter(parked);
                if (it == NULL) {
                    Py_DECREF(parked);
                    goto error;
                }
                PyObject *ln;
                while ((ln = PyIter_Next(it)) != NULL) {
                    PyObject *r = PyObject_CallMethodObjArgs(
                        ln, K.str_materialize, wobj, NULL);
                    Py_DECREF(ln);
                    if (r == NULL)
                        break;
                    Py_DECREF(r);
                }
                Py_DECREF(it);
                Py_DECREF(parked);
                if (PyErr_Occurred())
                    goto error;
            }
        }
    }

    /* high-water-mark guard: a fresh maximum cannot collide */
    {
        PyObject *hw = SLOT(sim, K.sim_hwm);
        double hwm = PyFloat_AsDouble(hw ? hw : Py_None);
        if (hwm == -1.0 && PyErr_Occurred())
            goto error;
        if (when > hwm) {
            PyObject *nv = PyFloat_FromDouble(when);
            if (nv == NULL)
                goto error;
            slot_setref(sim, K.sim_hwm, nv);
            if (queue_push(queue, when, wobj, ev, val) < 0)
                goto error;
            if (wobj_owned)
                Py_DECREF(wobj);
            return 0;
        }
    }

    if (wobj == NULL) {
        wobj = PyFloat_FromDouble(when);
        if (wobj == NULL)
            return -1;
        wobj_owned = 1;
    }
    PyObject *open_ = SLOT(sim, K.sim_open);
    PyObject *host = PyDict_SetDefault(open_, wobj, ev);  /* borrowed */
    if (host == NULL)
        goto error;
    if (host != ev) {
        int host_pending;
        if (is_event(host))
            host_pending = (ev_ok(host) == Py_None);
        else {
            PyObject *ok = PyObject_GetAttr(host, K.str_ok_attr);
            if (ok == NULL)
                goto error;
            host_pending = (ok == Py_None);
            Py_DECREF(ok);
        }
        if (host_pending) {
            PyObject *pair = PyTuple_Pack(2, ev, val);
            if (pair == NULL)
                goto error;
            if (is_event(host)) {
                PyObject *riders = SLOT(host, K.ev_riders);
                if (riders == NULL || riders == Py_None) {
                    PyObject *lst = PyList_New(1);
                    if (lst == NULL) {
                        Py_DECREF(pair);
                        goto error;
                    }
                    PyList_SET_ITEM(lst, 0, pair);  /* steals pair */
                    slot_setref(host, K.ev_riders, lst);
                }
                else {
                    int r = PyList_Append(riders, pair);
                    Py_DECREF(pair);
                    if (r < 0)
                        goto error;
                }
            }
            else {
                PyObject *riders = PyObject_GetAttr(host,
                                                    K.str_riders_attr);
                if (riders == NULL) {
                    Py_DECREF(pair);
                    goto error;
                }
                if (riders == Py_None) {
                    Py_DECREF(riders);
                    PyObject *lst = PyList_New(1);
                    if (lst == NULL) {
                        Py_DECREF(pair);
                        goto error;
                    }
                    PyList_SET_ITEM(lst, 0, pair);
                    int r = PyObject_SetAttr(host, K.str_riders_attr, lst);
                    Py_DECREF(lst);
                    if (r < 0)
                        goto error;
                }
                else {
                    int r = PyList_Append(riders, pair);
                    Py_DECREF(pair);
                    Py_DECREF(riders);
                    if (r < 0)
                        goto error;
                }
            }
            if (is_event(ev))
                slot_set(ev, K.ev_riders, K.riding_marker);
            else if (PyObject_SetAttr(ev, K.str_riders_attr,
                                      K.riding_marker) < 0)
                goto error;
            if (riders_pending_add(sim, 1) < 0)
                goto error;
            if (wobj_owned)
                Py_DECREF(wobj);
            return 0;
        }
        /* stale host: replace the slot; the new entry still queues */
        if (PyDict_SetItem(open_, wobj, ev) < 0)
            goto error;
    }
    if (queue_push(queue, when, wobj, ev, val) < 0)
        goto error;

    /* shed dead hosts once the slot table dwarfs the live queue */
    {
        Py_ssize_t osz = PyDict_GET_SIZE(open_);
        if (osz >= OPEN_SHED_MIN) {
            Py_ssize_t qlen;
            PyTypeObject *qt = Py_TYPE(queue);
            if (qt == &CHeapType)
                qlen = ((CHeap *)queue)->h.n;
            else if (qt == &CCalType)
                qlen = (Py_ssize_t)ccal_len((CCal *)queue);
            else {
                qlen = PyObject_Length(queue);
                if (qlen < 0)
                    goto error;
            }
            if (osz > (qlen << 2)) {
                PyObject *nd = PyDict_New();
                if (nd == NULL)
                    goto error;
                PyObject *k2, *v2;
                Py_ssize_t pos = 0;
                while (PyDict_Next(open_, &pos, &k2, &v2)) {
                    int live;
                    if (is_event(v2))
                        live = (ev_ok(v2) == Py_None);
                    else {
                        PyObject *ok = PyObject_GetAttr(v2, K.str_ok_attr);
                        if (ok == NULL) {
                            Py_DECREF(nd);
                            goto error;
                        }
                        live = (ok == Py_None);
                        Py_DECREF(ok);
                    }
                    if (live && PyDict_SetItem(nd, k2, v2) < 0) {
                        Py_DECREF(nd);
                        goto error;
                    }
                }
                slot_setref(sim, K.sim_open, nd);
            }
        }
    }
    if (wobj_owned)
        Py_DECREF(wobj);
    return 0;
error:
    if (wobj_owned)
        Py_DECREF(wobj);
    return -1;
}

static PyObject *
rpush_push(RPush *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "push(when, event, value)");
        return NULL;
    }
    double when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (riding_core(self->sim, when, args[0], args[1], args[2],
                    self->queue) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
rpush_init(RPush *self, PyObject *args, PyObject *kwargs)
{
    PyObject *sim, *queue;
    if (!PyArg_ParseTuple(args, "OO", &sim, &queue))
        return -1;
    Py_INCREF(sim);
    Py_XSETREF(self->sim, sim);
    Py_INCREF(queue);
    Py_XSETREF(self->queue, queue);
    return 0;
}

static int
rpush_traverse(RPush *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->queue);
    return 0;
}

static int
rpush_clear(RPush *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->queue);
    return 0;
}

static void
rpush_dealloc(RPush *self)
{
    PyObject_GC_UnTrack(self);
    rpush_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef rpush_methods[] = {
    {"push", (PyCFunction)(void (*)(void))rpush_push, METH_FASTCALL, NULL},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject RPushType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckern.RidingPush",
    .tp_basicsize = sizeof(RPush),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled Simulator._riding_push bound to (sim, queue); "
              "sim._push = RidingPush(sim, queue).push.",
    .tp_methods = rpush_methods,
    .tp_traverse = (traverseproc)rpush_traverse,
    .tp_clear = (inquiry)rpush_clear,
    .tp_dealloc = (destructor)rpush_dealloc,
    .tp_init = (initproc)rpush_init,
    .tp_new = PyType_GenericNew,
};

/* Route a push through sim._push without the call overhead when the
 * target is one of ours.  wobj may be NULL (boxed lazily). */
static int
push_via_sim(PyObject *sim, double when, PyObject *wobj,
             PyObject *ev, PyObject *val)
{
    PyObject *push = SLOT(sim, K.sim_push);
    if (push == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_push");
        return -1;
    }
    if (PyCFunction_Check(push)) {
        PyObject *s = PyCFunction_GET_SELF(push);
        if (s != NULL) {
            PyTypeObject *t = Py_TYPE(s);
            if (t == &RPushType)
                return riding_core(((RPush *)s)->sim, when, wobj, ev, val,
                                   ((RPush *)s)->queue);
            if (t == &CHeapType)
                return cheap_push_c((CHeap *)s, when, ev, val);
            if (t == &CCalType)
                return ccal_push_c((CCal *)s, when, ev,
                                   val ? val : Py_None);
        }
    }
    PyObject *w = wobj;
    if (w == NULL) {
        w = PyFloat_FromDouble(when);
        if (w == NULL)
            return -1;
    }
    else
        Py_INCREF(w);
    PyObject *r = PyObject_CallFunctionObjArgs(
        push, w, ev, val ? val : Py_None, NULL);
    Py_DECREF(w);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* ------------------------------------------------------------------ */
/* patched methods                                                     */
/*                                                                     */
/* Each function below replaces one pure-Python method: it is exposed  */
/* through PyInstanceMethod_New, so the receiving instance arrives as  */
/* the first positional argument.                                      */
/* ------------------------------------------------------------------ */

/* Event.succeed core minus the return value.  Mirrors the Python
 * method: re-trigger raises SimulationError with the same message. */
static int
succeed_core(PyObject *ev, PyObject *value)
{
    if (ev_ok(ev) != Py_None) {
        PyObject *msg = PyUnicode_FromFormat(
            "event %R already triggered", SLOT(ev, K.ev_name));
        if (msg != NULL) {
            PyErr_SetObject(K.SimError, msg);
            Py_DECREF(msg);
        }
        return -1;
    }
    slot_set(ev, K.ev_ok, Py_True);
    slot_set(ev, K.ev_value, value);
    return dispatch_slots(ev);
}

static int
fail_core(PyObject *ev, PyObject *exc)
{
    slot_set(ev, K.ev_ok, Py_False);
    slot_set(ev, K.ev_value, exc);
    return dispatch_slots(ev);
}

/* Event.succeed(self, value=None) -> self */
static PyObject *
c_event_succeed(PyObject *mod, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "succeed() takes at most one argument");
        return NULL;
    }
    PyObject *self = args[0];
    PyObject *value = (nargs == 2) ? args[1] : Py_None;
    if (kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0) {
        if (PyTuple_GET_SIZE(kwnames) > 1 || nargs == 2) {
            PyErr_SetString(PyExc_TypeError,
                            "succeed() got unexpected keyword arguments");
            return NULL;
        }
        PyObject *name = PyTuple_GET_ITEM(kwnames, 0);
        if (PyUnicode_CompareWithASCIIString(name, "value") != 0) {
            PyErr_Format(PyExc_TypeError,
                         "succeed() got an unexpected keyword argument %R",
                         name);
            return NULL;
        }
        value = args[1];
    }
    if (succeed_core(self, value) < 0)
        return NULL;
    Py_INCREF(self);
    return self;
}

/* Event.add_callback(self, fn) */
static PyObject *
c_event_add_callback(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "add_callback(fn)");
        return NULL;
    }
    PyObject *self = args[0], *fn = args[1];
    if (ev_ok(self) == Py_None) {
        PyObject *cb0 = SLOT(self, K.ev_cb0);
        if (cb0 == NULL || cb0 == Py_None)
            slot_set(self, K.ev_cb0, fn);
        else {
            PyObject *cbs = SLOT(self, K.ev_cbs);
            if (cbs == NULL || cbs == Py_None) {
                PyObject *lst = PyList_New(1);
                if (lst == NULL)
                    return NULL;
                Py_INCREF(fn);
                PyList_SET_ITEM(lst, 0, fn);
                slot_setref(self, K.ev_cbs, lst);
            }
            else if (PyList_Append(cbs, fn) < 0)
                return NULL;
        }
        Py_RETURN_NONE;
    }
    PyObject *r = PyObject_CallOneArg(fn, self);
    if (r == NULL)
        return NULL;
    Py_DECREF(r);
    Py_RETURN_NONE;
}

/* Event._dispatch(self) */
static PyObject *
c_event_dispatch(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 1) {
        PyErr_SetString(PyExc_TypeError, "_dispatch()");
        return NULL;
    }
    if (dispatch_slots(args[0]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Process._resume(self, ev).  The Python method tail-recurses into
 * itself when the yielded target has already triggered; here that is
 * the `continue` of the loop. */
static PyObject *
c_process_resume(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "_resume(event)");
        return NULL;
    }
    PyObject *self = args[0];
    PyObject *ev = args[1];
    Py_INCREF(ev);
    for (;;) {
        /* stale-wakeup guard */
        if (SLOT(self, K.pr_waiting) != ev || ev_ok(self) != Py_None) {
            Py_DECREF(ev);
            Py_RETURN_NONE;
        }
        slot_set(self, K.pr_waiting, Py_None);

        /* ev._ok truthiness / ev._value: slot path for Events, generic
         * getattr for _StartNow (class attributes) */
        int okflag;
        PyObject *val;
        if (is_event(ev)) {
            okflag = (ev_ok(ev) == Py_True);
            val = SLOT(ev, K.ev_value);
            val = val ? val : Py_None;
            Py_INCREF(val);
        }
        else {
            PyObject *ok = PyObject_GetAttr(ev, K.str_ok_attr);
            if (ok == NULL) {
                Py_DECREF(ev);
                return NULL;
            }
            okflag = PyObject_IsTrue(ok);
            Py_DECREF(ok);
            if (okflag < 0) {
                Py_DECREF(ev);
                return NULL;
            }
            val = PyObject_GetAttr(ev, K.str_value_attr);
            if (val == NULL) {
                Py_DECREF(ev);
                return NULL;
            }
        }
        PyObject *step_fn = SLOT(self, okflag ? K.pr_send : K.pr_throw);
        if (step_fn == NULL) {
            Py_DECREF(val);
            Py_DECREF(ev);
            PyErr_SetString(PyExc_AttributeError, "_send");
            return NULL;
        }
        Py_INCREF(step_fn);
        PyObject *target = PyObject_CallOneArg(step_fn, val);
        Py_DECREF(step_fn);
        Py_DECREF(val);
        Py_DECREF(ev);
        ev = NULL;
        if (target == NULL) {
            if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                /* generator returned: succeed with StopIteration.value */
                PyObject *etype, *evalue, *etb;
                PyErr_Fetch(&etype, &evalue, &etb);
                PyErr_NormalizeException(&etype, &evalue, &etb);
                PyObject *retval = evalue
                    ? PyObject_GetAttr(evalue, K.str_stopvalue) : NULL;
                Py_XDECREF(etype);
                Py_XDECREF(evalue);
                Py_XDECREF(etb);
                if (retval == NULL) {
                    if (evalue == NULL) {
                        retval = Py_None;
                        Py_INCREF(retval);
                        PyErr_Clear();
                    }
                    else
                        return NULL;
                }
                int r = succeed_core(self, retval);
                Py_DECREF(retval);
                if (r < 0)
                    return NULL;
                Py_RETURN_NONE;
            }
            /* uncaught exception: the process fails with it */
            PyObject *etype, *evalue, *etb;
            PyErr_Fetch(&etype, &evalue, &etb);
            PyErr_NormalizeException(&etype, &evalue, &etb);
            if (etb != NULL)
                PyException_SetTraceback(evalue, etb);
            Py_XDECREF(etype);
            Py_XDECREF(etb);
            if (evalue == NULL)
                return NULL;
            int r = fail_core(self, evalue);
            Py_DECREF(evalue);
            if (r < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        if (is_event(target)) {
            slot_set(self, K.pr_waiting, target);
            if (ev_ok(target) == Py_None) {
                PyObject *cb = SLOT(self, K.pr_waitcb);
                if (cb == NULL) {
                    Py_DECREF(target);
                    PyErr_SetString(PyExc_AttributeError, "_wait_cb");
                    return NULL;
                }
                PyObject *cb0 = SLOT(target, K.ev_cb0);
                if (cb0 == NULL || cb0 == Py_None)
                    slot_set(target, K.ev_cb0, cb);
                else {
                    PyObject *cbs = SLOT(target, K.ev_cbs);
                    if (cbs == NULL || cbs == Py_None) {
                        PyObject *lst = PyList_New(1);
                        if (lst == NULL) {
                            Py_DECREF(target);
                            return NULL;
                        }
                        Py_INCREF(cb);
                        PyList_SET_ITEM(lst, 0, cb);
                        slot_setref(target, K.ev_cbs, lst);
                    }
                    else if (PyList_Append(cbs, cb) < 0) {
                        Py_DECREF(target);
                        return NULL;
                    }
                }
                Py_DECREF(target);
                Py_RETURN_NONE;
            }
            /* already triggered: continue in place (Python recursion) */
            ev = target;
            continue;
        }
        /* yielded a non-event */
        {
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded a non-event: %R",
                SLOT(self, K.ev_name), target);
            Py_DECREF(target);
            if (msg == NULL)
                return NULL;
            PyObject *exc = PyObject_CallOneArg(K.SimError, msg);
            Py_DECREF(msg);
            if (exc == NULL)
                return NULL;
            int r = fail_core(self, exc);
            Py_DECREF(exc);
            if (r < 0)
                return NULL;
            Py_RETURN_NONE;
        }
    }
}

/* Timeout.__init__ core: fill the Event slots, record delay, push. */
static int
timeout_init_core(PyObject *self, PyObject *sim, PyObject *delay,
                  PyObject *value)
{
    double d = PyFloat_AsDouble(delay);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    if (d < 0.0) {
        PyObject *msg = PyUnicode_FromFormat(
            "negative timeout delay: %R", delay);
        if (msg != NULL) {
            PyErr_SetObject(PyExc_ValueError, msg);
            Py_DECREF(msg);
        }
        return -1;
    }
    slot_set(self, K.ev_sim, sim);
    slot_set(self, K.ev_cb0, Py_None);
    slot_set(self, K.ev_cbs, Py_None);
    slot_set(self, K.ev_ok, Py_None);
    slot_set(self, K.ev_value, Py_None);
    slot_set(self, K.ev_name, K.str_timeout);
    slot_set(self, K.ev_riders, Py_None);
    slot_set(self, K.to_delay, delay);
    if (is_sim(sim)) {
        PyObject *nowo = SLOT(sim, K.sim_now);
        double now = PyFloat_AsDouble(nowo ? nowo : Py_None);
        if (now == -1.0 && PyErr_Occurred())
            return -1;
        return push_via_sim(sim, now + d, NULL, self, value);
    }
    /* foreign simulator stand-in (tests): generic attribute path */
    PyObject *nowo = PyObject_GetAttrString(sim, "_now");
    if (nowo == NULL)
        return -1;
    double now = PyFloat_AsDouble(nowo);
    Py_DECREF(nowo);
    if (now == -1.0 && PyErr_Occurred())
        return -1;
    PyObject *push = PyObject_GetAttrString(sim, "_push");
    if (push == NULL)
        return -1;
    PyObject *w = PyFloat_FromDouble(now + d);
    if (w == NULL) {
        Py_DECREF(push);
        return -1;
    }
    PyObject *r = PyObject_CallFunctionObjArgs(push, w, self,
                                               value ? value : Py_None,
                                               NULL);
    Py_DECREF(w);
    Py_DECREF(push);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Fill out[0..nfields) from positional args[1..nargs) plus kwnames
 * (keyword values sit at args[nargs + j]); the first nrequired fields
 * must be present. */
static int
parse_after_self(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                 const char *const *names, int nfields, int nrequired,
                 PyObject **out)
{
    Py_ssize_t np = nargs - 1;
    if (np > nfields) {
        PyErr_SetString(PyExc_TypeError, "too many arguments");
        return -1;
    }
    for (int i = 0; i < nfields; i++)
        out[i] = NULL;
    for (Py_ssize_t i = 0; i < np; i++)
        out[i] = args[1 + i];
    if (kwnames != NULL) {
        for (Py_ssize_t j = 0; j < PyTuple_GET_SIZE(kwnames); j++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, j);
            int hit = -1;
            for (int i = 0; i < nfields; i++) {
                if (PyUnicode_CompareWithASCIIString(name, names[i]) == 0) {
                    hit = i;
                    break;
                }
            }
            if (hit < 0) {
                PyErr_Format(PyExc_TypeError,
                             "unexpected keyword argument %R", name);
                return -1;
            }
            if (out[hit] != NULL) {
                PyErr_Format(PyExc_TypeError,
                             "got multiple values for argument %R", name);
                return -1;
            }
            out[hit] = args[nargs + j];
        }
    }
    for (int i = 0; i < nrequired; i++) {
        if (out[i] == NULL) {
            PyErr_Format(PyExc_TypeError,
                         "missing required argument: '%s'", names[i]);
            return -1;
        }
    }
    return 0;
}

/* Timeout.__init__(self, sim, delay, value=None) */
static PyObject *
c_timeout_init(PyObject *mod, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    static const char *names[3] = {"sim", "delay", "value"};
    PyObject *f[3];
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError, "__init__ needs self");
        return NULL;
    }
    if (parse_after_self(args, nargs, kwnames, names, 3, 2, f) < 0)
        return NULL;
    if (timeout_init_core(args[0], f[0], f[1],
                          f[2] ? f[2] : Py_None) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Simulator.timeout(self, delay, value=None) -> Timeout */
static PyObject *
c_sim_timeout(PyObject *mod, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    static const char *names[2] = {"delay", "value"};
    PyObject *f[2];
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError, "timeout() needs self");
        return NULL;
    }
    if (parse_after_self(args, nargs, kwnames, names, 2, 1, f) < 0)
        return NULL;
    PyTypeObject *tt = (PyTypeObject *)K.TimeoutType;
    PyObject *self = tt->tp_alloc(tt, 0);
    if (self == NULL)
        return NULL;
    if (timeout_init_core(self, args[0], f[0],
                          f[1] ? f[1] : Py_None) < 0) {
        Py_DECREF(self);
        return NULL;
    }
    return self;
}

/* Simulator.call_at(self, when, fn=None) -> Event */
static PyObject *
c_call_at(PyObject *mod, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames)
{
    static const char *names[2] = {"when", "fn"};
    PyObject *f[2];
    if (nargs < 1) {
        PyErr_SetString(PyExc_TypeError, "call_at() needs self");
        return NULL;
    }
    if (parse_after_self(args, nargs, kwnames, names, 2, 1, f) < 0)
        return NULL;
    PyObject *sim = args[0];
    PyObject *wheno = f[0];
    PyObject *fn = f[1] ? f[1] : Py_None;
    double when = PyFloat_AsDouble(wheno);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    PyTypeObject *et = (PyTypeObject *)K.EventType;
    PyObject *ev = et->tp_alloc(et, 0);
    if (ev == NULL)
        return NULL;
    slot_set(ev, K.ev_sim, sim);
    slot_set(ev, K.ev_cb0, fn);
    slot_set(ev, K.ev_cbs, Py_None);
    slot_set(ev, K.ev_ok, Py_None);
    slot_set(ev, K.ev_value, Py_None);
    slot_set(ev, K.ev_name, K.str_fused);
    slot_set(ev, K.ev_riders, Py_None);
    PyObject *wobj = PyFloat_CheckExact(wheno) ? wheno : NULL;
    if (push_via_sim(sim, when, wobj, ev, NULL) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return ev;
}

/* Request.__init__ / Response.__init__: positional+keyword field fill
 * with the shared empty-collection singletons for None defaults. */
static PyObject *
msg_init_common(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                const Py_ssize_t *offs, PyObject *const *names,
                const char *const *cnames, const char *defaults,
                int nfields, const char *fname)
{
    if (nargs < 1) {
        PyErr_Format(PyExc_TypeError, "%s.__init__ needs self", fname);
        return NULL;
    }
    PyObject *self = args[0];
    Py_ssize_t np = nargs - 1;
    if (np > nfields) {
        PyErr_Format(PyExc_TypeError,
                     "%s() takes at most %d arguments (%zd given)",
                     fname, nfields, np);
        return NULL;
    }
    PyObject *vals[REQ_NFIELDS];
    for (int i = 0; i < nfields; i++)
        vals[i] = NULL;
    for (Py_ssize_t i = 0; i < np; i++)
        vals[i] = args[1 + i];
    if (kwnames != NULL) {
        for (Py_ssize_t j = 0; j < PyTuple_GET_SIZE(kwnames); j++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, j);
            int hit = -1;
            for (int i = 0; i < nfields; i++) {
                if (name == names[i]
                    || PyUnicode_CompareWithASCIIString(name,
                                                        cnames[i]) == 0) {
                    hit = i;
                    break;
                }
            }
            if (hit < 0) {
                PyErr_Format(PyExc_TypeError,
                             "%s() got an unexpected keyword argument %R",
                             fname, name);
                return NULL;
            }
            if (vals[hit] != NULL) {
                PyErr_Format(PyExc_TypeError,
                             "%s() got multiple values for argument %R",
                             fname, name);
                return NULL;
            }
            vals[hit] = args[nargs + j];
        }
    }
    for (int i = 0; i < nfields; i++) {
        PyObject *v = vals[i];
        if (v == NULL) {
            if (defaults[i] == 0) {
                PyErr_Format(PyExc_TypeError,
                             "%s() missing required argument: '%s'",
                             fname, cnames[i]);
                return NULL;
            }
            v = Py_None;
        }
        if (v == Py_None) {
            if (defaults[i] == 1)
                v = K.empty_list;
            else if (defaults[i] == 2)
                v = K.empty_dict;
        }
        slot_set(self, offs[i], v);
    }
    Py_RETURN_NONE;
}

static PyObject *
c_request_init(PyObject *mod, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    return msg_init_common(args, nargs, kwnames, K.req_off, K.req_names,
                           REQ_FIELDS, REQ_DEFAULT, REQ_NFIELDS, "Request");
}

static PyObject *
c_response_init(PyObject *mod, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    return msg_init_common(args, nargs, kwnames, K.resp_off, K.resp_names,
                           RESP_FIELDS, RESP_DEFAULT, RESP_NFIELDS,
                           "Response");
}

/* ------------------------------------------------------------------ */
/* bind / patches / module                                             */
/* ------------------------------------------------------------------ */

/* __slots__ member-descriptor offset of `name` on class `cls` */
static Py_ssize_t
member_offset(PyObject *cls, const char *name)
{
    PyObject *d = PyObject_GetAttrString(cls, name);
    if (d == NULL)
        return -1;
    if (!Py_IS_TYPE(d, &PyMemberDescr_Type)) {
        PyErr_Format(PyExc_RuntimeError,
                     "%s.%s is not a slot member descriptor "
                     "(layout changed?)",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(d);
        return -1;
    }
    Py_ssize_t off = ((PyMemberDescrObject *)d)->d_member->offset;
    Py_DECREF(d);
    if (off <= 0) {
        PyErr_Format(PyExc_RuntimeError, "bad slot offset for %s", name);
        return -1;
    }
    return off;
}

static int
fetch_class(PyObject *module, const char *name, PyObject **out)
{
    PyObject *cls = PyObject_GetAttrString(module, name);
    if (cls == NULL)
        return -1;
    if (!PyType_Check(cls)) {
        PyErr_Format(PyExc_RuntimeError, "%s is not a class", name);
        Py_DECREF(cls);
        return -1;
    }
    Py_XSETREF(*out, cls);
    return 0;
}

static int
intern_into(PyObject **out, const char *s)
{
    PyObject *u = PyUnicode_InternFromString(s);
    if (u == NULL)
        return -1;
    Py_XSETREF(*out, u);
    return 0;
}

/* bind(core_module, messages_module): capture classes, offsets, and
 * singletons.  Raises RuntimeError on any layout mismatch, in which
 * case the caller (repro.sim.compiled) stays on the pure-Python leg. */
static PyObject *
k_bind(PyObject *mod, PyObject *args)
{
    PyObject *core, *messages;
    if (!PyArg_ParseTuple(args, "OO", &core, &messages))
        return NULL;
    if (K.bound)
        Py_RETURN_NONE;

    if (fetch_class(core, "Event", &K.EventType) < 0
        || fetch_class(core, "Timeout", &K.TimeoutType) < 0
        || fetch_class(core, "Process", &K.ProcessType) < 0
        || fetch_class(core, "Simulator", &K.SimulatorType) < 0
        || fetch_class(core, "SimulationError", &K.SimError) < 0
        || fetch_class(messages, "Request", &K.RequestType) < 0
        || fetch_class(messages, "Response", &K.ResponseType) < 0)
        return NULL;

    PyObject *marker = PyObject_GetAttrString(core, "_RIDING");
    if (marker == NULL)
        return NULL;
    Py_XSETREF(K.riding_marker, marker);
    PyObject *el = PyObject_GetAttrString(messages, "_EMPTY_LIST");
    if (el == NULL)
        return NULL;
    Py_XSETREF(K.empty_list, el);
    PyObject *ed = PyObject_GetAttrString(messages, "_EMPTY_DICT");
    if (ed == NULL)
        return NULL;
    Py_XSETREF(K.empty_dict, ed);

    struct {
        PyObject *cls;
        const char *name;
        Py_ssize_t *out;
    } offs[] = {
        {K.EventType, "sim", &K.ev_sim},
        {K.EventType, "_cb0", &K.ev_cb0},
        {K.EventType, "_callbacks", &K.ev_cbs},
        {K.EventType, "_ok", &K.ev_ok},
        {K.EventType, "_value", &K.ev_value},
        {K.EventType, "_name", &K.ev_name},
        {K.EventType, "_riders", &K.ev_riders},
        {K.TimeoutType, "delay", &K.to_delay},
        {K.ProcessType, "_waiting_on", &K.pr_waiting},
        {K.ProcessType, "_send", &K.pr_send},
        {K.ProcessType, "_gthrow", &K.pr_throw},
        {K.ProcessType, "_wait_cb", &K.pr_waitcb},
        {K.SimulatorType, "_now", &K.sim_now},
        {K.SimulatorType, "_riders_pending", &K.sim_riders_pending},
        {K.SimulatorType, "_open", &K.sim_open},
        {K.SimulatorType, "_floors", &K.sim_floors},
        {K.SimulatorType, "_hwm", &K.sim_hwm},
        {K.SimulatorType, "_push", &K.sim_push},
        {NULL, NULL, NULL},
    };
    for (int i = 0; offs[i].name != NULL; i++) {
        Py_ssize_t off = member_offset(offs[i].cls, offs[i].name);
        if (off < 0)
            return NULL;
        *offs[i].out = off;
    }
    for (int i = 0; i < REQ_NFIELDS; i++) {
        Py_ssize_t off = member_offset(K.RequestType, REQ_FIELDS[i]);
        if (off < 0)
            return NULL;
        K.req_off[i] = off;
        if (intern_into(&K.req_names[i], REQ_FIELDS[i]) < 0)
            return NULL;
    }
    for (int i = 0; i < RESP_NFIELDS; i++) {
        Py_ssize_t off = member_offset(K.ResponseType, RESP_FIELDS[i]);
        if (off < 0)
            return NULL;
        K.resp_off[i] = off;
        if (intern_into(&K.resp_names[i], RESP_FIELDS[i]) < 0)
            return NULL;
    }
    if (intern_into(&K.str_timeout, "timeout") < 0
        || intern_into(&K.str_fused, "fused") < 0
        || intern_into(&K.str_stopvalue, "value") < 0
        || intern_into(&K.str_push, "push") < 0
        || intern_into(&K.str_materialize, "_materialize") < 0
        || intern_into(&K.str_ok_attr, "_ok") < 0
        || intern_into(&K.str_value_attr, "_value") < 0
        || intern_into(&K.str_riders_attr, "_riders") < 0
        || intern_into(&K.str_dispatch, "_dispatch") < 0)
        return NULL;
    K.bound = 1;
    Py_RETURN_NONE;
}

/* the patchable method set, by "Class.method" key */
static PyMethodDef patch_defs[] = {
    {"Event.succeed", (PyCFunction)(void (*)(void))c_event_succeed,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"Event.add_callback", (PyCFunction)(void (*)(void))c_event_add_callback,
     METH_FASTCALL, NULL},
    {"Event._dispatch", (PyCFunction)(void (*)(void))c_event_dispatch,
     METH_FASTCALL, NULL},
    {"Process._resume", (PyCFunction)(void (*)(void))c_process_resume,
     METH_FASTCALL, NULL},
    {"Timeout.__init__", (PyCFunction)(void (*)(void))c_timeout_init,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"Simulator.timeout", (PyCFunction)(void (*)(void))c_sim_timeout,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"Simulator.call_at", (PyCFunction)(void (*)(void))c_call_at,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"Request.__init__", (PyCFunction)(void (*)(void))c_request_init,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"Response.__init__", (PyCFunction)(void (*)(void))c_response_init,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {NULL, NULL, 0, NULL},
};

/* patches() -> {"Class.method": instancemethod-wrapped C function} */
static PyObject *
k_patches(PyObject *mod, PyObject *Py_UNUSED(ignored))
{
    if (!K.bound) {
        PyErr_SetString(PyExc_RuntimeError, "patches() before bind()");
        return NULL;
    }
    PyObject *d = PyDict_New();
    if (d == NULL)
        return NULL;
    for (int i = 0; patch_defs[i].ml_name != NULL; i++) {
        PyObject *fn = PyCFunction_NewEx(&patch_defs[i], mod, NULL);
        if (fn == NULL) {
            Py_DECREF(d);
            return NULL;
        }
        PyObject *im = PyInstanceMethod_New(fn);
        Py_DECREF(fn);
        if (im == NULL) {
            Py_DECREF(d);
            return NULL;
        }
        int r = PyDict_SetItemString(d, patch_defs[i].ml_name, im);
        Py_DECREF(im);
        if (r < 0) {
            Py_DECREF(d);
            return NULL;
        }
    }
    return d;
}

static PyMethodDef module_methods[] = {
    {"bind", (PyCFunction)k_bind, METH_VARARGS,
     "bind(core_module, messages_module): capture classes and slot "
     "offsets; must be called before patches() or RidingPush use."},
    {"patches", (PyCFunction)k_patches, METH_NOARGS,
     "patches() -> dict of 'Class.method' -> compiled replacement."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckern_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckern",
    .m_doc = "Compiled simulator kernel (hand-written CPython C API); "
             "see repro.sim.compiled for selection and activation.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ckern(void)
{
    if (PyType_Ready(&CHeapType) < 0
        || PyType_Ready(&CCalType) < 0
        || PyType_Ready(&RPushType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ckern_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&CHeapType);
    if (PyModule_AddObject(m, "CHeapQueue", (PyObject *)&CHeapType) < 0) {
        Py_DECREF(&CHeapType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&CCalType);
    if (PyModule_AddObject(m, "CCalendarQueue",
                           (PyObject *)&CCalType) < 0) {
        Py_DECREF(&CCalType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&RPushType);
    if (PyModule_AddObject(m, "RidingPush", (PyObject *)&RPushType) < 0) {
        Py_DECREF(&RPushType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
