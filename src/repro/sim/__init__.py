"""Discrete-event simulation substrate (clock, processes, resources, RNG)."""

from .core import AllOf, AnyOf, Event, Interrupt, Process, SimulationError, Simulator, Timeout
from .equeue import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    make_queue,
    selected_queue_kind,
)
from .faults import CrashEvent, FaultEvent, FaultPlan, FaultSpec, FaultTrace
from .link import BatchingLink, SerialLink
from .resources import Resource, Semaphore, Store
from .rng import HotspotGenerator, RngStream, ZipfGenerator
from .stats import Counter, LatencyRecorder, LogHistogram, OnlineStats, ThroughputMeter

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "make_queue",
    "selected_queue_kind",
    "Resource",
    "Semaphore",
    "Store",
    "SerialLink",
    "BatchingLink",
    "RngStream",
    "ZipfGenerator",
    "HotspotGenerator",
    "OnlineStats",
    "LogHistogram",
    "LatencyRecorder",
    "ThroughputMeter",
    "Counter",
    "FaultSpec",
    "FaultPlan",
    "FaultTrace",
    "FaultEvent",
    "CrashEvent",
]
