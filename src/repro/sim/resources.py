"""Shared-resource primitives for the simulation engine.

These mirror the SimPy resource set but with an explicit request/release
API that fits generator-based processes:

* :class:`Resource` — ``capacity`` interchangeable slots, FIFO granting.
* :class:`Semaphore` — counting semaphore (non-slot-tracking Resource).
* :class:`Store` — a FIFO queue of items with blocking ``get``/``put``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Semaphore", "Store"]


class Resource:
    """A pool of ``capacity`` identical slots granted in FIFO order.

    Usage from a process::

        yield res.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            res.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._acquire_name = "%s.acquire" % name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Time-weighted busy accounting for utilization reports.
        self._busy_area = 0.0
        self._last_change = 0.0
        # Pending busy-area split points (heap).  A fused delay chain
        # (repro.sim.fusion) merges back-to-back charges into one event;
        # registering the stepwise chain's intermediate release/re-acquire
        # timestamps here keeps the _busy_area float summation split at
        # exactly the same points, so utilization stays byte-identical
        # between the fused and stepwise legs.
        self._splits: list = []
        # Virtual occupancies (heap of expiry times).  A fused
        # fire-and-forget charge (CoreGroup.charge_wall) holds its slot
        # until a known future instant without scheduling a release event:
        # every pool query first expires lazy charges whose time has come,
        # replaying the stepwise release's float accounting at the exact
        # expiry instant.  Only when a waiter actually queues is a real
        # wake materialized (at the earliest expiry), so the uncontended
        # case — the overwhelming majority — costs zero events.
        self._lazy: list = []
        self._lazy_armed = False

    @property
    def in_use(self) -> int:
        if self._lazy:
            self._expire(self.sim._now)
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def note_split(self, when: float) -> None:
        """Record a future busy-area summation point (see ``_splits``)."""
        heappush(self._splits, when)

    def charge_until(self, when: float) -> None:
        """Convert a slot the caller just acquired into a virtual
        occupancy expiring at ``when`` (see ``_lazy``).  The caller must
        have obtained the slot via :meth:`try_acquire` (so no waiters
        exist) and must not call :meth:`release` for it."""
        heappush(self._lazy, when)

    def _expire(self, now: float) -> None:
        """Retire lazy charges due by ``now``, replaying the stepwise
        release bookkeeping at each expiry instant in time order."""
        lazy = self._lazy
        while lazy and lazy[0] <= now:
            t = heappop(lazy)
            if self._waiters:
                # A release with waiters hands the slot over directly;
                # occupancy (and the busy-area sum) is unchanged.
                self._waiters.popleft().succeed()
            else:
                if self._splits:
                    self._consume_splits(t)
                self._busy_area += self._in_use * (t - self._last_change)
                self._last_change = t
                self._in_use -= 1

    def _lazy_wake(self, _ev=None) -> None:
        """Materialized wake at the earliest lazy expiry: retire due
        charges (granting queued waiters) and re-arm if more remain."""
        self._lazy_armed = False
        self._expire(self.sim._now)
        if self._waiters and self._lazy and not self._lazy_armed:
            self._lazy_armed = True
            self.sim.call_at(self._lazy[0], self._lazy_wake)

    def _consume_splits(self, now: float) -> None:
        splits = self._splits
        while splits and splits[0] <= now:
            t = heappop(splits)
            if t > self._last_change:
                self._busy_area += self._in_use * (t - self._last_change)
                self._last_change = t

    def _account(self) -> None:
        now = self.sim.now
        if self._lazy:
            self._expire(now)
        if self._splits:
            self._consume_splits(now)
        self._busy_area += self._in_use * (now - self._last_change)
        self._last_change = now

    def try_acquire(self) -> bool:
        """Grab a free slot without allocating an event; returns False if
        the caller must fall back to :meth:`acquire` and wait.  This is the
        hot-path front door: ``if not r.try_acquire(): yield r.acquire()``.
        """
        now = self.sim._now
        if self._lazy:
            self._expire(now)
        if self._in_use < self.capacity and not self._waiters:
            if self._splits:
                self._consume_splits(now)
            self._busy_area += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use += 1
            return True
        return False

    def acquire(self) -> Event:
        """Returns an event that fires when a slot is granted."""
        if self._lazy:
            self._expire(self.sim._now)
        ev = Event(self.sim, self._acquire_name)
        if self._in_use < self.capacity and not self._waiters:
            self._account()
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
            if self._lazy and not self._lazy_armed:
                self._lazy_armed = True
                self.sim.call_at(self._lazy[0], self._lazy_wake)
        return ev

    def release(self) -> None:
        if self._lazy:
            self._expire(self.sim._now)
        if self._in_use <= 0:
            raise SimulationError("release of idle resource %r" % self.name)
        if self._waiters:
            # Hand the slot directly to the next waiter; occupancy unchanged.
            self._waiters.popleft().succeed()
        else:
            self._account()
            self._in_use -= 1

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity busy over [since, now]."""
        self._account()
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return self._busy_area / (span * self.capacity)

    def reset_utilization(self) -> None:
        self._account()
        self._busy_area = 0.0
        self._last_change = self.sim.now


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, initial: int = 0, name: str = ""):
        if initial < 0:
            raise ValueError("initial count must be >= 0")
        self.sim = sim
        self.name = name
        self._down_name = "%s.down" % name
        self._count = initial
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        return self._count

    def down(self) -> Event:
        ev = Event(self.sim, self._down_name)
        if self._count > 0 and not self._waiters:
            self._count -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def up(self, n: int = 1) -> None:
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed()
            else:
                self._count += 1


class Store:
    """FIFO item queue with blocking get and optionally bounded put."""

    def __init__(
        self, sim: Simulator, capacity: Optional[int] = None, name: str = ""
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = "%s.put" % name
        self._get_name = "%s.get" % name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item) pairs

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Returns an event that fires when the item has been enqueued."""
        ev = Event(self.sim, self._put_name)
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Returns an event whose value is the dequeued item."""
        ev = Event(self.sim, self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self):
        """Non-blocking get; returns (True, item) or (False, None)."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def drain(self) -> list:
        """Remove and return all currently queued items (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            self._admit_putter()
        return items

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()
