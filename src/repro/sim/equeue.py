"""Pluggable event-queue implementations for the simulation engine.

The scheduler data structure is the engine-side bottleneck once dispatch
is inlined (see ``docs/PERFORMANCE.md``): every scheduled event pays one
push and one pop, so at millions of events per run the queue's per-op
constant — and its behaviour under large standing populations of far
timers — dominates engine wall time.

Two implementations share one small protocol (:class:`EventQueue`):

* :class:`HeapEventQueue` — the classic binary heap (``heapq``).
  O(log n) push/pop with C-implemented sift loops.  Robust under any
  timestamp distribution; this is the fallback for adversarial horizons
  and the A/B reference.

* :class:`CalendarEventQueue` — a calendar/bucket queue tuned for the
  clustered event horizons this simulator actually produces (NIC core
  ticks, link serialization, DMA completions all land within narrow
  bands of ``now``).  Push is O(1): drop the entry into the bucket for
  its time band.  Pop sorts one bucket at activation (C timsort over a
  small list) and then pops in O(1).  Bucket widths are powers of two —
  multiplying a non-negative float by a power of two only shifts the
  exponent, so ``int(when * inv_width)`` is exact and monotone in
  ``when`` and bucket order can never disagree with timestamp order —
  and the width is re-derived from the live event distribution when
  load-factor triggers fire (buckets too dense, or activations running
  dry).

Determinism contract (both implementations, pinned by
``tests/test_golden_digest.py`` and ``tests/test_event_queue.py``):

* pop order is strict ``(when, seq)`` order — equal-timestamp events
  fire in FIFO scheduling order, including across bucket boundaries;
* abandoned (cancelled) entries are deleted *lazily*: they stay queued,
  are skipped when popped, and are bulk-compacted under exactly the same
  trigger (``_COMPACT_MIN_CANCELLED`` cancelled entries that make up at
  least half the queue) so both queues discard the same entries at the
  same logical instants and the simulated clock — which stale pops
  advance — stays byte-identical per seed.

Selection: ``Simulator(queue="heap"|"calendar")``, or process-wide via
the ``REPRO_QUEUE`` environment variable (read at Simulator
construction; the default is ``calendar``).
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, List, Optional, Tuple

__all__ = [
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "make_queue",
    "selected_queue_kind",
    "QUEUE_KINDS",
    "DEFAULT_QUEUE",
    "_COMPACT_MIN_CANCELLED",
]

# Entry tuples are (when, seq, event, value) for the heap and
# (-when, -seq, event, value) for calendar buckets (negated keys make an
# ascending-sorted list pop its *minimum* timestamp from the tail in
# O(1)).  ``seq`` is unique, so comparisons never reach the event.
Entry = Tuple[float, int, Any, Any]

# Lazy-deletion compaction trigger, shared by both implementations: once
# at least this many cancelled entries sit in the queue AND they make up
# at least half of it, the structure is filtered in place.  High enough
# that small simulations never compact (preserving their exact
# final-clock behavior), low enough that AnyOf-heavy workloads stay
# O(live events).  Changing this changes which stale entries survive to
# advance the clock when popped — i.e. it is digest-visible.
_COMPACT_MIN_CANCELLED = 64

DEFAULT_QUEUE = "calendar"
QUEUE_KINDS = ("heap", "calendar")


def selected_queue_kind() -> str:
    """The implementation a ``Simulator()`` built right now would use."""
    kind = os.environ.get("REPRO_QUEUE", DEFAULT_QUEUE)
    return kind if kind in QUEUE_KINDS else DEFAULT_QUEUE


def make_queue(kind: Optional[str] = None) -> "EventQueue":
    """Build an event queue by name (``heap`` / ``calendar``); ``None``
    resolves through ``REPRO_QUEUE`` with the calendar default.

    When the compiled leg is active (``REPRO_COMPILED``, see
    :mod:`repro.sim.compiled`) the extension's queue twins are returned
    instead — same ``kind`` names, same pop order, same digest."""
    if kind is None:
        kind = selected_queue_kind()
    from .compiled import active_kernel  # lazy: avoids an import cycle
    kern = active_kernel()
    if kind == "heap":
        return kern.CHeapQueue() if kern is not None else HeapEventQueue()
    if kind == "calendar":
        return (kern.CCalendarQueue() if kern is not None
                else CalendarEventQueue())
    raise ValueError("unknown event queue %r (have: %s)"
                     % (kind, ", ".join(QUEUE_KINDS)))


class EventQueue:
    """Protocol + generic drain loops for scheduler implementations.

    Subclasses must implement ``push``, ``pop_min``, ``peek_time``,
    ``abandon`` and ``__len__``; the built-in implementations also
    override :meth:`drain_all` / :meth:`drain_until` with inlined loops
    (the generic versions here go through ``pop_min`` per event and are
    correct for any conforming implementation).

    The queue owns the scheduling sequence number: ``push(when, event,
    value)`` assigns the next ``seq`` internally, so every scheduling
    path in the engine funnels through this one entry point.
    """

    kind = "abstract"

    seq = 0  # total entries ever pushed (the events/second numerator)

    def push(self, when: float, event: Any, value: Any) -> None:
        raise NotImplementedError

    def pop_min(self) -> Optional[Entry]:
        """Remove and return the least ``(when, seq)`` entry (stale or
        live), or ``None`` when empty."""
        raise NotImplementedError

    def peek_time(self) -> Optional[float]:
        """Timestamp of the least entry (stale entries included), or
        ``None`` when empty.  May reorganize internal structure but must
        not change the pop sequence."""
        raise NotImplementedError

    def abandon(self) -> None:
        """Note that one queued entry was cancelled; may trigger in-place
        compaction of stale entries."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- drain loops (generic; both built-ins override with inlined ones) --

    def drain_all(self, sim) -> None:
        """Pop and fire every entry; stale entries advance the clock and
        are skipped, exactly like :meth:`Simulator.step`.  Same-deadline
        riders (``Simulator._riding_push``) fire right after their host
        entry, in attach order — stale hosts included, since a rider is
        a live event in its own right."""
        pop = self.pop_min
        while True:
            entry = pop()
            if entry is None:
                return
            sim._now = entry[0]
            event = entry[2]
            if event._ok is None:
                event._ok = True
                event._value = entry[3]
                event._dispatch()
            riders = event._riders
            if riders is not None:
                event._riders = None
                for rev, rval in riders:
                    if rev._ok is None:
                        sim._riders_pending -= 1
                        rev._ok = True
                        rev._value = rval
                        rev._dispatch()

    def drain_until(self, sim, until: float) -> None:
        """Like :meth:`drain_all` but leave any entry past ``until``
        queued; the clock never overruns ``until``."""
        while True:
            t = self.peek_time()
            if t is None or t > until:
                return
            entry = self.pop_min()
            sim._now = entry[0]
            event = entry[2]
            if event._ok is None:
                event._ok = True
                event._value = entry[3]
                event._dispatch()
            riders = event._riders
            if riders is not None:
                event._riders = None
                for rev, rval in riders:
                    if rev._ok is None:
                        sim._riders_pending -= 1
                        rev._ok = True
                        rev._value = rval
                        rev._dispatch()


class HeapEventQueue(EventQueue):
    """Binary-heap scheduler (``heapq``), with lazy deletion + in-place
    compaction.  O(log n) push/pop; the safe choice for adversarial
    timestamp distributions and the reference side of the A/B bench."""

    kind = "heap"

    __slots__ = ("seq", "_heap", "_cancelled")

    def __init__(self):
        self.seq = 0
        self._heap: List[Entry] = []
        self._cancelled = 0  # cancelled entries still sitting in the heap

    def push(self, when: float, event: Any, value: Any) -> None:
        self.seq = seq = self.seq + 1
        heappush(self._heap, (when, seq, event, value))

    def pop_min(self) -> Optional[Entry]:
        if self._heap:
            return heappop(self._heap)
        return None

    def peek_time(self) -> Optional[float]:
        if self._heap:
            return self._heap[0][0]
        return None

    def abandon(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and 2 * self._cancelled >= len(heap)):
            # Filter in place: drain loops hold a local alias to the
            # list object, so its identity must survive compaction.
            # Stale hosts still carrying riders must survive too — their
            # riders are live events that fire at the host's pop.
            heap[:] = [entry for entry in heap
                       if entry[2]._ok is None
                       or entry[2]._riders is not None]
            heapify(heap)
            self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    # -- inlined drain loops ----------------------------------------------

    def drain_all(self, sim) -> None:
        queue = self._heap
        pop = heappop
        while queue:
            when, _seq, event, value = pop(queue)
            sim._now = when
            if event._ok is None:
                event._ok = True
                event._value = value
                cb0 = event._cb0
                callbacks = event._callbacks
                if cb0 is not None:
                    event._cb0 = None
                    event._callbacks = None
                    cb0(event)
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
                elif callbacks:
                    event._callbacks = None
                    for fn in callbacks:
                        fn(event)
            riders = event._riders
            if riders is not None:
                event._riders = None
                for rev, rval in riders:
                    if rev._ok is None:
                        sim._riders_pending -= 1
                        rev._ok = True
                        rev._value = rval
                        rev._dispatch()

    def drain_until(self, sim, until: float) -> None:
        queue = self._heap
        pop = heappop
        while queue:
            when = queue[0][0]
            if when > until:
                return
            _w, _s, event, value = pop(queue)
            sim._now = when
            if event._ok is None:
                event._ok = True
                event._value = value
                cb0 = event._cb0
                callbacks = event._callbacks
                event._cb0 = None
                event._callbacks = None
                if cb0 is not None:
                    cb0(event)
                if callbacks:
                    for fn in callbacks:
                        fn(event)
            riders = event._riders
            if riders is not None:
                event._riders = None
                for rev, rval in riders:
                    if rev._ok is None:
                        sim._riders_pending -= 1
                        rev._ok = True
                        rev._value = rval
                        rev._dispatch()


# Calendar tuning knobs (see docs/PERFORMANCE.md, "Scheduler
# architecture"): a bucket that sorts denser than _DENSE_BUCKET entries
# at activation triggers a rebalance, as does a run of _SPARSE_ACTS
# activations that consumed fewer than _SPARSE_PUSHES_PER_ACT pushes
# each (the queue is paying dict/bucket overhead per event instead of
# amortizing it across a band).  Rebalance re-derives the width from the
# live span at a target load of _TARGET_LOAD entries per bucket — and
# never below double the current width when the sparse trigger fired,
# so a sequential churn with a tiny standing queue (span ~0) still
# widens exponentially until activations are rare.  Widths are always
# powers of two, so bucket ids stay exact and monotone.
_DENSE_BUCKET = 96
_SPARSE_ACTS = 32
_SPARSE_PUSHES_PER_ACT = 16
_TARGET_LOAD = 4.0
_MIN_WIDTH = 2.0 ** -20
_MAX_WIDTH = 2.0 ** 24
_REBALANCE_MIN = 128  # span-derived resize needs a real population


class CalendarEventQueue(EventQueue):
    """Calendar/bucket scheduler for clustered event horizons.

    Structure:

    * ``_buckets``: dict mapping absolute bucket id ``int(when * inv)``
      to an unsorted list of ``(-when, -seq, event, value)`` entries —
      push is append, O(1);
    * ``_bids``: a small heap of bucket ids with (possibly stale)
      buckets — one heap op per *bucket*, not per event;
    * ``_cur``: the activated bucket, sorted ascending by negated key so
      ``list.pop()`` yields the minimum ``(when, seq)`` in O(1).  Pushes
      that land at or before the activated band go through ``insort``
      (C bisect) so ordering holds even when a callback schedules into
      the band being drained.

    Width is a power of two: ``when * inv_width`` only shifts the float
    exponent, so bucket ids are exact and monotone in ``when`` — the
    global pop order is strict ``(when, seq)``, byte-identical to the
    heap's.
    """

    kind = "calendar"

    __slots__ = ("seq", "_buckets", "_bids", "_cur", "_cur_id", "_width",
                 "_inv", "_removed", "_cancelled", "_acts", "_seq_mark")

    def __init__(self, width: float = 1.0):
        self.seq = 0
        self._width = width
        self._inv = 1.0 / width
        self._buckets = {}          # bid -> unsorted [(-when,-seq,ev,val)]
        self._bids: List[int] = []  # heap of bucket ids
        self._cur: List[Entry] = []  # activated bucket, sorted, pop()=min
        self._cur_id = -1           # bids <= _cur_id route into _cur
        # Population is derived, not counted on push: len() == seq -
        # _removed, so the push fast path touches one counter, not two.
        self._removed = 0           # entries popped or compacted away
        self._cancelled = 0
        self._acts = 0              # activations since last trigger check
        self._seq_mark = 0          # seq watermark for the sparse trigger

    # -- protocol ---------------------------------------------------------

    def push(self, when: float, event: Any, value: Any) -> None:
        self.seq = seq = self.seq + 1
        bid = int(when * self._inv)
        if bid <= self._cur_id:
            insort(self._cur, (-when, -seq, event, value))
        else:
            buckets = self._buckets
            b = buckets.get(bid)
            if b is None:
                buckets[bid] = [(-when, -seq, event, value)]
                heappush(self._bids, bid)
            else:
                b.append((-when, -seq, event, value))

    def pop_min(self) -> Optional[Entry]:
        cur = self._cur
        while not cur:
            if not self._advance():
                return None
            cur = self._cur
        nw, ns, event, value = cur.pop()
        self._removed += 1
        return (-nw, -ns, event, value)

    def peek_time(self) -> Optional[float]:
        cur = self._cur
        while not cur:
            if not self._advance():
                return None
            cur = self._cur
        return -cur[-1][0]

    def abandon(self) -> None:
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and 2 * self._cancelled >= self.seq - self._removed):
            self._compact()

    def __len__(self) -> int:
        return self.seq - self._removed

    # -- introspection (docs/tests/benches) -------------------------------

    @property
    def width(self) -> float:
        """Current bucket width in simulated microseconds."""
        return self._width

    @property
    def active_buckets(self) -> int:
        return len(self._buckets) + (1 if self._cur else 0)

    # -- internals --------------------------------------------------------

    def _advance(self) -> bool:
        """Activate the next non-empty bucket into ``_cur``; returns
        False when the queue is drained.  Load-factor triggers fire here
        (and only here), so push/pop stay trigger-free."""
        buckets = self._buckets
        bids = self._bids
        # First activation after construction or a rebalance: a
        # pre-loaded population at nearly one bucket per event would pay
        # per-bucket overhead on every pop — fix the width up front.
        n = self.seq - self._removed
        if (self._cur_id == -1 and n >= _REBALANCE_MIN
                and 2 * len(buckets) >= n and self._rebalance()):
            buckets = self._buckets
            bids = self._bids
        while bids:
            bid = heappop(bids)
            b = buckets.pop(bid, None)
            if b is None:
                continue  # stale id (compaction emptied the bucket)
            self._acts += 1
            probed = False
            if self._acts >= _SPARSE_ACTS:
                # Too few pushes per activation means the queue is
                # paying bucket overhead per event: widen (at least 2x).
                pushes = self.seq - self._seq_mark
                self._acts = 0
                self._seq_mark = self.seq
                if pushes < _SPARSE_PUSHES_PER_ACT * _SPARSE_ACTS:
                    probed = True
                    if self._rebalance(b, floor=2.0 * self._width):
                        buckets = self._buckets
                        bids = self._bids
                        continue
            if (not probed and len(b) > _DENSE_BUCKET
                    and self._rebalance(b)):
                buckets = self._buckets
                bids = self._bids
                continue
            b.sort()
            self._cur = b
            self._cur_id = bid
            return True
        return False

    def _rebalance(self, extra: Optional[List[Entry]] = None,
                   floor: Optional[float] = None) -> bool:
        """Re-derive the bucket width from the live entry distribution
        (span at a target load of ``_TARGET_LOAD`` entries per bucket,
        rounded to a power of two, and at least ``floor`` when the
        sparse trigger is widening) and re-bucket everything, including
        the in-flight ``extra`` bucket a trigger may hand over.  Returns
        False — mutating nothing — when the width would not change, so
        callers fall back to the current geometry (and keep ownership of
        ``extra``)."""
        n = self.seq - self._removed
        if n < 1:
            return False
        # Cheap span probe (bucket-id granularity for the dict side, so
        # a declined rebalance never gathers all entries; exact for the
        # small in-flight/current lists, whose entries carry negated
        # keys: index -1 holds the minimum `when`).
        buckets = self._buckets
        lo = hi = None
        if buckets:
            w = self._width
            lo = min(buckets) * w
            hi = (max(buckets) + 1.0) * w
        for part in (extra, self._cur):
            if part:
                part_lo = -part[-1][0] if part is self._cur else -max(part)[0]
                part_hi = -part[0][0] if part is self._cur else -min(part)[0]
                lo = part_lo if lo is None else min(lo, part_lo)
                hi = part_hi if hi is None else max(hi, part_hi)
        target = 0.0
        if lo is not None:
            span = hi - lo
            if span > 0.0:
                target = span / max(8.0, n / _TARGET_LOAD)
        if floor is not None and floor > target:
            target = floor
        if target <= 0.0:
            return False
        width = _MIN_WIDTH
        while width < target and width < _MAX_WIDTH:
            width *= 2.0
        if width == self._width:
            return False
        entries: List[Entry] = list(self._cur)
        if extra:
            entries.extend(extra)
        for b in buckets.values():
            entries.extend(b)
        self._width = width
        self._inv = inv = 1.0 / width
        buckets = self._buckets = {}
        for e in entries:
            bid = int(-e[0] * inv)
            b = buckets.get(bid)
            if b is None:
                buckets[bid] = [e]
            else:
                b.append(e)
        self._bids = list(buckets)
        heapify(self._bids)
        self._cur = []
        self._cur_id = -1
        self._acts = 0
        self._seq_mark = self.seq
        return True

    def _compact(self) -> None:
        """Drop every already-triggered (cancelled/stale) entry, in
        place: drain loops alias ``_cur``, so its identity survives.
        Stale hosts still carrying same-deadline riders are kept — their
        riders are live events that fire at the host's pop."""
        cur = self._cur
        cur[:] = [e for e in cur
                  if e[2]._ok is None or e[2]._riders is not None]
        n = len(cur)
        buckets = self._buckets
        for bid in list(buckets):
            b = buckets[bid]
            b[:] = [e for e in b
                    if e[2]._ok is None or e[2]._riders is not None]
            if b:
                n += len(b)
            else:
                del buckets[bid]  # its id goes stale in _bids; _advance skips
        self._removed = self.seq - n
        self._cancelled = 0

    # -- inlined drain loops ----------------------------------------------

    def drain_all(self, sim) -> None:
        while True:
            cur = self._cur
            while cur:
                nw, _ns, event, value = cur.pop()
                self._removed += 1
                sim._now = -nw
                if event._ok is None:
                    event._ok = True
                    event._value = value
                    cb0 = event._cb0
                    callbacks = event._callbacks
                    if cb0 is not None:
                        event._cb0 = None
                        event._callbacks = None
                        cb0(event)
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                    elif callbacks:
                        event._callbacks = None
                        for fn in callbacks:
                            fn(event)
                riders = event._riders
                if riders is not None:
                    event._riders = None
                    for rev, rval in riders:
                        if rev._ok is None:
                            sim._riders_pending -= 1
                            rev._ok = True
                            rev._value = rval
                            rev._dispatch()
            if not self._advance():
                return

    def drain_until(self, sim, until: float) -> None:
        while True:
            cur = self._cur
            while cur:
                nw, ns, event, value = cur.pop()
                when = -nw
                if when > until:
                    cur.append((nw, ns, event, value))  # restore the head
                    return
                self._removed += 1
                sim._now = when
                if event._ok is None:
                    event._ok = True
                    event._value = value
                    cb0 = event._cb0
                    callbacks = event._callbacks
                    if cb0 is not None:
                        event._cb0 = None
                        event._callbacks = None
                        cb0(event)
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                    elif callbacks:
                        event._callbacks = None
                        for fn in callbacks:
                            fn(event)
                riders = event._riders
                if riders is not None:
                    event._riders = None
                    for rev, rval in riders:
                        if rev._ok is None:
                            sim._riders_pending -= 1
                            rev._ok = True
                            rev._value = rval
                            rev._dispatch()
            if not self._advance():
                return
