"""Generic serial-link primitives shared by the PCIe and Ethernet models.

A :class:`SerialLink` transfers byte payloads one at a time at a fixed
bandwidth with optional per-transfer overhead; a :class:`BatchingLink`
additionally merges queued payloads bound for the same destination into a
single transfer, amortizing the per-transfer overhead — the mechanism
behind Xenic's gather-list aggregation (§4.3.2) and the Figure 3 batching
microbenchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from .core import Event, Simulator, Timeout
from .fusion import fusion_enabled
from .stats import OnlineStats

__all__ = ["SerialLink", "BatchingLink"]


class SerialLink:
    """A FIFO link: transfers serialize at ``bandwidth_gbps`` plus a fixed
    per-transfer ``overhead_us`` (framing / doorbell / header processing).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_gbps: float,
        overhead_us: float = 0.0,
        propagation_us: float = 0.0,
        name: str = "",
    ):
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_gbps = bandwidth_gbps
        self.overhead_us = overhead_us
        self.propagation_us = propagation_us
        self.name = name
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.transfers = 0
        self.stalls = 0
        # Optional fault injector (repro.sim.faults): adds transient
        # per-transfer stalls (PFC pauses, arbitration hiccups).
        self.injector = None
        self.batch_sizes = OnlineStats()

    def serialization_us(self, nbytes: int) -> float:
        # bandwidth_gbps Gbit/s == bandwidth_gbps * 125 bytes/us
        return nbytes / (self.bandwidth_gbps * 125.0)

    def transfer(self, nbytes: int) -> Event:
        """Schedule a transfer; the event fires at delivery time.

        The returned event is the delivery timeout itself — no separate
        completion event is allocated (hot path: one heap entry, zero
        callbacks until a waiter registers)."""
        now = self.sim._now
        start = now if now > self._busy_until else self._busy_until
        duration = self.overhead_us + nbytes / (self.bandwidth_gbps * 125.0)
        if self.injector is not None:
            stall = self.injector.link_stall_us(self)
            if stall > 0.0:
                self.stalls += 1
                duration += stall
        self._busy_until = start + duration
        self.bytes_transferred += nbytes
        self.transfers += 1
        return Timeout(self.sim,
                       (self._busy_until - now) + self.propagation_us)

    def transfer_then(self, nbytes: int, extra_us: float) -> Event:
        """Fused transfer + trailing pure delay: one event firing at
        delivery time plus ``extra_us``.

        Reservation (``_busy_until``), byte/stall accounting, and the
        injector draw are identical to :meth:`transfer`; only the wakeup
        at the delivery instant is elided.  Safe exactly when the caller
        does nothing at that instant but start the delay — any shared
        state touched there (a reservation on another link, a core
        grant) must stay on the stepwise two-event path."""
        now = self.sim._now
        start = now if now > self._busy_until else self._busy_until
        duration = self.overhead_us + nbytes / (self.bandwidth_gbps * 125.0)
        if self.injector is not None:
            stall = self.injector.link_stall_us(self)
            if stall > 0.0:
                self.stalls += 1
                duration += stall
        self._busy_until = start + duration
        self.bytes_transferred += nbytes
        self.transfers += 1
        return Timeout(self.sim,
                       (self._busy_until - now) + self.propagation_us
                       + extra_us)

    def utilization(self, since: float = 0.0) -> float:
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self.bytes_transferred / (self.bandwidth_gbps * 125.0) / span)


class BatchingLink:
    """A link with a drain loop that merges queued sends per destination.

    Callers enqueue ``(dest, nbytes, payload)``; the drain process pulls
    everything queued, groups by destination, and issues one wire transfer
    per destination carrying the sum of bytes plus a single per-transfer
    overhead.  ``deliver(dest, payloads)`` is invoked once per *packet* at
    arrival time with the list of payloads it carried, so receivers can
    charge per-packet RX costs.

    With ``aggregation=False`` every payload pays the full overhead — this
    is the "single" configuration in Figure 3 and the ablation baseline in
    Figure 9a.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_gbps: float,
        overhead_us: float,
        propagation_us: float,
        deliver: Callable[[Any, Any], None],
        aggregation: bool = True,
        max_batch_bytes: int = 65536,
        batch_window_us: Optional[float] = None,
        name: str = "",
    ):
        self.sim = sim
        self.link = SerialLink(
            sim, bandwidth_gbps, overhead_us, propagation_us, name=name
        )
        self.deliver = deliver
        self.aggregation = aggregation
        self.max_batch_bytes = max_batch_bytes
        # When backlogged, pause this long between drains so output
        # accumulates into larger gather lists (the burst-loop effect,
        # §4.3.2).  A sporadic message is still sent immediately.
        self.batch_window_us = (
            batch_window_us if batch_window_us is not None else 3.0 * overhead_us
        )
        self.name = name
        self._queue: Deque[Tuple[Any, int, Any]] = deque()
        self._drainer: Optional[Any] = None
        self._wake: Optional[Event] = None
        self.packets_sent = 0
        self.payloads_sent = 0
        # Delay fusion (REPRO_FUSION): when a drain round leaves the
        # queue empty, the fused drainer parks immediately instead of
        # sleeping out the wire-clear wait, recording in ``_floor`` the
        # instant its stepwise idle timeout would have fired.  A send
        # landing inside the window arms one exact ``call_at`` wake at
        # the floor; a send at or past the floor wakes the parked
        # drainer directly, exactly as any parked-state send always
        # did.  Ordering at the floor instant is preserved through the
        # rider invariant (repro.sim.core): same-instant entries form
        # one host plus riders firing in push order, so a wake pushed
        # when no entry exists at the floor becomes the host — firing
        # before every later-pushed same-instant event, just as the
        # stepwise timeout (pushed at round start) would.  When an
        # entry at the floor already exists at round end, the stepwise
        # timeout is pushed as-is: it rides that entry for free with
        # its exact cohort position.  The stepwise leg never moves
        # ``_floor`` off zero, so its parked sends take the
        # immediate-wake branch unchanged.
        self._fused = fusion_enabled()
        self._floor = 0.0
        self._armed = False
        self._arm_cb_bound = self._arm_cb

    def send(self, dest: Any, nbytes: int, payload: Any) -> None:
        self._queue.append((dest, nbytes, payload))
        if self._drainer is None or not self._drainer.alive:
            self._drainer = self.sim.spawn(self._drain(), name="%s.drain" % self.name)
        elif self._wake is not None and not self._wake.triggered:
            if self.sim._now >= self._floor:
                self._wake.succeed()
            elif not self._armed:
                # Send inside a fused wire-clear window: materialize one
                # wake at the floor instant.  Pushed while no entry
                # exists there, it hosts that timestamp and fires before
                # every later-pushed same-instant event — the stepwise
                # idle timeout's exact position.
                self._armed = True
                self.sim.call_at(self._floor, self._arm_cb_bound)

    def _arm_cb(self, _ev: Event) -> None:
        wake = self._wake
        self._armed = False
        if wake is None or wake.triggered or not self._queue:
            return
        if self.sim._now >= self._floor:
            wake.succeed()
        else:
            # The park this arm was meant for was already served by a
            # same-instant send and the drainer re-parked with a later
            # floor; carry the pending sends forward to it.
            self._armed = True
            self.sim.call_at(self._floor, self._arm_cb_bound)

    def _materialize(self, floor: float) -> None:
        """Called by the scheduler on the first push at a parked floor
        instant (``Simulator._floors``): claim the timestamp for the
        wake before the incoming entry lands, so the wake fires ahead of
        every event scheduled there after the park — the stepwise idle
        timeout's exact cohort position."""
        if (self._floor == floor and not self._armed
                and self._wake is not None and not self._wake.triggered):
            self._armed = True
            self.sim.call_at(floor, self._arm_cb_bound)

    def _park_floor(self, floor: float) -> None:
        """Register a fused park so pushes at ``floor`` materialize the
        wake first (see ``_materialize``)."""
        self._floor = floor
        floors = self.sim._floors
        lst = floors.get(floor)
        if lst is None:
            floors[floor] = [self]
        else:
            lst.append(self)
        if len(floors) >= 4096:
            # Shed registrations whose park has since been served.
            self.sim._floors = {
                w: ls
                for w, ls in floors.items()
                if any(ln._floor == w for ln in ls)
            }

    def _drain(self):
        queue = self._queue
        link = self.link
        while queue:
            if self.aggregation:
                if len(queue) == 1:
                    # Sporadic-message fast path: one queued payload forms
                    # a batch of one — skip the grouping dict.  Accounting
                    # and timing are identical to the general path below.
                    dest, nbytes, payload = queue.popleft()
                    ev = link.transfer(nbytes)
                    self.packets_sent += 1
                    self.payloads_sent += 1
                    link.batch_sizes.add(1)
                    ev.add_callback(
                        lambda _e, d=dest, p=payload: self.deliver(d, [p])
                    )
                    idle = link._busy_until - self.sim.now
                    if idle > 0:
                        if (self._fused and not queue
                                and link.injector is None):
                            floor = self.sim._now + idle
                            host = self.sim._open.get(floor)
                            if host is None or host._ok is not None:
                                # Fused park: skip the idle timeout and
                                # record where it would have fired; a
                                # send inside the window arms an exact
                                # wake there (see ``send``).
                                self._park_floor(floor)
                                self._wake = self.sim.event(
                                    name="%s.wake" % self.name)
                                yield self._wake
                                self._wake = None
                                self._floor = 0.0
                                continue
                            # A pending entry at the floor instant
                            # already exists: the stepwise timeout
                            # below rides it for free, in its exact
                            # same-instant cohort position.
                        yield self.sim.timeout(idle)
                    if not queue:
                        self._wake = self.sim.event(name="%s.wake" % self.name)
                        yield self._wake
                        self._wake = None
                    continue
                # Group everything currently queued by destination, capped
                # at max_batch_bytes per wire transfer.
                by_dest = {}
                while self._queue:
                    dest, nbytes, payload = self._queue.popleft()
                    bucket = by_dest.setdefault(dest, [0, []])
                    if bucket[0] + nbytes > self.max_batch_bytes and bucket[1]:
                        self._queue.appendleft((dest, nbytes, payload))
                        break
                    bucket[0] += nbytes
                    bucket[1].append(payload)
                for dest, (total, payloads) in by_dest.items():
                    ev = self.link.transfer(total)
                    self.packets_sent += 1
                    self.payloads_sent += len(payloads)
                    self.link.batch_sizes.add(len(payloads))
                    ev.add_callback(
                        lambda _e, d=dest, ps=payloads: self.deliver(d, ps)
                    )
                # Wait for the wire to clear before collecting the next
                # batch; when backlogged, also wait out the batch window so
                # queue depth (and thus batch size) grows with load.
                idle = self.link._busy_until - self.sim.now
                if self._queue:
                    idle = max(idle, self.batch_window_us)
                if idle > 0:
                    if (self._fused and not self._queue
                            and self.link.injector is None):
                        floor = self.sim._now + idle
                        host = self.sim._open.get(floor)
                        if host is None or host._ok is not None:
                            # Fused park (see the sporadic path above).
                            self._park_floor(floor)
                            self._wake = self.sim.event(
                                name="%s.wake" % self.name)
                            yield self._wake
                            self._wake = None
                            self._floor = 0.0
                            continue
                    yield self.sim.timeout(idle)
            else:
                dest, nbytes, payload = self._queue.popleft()
                ev = self.link.transfer(nbytes)
                self.packets_sent += 1
                self.payloads_sent += 1
                self.link.batch_sizes.add(1)
                ev.add_callback(
                    lambda _e, d=dest, p=payload: self.deliver(d, [p])
                )
            if not self._queue:
                # Park until the next send arrives, then loop.
                self._wake = self.sim.event(name="%s.wake" % self.name)
                yield self._wake
                self._wake = None

    @property
    def mean_batch(self) -> float:
        return self.link.batch_sizes.mean
