"""Measurement helpers: online statistics, percentile recorders, meters."""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, List, Optional

__all__ = [
    "OnlineStats",
    "LogHistogram",
    "LatencyRecorder",
    "ThroughputMeter",
    "Counter",
]


class OnlineStats:
    """Welford online mean/variance plus min/max."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean = (self._mean * self.count + other._mean * other.count) / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class LogHistogram:
    """Fixed-bucket log-scale histogram over positive values.

    Bucket boundaries grow geometrically by ``growth``, so the relative
    error of any reported quantile is bounded by ``growth - 1``.  Each
    bucket keeps a count *and* a value sum; the quantile representative is
    the bucket mean, which is exact whenever a bucket holds identical
    values (with growth=1.01 every integer up to 100 lands in its own
    bucket).  Values at or below ``min_value`` share the underflow
    bucket, values above ``max_value`` the overflow bucket.
    """

    __slots__ = ("min_value", "max_value", "growth", "_inv_log_growth",
                 "_n_buckets", "_counts", "_sums", "count", "min", "max")

    def __init__(self, min_value: float = 1e-3, max_value: float = 1e7,
                 growth: float = 1.01):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self.min_value = min_value
        self.max_value = max_value
        self.growth = growth
        self._inv_log_growth = 1.0 / math.log(growth)
        span = math.log(max_value / min_value) * self._inv_log_growth
        # +1 for the underflow bucket, +1 for overflow.
        self._n_buckets = int(math.ceil(span)) + 2
        self._counts: List[int] = [0] * self._n_buckets
        self._sums: List[float] = [0.0] * self._n_buckets
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def _bucket_index(self, x: float) -> int:
        if x <= self.min_value:
            return 0
        idx = int(math.log(x / self.min_value) * self._inv_log_growth) + 1
        return min(idx, self._n_buckets - 1)

    def add(self, x: float) -> None:
        i = self._bucket_index(x)
        self._counts[i] += 1
        self._sums[i] += x
        self.count += 1
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(0, min(self.count - 1,
                          math.ceil(p / 100.0 * self.count) - 1))
        seen = 0
        for c, s in zip(self._counts, self._sums):
            if not c:
                continue
            seen += c
            if rank < seen:
                return s / c
        return self.max  # not reachable: ranks are < self.count

    @property
    def mean(self) -> float:
        return sum(self._sums) / self.count if self.count else 0.0

    def nonzero_buckets(self) -> List[dict]:
        """Occupied buckets as dicts (for JSON export)."""
        out = []
        for i, c in enumerate(self._counts):
            if c:
                out.append({"bucket": i, "count": c, "mean": self._sums[i] / c})
        return out

    def clear(self) -> None:
        self._counts = [0] * self._n_buckets
        self._sums = [0.0] * self._n_buckets
        self.count = 0
        self.min = math.inf
        self.max = -math.inf


class LatencyRecorder:
    """Collects latency samples and reports percentiles.

    Backed by a fixed-bucket log-scale :class:`LogHistogram`, so
    recording is O(1) and percentile queries cost O(buckets) regardless
    of how many samples were recorded; percentiles are exact up to the
    1% bucket resolution.  The mean stays exact via :class:`OnlineStats`.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.hist = LogHistogram()
        self.stats = OnlineStats()

    def record(self, latency_us: float) -> None:
        self.hist.add(latency_us)
        self.stats.add(latency_us)

    def __len__(self) -> int:
        return self.hist.count

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if self.hist.count == 0:
            return 0.0
        return self.hist.percentile(p)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    def summary(self) -> Dict[str, float]:
        """Compact p50/p99/p999 summary dict (JSON-ready)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.median,
            "p99": self.p99,
            "p999": self.p999,
        }

    def clear(self) -> None:
        self.hist.clear()
        self.stats = OnlineStats()


class ThroughputMeter:
    """Counts completions between two timestamps to compute a rate."""

    def __init__(self, name: str = ""):
        self.name = name
        self.completed = 0
        self._window_start: Optional[float] = None
        self._window_count_base = 0
        self._window_end: Optional[float] = None
        self._window_count_end = 0

    def record(self) -> None:
        self.completed += 1

    def start_window(self, now: float) -> None:
        self._window_start = now
        self._window_count_base = self.completed
        self._window_end = None

    def end_window(self, now: float) -> None:
        if self._window_start is None:
            raise RuntimeError("end_window without start_window")
        self._window_end = now
        self._window_count_end = self.completed

    @property
    def window_count(self) -> int:
        if self._window_end is None:
            raise RuntimeError("measurement window not closed")
        return self._window_count_end - self._window_count_base

    def rate_per_us(self) -> float:
        """Completions per simulated microsecond over the closed window."""
        if self._window_start is None or self._window_end is None:
            raise RuntimeError("measurement window not closed")
        span = self._window_end - self._window_start
        if span <= 0:
            return 0.0
        return self.window_count / span

    def rate_per_s(self) -> float:
        """Completions per simulated second over the closed window."""
        return self.rate_per_us() * 1e6


class Counter:
    """A named bag of integer counters."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def inc(self, key: str, n: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + n

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def clear(self) -> None:
        self._counts.clear()


def percentile_of_sorted(sorted_values: List[float], p: float) -> float:
    """Nearest-rank percentile over an already sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, math.ceil(p / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]


class SlidingPercentile:
    """Maintains a bounded, sorted sample set for cheap running medians."""

    def __init__(self, limit: int = 4096):
        self.limit = limit
        self._values: List[float] = []

    def add(self, x: float) -> None:
        insort(self._values, x)
        if len(self._values) > self.limit:
            # Drop alternating extremes to keep the middle representative.
            if len(self._values) % 2:
                self._values.pop(0)
            else:
                self._values.pop()

    def percentile(self, p: float) -> float:
        return percentile_of_sorted(self._values, p)
