"""Measurement helpers: online statistics, percentile recorders, meters."""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, List, Optional

__all__ = [
    "OnlineStats",
    "LatencyRecorder",
    "ThroughputMeter",
    "Counter",
]


class OnlineStats:
    """Welford online mean/variance plus min/max."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean = (self._mean * self.count + other._mean * other.count) / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class LatencyRecorder:
    """Collects latency samples and reports percentiles.

    Stores all samples (benchmark runs here are bounded); sorting is
    deferred to query time and cached.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self.stats = OnlineStats()

    def record(self, latency_us: float) -> None:
        self._samples.append(latency_us)
        self._sorted = None
        self.stats.add(latency_us)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self.stats.mean

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(0, min(len(self._sorted) - 1, math.ceil(p / 100.0 * len(self._sorted)) - 1))
        return self._sorted[rank]

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def clear(self) -> None:
        self._samples.clear()
        self._sorted = None
        self.stats = OnlineStats()


class ThroughputMeter:
    """Counts completions between two timestamps to compute a rate."""

    def __init__(self, name: str = ""):
        self.name = name
        self.completed = 0
        self._window_start: Optional[float] = None
        self._window_count_base = 0
        self._window_end: Optional[float] = None
        self._window_count_end = 0

    def record(self) -> None:
        self.completed += 1

    def start_window(self, now: float) -> None:
        self._window_start = now
        self._window_count_base = self.completed
        self._window_end = None

    def end_window(self, now: float) -> None:
        if self._window_start is None:
            raise RuntimeError("end_window without start_window")
        self._window_end = now
        self._window_count_end = self.completed

    @property
    def window_count(self) -> int:
        if self._window_end is None:
            raise RuntimeError("measurement window not closed")
        return self._window_count_end - self._window_count_base

    def rate_per_us(self) -> float:
        """Completions per simulated microsecond over the closed window."""
        if self._window_start is None or self._window_end is None:
            raise RuntimeError("measurement window not closed")
        span = self._window_end - self._window_start
        if span <= 0:
            return 0.0
        return self.window_count / span

    def rate_per_s(self) -> float:
        """Completions per simulated second over the closed window."""
        return self.rate_per_us() * 1e6


class Counter:
    """A named bag of integer counters."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def inc(self, key: str, n: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + n

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def clear(self) -> None:
        self._counts.clear()


def percentile_of_sorted(sorted_values: List[float], p: float) -> float:
    """Nearest-rank percentile over an already sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, math.ceil(p / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]


class SlidingPercentile:
    """Maintains a bounded, sorted sample set for cheap running medians."""

    def __init__(self, limit: int = 4096):
        self.limit = limit
        self._values: List[float] = []

    def add(self, x: float) -> None:
        insort(self._values, x)
        if len(self._values) > self.limit:
            # Drop alternating extremes to keep the middle representative.
            if len(self._values) % 2:
                self._values.pop(0)
            else:
                self._values.pop()

    def percentile(self, p: float) -> float:
        return percentile_of_sorted(self._values, p)
