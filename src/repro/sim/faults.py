"""Deterministic fault injection for the simulated hardware/cluster.

A :class:`FaultPlan` binds a :class:`FaultSpec` (what can go wrong, how
often) to a named :class:`~repro.sim.rng.RngStream`, so a fault schedule
is a pure function of the root seed: two runs with the same seed and spec
inject byte-identical fault sequences and produce byte-identical
:class:`FaultTrace`\\ s.  The plan hooks into the existing hardware
models rather than replacing them:

* **messages** (``hw.network.Fabric``) — drop, delay, duplicate, and
  reorder at the delivery boundary.  A *drop* is modeled as a reliable
  transport would experience it: the wire packet is lost and the message
  arrives only after one or more retransmission timeouts (exactly-once,
  but late).  True loss is reserved for crashed nodes, where recovery —
  not retransmission — is the answer;
* **links** (``sim.link.SerialLink``) — transient per-transfer stalls
  (PFC pauses, arbitration hiccups) that stretch a transfer's duration;
* **RDMA verbs** (``hw.rdma.RdmaNic``) — transient completion failures
  retried by the (modeled) reliable-connection transport, each retry
  paying a timeout;
* **SmartNIC cores** (``core.nic_runtime.NicRuntime``) — scheduling
  stalls that inflate a compute slice's wall time;
* **nodes** — scheduled fail-stop crashes: inbound and outbound traffic
  is blackholed, the lease is revoked, and (when wired to a
  ``RecoveryManager``) the crashed node's primary shard is re-covered by
  backup promotion; an optional restart re-admits the node as a backup.

Every injected fault is appended to the plan's :class:`FaultTrace` with
its simulated timestamp, making failing seeds replayable postmortems.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from .rng import RngStream

__all__ = ["FaultSpec", "CrashEvent", "FaultTrace", "FaultEvent", "FaultPlan"]

# Cap on consecutive geometric re-draws (retransmits / verb retries) so a
# pathological probability near 1.0 cannot loop forever.
_MAX_REPEATS = 16


@dataclass(frozen=True)
class CrashEvent:
    """A scheduled fail-stop crash (and optional restart)."""

    at_us: float
    node: int
    down_us: Optional[float] = None  # None: never restarts


@dataclass(frozen=True)
class FaultSpec:
    """Probabilities and magnitudes of every fault primitive.

    All probabilities are per-decision (per delivered message, per
    transfer, per verb, per compute slice) and must lie in ``[0, 1)``.
    """

    # message faults (Fabric delivery boundary)
    drop: float = 0.0          # wire loss -> retransmission timeout(s)
    drop_rto_us: float = 30.0  # retransmission timeout per lost copy
    delay: float = 0.0         # extra queueing delay
    delay_mean_us: float = 5.0  # exponential mean of the extra delay
    dup: float = 0.0           # transport-level duplicate delivery
    dup_gap_us: float = 4.0    # duplicate arrives this long after original
    reorder: float = 0.0       # hold a message behind its successor
    reorder_hold_us: float = 10.0  # flush deadline if no successor arrives

    # serial-link stalls (Ethernet wire / RX pipe)
    stall: float = 0.0
    stall_us: float = 2.0

    # RDMA verb transient failures (baseline systems)
    rdma_fail: float = 0.0
    rdma_retry_us: float = 8.0

    # SmartNIC core scheduling stalls
    nic_stall: float = 0.0
    nic_stall_us: float = 1.5

    # scheduled crashes
    crashes: Tuple[CrashEvent, ...] = ()
    recovery_delay_us: float = 200.0  # failure detection -> promotion

    def __post_init__(self):
        for name in ("drop", "delay", "dup", "reorder", "stall",
                     "rdma_fail", "nic_stall"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError("%s must be in [0, 1): %r" % (name, p))

    @property
    def any_message_faults(self) -> bool:
        return bool(self.drop or self.delay or self.dup or self.reorder)

    # -- spec grammar -----------------------------------------------------

    _ALIASES = {
        "drop": ("drop", "drop_rto_us"),
        "delay": ("delay", "delay_mean_us"),
        "dup": ("dup", "dup_gap_us"),
        "reorder": ("reorder", "reorder_hold_us"),
        "stall": ("stall", "stall_us"),
        "rdma": ("rdma_fail", "rdma_retry_us"),
        "nic": ("nic_stall", "nic_stall_us"),
    }

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a compact CLI spec, e.g.::

            drop=0.02,dup=0.01,delay=0.05:8,crash=800@1:2000

        Each field is ``name=prob[:magnitude_us]``; ``crash=T@NODE[:DOWN]``
        may repeat.  Unknown names raise ``ValueError``.
        """
        kwargs: Dict[str, Any] = {}
        crashes: List[CrashEvent] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError("bad fault field %r (want name=value)" % part)
            name, value = part.split("=", 1)
            name = name.strip()
            if name == "crash":
                crashes.append(cls._parse_crash(value))
                continue
            if name == "recovery_delay":
                kwargs["recovery_delay_us"] = float(value)
                continue
            if name not in cls._ALIASES:
                raise ValueError("unknown fault primitive %r" % name)
            prob_field, mag_field = cls._ALIASES[name]
            if ":" in value:
                prob, mag = value.split(":", 1)
                kwargs[prob_field] = float(prob)
                kwargs[mag_field] = float(mag)
            else:
                kwargs[prob_field] = float(value)
        if crashes:
            kwargs["crashes"] = tuple(crashes)
        return cls(**kwargs)

    @staticmethod
    def _parse_crash(value: str) -> CrashEvent:
        if "@" not in value:
            raise ValueError("crash wants T@NODE[:DOWN_US], got %r" % value)
        at, rest = value.split("@", 1)
        if ":" in rest:
            node, down = rest.split(":", 1)
            return CrashEvent(float(at), int(node), float(down))
        return CrashEvent(float(at), int(rest), None)

    def with_crash(self, at_us: float, node: int,
                   down_us: Optional[float] = None) -> "FaultSpec":
        return replace(
            self, crashes=self.crashes + (CrashEvent(at_us, node, down_us),)
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, stamped with its simulated time."""

    t_us: float
    kind: str
    site: str
    detail: str = ""

    def format(self) -> str:
        if self.detail:
            return "%.3f %s %s %s" % (self.t_us, self.kind, self.site,
                                      self.detail)
        return "%.3f %s %s" % (self.t_us, self.kind, self.site)


class FaultTrace:
    """Append-only record of every injected fault (the postmortem log)."""

    def __init__(self):
        self.events: List[FaultEvent] = []
        self.counts: Dict[str, int] = {}

    def record(self, t_us: float, kind: str, site: str, detail: str = "") -> None:
        self.events.append(FaultEvent(t_us, kind, site, detail))
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def __len__(self) -> int:
        return len(self.events)

    def format(self) -> str:
        """Canonical text form; byte-identical across same-seed runs."""
        return "\n".join(ev.format() for ev in self.events)

    def digest(self) -> str:
        """SHA-256 of the canonical text form."""
        return hashlib.sha256(self.format().encode()).hexdigest()

    def summary(self) -> str:
        if not self.counts:
            return "no faults injected"
        return " ".join(
            "%s=%d" % (k, self.counts[k]) for k in sorted(self.counts)
        )


class FaultPlan:
    """A seeded fault schedule, installable on a cluster.

    Independent RNG child streams per fault category keep categories from
    perturbing each other: enabling NIC stalls never changes which
    messages get dropped under the same seed.
    """

    def __init__(self, spec: FaultSpec, rng: RngStream,
                 trace: Optional[FaultTrace] = None):
        self.spec = spec
        self.trace = trace if trace is not None else FaultTrace()
        self._msg_rng = rng.split("messages")
        self._link_rng = rng.split("links")
        self._rdma_rng = rng.split("rdma")
        self._nic_rng = rng.split("nic-cores")
        self.sim = None
        self.crashed: set = set()
        self.recovery = None  # RecoveryManager, when crashes are scheduled
        self.recovery_reports: List[Any] = []
        self._held: Dict[int, Any] = {}  # dst -> reordered message in limbo

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, cluster, recovery=None) -> "FaultPlan":
        """Attach this plan to a Xenic or baseline cluster.

        ``recovery`` may supply an existing
        :class:`~repro.core.recovery.RecoveryManager`; one is created on
        demand when the spec schedules crashes on a Xenic cluster.
        """
        self.sim = cluster.sim
        if hasattr(cluster, "fabric"):  # XenicCluster
            cluster.fabric.set_injector(self)
            for node in cluster.nodes:
                node.nic.port._link.link.injector = self
                node.nic.port._rx_pipe.injector = self
            for proto in cluster.protocols:
                proto.runtime.injector = self
            if self.spec.crashes and recovery is None:
                from ..core.recovery import RecoveryManager

                recovery = RecoveryManager(cluster)
            self.recovery = recovery
        else:  # BaselineCluster
            for node in cluster.nodes:
                node.rdma.injector = self
                node.rdma._wire.injector = self
            if self.spec.crashes:
                raise ValueError(
                    "crash scheduling requires a Xenic cluster "
                    "(baselines model no recovery path)")
        self._cluster = cluster
        for crash in self.spec.crashes:
            self.sim.spawn(self._crash_proc(crash), name="fault-crash")
        return self

    # ------------------------------------------------------------------
    # message faults (called by Fabric.deliver)
    # ------------------------------------------------------------------

    def intercept_delivery(self, fabric, node_id: int, msg) -> bool:
        """Decide the fate of one message delivery.

        Returns True when the plan took over delivery (the fabric must not
        deliver now); False for an unperturbed (or merely duplicated)
        message.
        """
        site = self._msg_site(node_id, msg)
        if node_id in self.crashed or getattr(msg, "src", None) in self.crashed:
            self.trace.record(self.sim.now, "crash-drop", site)
            return True
        # A held (reordered) message is released right behind its
        # successor: scheduled at the current instant, so FIFO tie-break
        # delivers it immediately after this one.
        held = self._held.pop(node_id, None)
        if held is not None and held is not msg:
            self._deliver_later(fabric, node_id, held, 0.0)
        spec = self.spec
        rng = self._msg_rng
        if spec.drop and rng.random() < spec.drop:
            copies = 1
            while copies < _MAX_REPEATS and rng.random() < spec.drop:
                copies += 1
            delay = copies * spec.drop_rto_us
            self.trace.record(self.sim.now, "drop", site,
                              "lost=%d retransmit+%.1fus" % (copies, delay))
            self._deliver_later(fabric, node_id, msg, delay)
            return True
        if spec.dup and rng.random() < spec.dup:
            self.trace.record(self.sim.now, "dup", site,
                              "+%.1fus" % spec.dup_gap_us)
            self._deliver_later(fabric, node_id, msg, spec.dup_gap_us)
            # the original still goes through now
        if spec.delay and rng.random() < spec.delay:
            extra = rng.expovariate(1.0 / spec.delay_mean_us)
            self.trace.record(self.sim.now, "delay", site, "+%.3fus" % extra)
            self._deliver_later(fabric, node_id, msg, extra)
            return True
        if spec.reorder and node_id not in self._held \
                and rng.random() < spec.reorder:
            self.trace.record(self.sim.now, "reorder", site,
                              "held<=%.1fus" % spec.reorder_hold_us)
            self._held[node_id] = msg
            flush = self.sim.timeout(spec.reorder_hold_us)
            flush.add_callback(
                lambda _e, d=node_id, m=msg: self._flush_held(fabric, d, m)
            )
            return True
        return False

    def _msg_site(self, node_id: int, msg) -> str:
        kind = getattr(msg, "kind", "?")
        src = getattr(msg, "src", "?")
        return "msg:%s %s->%d" % (kind, src, node_id)

    def _deliver_later(self, fabric, node_id: int, msg, delay: float) -> None:
        ev = self.sim.timeout(delay)
        ev.add_callback(
            lambda _e, d=node_id, m=msg: self._deliver_checked(fabric, d, m)
        )

    def _deliver_checked(self, fabric, node_id: int, msg) -> None:
        # the destination (or source) may have crashed while in flight
        if node_id in self.crashed or getattr(msg, "src", None) in self.crashed:
            self.trace.record(self.sim.now, "crash-drop",
                              self._msg_site(node_id, msg))
            return
        fabric._deliver_now(node_id, msg)

    def _flush_held(self, fabric, node_id: int, msg) -> None:
        if self._held.get(node_id) is msg:
            del self._held[node_id]
            self._deliver_checked(fabric, node_id, msg)

    # ------------------------------------------------------------------
    # link / verb / core faults
    # ------------------------------------------------------------------

    def link_stall_us(self, link) -> float:
        spec = self.spec
        if not spec.stall or self._link_rng.random() >= spec.stall:
            return 0.0
        self.trace.record(self.sim.now, "link-stall",
                          "link:%s" % (link.name or "?"),
                          "+%.1fus" % spec.stall_us)
        return spec.stall_us

    def rdma_retries(self, nic, verb: str) -> int:
        spec = self.spec
        if not spec.rdma_fail:
            return 0
        rng = self._rdma_rng
        retries = 0
        while retries < _MAX_REPEATS and rng.random() < spec.rdma_fail:
            retries += 1
        if retries:
            self.trace.record(self.sim.now, "rdma-fail",
                              "verb:%s.%s" % (nic.name, verb),
                              "retries=%d" % retries)
        return retries

    def nic_stall_us(self, runtime) -> float:
        spec = self.spec
        if not spec.nic_stall or self._nic_rng.random() >= spec.nic_stall:
            return 0.0
        self.trace.record(self.sim.now, "nic-stall",
                          "nic:%s" % runtime.nic.name,
                          "+%.1fus" % spec.nic_stall_us)
        return spec.nic_stall_us

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------

    def crash_node(self, node_id: int) -> None:
        """Fail-stop ``node_id`` now: blackhole its traffic and revoke its
        lease.  Processes already running inside the node become zombies
        whose outward effects are suppressed at the fabric boundary."""
        if node_id in self.crashed:
            return
        self.crashed.add(node_id)
        self.trace.record(self.sim.now, "crash", "node:%d" % node_id)
        if self.recovery is not None:
            self.recovery.fail_node(node_id)
        elif hasattr(self._cluster, "failed"):
            self._cluster.failed.add(node_id)

    def restart_node(self, node_id: int) -> None:
        """Re-admit a crashed node as a backup (durable state intact; its
        replicas catch up from subsequent versioned log records)."""
        if node_id not in self.crashed:
            return
        self.crashed.discard(node_id)
        self.trace.record(self.sim.now, "restart", "node:%d" % node_id)
        if hasattr(self._cluster, "failed"):
            self._cluster.failed.discard(node_id)
        if self.recovery is not None:
            self.recovery.manager.register(node_id)

    def _crash_proc(self, crash: CrashEvent):
        if crash.at_us > self.sim.now:
            yield self.sim.timeout(crash.at_us - self.sim.now)
        self.crash_node(crash.node)
        if self.recovery is not None:
            yield self.sim.timeout(self.spec.recovery_delay_us)
            cluster = self._cluster
            for shard in range(cluster.n_nodes):
                if cluster.primary_node_id(shard) == crash.node:
                    report = self.recovery.recover_shard(shard)
                    self.recovery_reports.append(report)
                    self.trace.record(
                        self.sim.now, "recover", "shard:%d" % shard,
                        "new_primary=%d committed=%d aborted=%d" % (
                            report.new_primary, len(report.committed),
                            len(report.aborted)))
        if crash.down_us is not None:
            yield self.sim.timeout(crash.down_us)
            self.restart_node(crash.node)
