"""Deterministic random streams and workload-distribution samplers.

Every simulation component takes an explicit :class:`RngStream` so runs are
exactly reproducible and independent components draw from independent
streams (split by name from a root seed).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Sequence

__all__ = ["RngStream", "ZipfGenerator", "HotspotGenerator"]


class RngStream:
    """A named, seeded random stream.

    Child streams derive their seed from the parent seed and the child
    name, so adding a new consumer never perturbs existing ones.
    """

    def __init__(self, seed: int, name: str = "root"):
        self.seed = seed
        self.name = name
        self._rng = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(("%d/%s" % (seed, name)).encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def split(self, name: str) -> "RngStream":
        return RngStream(self._derive(self.seed, self.name + "/" + name), name)

    # Thin pass-throughs -------------------------------------------------

    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def randrange(self, n: int) -> int:
        return self._rng.randrange(n)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, seq: List) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence, k: int) -> List:
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)


class ZipfGenerator:
    """O(1) Zipf(alpha) sampler over {0, .., n-1} by rejection inversion.

    Implements Hörmann's rejection-inversion method (the same approach used
    by YCSB-style generators), which needs no O(n) precomputation and so
    scales to the multi-million-key Retwis and Smallbank keyspaces.

    For ``alpha == 0`` this degenerates to a uniform generator.
    """

    def __init__(self, n: int, alpha: float, rng: RngStream):
        if n < 1:
            raise ValueError("n must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.n = n
        self.alpha = alpha
        self.rng = rng
        # Bound methods of the underlying random.Random: one frame per
        # draw instead of two.  Draw sequence is identical to going
        # through the RngStream pass-throughs.
        self._random = rng._rng.random
        self._randrange = rng._rng.randrange
        if alpha > 0:
            self._q = alpha
            self._h_x1 = self._h(1.5) - 1.0
            self._h_n = self._h(n + 0.5)
            self._s = 2.0 - self._h_inv(self._h(2.5) - self._pow(2.0))

    # H(x) = integral of x^-q; closed forms split on q == 1.
    def _h(self, x: float) -> float:
        if self._q == 1.0:
            return math.log(x)
        return (x ** (1.0 - self._q) - 1.0) / (1.0 - self._q)

    def _h_inv(self, x: float) -> float:
        if self._q == 1.0:
            return math.exp(x)
        return (1.0 + x * (1.0 - self._q)) ** (1.0 / (1.0 - self._q))

    def _pow(self, x: float) -> float:
        return x ** -self._q

    def next(self) -> int:
        """Draw a rank in [0, n); rank 0 is the most popular key."""
        if self.alpha == 0:
            return self._randrange(self.n)
        # Hot loop: every transaction draws 1-10 ranks.  Hoist the
        # precomputed constants and bound methods into locals; the
        # rejection test usually passes on the first draw.
        rand = self._random
        h_n = self._h_n
        span = self._h_x1 - h_n
        s = self._s
        n = self.n
        floor = math.floor
        h = self._h
        h_inv = self._h_inv
        powq = self._pow
        while True:
            u = h_n + rand() * span
            x = h_inv(u)
            k = floor(x + 0.5)
            if k < 1:
                k = 1
            elif k > n:
                k = n
            if k - x <= s or u >= h(k + 0.5) - powq(k):
                return int(k) - 1

    def __iter__(self):
        while True:
            yield self.next()


class HotspotGenerator:
    """Smallbank-style hotspot: ``hot_fraction_ops`` of draws fall uniformly
    in the first ``hot_fraction_keys`` of the keyspace (e.g. 90% of accesses
    to 4% of accounts)."""

    def __init__(
        self,
        n: int,
        hot_fraction_keys: float,
        hot_fraction_ops: float,
        rng: RngStream,
    ):
        if not 0.0 < hot_fraction_keys <= 1.0:
            raise ValueError("hot_fraction_keys must be in (0, 1]")
        if not 0.0 <= hot_fraction_ops <= 1.0:
            raise ValueError("hot_fraction_ops must be in [0, 1]")
        self.n = n
        self.hot_n = max(1, int(n * hot_fraction_keys))
        self.hot_fraction_ops = hot_fraction_ops
        self.rng = rng
        # Bound methods of the underlying random.Random (draw-identical
        # to the RngStream pass-throughs, one frame cheaper per draw).
        self._random = rng._rng.random
        self._randrange = rng._rng.randrange

    def next(self) -> int:
        if self._random() < self.hot_fraction_ops:
            return self._randrange(self.hot_n)
        if self.hot_n >= self.n:
            return self._randrange(self.n)
        return self.hot_n + self._randrange(self.n - self.hot_n)
