#!/usr/bin/env python
"""Where does a transaction's time go?  Phase-by-phase latency breakdown.

Attaches the Tracer to a coordinator, runs the Smallbank mix at low load,
and prints the mean time per protocol phase — the same decomposition that
drives the paper's Figure 9b latency ablation.

Run:  python examples/latency_breakdown.py
"""

from repro.bench import Bench, Tracer
from repro.workloads import Smallbank

N_NODES = 3


def main():
    workload = Smallbank(N_NODES, accounts_per_server=4000,
                         hot_keys_fraction=0.25)
    bench = Bench("xenic", workload, n_nodes=N_NODES)
    tracer = Tracer(bench.cluster.protocols[0])
    result = bench.measure(2, warmup_us=100.0, window_us=400.0)
    tracer.detach()

    print("median latency: %.1f us (p99 %.1f us), %d txns traced"
          % (result.median_latency_us, result.p99_latency_us,
             len(tracer.traces)))
    print()
    print("mean time per phase (us):")
    for phase, mean_us in sorted(tracer.mean_phase_breakdown().items(),
                                 key=lambda kv: -kv[1]):
        print("  %-16s %6.2f" % (phase, mean_us))

    slowest = max(tracer.traces, key=lambda t: t.latency_us)
    print()
    print("slowest traced txn: %s, %.1f us over %d attempt(s)"
          % (slowest.label, slowest.latency_us, slowest.attempts))
    for sample in slowest.phases:
        print("  %-16s %8.2f -> %8.2f  (%.2f us)"
              % (sample.phase, sample.start_us, sample.end_us,
                 sample.duration_us))


if __name__ == "__main__":
    main()
