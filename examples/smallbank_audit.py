#!/usr/bin/env python
"""Smallbank under concurrency, with a serializability audit.

Runs the Smallbank mix on a 3-node Xenic cluster with many concurrent
coordinator contexts, then audits the final state: every money movement
(send_payment, amalgamate) conserves the total balance, and deposits add
a known amount — so the expected total is exactly computable.  A lost
update or dirty read anywhere in the commit protocol breaks the audit.

Run:  python examples/smallbank_audit.py
"""

from repro import Simulator, XenicCluster, XenicConfig
from repro.workloads import Smallbank
from repro.workloads.smallbank import INITIAL_BALANCE

N_NODES = 3
ACCOUNTS_PER_SERVER = 2000
CONTEXTS_PER_NODE = 16
TXNS_PER_CONTEXT = 40


def main():
    sim = Simulator()
    workload = Smallbank(N_NODES, accounts_per_server=ACCOUNTS_PER_SERVER)
    cluster = XenicCluster(
        sim, N_NODES,
        config=XenicConfig(),
        keys_per_shard=workload.keys_per_shard(),
        value_size=workload.value_size,
        partition=workload.partition,
    )
    workload.load(cluster)
    cluster.start()

    added = {"deposits": 0, "savings": 0, "checks": 0}
    committed = [0]

    def context(node_id, ctx):
        gen = workload.generator_for(node_id, "audit%d" % ctx)
        proto = cluster.protocols[node_id]
        for _ in range(TXNS_PER_CONTEXT):
            spec = gen.next()
            txn = yield from proto.run_transaction(spec)
            committed[0] += 1
            if spec.label == "deposit_checking":
                added["deposits"] += 10
            elif spec.label == "transact_savings":
                added["savings"] += 20
            elif spec.label == "write_check":
                # the check subtracts amount (+1 fee when overdrawn); audit
                # conservatively recomputes from the committed values below
                added["checks"] += 1

    for node_id in range(N_NODES):
        for ctx in range(CONTEXTS_PER_NODE):
            sim.spawn(context(node_id, ctx), name="ctx")
    sim.run()

    total = workload.total_money(cluster)
    initial = 2 * ACCOUNTS_PER_SERVER * N_NODES * INITIAL_BALANCE
    expected_floor = initial + added["deposits"] + added["savings"] \
        - added["checks"] * 6  # each check removes at most amount+fee = 6
    expected_ceil = initial + added["deposits"] + added["savings"]

    print("transactions committed:", committed[0])
    print("initial total: %d, final total: %d" % (initial, total))
    print("deposits +%d, savings +%d, checks -[0..%d]"
          % (added["deposits"], added["savings"], added["checks"] * 6))
    assert expected_floor <= total <= expected_ceil, "AUDIT FAILED"
    print("audit passed: money conserved under concurrency")

    aborts = sum(p.stats.get("aborts") for p in cluster.protocols)
    multihop = sum(p.stats.get("multihop") for p in cluster.protocols)
    print("aborts: %d, multi-hop commits: %d" % (aborts, multihop))


if __name__ == "__main__":
    main()
