#!/usr/bin/env python
"""Head-to-head: Xenic vs DrTM+H vs FaSST on TPC-C New-Order.

Reproduces a slice of Figure 8a at reduced scale: the same workload
object drives all three systems, sweeping concurrency to trace each
throughput/latency curve, then prints the peak-throughput ratios the
paper headlines (§5.2).

Run:  python examples/tpcc_comparison.py
"""

from repro.bench import run_sweep
from repro.bench.report import print_curves
from repro.workloads import TpccNewOrder

N_NODES = 3
SYSTEMS = ("xenic", "drtmh", "fasst")
CONCURRENCIES = [2, 8, 24]


def make_workload():
    return TpccNewOrder(
        N_NODES,
        warehouses_per_server=4,
        stock_per_warehouse=400,
        customers_per_warehouse=60,
    )


def main():
    curves = {}
    for system in SYSTEMS:
        curves[system] = run_sweep(
            system, make_workload, CONCURRENCIES,
            n_nodes=N_NODES, window_us=500.0,
        )
    print_curves("TPC-C New-Order (reduced scale)", curves)

    peaks = {s: max(r.throughput_per_server for r in rs)
             for s, rs in curves.items()}
    best_alt = max(v for s, v in peaks.items() if s != "xenic")
    lows = {s: min(r.median_latency_us for r in rs)
            for s, rs in curves.items()}
    print()
    print("peak throughput ratio Xenic / best alternative: %.2fx"
          % (peaks["xenic"] / best_alt))
    print("low-load median latency: xenic %.1fus, drtmh %.1fus, fasst %.1fus"
          % (lows["xenic"], lows["drtmh"], lows["fasst"]))


if __name__ == "__main__":
    main()
