#!/usr/bin/env python
"""Replay the paper's §3 SmartNIC characterization (Figures 2-4, §3.1).

Prints the simulated counterparts of the measurements that motivated
Xenic's design: remote-operation roundtrips (Figure 2), batching gains
(Figure 3), DMA engine behaviour (Figure 4), the CPU calibration
(Table 1), and the off-path SmartNIC penalty (§3.1).

Run:  python examples/smartnic_microbench.py
"""

from repro.bench import (
    figure2_latency,
    figure3_batching,
    figure4_dma,
    offpath_comparison,
    table1_cores,
)


def main():
    figure2_latency(verbose=True)
    figure3_batching(sizes=(16, 64, 256), ops_per_sender=200, verbose=True)
    figure4_dma(sizes=(16, 64, 256), total_ops=1200, verbose=True)
    table1_cores(verbose=True)
    offpath_comparison(verbose=True)

    print()
    print("Reading the results against the paper's §3 claims:")
    print(" - one-sided RDMA beats host-initiated SmartNIC ops on latency,")
    print("   but NIC-initiated, NIC-handled ops beat two-sided RDMA RPCs;")
    print(" - batching multiplies small-write throughput while unbatched")
    print("   ops stall near 10 Mops/s regardless of target memory;")
    print(" - vectored DMA approaches the 8.7 Mops/s engine ceiling without")
    print("   added completion latency; and")
    print(" - off-path SoCs pay more to reach host memory than a remote")
    print("   RDMA writer does, which is why Xenic targets on-path NICs.")


if __name__ == "__main__":
    main()
