#!/usr/bin/env python
"""Failure drill: kill a primary, promote a backup, resolve in-flight
transactions, and keep serving (§4.2.1).

Commits data to a shard, simulates a primary crash with one transaction
mid-replication (logged on every surviving backup) and another only
partially replicated, runs recovery, and verifies:

* the fully-logged transaction commits during recovery;
* the partially-logged transaction aborts;
* write locks are rebuilt and then released;
* the cluster serves new transactions against the promoted primary.

Run:  python examples/recovery_drill.py
"""

from repro import RecoveryManager, Simulator, TxnSpec, XenicCluster, XenicConfig
from repro.store.log import LogRecord

N_NODES = 4


def main():
    sim = Simulator()
    cluster = XenicCluster(sim, N_NODES,
                           config=XenicConfig(replication_factor=3),
                           keys_per_shard=256)
    for key in range(N_NODES * 64):
        cluster.load_key(key, value=("init", key))
    cluster.start()
    recovery = RecoveryManager(cluster)

    # commit a transaction against shard 1 while it is healthy
    key = 1
    proc = sim.spawn(cluster.protocols[0].run_transaction(
        TxnSpec(read_keys=[key], write_keys=[key],
                logic=lambda r, s: {key: "pre-crash"})))
    sim.run_until_event(proc)
    sim.run()
    print("committed 'pre-crash' to shard 1")

    # fabricate two in-flight transactions at the moment of the crash:
    # txn 501 reached both surviving backups; txn 502 reached only one
    backups = cluster.backups_of(1)
    print("backups of shard 1:", backups)
    for b in backups:
        cluster.nodes[b].log.append(
            LogRecord(501, "log", 1, [(key, "in-flight-full", 2)]))
    cluster.nodes[backups[0]].log.append(
        LogRecord(502, "log", 1, [(key + N_NODES, "in-flight-partial", 1)]))

    # crash the primary of shard 1
    recovery.fail_node(1)
    print("node 1 failed; lease expired (epoch %d)"
          % recovery.manager.config_epoch)

    report = recovery.recover_shard(1)
    print("promoted node %d to primary of shard 1" % report.new_primary)
    print("recovering txns:", report.recovering_txns)
    print("  committed:", report.committed)
    print("  aborted:  ", report.aborted)
    print("  locks rebuilt: %d" % report.locks_rebuilt)
    assert 501 in report.committed and 502 in report.aborted

    new_primary = cluster.nodes[report.new_primary]
    obj = new_primary.tables[1].get_object(key)
    print("key %d after recovery: %r (version %d)"
          % (key, obj.value, obj.version))
    assert obj.value == "in-flight-full"

    # the cluster serves shard 1 again through the new primary
    proc = sim.spawn(cluster.protocols[0].run_transaction(
        TxnSpec(read_keys=[key], write_keys=[key],
                logic=lambda r, s: {key: "post-recovery"})))
    txn = sim.run_until_event(proc)
    sim.run()
    print("post-recovery txn committed (attempts=%d); key is now %r"
          % (txn.attempts, cluster.read_committed_value(key)))


if __name__ == "__main__":
    main()
