#!/usr/bin/env python
"""Quickstart: run distributed transactions on a 3-node Xenic cluster.

Builds a small simulated cluster (each node = host cores + on-path
SmartNIC), loads a keyspace, and executes a handful of transactions,
showing commits, a read-modify-write, a cross-shard transfer, and the
multi-hop fast path.

Run:  python examples/quickstart.py
"""

from repro import Simulator, TxnSpec, XenicCluster, XenicConfig

N_NODES = 3
KEYS = 3 * 256


def main():
    sim = Simulator()
    cluster = XenicCluster(sim, N_NODES, config=XenicConfig(),
                           keys_per_shard=512, value_size=64)
    for key in range(KEYS):
        cluster.load_key(key, value=100)
    cluster.start()

    def run(node_id, spec):
        proc = sim.spawn(cluster.protocols[node_id].run_transaction(spec))
        return sim.run_until_event(proc)

    # 1. a read-only transaction against a remote shard
    txn = run(0, TxnSpec(read_keys=[7], write_keys=[], read_only=True))
    print("read-only txn: key 7 =", txn.read_values[7][0],
          "(%.1f us)" % (txn.committed_at - txn.started_at))

    # 2. a read-modify-write (increments a remote counter)
    spec = TxnSpec(read_keys=[7], write_keys=[7],
                   logic=lambda reads, state: {7: reads[7] + 1})
    txn = run(0, spec)
    print("increment txn committed in %.1f us, attempts=%d"
          % (txn.committed_at - txn.started_at, txn.attempts))
    sim.run()  # let the COMMIT phase apply at the primary
    print("key 7 is now", cluster.read_committed_value(7))

    # 3. a cross-shard transfer (keys 4 and 5 live on different nodes)
    def transfer(reads, state):
        amount = state
        return {4: reads[4] - amount, 5: reads[5] + amount}

    txn = run(2, TxnSpec(read_keys=[4, 5], write_keys=[4, 5],
                         logic=transfer, external_state=25,
                         external_state_bytes=8))
    sim.run()
    print("transfer committed; balances:",
          cluster.read_committed_value(4), cluster.read_committed_value(5))

    # 4. the multi-hop fast path: local shard + one remote shard
    k_local, k_remote = 0, 1  # shard 0 (local to node 0) and shard 1
    spec = TxnSpec(read_keys=[k_local, k_remote],
                   write_keys=[k_local, k_remote],
                   logic=lambda r, s: {k_local: r[k_local] + 1,
                                       k_remote: r[k_remote] + 1})
    txn = run(0, spec)
    ships = cluster.protocols[0].stats.get("multihop")
    print("multi-hop txn committed in %.1f us (multihop count=%d)"
          % (txn.committed_at - txn.started_at, ships))

    # drain the background log application and check replicas
    sim.run()
    divergence = cluster.replica_divergence()
    print("replica divergence after drain:", divergence or "none")


if __name__ == "__main__":
    main()
