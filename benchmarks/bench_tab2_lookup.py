"""Table 2: objects read and roundtrips per lookup at 90% occupancy.

Xenic Robinhood (Dm in {8,16,32,unlimited}) vs FaRM Hopscotch (H=8) vs
DrTM+H chained buckets (B in {4,8,16}).
"""

from repro.bench import table2_lookup


def test_table2_lookup(benchmark, quick):
    n = 20000 if quick else 200000
    rows = benchmark.pedantic(
        lambda: table2_lookup(n_keys=n, verbose=True), rounds=1, iterations=1
    )
    by_name = {r.structure: r for r in rows}
    rh8 = by_name["Xenic Robinhood, Dm=8"]
    farm = by_name["FaRM Hopscotch, H=8"]
    # Xenic reads far fewer objects than FaRM's fixed H=8 neighborhood
    assert rh8.objects_read < 0.6 * farm.objects_read
    # tighter displacement limits -> smaller reads, slightly more overflow
    assert (by_name["Xenic Robinhood, Dm=8"].objects_read
            < by_name["Xenic Robinhood, Dm=16"].objects_read
            < by_name["Xenic Robinhood, no limit"].objects_read)
    # unlimited displacement never needs a second roundtrip
    assert by_name["Xenic Robinhood, no limit"].roundtrips == 1.0
    # chained buckets: read amplification scales with B, roundtrips shrink
    assert (by_name["DrTM+H Chained, B=4"].objects_read
            < by_name["DrTM+H Chained, B=8"].objects_read
            < by_name["DrTM+H Chained, B=16"].objects_read)
    assert (by_name["DrTM+H Chained, B=4"].roundtrips
            > by_name["DrTM+H Chained, B=16"].roundtrips)
