"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation and prints the rows/series it reports.  Set REPRO_FULL=1 to
run at full (paper-like) scale instead of the quick CI scale.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def quick():
    return not full_scale()
