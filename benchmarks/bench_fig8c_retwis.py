"""Figure 8c: Retwis throughput/latency, 5 systems.

The paper: Xenic peaks 2.07x over DrTM+H with 42% lower low-load median;
FaSST nears DrTM+H's throughput but with ~2.1x Xenic's latency.
"""

from repro.bench import figure8c_retwis


def test_figure8c_retwis(benchmark, quick):
    curves = benchmark.pedantic(
        lambda: figure8c_retwis(quick=quick, verbose=True),
        rounds=1, iterations=1,
    )
    peaks = {s: max(r.throughput_per_server for r in rs)
             for s, rs in curves.items()}
    lats = {s: min(r.median_latency_us for r in rs)
            for s, rs in curves.items()}
    print("\npeaks (txn/s/server): %s" % {s: int(v) for s, v in peaks.items()})
    print("low-load medians (us): %s" % {s: round(v, 1) for s, v in lats.items()})
    assert peaks["xenic"] > 1.5 * peaks["drtmh"]
    # Known deviation from the paper's -42%: at our (lower) absolute
    # latencies the two PCIe crossings per txn keep Xenic's read-heavy
    # median at rough parity with DrTM+H's one-sided reads.
    assert lats["xenic"] < 1.25 * lats["drtmh"]
    assert lats["xenic"] < lats["fasst"]  # RPC latency penalty (§5.4)
