"""Figure 4: DMA engine throughput (a) and latency (b), single vs
15-element vectored submissions, reads and writes."""

from repro.bench import figure4_dma


def test_figure4_dma(benchmark, quick):
    ops = 1200 if quick else 6000
    out = benchmark.pedantic(
        lambda: figure4_dma(sizes=(16, 64, 256), total_ops=ops, verbose=True),
        rounds=1, iterations=1,
    )
    for size in (16, 64, 256):
        # vectoring improves throughput toward the 8.7 Mops/s ceiling
        assert out["throughput"]["write_x15"][size] > out["throughput"]["write_x1"][size]
        assert out["throughput"]["write_x15"][size] <= 9.6
        # completion latency asymmetry: reads ~1.3us, writes ~0.6us (§3.5)
        assert out["latency"]["read_x1"][size] > out["latency"]["write_x1"][size]
        assert out["latency"]["write_x1"][size] < 1.5
