"""Figure 3: remote memory write throughput with and without batching,
to SmartNIC DRAM and host DRAM, vs CX5 RDMA WRITE (16-256 B)."""

from repro.bench import figure3_batching


def test_figure3_batching(benchmark, quick):
    ops = 250 if quick else 1000
    out = benchmark.pedantic(
        lambda: figure3_batching(sizes=(16, 64, 256), ops_per_sender=ops,
                                 verbose=True),
        rounds=1, iterations=1,
    )
    for size in (16, 64, 256):
        # batching multiplies throughput for small ops (§3.4)
        assert out["nic_dram_batched"][size] > 2.0 * out["nic_dram_single"][size]
        assert out["host_dram_batched"][size] > 1.5 * out["host_dram_single"][size]
        # unbatched ops stall near 10 Mops/s regardless of target memory
        assert 6.0 <= out["nic_dram_single"][size] <= 12.0
        # batched NIC-memory writes beat doorbell-batched RDMA
        assert out["nic_dram_batched"][size] > out["cx5_rdma"][size]
