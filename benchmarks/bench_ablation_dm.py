"""Design ablation (§4.1.2): Robinhood displacement limit sweep — small Dm
keeps DMA reads tiny but overflows more keys (extra roundtrips)."""

from repro.bench.ablations import displacement_limit_sweep


def test_displacement_limit_sweep(benchmark, quick):
    n = 8000 if quick else 50000
    rows = benchmark.pedantic(
        lambda: displacement_limit_sweep(n_keys=n, verbose=True),
        rounds=1, iterations=1,
    )
    objs = [r["objects_read"] for r in rows]
    rts = [r["roundtrips"] for r in rows]
    ovf = [r["overflow_frac"] for r in rows]
    assert objs == sorted(objs)            # bigger Dm -> bigger reads
    assert rts == sorted(rts, reverse=True)  # ...but fewer roundtrips
    assert ovf == sorted(ovf, reverse=True)  # ...and less overflow
