"""Wall-clock performance of the simulator itself (docs/PERFORMANCE.md).

Unlike the sibling benchmarks — which regenerate the paper's simulated
results — this one measures how fast the simulation *runs*, appending to
the ``BENCH_simperf.json`` trajectory semantics via ``repro.bench.perf``.

Runnable two ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py -q
    PYTHONPATH=src python benchmarks/bench_wallclock.py          # standalone
    PYTHONPATH=src python benchmarks/bench_wallclock.py --ab     # heap vs calendar
"""

import sys

from repro.bench.perf import format_ab, format_results, run_perf, run_queue_ab


def test_wallclock(benchmark, quick):
    results = benchmark.pedantic(
        lambda: run_perf(quick=quick, repeats=1, verbose=True),
        rounds=1, iterations=1,
    )
    # Sanity floor, far below any real machine: catches harness breakage
    # (zero events, infinite loops), not performance.
    for name, r in results.items():
        assert r["events"] > 0, name
        assert r["wall_s"] > 0, name
    assert results["timeout_churn"]["events_per_sec"] > 10_000


if __name__ == "__main__":
    quick = "--full" not in sys.argv
    if "--ab" in sys.argv:
        print(format_ab(run_queue_ab(quick=quick, repeats=3)))
    else:
        print(format_results(run_perf(quick=quick, repeats=3)))
