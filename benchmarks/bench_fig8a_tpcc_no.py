"""Figure 8a: TPC-C New-Order throughput/latency, 5 systems.

The paper: Xenic peaks 2.42x over DrTM+H (the best alternative) and
3.81x over DrTM+H-NC; FaSST is host-CPU-bound far below; low-load median
latency is 59% below DrTM+H's.
"""

from repro.bench import figure8a_tpcc_new_order
from repro.bench.report import print_curves


def peak(results):
    return max(r.throughput_per_server for r in results)


def low_latency(results):
    return min(r.median_latency_us for r in results)


def test_figure8a_tpcc_new_order(benchmark, quick):
    curves = benchmark.pedantic(
        lambda: figure8a_tpcc_new_order(quick=quick, verbose=True),
        rounds=1, iterations=1,
    )
    peaks = {s: peak(rs) for s, rs in curves.items()}
    # who wins: Xenic > DrTM+H > (NC, FaSST, DrTM+R)
    assert peaks["xenic"] > peaks["drtmh"]
    assert peaks["xenic"] > 1.5 * peaks["fasst"]
    assert peaks["drtmh"] > peaks["drtmh_nc"]
    print("\npeak ratios vs DrTM+H: xenic %.2fx, nc %.2fx, fasst %.2fx, drtmr %.2fx"
          % (peaks["xenic"] / peaks["drtmh"], peaks["drtmh_nc"] / peaks["drtmh"],
             peaks["fasst"] / peaks["drtmh"], peaks["drtmr"] / peaks["drtmh"]))
    lat = {s: low_latency(rs) for s, rs in curves.items()}
    print("low-load medians (us): %s"
          % {s: round(v, 1) for s, v in lat.items()})
    assert lat["xenic"] < lat["drtmh"]
