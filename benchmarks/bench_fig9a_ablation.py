"""Figure 9a: Retwis throughput, enabling Xenic's throughput features
sequentially (baseline -> smart remote ops -> Ethernet aggregation ->
async DMA).  Paper: 1.47x -> 1.98x -> 2.30x over the Xenic baseline."""

from repro.bench import figure9a_throughput_ablation


def test_figure9a_throughput_ablation(benchmark, quick):
    results = benchmark.pedantic(
        lambda: figure9a_throughput_ablation(quick=quick, verbose=True),
        rounds=1, iterations=1,
    )
    by_label = dict(results)
    base = by_label["Xenic baseline"]
    smart = by_label["+Smart remote ops"]
    full = by_label["+Async DMA"]
    assert smart > base  # combined ops reduce request count
    assert full > 1.3 * base  # cumulative gain
    assert full >= by_label["+Eth aggregation"] * 0.95
