"""Table 3: minimum (Coremark-normalized) thread counts at >=95% of peak
throughput for Xenic, DrTM+H, and FaSST on the three benchmarks."""

from repro.bench import table3_thread_counts


def test_table3_thread_counts(benchmark, quick):
    out = benchmark.pedantic(
        lambda: table3_thread_counts(quick=quick, verbose=True),
        rounds=1, iterations=1,
    )
    for wl in ("retwis", "smallbank"):
        # Xenic's normalized total undercuts both host-driven systems
        assert out[wl]["xenic_norm"] < out[wl]["fasst"]
        # FaSST burns at least as many host threads as DrTM+H (§5.6)
        assert out[wl]["fasst"] >= out[wl]["drtmh"]
    # TPC-C is host-compute heavy: Xenic needs many host threads there
    assert out["tpcc_no"]["xenic_host"] > out["smallbank"]["xenic_host"]
