"""Figure 9b: Smallbank median latency at low load, enabling Xenic's
latency features sequentially (baseline -> smart remote ops -> NIC
execution -> OCC optimization).  Paper: -20% -> -32% -> -42% vs the
Xenic baseline, ending 22% below DrTM+H."""

from repro.bench import figure9b_latency_ablation


def test_figure9b_latency_ablation(benchmark, quick):
    results = benchmark.pedantic(
        lambda: figure9b_latency_ablation(quick=quick, verbose=True),
        rounds=1, iterations=1,
    )
    by_label = dict(results)
    base = by_label["Xenic baseline"]
    assert by_label["+Smart remote ops"] < base
    assert by_label["+NIC execution"] < by_label["+Smart remote ops"]
    assert by_label["+OCC optimization"] <= by_label["+NIC execution"] * 1.02
    # the fully optimized system beats DrTM+H (paper: 22% lower)
    assert by_label["+OCC optimization"] < by_label["DrTM+H"]
