"""§3.1: off-path SmartNIC (BlueField / Stingray) latency comparison —
the measurement that rules out off-path devices for Xenic."""

from repro.bench import offpath_comparison


def test_offpath_penalty(benchmark):
    out = benchmark.pedantic(lambda: offpath_comparison(verbose=True),
                             rounds=1, iterations=1)
    for device, vals in out.items():
        # reaching host memory via the SoC costs more than RDMA directly
        assert vals["remote_to_soc_write_us"] > vals["remote_to_host_write_us"]
        assert vals["offload_penalty_us"] > 0
