"""Design ablation (§4.3.3): NIC object-cache capacity sweep on Smallbank.
Shrinking the cache below the hot set replaces NIC-DRAM hits with DMA
lookups: throughput falls and latency rises."""

from repro.bench.ablations import cache_capacity_sweep


def test_cache_capacity_sweep(benchmark, quick):
    caps = (64, 1024, 16384, 1 << 20) if quick else (64, 512, 4096, 32768, 1 << 20)
    rows = benchmark.pedantic(
        lambda: cache_capacity_sweep(capacities=caps, accounts=4000,
                                     concurrency=48, verbose=True),
        rounds=1, iterations=1,
    )
    assert rows[0]["hit_rate"] < rows[-1]["hit_rate"]
    assert rows[-1]["throughput"] > 1.3 * rows[0]["throughput"]
    assert rows[-1]["median_us"] < rows[0]["median_us"]
