"""Table 1: NIC ARM vs host Xeon core performance calibration."""

from repro.bench import table1_cores


def test_table1_cores(benchmark):
    ratios = benchmark.pedantic(lambda: table1_cores(verbose=True),
                                rounds=1, iterations=1)
    # Table 1: 3.26x multi-thread, 2.04x single-thread
    assert 3.0 < ratios["coremark_multi_ratio"] < 3.5
    assert 1.9 < ratios["coremark_single_ratio"] < 2.2
    assert abs(ratios["model_job_stretch"] - ratios["coremark_multi_ratio"]) < 0.01
    assert 0.28 < ratios["nic_host_core_ratio"] < 0.34
