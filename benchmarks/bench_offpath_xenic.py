"""§4.3.4 platform requirements: Xenic's latency edge needs an on-path
NIC with a fast host-memory path.  With the PCIe crossing inflated to the
measured off-path SoC-to-host costs, the advantage evaporates."""

from repro.bench.ablations import offpath_platform_check


def test_offpath_platform_check(benchmark):
    out = benchmark.pedantic(
        lambda: offpath_platform_check(verbose=True), rounds=1, iterations=1
    )
    assert out["onpath_liquidio"] < out["offpath_bluefield"]
    assert out["offpath_bluefield"] < out["offpath_stingray"]
    # the off-path penalty is substantial, not marginal (§3.1)
    assert out["offpath_bluefield"] > 1.5 * out["onpath_liquidio"]
