"""Figure 8d: Smallbank throughput/latency, 5 systems.

The paper: Xenic peaks 2.21x over DrTM+H; DrTM+H's pointer-cached
one-sided READs give the best-case RDMA latency, yet Xenic's median is
still 21.5% lower at low load.
"""

from repro.bench import figure8d_smallbank


def test_figure8d_smallbank(benchmark, quick):
    curves = benchmark.pedantic(
        lambda: figure8d_smallbank(quick=quick, verbose=True),
        rounds=1, iterations=1,
    )
    peaks = {s: max(r.throughput_per_server for r in rs)
             for s, rs in curves.items()}
    lats = {s: min(r.median_latency_us for r in rs)
            for s, rs in curves.items()}
    print("\npeaks (txn/s/server): %s" % {s: int(v) for s, v in peaks.items()})
    print("low-load medians (us): %s" % {s: round(v, 1) for s, v in lats.items()})
    print("Xenic/DrTM+H peak ratio: %.2fx (paper: 2.21x)"
          % (peaks["xenic"] / peaks["drtmh"]))
    assert peaks["xenic"] > peaks["drtmh"]
    assert peaks["xenic"] > peaks["drtmr"]
    assert lats["xenic"] <= lats["drtmh"] * 1.05
