"""Figure 8b: full TPC-C mix (new-orders/s per server): Xenic vs DrTM+R
in the network-bound regime of the paper's published comparison point
(§5.3: DrTM+R at 56 Gbps is wire-limited; the reduced-scale equivalent
uses a proportionally slower link)."""

from repro.bench import figure8b_tpcc_full


def test_figure8b_tpcc_full(benchmark, quick):
    curves = benchmark.pedantic(
        lambda: figure8b_tpcc_full(quick=quick, verbose=True,
                                   systems=("xenic", "drtmr")),
        rounds=1, iterations=1,
    )
    xen = curves["xenic"]
    peak = max(r.throughput_per_server for r in xen)
    low = min(r.median_latency_us for r in xen)
    print("\nfull-mix peak: %.0f new-orders/s/server, low-load median %.1fus"
          % (peak, low))
    # the full mix is mostly local: latency sits below the NO-only workload
    assert low < 60.0
    drtmr_peak = max(r.throughput_per_server for r in curves["drtmr"])
    print("Xenic/DrTM+R new-order ratio: %.2fx (paper: 2.1x at 56Gbps)"
          % (peak / drtmr_peak))
    # in the wire-bound regime Xenic's replication efficiency dominates
    assert peak > 1.5 * drtmr_peak
