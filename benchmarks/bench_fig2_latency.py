"""Figure 2: roundtrip latency of remote operations.

LiquidIO NIC RPC / DMA read / DMA write / host RPC, initiated from the
host and from the NIC, versus CX5 RDMA READ/WRITE/ATOMIC and two-sided
RPC, at 256 B payloads.
"""

from repro.bench import figure2_latency


def test_figure2_latency(benchmark):
    results = benchmark.pedantic(
        lambda: figure2_latency(verbose=True), rounds=1, iterations=1
    )
    # paper-shape assertions (§3.2)
    assert results["cx5_read"] < results["lio_read_from_host"]
    assert results["cx5_write"] < results["lio_write_from_host"]
    assert results["lio_nic_rpc_from_nic"] < results["cx5_rpc"]
    assert results["lio_nic_rpc_from_nic"] < min(
        results["lio_read_from_nic"], results["lio_write_from_nic"]
    )
    assert results["lio_host_rpc_from_host"] == max(
        v for k, v in results.items() if k.startswith("lio_")
    )
