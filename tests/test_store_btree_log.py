"""Tests for the B+ tree and the host-memory log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import BPlusTree, HostLog, LogRecord, record_size_bytes


# ---------------------------------------------------------------------------
# B+ tree
# ---------------------------------------------------------------------------


def test_btree_insert_get():
    t = BPlusTree(order=4)
    t.insert(5, "five")
    assert t.get(5) == "five"
    assert t.get(6) is None
    assert t.get(6, "dflt") == "dflt"


def test_btree_overwrite():
    t = BPlusTree(order=4)
    t.insert(1, "a")
    t.insert(1, "b")
    assert t.get(1) == "b"
    assert len(t) == 1


def test_btree_splits_grow_height():
    t = BPlusTree(order=4)
    for k in range(100):
        t.insert(k, k)
    assert t.height > 1
    for k in range(100):
        assert t.get(k) == k


def test_btree_range_scan_ordered():
    t = BPlusTree(order=4)
    import random

    keys = list(range(0, 200, 2))
    random.Random(1).shuffle(keys)
    for k in keys:
        t.insert(k, k * 10)
    got = list(t.range(50, 70))
    assert got == [(k, k * 10) for k in range(50, 70, 2)]


def test_btree_range_empty():
    t = BPlusTree()
    assert list(t.range(0, 100)) == []


def test_btree_delete():
    t = BPlusTree(order=4)
    for k in range(50):
        t.insert(k, k)
    assert t.delete(25)
    assert t.get(25) is None
    assert not t.delete(25)
    assert len(t) == 49


def test_btree_min_key_and_items():
    t = BPlusTree(order=4)
    for k in (5, 3, 9, 1):
        t.insert(k, str(k))
    assert t.min_key() == 1
    assert [k for k, _ in t.items()] == [1, 3, 5, 9]


def test_btree_op_cost_grows_with_height():
    small = BPlusTree(order=4)
    small.insert(1, 1)
    big = BPlusTree(order=4)
    for k in range(1000):
        big.insert(k, k)
    assert big.op_cost_us() > small.op_cost_us()


def test_btree_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


@settings(max_examples=30, deadline=None)
@given(kv=st.dictionaries(st.integers(), st.integers(), min_size=1, max_size=300))
def test_btree_property_matches_dict(kv):
    t = BPlusTree(order=6)
    for k, v in kv.items():
        t.insert(k, v)
    assert len(t) == len(kv)
    for k, v in kv.items():
        assert t.get(k) == v
    assert [k for k, _ in t.items()] == sorted(kv)


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10**6), unique=True,
                  min_size=5, max_size=200),
    data=st.data(),
)
def test_btree_property_delete_consistency(keys, data):
    t = BPlusTree(order=5)
    for k in keys:
        t.insert(k, k)
    victims = data.draw(st.lists(st.sampled_from(keys), unique=True, max_size=len(keys)))
    for v in victims:
        assert t.delete(v)
    live = sorted(set(keys) - set(victims))
    assert [k for k, _ in t.items()] == live


# ---------------------------------------------------------------------------
# HostLog
# ---------------------------------------------------------------------------


def make_record(txn_id=1, kind="log", n_writes=2):
    return LogRecord(txn_id, kind, shard=0,
                     writes=[(k, "v", 1) for k in range(n_writes)])


def test_log_append_poll_ack_cycle():
    log = HostLog(capacity_records=8)
    rec = make_record()
    assert log.append(rec)
    assert log.pending == 1
    batch = log.poll()
    assert batch == [rec]
    assert log.pending == 0
    log.ack(rec)
    assert log.acked == 1
    assert log.in_log == 0


def test_log_backpressure_when_full():
    log = HostLog(capacity_records=2)
    r1, r2, r3 = make_record(1), make_record(2), make_record(3)
    assert log.append(r1)
    assert log.append(r2)
    assert not log.append(r3)  # full
    log.poll()
    log.ack(r1)
    assert log.append(r3)  # space reclaimed


def test_log_ack_handler_fires():
    log = HostLog()
    acked = []
    log.set_ack_handler(lambda rec: acked.append(rec.txn_id))
    rec = make_record(txn_id=42)
    log.append(rec)
    log.poll()
    log.ack(rec)
    assert acked == [42]


def test_log_double_ack_raises():
    log = HostLog()
    rec = make_record()
    log.append(rec)
    log.poll()
    log.ack(rec)
    with pytest.raises(RuntimeError):
        log.ack(rec)


def test_log_out_of_order_ack_reclaims_prefix_only():
    log = HostLog()
    r1, r2 = make_record(1), make_record(2)
    log.append(r1)
    log.append(r2)
    log.poll(max_records=2)
    log.ack(r2)
    assert log.in_log == 2  # r1 still holds the prefix
    log.ack(r1)
    assert log.in_log == 0


def test_log_poll_batch_limit():
    log = HostLog()
    recs = [make_record(i) for i in range(10)]
    for r in recs:
        log.append(r)
    assert len(log.poll(max_records=4)) == 4
    assert len(log.poll(max_records=4)) == 4
    assert len(log.poll(max_records=4)) == 2


def test_record_size_accounting():
    assert record_size_bytes(0, 64) == 24
    assert record_size_bytes(3, 64) == 24 + 3 * 80
    rec = make_record(n_writes=2)
    assert rec.size_bytes == 24 + 2 * (16 + 8)


def test_log_capacity_validation():
    with pytest.raises(ValueError):
        HostLog(capacity_records=0)
