"""Tests for multi-shot transactions (§4.2 step 3): execution rounds that
extend the read/write sets based on values already read."""

import pytest

from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.core.txn import NeedMoreKeys
from repro.sim import Simulator


def make_cluster(n_nodes=3, config=None):
    sim = Simulator()
    cluster = XenicCluster(sim, n_nodes, config=config or XenicConfig(),
                           keys_per_shard=256, value_size=64)
    for k in range(n_nodes * 64):
        cluster.load_key(k, value=("init", k))
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proc = sim.spawn(cluster.protocols[node_id].run_transaction(spec))
    return sim.run_until_event(proc, limit=1e7)


def pointer_chase_spec(first_key, second_key, label="chase"):
    """Round 1 reads a 'pointer' key; round 2 follows it and writes."""

    def logic(reads, state):
        if second_key not in reads:
            return NeedMoreKeys(read_keys=[second_key],
                                write_keys=[second_key])
        return {second_key: ("followed-from", first_key)}

    return TxnSpec(read_keys=[first_key], write_keys=[], logic=logic,
                   single_round=False, label=label)


def test_multishot_pointer_chase_commits():
    sim, cluster = make_cluster()
    first, second = 1, 5  # shards 1 and 2
    txn = run_txn(sim, cluster, 0, pointer_chase_spec(first, second))
    sim.run()
    assert cluster.read_committed_value(second) == ("followed-from", first)
    assert cluster.protocols[0].stats.get("multi_shot_rounds") == 1
    assert second in txn.read_values


def test_multishot_never_uses_multihop():
    sim, cluster = make_cluster()
    txn = run_txn(sim, cluster, 0, pointer_chase_spec(1, 4))  # both shard 1
    sim.run()
    assert cluster.protocols[0].stats.get("multihop") == 0


def test_multishot_local_keys_still_distributed_path():
    """single_round=False forces the coordinator-NIC path even when the
    initial keys are local, since later rounds may go remote."""
    sim, cluster = make_cluster()
    txn = run_txn(sim, cluster, 0, pointer_chase_spec(0, 4))
    sim.run()
    assert cluster.read_committed_value(4) == ("followed-from", 0)


def test_multishot_three_rounds():
    sim, cluster = make_cluster()
    chain = [1, 2, 3]  # spread over all shards

    def logic(reads, state):
        # write-only keys appear with value None until explicitly read
        for k in chain:
            if reads.get(k) is None:
                return NeedMoreKeys(read_keys=[k])
        return {chain[-1]: ("end", sum(1 for k in chain
                                       if reads.get(k) is not None))}

    spec = TxnSpec(read_keys=[chain[0]], write_keys=[chain[-1]],
                   logic=logic, single_round=False)
    txn = run_txn(sim, cluster, 0, spec)
    sim.run()
    assert cluster.protocols[0].stats.get("multi_shot_rounds") == 2
    assert cluster.read_committed_value(3) == ("end", 3)


def test_multishot_host_execution_rounds():
    """Each round pays a PCIe roundtrip when NIC execution is disabled."""
    config = XenicConfig(nic_execution=False)
    sim, cluster = make_cluster(config=config)
    txn = run_txn(sim, cluster, 0, pointer_chase_spec(1, 5))
    sim.run()
    proto = cluster.protocols[0]
    assert proto.stats.get("host_executions") == 2  # one per round
    assert cluster.read_committed_value(5) == ("followed-from", 1)


def test_multishot_added_write_lock_conflict_retries():
    sim, cluster = make_cluster()
    second = 5
    idx = cluster.nodes[2].index
    idx.try_lock(second, txn_id=31337)

    def writer():
        txn = yield from cluster.protocols[0].run_transaction(
            pointer_chase_spec(1, second))
        return txn

    proc = sim.spawn(writer())
    sim.run(until=100.0)
    assert not proc.triggered
    idx.unlock(second, 31337)
    txn = sim.run_until_event(proc, limit=1e7)
    assert txn.attempts > 1
    sim.run()
    assert cluster.read_committed_value(second) == ("followed-from", 1)


def test_multishot_readonly_dependent_reads():
    """A read-only dependent read (order-status style) commits without
    any write traffic."""
    sim, cluster = make_cluster()
    first, second = 1, 2

    def logic(reads, state):
        if second not in reads:
            return NeedMoreKeys(read_keys=[second])
        return {}

    spec = TxnSpec(read_keys=[first], write_keys=[], logic=logic,
                   single_round=False, read_only=True)
    txn = run_txn(sim, cluster, 0, spec)
    assert txn.read_values[second][0] == ("init", second)
    assert txn.read_only


def test_multishot_validates_all_rounds_reads():
    """Reads from earlier rounds are still validated at commit: mutate a
    round-1 key after it was read, before commit -> retry."""
    sim, cluster = make_cluster()
    first, second = 1, 5
    attempts = []

    def slow_logic(reads, state):
        if second not in reads:
            return NeedMoreKeys(read_keys=[second], write_keys=[second])
        return {second: "final"}

    spec = TxnSpec(read_keys=[first], write_keys=[], logic=slow_logic,
                   single_round=False)

    def interferer():
        # bump `first`'s version while the multi-shot txn is in flight
        yield cluster.sim.timeout(3.0)
        yield from cluster.protocols[1].run_transaction(
            TxnSpec(read_keys=[first], write_keys=[first],
                    logic=lambda r, s: {first: "interfered"}))

    sim = cluster.sim
    proc = sim.spawn(cluster.protocols[0].run_transaction(spec))
    sim.spawn(interferer())
    txn = sim.run_until_event(proc, limit=1e7)
    sim.run()
    # both txns committed; serializability preserved either way
    assert cluster.read_committed_value(second) == "final"
    assert cluster.read_committed_value(first) == "interfered"


def test_reset_for_retry_clears_extras():
    from repro.core.txn import Transaction, make_txn_id

    spec = TxnSpec(read_keys=[1], write_keys=[], single_round=False)
    txn = Transaction(make_txn_id(0, 1), 0, spec)
    txn.add_keys(NeedMoreKeys(read_keys=[2], write_keys=[3]))
    assert txn.effective_read_keys() == [1, 2]
    assert txn.effective_write_keys() == [3]
    assert not txn.read_only
    txn.reset_for_retry()
    assert txn.effective_read_keys() == [1]
    assert txn.read_only


def test_add_keys_dedupes():
    from repro.core.txn import Transaction, make_txn_id

    spec = TxnSpec(read_keys=[1], write_keys=[2], single_round=False)
    txn = Transaction(make_txn_id(0, 1), 0, spec)
    txn.add_keys(NeedMoreKeys(read_keys=[1, 4], write_keys=[2, 4]))
    assert txn.effective_read_keys() == [1, 4]
    assert txn.effective_write_keys() == [2, 4]
