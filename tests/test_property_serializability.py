"""Property-style serializability checks against a reference model.

OCC + primary-backup must be equivalent to *some* serial order.  For
commutative increment workloads the final state is order-independent, so
we can check exact equality with a reference ledger; for version counters,
the count of committed writes per key must match the final version.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.sim import Simulator

N_NODES = 3
KEYS = 30


def build():
    sim = Simulator()
    cluster = XenicCluster(sim, N_NODES, config=XenicConfig(),
                           keys_per_shard=128, value_size=16)
    for k in range(KEYS):
        cluster.load_key(k, value=0)
    cluster.start()
    return sim, cluster


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=N_NODES - 1),  # coordinator
            st.lists(st.integers(min_value=0, max_value=KEYS - 1),
                     unique=True, min_size=1, max_size=4),  # keys
            st.integers(min_value=1, max_value=9),  # increment
        ),
        min_size=1, max_size=40,
    )
)
def test_concurrent_increments_match_reference(ops):
    """All transactions increment their keys; increments commute, so the
    final state must equal the reference ledger regardless of commit
    order — any lost update or double-apply breaks this."""
    sim, cluster = build()
    reference = {k: 0 for k in range(KEYS)}
    for _coord, keys, amount in ops:
        for k in keys:
            reference[k] += amount

    def run_op(coord, keys, amount):
        def logic(reads, state, keys=tuple(keys), amount=amount):
            return {k: reads[k] + amount for k in keys}

        spec = TxnSpec(read_keys=list(keys), write_keys=list(keys),
                       logic=logic)
        yield from cluster.protocols[coord].run_transaction(spec)

    for coord, keys, amount in ops:
        sim.spawn(run_op(coord, keys, amount))
    sim.run()
    for k in range(KEYS):
        assert cluster.read_committed_value(k) == reference[k], (
            "key %d diverged" % k
        )


@settings(max_examples=8, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=N_NODES - 1),
            st.integers(min_value=0, max_value=KEYS - 1),
        ),
        min_size=1, max_size=30,
    )
)
def test_version_counter_equals_committed_writes(ops):
    sim, cluster = build()
    writes_per_key = {}
    for _coord, k in ops:
        writes_per_key[k] = writes_per_key.get(k, 0) + 1

    def run_op(coord, k):
        spec = TxnSpec(read_keys=[k], write_keys=[k],
                       logic=lambda r, s, k=k: {k: (r[k] or 0) + 1})
        yield from cluster.protocols[coord].run_transaction(spec)

    for coord, k in ops:
        sim.spawn(run_op(coord, k))
    sim.run()
    for k, count in writes_per_key.items():
        shard = cluster.shard_of(k)
        node = cluster.primary_of(shard)
        assert node.index_for(shard).read_version(k) == count
        # host table caught up after drain
        assert node.tables[shard].get_object(k).version == count
