"""Edge-case tests for the Xenic protocol: back-pressure, large objects,
cache eviction under pressure, ship-abort paths, and config variants."""

import pytest

from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.sim import Simulator


def make_cluster(n_nodes=3, config=None, keys=64, value_size=64):
    sim = Simulator()
    cluster = XenicCluster(sim, n_nodes, config=config or XenicConfig(),
                           keys_per_shard=256, value_size=value_size)
    for k in range(n_nodes * keys):
        cluster.load_key(k, value=("init", k))
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proc = sim.spawn(cluster.protocols[node_id].run_transaction(spec))
    return sim.run_until_event(proc, limit=1e7)


def test_log_backpressure_recovers():
    """A tiny log forces append retries; commits still succeed."""
    config = XenicConfig(log_capacity=2)
    sim, cluster = make_cluster(config=config)
    for i in range(8):
        k = 1 + 3 * (i % 4)
        run_txn(sim, cluster, 0,
                TxnSpec(read_keys=[k], write_keys=[k],
                        logic=lambda r, s, i=i: {k: i}))
    sim.run()
    bp = sum(p.stats.get("log_backpressure") for p in cluster.protocols)
    commits = sum(p.stats.get("commits") for p in cluster.protocols)
    assert commits == 8
    for node in cluster.nodes:
        assert node.log.in_log == 0


def test_large_objects_roundtrip():
    """Objects above the 256B threshold use the pointer-chase DMA path."""
    sim, cluster = make_cluster(value_size=660)
    # evict from cache so reads must touch host memory
    k = 1
    cluster.nodes[1].index._cache.clear()
    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k], write_keys=[k],
                          logic=lambda r, s: {k: "big-write"}))
    sim.run()
    assert cluster.read_committed_value(k) == "big-write"


def test_tiny_cache_evicts_and_still_correct():
    config = XenicConfig(nic_cache_capacity=4, multihop_occ=False)
    sim, cluster = make_cluster(config=config)
    keys = [1 + 3 * i for i in range(12)]  # all shard 1
    for i, k in enumerate(keys):
        run_txn(sim, cluster, 0,
                TxnSpec(read_keys=[k], write_keys=[k],
                        logic=lambda r, s, i=i: {k: ("gen", i)}))
    sim.run()
    idx = cluster.nodes[1].index
    assert idx.evictions > 0
    for i, k in enumerate(keys):
        assert cluster.read_committed_value(k) == ("gen", i)


def test_ship_abort_releases_everything():
    """EXEC_SHIP hitting a held write lock aborts cleanly and retries."""
    sim, cluster = make_cluster()
    k_local, k_remote = 0, 1
    idx = cluster.nodes[1].index
    idx.try_lock(k_remote, txn_id=424242)

    def writer():
        spec = TxnSpec(read_keys=[k_local, k_remote],
                       write_keys=[k_local, k_remote],
                       logic=lambda r, s: {k_local: "a", k_remote: "b"})
        txn = yield from cluster.protocols[0].run_transaction(spec)
        return txn

    proc = sim.spawn(writer())
    sim.run(until=100.0)
    assert not proc.triggered  # stuck retrying behind the foreign lock
    # local key must not be left locked between retries
    meta = cluster.nodes[0].index._meta.get(k_local)
    assert meta is None or meta.lock_owner is None
    idx.unlock(k_remote, 424242)
    txn = sim.run_until_event(proc, limit=1e7)
    assert txn.attempts > 1
    sim.run()
    assert cluster.read_committed_value(k_remote) == "b"


def test_readonly_multishard_validate_conflict_retries():
    sim, cluster = make_cluster()
    k1, k2 = 1, 2
    # hold a write lock on k2 so the reader's validate/inline check fails
    idx = cluster.nodes[2].index
    idx.try_lock(k2, txn_id=777777)

    def reader():
        txn = yield from cluster.protocols[0].run_transaction(
            TxnSpec(read_keys=[k1, k2], write_keys=[], read_only=True))
        return txn

    proc = sim.spawn(reader())
    sim.run(until=80.0)
    assert not proc.triggered
    idx.unlock(k2, 777777)
    txn = sim.run_until_event(proc, limit=1e7)
    assert txn.attempts > 1


def test_external_state_shipped_with_txn():
    sim, cluster = make_cluster()
    k = 1

    def logic(reads, state):
        return {k: ("stamped", state)}

    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k], write_keys=[k], logic=logic,
                          external_state={"user": 42},
                          external_state_bytes=64))
    sim.run()
    assert cluster.read_committed_value(k) == ("stamped", {"user": 42})


def test_ship_execution_false_runs_on_coordinator():
    config = XenicConfig()
    sim, cluster = make_cluster(config=config)
    k = 1
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "host-run"},
                    ship_execution=False))
    sim.run()
    # no multihop, no NIC/shipped execution for this txn
    assert cluster.protocols[0].stats.get("multihop") == 0
    assert cluster.protocols[1].stats.get("shipped_executions") == 0
    assert cluster.read_committed_value(k) == "host-run"


def test_write_bytes_shrinks_log_records():
    """Delta-sized writes produce smaller wire/log footprints."""
    sim1, c1 = make_cluster(value_size=320)
    run_txn(sim1, c1, 0, TxnSpec(read_keys=[1], write_keys=[1],
                                 logic=lambda r, s: {1: "x"}))
    sim1.run()
    full = sum(n.nic.port.bytes_sent for n in c1.nodes)

    sim2, c2 = make_cluster(value_size=320)
    run_txn(sim2, c2, 0, TxnSpec(read_keys=[1], write_keys=[1],
                                 logic=lambda r, s: {1: "x"},
                                 write_bytes=16))
    sim2.run()
    delta = sum(n.nic.port.bytes_sent for n in c2.nodes)
    assert delta < full


def test_replication_factor_one_no_log_traffic():
    config = XenicConfig(replication_factor=1)
    sim, cluster = make_cluster(config=config)
    k = 1
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[k],
                                     logic=lambda r, s: {k: "solo"}))
    sim.run()
    assert cluster.read_committed_value(k) == "solo"
    # no backups: LOG phase has no targets
    for node in cluster.nodes:
        for rec in []:
            pass
        assert all(rec.kind != "log" for rec in node.log._records)


def test_single_node_cluster_local_only():
    sim = Simulator()
    cluster = XenicCluster(sim, 1, config=XenicConfig(replication_factor=1),
                           keys_per_shard=128)
    for k in range(32):
        cluster.load_key(k, value=k)
    cluster.start()
    proc = sim.spawn(cluster.protocols[0].run_transaction(
        TxnSpec(read_keys=[3], write_keys=[3],
                logic=lambda r, s: {3: r[3] + 1})))
    txn = sim.run_until_event(proc, limit=1e7)
    sim.run()
    assert cluster.read_committed_value(3) == 4
    assert cluster.protocols[0].stats.get("local_readonly") == 0


def test_insert_new_key_via_transaction():
    """Writing a key that was never loaded inserts it at commit time."""
    sim, cluster = make_cluster()
    new_key = 3 * 1000 + 1  # shard 1, never loaded
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[], write_keys=[new_key],
                    logic=lambda r, s: {new_key: "fresh"}))
    sim.run()
    assert cluster.read_committed_value(new_key) == "fresh"
    obj = cluster.nodes[1].tables[1].get_object(new_key)
    assert obj is not None and obj.version == 1
