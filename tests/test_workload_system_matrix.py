"""Integration matrix: every workload runs on every system.

Tiny-scale runs that catch cross-cutting regressions (a protocol change
breaking one workload shape, a workload change breaking one baseline).
"""

import pytest

from repro.bench import Bench
from repro.workloads import Retwis, Smallbank, TpccFull, TpccNewOrder

SYSTEMS = ("xenic", "drtmh", "drtmh_nc", "fasst", "drtmr")


def tiny_workload(name):
    if name == "tpcc_no":
        return TpccNewOrder(3, warehouses_per_server=2,
                            stock_per_warehouse=150,
                            customers_per_warehouse=10)
    if name == "tpcc":
        wl = TpccFull(3, warehouses_per_server=2, stock_per_warehouse=150,
                      customers_per_warehouse=10)
        wl.counted_label = "new_order"
        return wl
    if name == "retwis":
        return Retwis(3, keys_per_server=1200)
    return Smallbank(3, accounts_per_server=800, hot_keys_fraction=0.25)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("workload", ("tpcc_no", "tpcc", "retwis", "smallbank"))
def test_matrix(system, workload):
    bench = Bench(system, tiny_workload(workload), n_nodes=3)
    r = bench.measure(3, warmup_us=60, window_us=200)
    assert r.commits > 0, "%s/%s made no progress" % (system, workload)
    assert r.median_latency_us > 0 or r.throughput_per_server == 0
    # protocol plumbing sanity: no misrouted responses or acks (in-flight
    # transactions legitimately hold locks while the closed loop runs, so
    # lock state is not checked here)
    if system == "xenic":
        for proto in bench.cluster.protocols:
            assert proto.stats.get("stray_responses") == 0
            assert proto.stats.get("stray_done") == 0
            assert proto.stats.get("stray_log_acks") == 0
