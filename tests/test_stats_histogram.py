"""LogHistogram percentile accuracy against an exact reference."""

import random

import pytest

from repro.sim.stats import (LatencyRecorder, LogHistogram,
                             percentile_of_sorted)

QUANTILES = (50.0, 90.0, 99.0, 99.9)
# Geometric buckets with growth 1.01 bound the quantile's relative error
# by ~1%; 2% leaves headroom for the bucket-mean representative.
REL_ERR = 0.02


def check_against_reference(values):
    hist = LogHistogram()
    for v in values:
        hist.add(v)
    ref = sorted(values)
    for q in QUANTILES:
        exact = percentile_of_sorted(ref, q)
        approx = hist.percentile(q)
        assert approx == pytest.approx(exact, rel=REL_ERR), (
            "p%g: %.4f vs exact %.4f" % (q, approx, exact))


def test_percentiles_uniform():
    rng = random.Random(1)
    check_against_reference([rng.uniform(1.0, 1000.0) for _ in range(20000)])


def test_percentiles_exponential():
    rng = random.Random(2)
    check_against_reference([rng.expovariate(1 / 50.0) + 1e-3
                             for _ in range(20000)])


def test_percentiles_bimodal():
    # fast path vs slow path: the shape attribution/SLO latencies take
    rng = random.Random(3)
    values = []
    for _ in range(20000):
        if rng.random() < 0.9:
            values.append(rng.gauss(8.0, 1.0) or 1e-3)
        else:
            values.append(rng.gauss(200.0, 20.0))
    check_against_reference([max(v, 1e-3) for v in values])


def test_percentile_identical_values_exact():
    hist = LogHistogram()
    for _ in range(100):
        hist.add(42.0)
    for q in QUANTILES:
        assert hist.percentile(q) == pytest.approx(42.0)


def test_overflow_underflow_buckets():
    hist = LogHistogram(min_value=1.0, max_value=100.0)
    hist.add(0.5)  # underflow
    hist.add(1e6)  # overflow
    assert hist.count == 2
    assert hist.percentile(0.0) == pytest.approx(0.5)
    assert hist.percentile(100.0) == pytest.approx(1e6)


def test_recorder_p999_and_summary():
    rec = LatencyRecorder()
    for i in range(1, 10001):
        rec.record(float(i))
    assert rec.p999 == pytest.approx(9990.0, rel=REL_ERR)
    s = rec.summary()
    assert set(s) == {"count", "mean", "p50", "p99", "p999"}
    assert s["count"] == 10000
    assert s["p50"] <= s["p99"] <= s["p999"]
    assert s["mean"] == pytest.approx(5000.5)
