"""Open-loop SLO harness: arrivals, admission queueing, knee detection."""

import dataclasses

import pytest

from repro.bench.runner import Bench
from repro.bench.slo import (OpenLoopBench, SloPoint, SloSpec, detect_knee,
                             format_slo_report, run_slo_point,
                             run_slo_points, slo_report)
from repro.workloads import Smallbank


def spec(**kw):
    base = dict(system="xenic", workload="smallbank",
                loads_per_node_s=(100000.0,), n_nodes=3,
                warmup_us=60.0, window_us=200.0, seed=7)
    base.update(kw)
    return SloSpec(**base)


def test_open_loop_point_is_deterministic():
    a = run_slo_point(spec(), 200000.0)
    b = run_slo_point(spec(), 200000.0)
    assert a == b
    assert a.commits > 0
    assert a.p50_us > 0
    assert a.p999_us >= a.p99_us >= a.p50_us


def test_parallel_points_match_serial():
    s = spec(loads_per_node_s=(100000.0, 400000.0))
    serial = run_slo_points(s, jobs=1)
    parallel = run_slo_points(s, jobs=2)
    assert serial == parallel
    assert len(serial) == 2


def test_latency_grows_with_offered_load():
    s = spec(loads_per_node_s=(50000.0, 1500000.0), window_us=300.0)
    lo, hi = run_slo_points(s, jobs=1)
    assert hi.achieved_per_node_s > lo.achieved_per_node_s
    assert hi.p99_us >= lo.p99_us


def test_admission_queue_wait_measured():
    # one worker per node under heavy load: arrivals must queue
    s = spec(max_inflight=1, window_us=300.0)
    p = run_slo_point(s, 1000000.0)
    assert p.queue_p99_us > 0.0
    assert p.backlog > 0
    # sojourn includes the queue wait
    assert p.p99_us >= p.queue_p99_us


def test_queue_waits_exposed_for_attribution():
    bench = OpenLoopBench(spec(max_inflight=1), 800000.0)
    point = bench.measure()
    assert point.commits > 0
    assert bench.queue_waits
    assert all(w >= 0.0 for w in bench.queue_waits.values())


def test_bursty_arrivals_and_validation():
    p = run_slo_point(spec(arrival="bursty"), 300000.0)
    assert p.arrival == "bursty"
    assert p.commits > 0
    with pytest.raises(ValueError):
        spec(arrival="bursty", burst_factor=4.0, burst_fraction=0.3)
    with pytest.raises(ValueError):
        spec(arrival="weibull")


def test_detect_knee():
    def pt(load, p99, achieved=None):
        return SloPoint(
            system="xenic", workload="smallbank", arrival="poisson",
            offered_per_node_s=load, arrived_per_node_s=load,
            achieved_per_node_s=achieved if achieved is not None else load,
            p50_us=p99 / 2, p99_us=p99, p999_us=p99 * 2, mean_us=p99 / 2,
            queue_mean_us=0.0, queue_p99_us=0.0, commits=100, aborts=0,
            backlog=0, window_us=500.0)

    points = [pt(100.0, 10.0), pt(200.0, 40.0), pt(400.0, 300.0)]
    knee = detect_knee(points, slo_p99_us=100.0)
    assert knee.offered_per_node_s == 200.0
    # a point that sheds load cannot be the knee even with a flattering p99
    points = [pt(100.0, 10.0), pt(200.0, 20.0, achieved=50.0)]
    knee = detect_knee(points, slo_p99_us=100.0)
    assert knee.offered_per_node_s == 100.0
    assert detect_knee([pt(100.0, 900.0)], slo_p99_us=100.0) is None


def test_slo_report_round_trip():
    s = spec(loads_per_node_s=(100000.0, 400000.0))
    points = run_slo_points(s, jobs=1)
    report = slo_report(s, points, slo_p99_us=150.0)
    assert len(report["points"]) == 2
    assert report["points"][0]["offered_per_node_s"] == 100000.0
    text = format_slo_report(report)
    assert "SLO sweep" in text and "SLO knee" in text
    import json

    json.dumps(report)  # must be JSON-clean


def test_open_loop_abort_accounting():
    # small hot set to force conflicts
    s = spec(workload="smallbank", window_us=300.0)
    bench = OpenLoopBench(dataclasses.replace(s), 1200000.0)
    point = bench.measure()
    assert point.aborts == sum(bench.abort_reasons.values())
    if point.aborts:
        assert "abort_p99_us" in point.extra


def test_closed_loop_bench_abort_recorder():
    wl = Smallbank(3, accounts_per_server=1500, hot_keys_fraction=0.25,
                   seed=7)
    bench = Bench("xenic", wl, n_nodes=3, seed=7)
    result = bench.measure(8, warmup_us=60.0, window_us=300.0)
    # attached as plain attributes, not dataclass fields (digest safety)
    assert "abort_latency" not in [
        f.name for f in dataclasses.fields(result)]
    assert result.abort_latency["count"] == result.aborts
    assert sum(result.abort_reasons.values()) == result.aborts
    if result.aborts:
        assert result.abort_latency["p99"] > 0.0


def test_slo_cli_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "slo.json"
    rc = main(["slo", "--loads", "100000,400000", "--window", "150",
               "--warmup", "40", "--seed", "7", "--json", str(out)])
    assert rc == 0
    assert out.exists()
    text = capsys.readouterr().out
    assert "SLO sweep" in text


def test_attrib_cli_smoke(capsys):
    from repro.__main__ import main

    rc = main(["attrib", "--workload", "smallbank", "--nodes", "3",
               "--concurrency", "3", "--warmup", "40", "--window", "120"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "latency attribution" in text
    assert "max per-txn residual" in text
