"""Chaos-driven correctness tests for the fault-injection layer.

Three families of guarantees:

* **property** — under message drop/delay/dup/reorder schedules, every
  transaction resolves (no limbo) and the committed history is
  serializable (commuting increments must sum exactly);
* **recovery** — crashing a primary at a randomized instant mid-workload,
  the RecoveryManager resolves every in-flight transaction by the
  log-reached-all-surviving-backups rule, releases the rebuilt locks, and
  the promoted shard serves new transactions;
* **determinism** — a seed fully determines the run: same-seed reruns
  produce byte-identical fault traces and identical commit/abort counts.
"""

import pytest

from repro.bench.chaos import DEFAULT_CHAOS_FAULTS, run_chaos
from repro.core import RecoveryManager, TxnSpec, XenicCluster, XenicConfig
from repro.sim import RngStream, Simulator
from repro.sim.faults import CrashEvent, FaultPlan, FaultSpec

# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------


def test_fault_spec_parse_grammar():
    spec = FaultSpec.parse("drop=0.02,dup=0.01,delay=0.05:8,crash=800@1:2000")
    assert spec.drop == 0.02
    assert spec.dup == 0.01
    assert spec.delay == 0.05 and spec.delay_mean_us == 8.0
    assert spec.crashes == (CrashEvent(800.0, 1, 2000.0),)


def test_fault_spec_parse_rejects_unknown_and_bad_probs():
    with pytest.raises(ValueError):
        FaultSpec.parse("gremlins=0.5")
    with pytest.raises(ValueError):
        FaultSpec.parse("drop=1.5")
    with pytest.raises(ValueError):
        FaultSpec.parse("drop")


def test_fault_spec_crash_without_restart():
    spec = FaultSpec.parse("crash=100@2,recovery_delay=50")
    assert spec.crashes == (CrashEvent(100.0, 2, None),)
    assert spec.recovery_delay_us == 50.0
    assert not spec.any_message_faults


# ---------------------------------------------------------------------------
# satellite 1: property test — no limbo + serializability under message
# faults, across 20+ seeds
# ---------------------------------------------------------------------------

PROPERTY_SEEDS = range(1, 23)


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
def test_chaos_no_limbo_and_serializable(seed):
    """Every transaction commits or aborts-and-retries to commit (no
    limbo), and the final state equals the reference ledger, under a
    drop+dup+delay+reorder schedule."""
    result = run_chaos(seed=seed, faults=DEFAULT_CHAOS_FAULTS, n_txns=30)
    assert result.ok, "\n".join(result.violations)
    assert result.limbo == 0
    assert result.commits == 30


def test_chaos_actually_injects_faults():
    """The 20-seed sweep is vacuous if the plan never fires; check the
    aggregate fault volume across the same seeds."""
    total = {}
    for seed in PROPERTY_SEEDS:
        trace = run_chaos(seed=seed, faults=DEFAULT_CHAOS_FAULTS,
                          n_txns=30).trace
        for kind, n in trace.counts.items():
            total[kind] = total.get(kind, 0) + n
    for kind in ("drop", "dup", "delay", "reorder"):
        assert total.get(kind, 0) > 0, "no %s faults across all seeds" % kind


def test_chaos_baseline_system_under_rdma_faults():
    result = run_chaos(system="drtmh", seed=11,
                       faults="rdma=0.05:8,stall=0.02:2", n_txns=25)
    assert result.ok, "\n".join(result.violations)
    assert result.trace.counts.get("rdma-fail", 0) > 0


def test_chaos_crash_on_baseline_rejected():
    with pytest.raises(ValueError):
        run_chaos(system="fasst", seed=1, faults="crash=100@1", n_txns=5)


# ---------------------------------------------------------------------------
# satellite 2: recovery chaos — crash a primary at a randomized instant
# ---------------------------------------------------------------------------

RECOVERY_SEEDS = range(1, 9)
VICTIM = 1


def _recovery_chaos(seed):
    """Run an increment workload against shard VICTIM, crash its primary
    at a seed-randomized instant, drive recovery manually (so the
    surviving-log state can be snapshotted at the crash), and return
    (cluster, plan, report, shard_keys)."""
    rng = RngStream(seed, "recovery-chaos")
    sim = Simulator()
    # slow workers widen the appended-but-unacked log window, so crashes
    # reliably catch transactions mid-commit
    cluster = XenicCluster(
        sim, 4,
        config=XenicConfig(replication_factor=3, worker_apply_us=5.0),
        keys_per_shard=128, value_size=16,
    )
    shard_keys = [k for k in range(64) if cluster.shard_of(k) == VICTIM][:8]
    for k in shard_keys:
        cluster.load_key(k, value=0)
    cluster.start()
    rm = RecoveryManager(cluster)
    plan = FaultPlan(FaultSpec(), RngStream(seed, "faults"))
    plan.install(cluster, recovery=rm)

    def txn_proc(coord, key, amount, start):
        yield sim.timeout(start)
        spec = TxnSpec(
            read_keys=[key], write_keys=[key],
            logic=lambda r, s, k=key, a=amount: {k: (r[k] or 0) + a})
        yield from cluster.protocols[coord].run_transaction(spec)

    coords = [0, 2, 3]  # never the victim
    for i in range(24):
        sim.spawn(txn_proc(coords[rng.randrange(3)],
                           shard_keys[rng.randrange(len(shard_keys))],
                           rng.randint(1, 9),
                           rng.uniform(0.0, 120.0)),
                  name="rc-txn-%d" % i)

    crash_at = rng.uniform(20.0, 200.0)
    out = {}

    def crasher():
        yield sim.timeout(crash_at)
        plan.crash_node(VICTIM)
        # snapshot the surviving unacked LOG records *at the crash
        # instant* (no yields until recover_shard, so this is atomic in
        # simulated time) and cross-check the resolution rule
        survivors = [n for n in cluster.nodes[VICTIM].backups_of(VICTIM)
                     if n not in cluster.failed]
        pending = {}
        for nid in survivors:
            for rec in cluster.nodes[nid].log._records:
                if rec.shard == VICTIM and rec.kind == "log" \
                        and not rec.acked:
                    pending.setdefault(rec.txn_id, set()).add(nid)
        out["pending"] = pending
        out["survivors"] = survivors
        out["report"] = rm.recover_shard(VICTIM)

    sim.spawn(crasher(), name="rc-crash")
    sim.run(until=50_000.0)

    report = out["report"]
    survivors = set(out["survivors"])
    pending = out["pending"]
    expected_commit = {t for t, got in pending.items() if got >= survivors}
    # the log-reached-all-surviving-backups rule, against the snapshot
    assert set(report.recovering_txns) == set(pending)
    assert set(report.committed) == expected_commit
    assert set(report.aborted) == set(pending) - expected_commit
    return sim, cluster, plan, report, shard_keys


@pytest.mark.parametrize("seed", RECOVERY_SEEDS)
def test_recovery_chaos_resolves_and_serves(seed):
    sim, cluster, plan, report, shard_keys = _recovery_chaos(seed)
    # promotion happened and the locks rebuilt during recovery are gone
    new_primary = cluster.primary_node_id(VICTIM)
    assert new_primary != VICTIM
    assert new_primary == report.new_primary
    index = cluster.nodes[new_primary].index_for(VICTIM)
    for k in shard_keys:
        assert not index.is_locked(k), "key %d still locked" % k
    # the promoted shard serves a fresh transaction
    k = shard_keys[0]
    spec = TxnSpec(read_keys=[k], write_keys=[k],
                   logic=lambda r, s: {k: "post-recovery"})
    proc = sim.spawn(cluster.protocols[0].run_transaction(spec))
    txn = sim.run_until_event(proc, limit=sim.now + 1e6)
    assert txn.status.value == "committed"
    sim.run()  # the commit is reported before the COMMIT phase applies
    assert cluster.read_committed_value(k) == "post-recovery"


def test_recovery_chaos_catches_inflight_txns():
    """The randomized crash instants must actually interrupt commits in
    at least one seed — otherwise the resolution-rule assertions above
    never exercise a non-empty recovery."""
    caught = 0
    for seed in RECOVERY_SEEDS:
        _sim, _cluster, _plan, report, _keys = _recovery_chaos(seed)
        caught += len(report.recovering_txns)
    assert caught > 0


def test_scheduled_crash_with_restart_rejoins():
    """A spec-scheduled crash auto-recovers the shard and the restarted
    node re-registers its lease."""
    result = run_chaos(seed=6, faults="drop=0.02,crash=300@1:5000",
                       n_txns=25, n_nodes=4)
    trace = result.trace
    assert trace.counts.get("crash") == 1
    assert trace.counts.get("recover", 0) >= 1
    assert trace.counts.get("restart") == 1


# ---------------------------------------------------------------------------
# satellite 3: determinism regression
# ---------------------------------------------------------------------------


def test_same_seed_reproduces_trace_and_counts():
    """Two same-seed runs are bit-identical: byte-equal fault traces and
    equal commit/abort totals."""
    a = run_chaos(seed=42, faults=DEFAULT_CHAOS_FAULTS, n_txns=30)
    b = run_chaos(seed=42, faults=DEFAULT_CHAOS_FAULTS, n_txns=30)
    assert a.trace.format() == b.trace.format()
    assert a.trace.digest() == b.trace.digest()
    assert (a.commits, a.aborts) == (b.commits, b.aborts)
    assert a.sim_time_us == b.sim_time_us


def test_different_seeds_diverge():
    a = run_chaos(seed=42, faults=DEFAULT_CHAOS_FAULTS, n_txns=30)
    b = run_chaos(seed=43, faults=DEFAULT_CHAOS_FAULTS, n_txns=30)
    assert a.trace.format() != b.trace.format()


def test_bench_default_faults_hook():
    """set_default_faults (the CLI --faults hook) installs a plan on every
    subsequently built Bench, and clearing it stops doing so."""
    from repro.bench import Bench, set_default_faults
    from repro.workloads import Smallbank

    def wl():
        return Smallbank(3, accounts_per_server=1500,
                         hot_keys_fraction=0.25)

    set_default_faults("delay=0.05:5,drop=0.01", seed=9)
    try:
        bench = Bench("xenic", wl(), n_nodes=3)
        assert bench.fault_plan is not None
        r = bench.measure(2, warmup_us=50, window_us=150)
        assert r.commits > 0
        assert len(bench.fault_plan.trace) > 0
    finally:
        set_default_faults(None)
    assert Bench("xenic", wl(), n_nodes=3).fault_plan is None


def test_fault_categories_use_independent_streams():
    """Drawing from one category's RNG stream must never perturb another
    category's stream (same seed => same message-fault draws, no matter
    how many NIC-stall or RDMA draws happen in between)."""
    plan_a = FaultPlan(FaultSpec.parse("drop=0.05"), RngStream(7, "faults"))
    plan_b = FaultPlan(FaultSpec.parse("drop=0.05,nic=0.1:0.5"),
                       RngStream(7, "faults"))
    draws_a = [plan_a._msg_rng.random() for _ in range(16)]
    for _ in range(16):  # interleaved draws from other categories
        plan_b._nic_rng.random()
        plan_b._rdma_rng.random()
    draws_b = [plan_b._msg_rng.random() for _ in range(16)]
    assert draws_a == draws_b
