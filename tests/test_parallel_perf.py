"""Tests for the parallel sweep executor and the wall-clock perf harness:
--jobs N output must be byte-identical to serial, chaos seeds must fan
out unchanged, and the trajectory-file compare logic must catch
regressions."""

import json

import pytest

from repro.bench.parallel import (SweepSpec, run_chaos_seeds, run_sweeps,
                                  set_default_jobs)
from repro.bench.perf import (append_entry, baseline_entry, compare_entries,
                              load_trajectory, run_perf)
from repro.bench.runner import to_jsonable


def _small_specs(n=4):
    """A Figure-8-style curve set, scaled for CI: n curves across two
    systems and staggered workload seeds."""
    systems = ("xenic", "drtmh")
    return [
        SweepSpec(system=systems[i % len(systems)], workload="smallbank",
                  workload_kwargs=dict(accounts_per_server=1200,
                                       hot_keys_fraction=0.25, seed=i + 1),
                  concurrencies=(2, 6), n_nodes=3, warmup_us=50.0,
                  window_us=200.0)
        for i in range(n)
    ]


def test_parallel_jobs4_byte_identical_to_serial():
    specs = _small_specs(4)
    serial = run_sweeps(specs, jobs=1)
    parallel = run_sweeps(specs, jobs=4)
    assert json.dumps(to_jsonable(serial), sort_keys=True) == \
        json.dumps(to_jsonable(parallel), sort_keys=True)
    # order-stable merge: result i belongs to spec i
    for spec, results in zip(specs, serial):
        assert all(r.system == spec.system for r in results)
        assert [r.concurrency for r in results] == list(spec.concurrencies)


def test_sweepspec_is_picklable_and_normalized():
    import pickle

    spec = _small_specs(1)[0]
    assert isinstance(spec.workload_kwargs, tuple)
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert spec.label == spec.system  # defaulted


def test_parallel_chaos_seeds_match_serial():
    kwargs = [dict(system="xenic", seed=s, n_txns=8, n_nodes=3)
              for s in (1, 2, 3)]
    serial = run_chaos_seeds(kwargs, jobs=1)
    parallel = run_chaos_seeds(kwargs, jobs=3)
    assert [r.seed for r in parallel] == [1, 2, 3]
    for a, b in zip(serial, parallel):
        assert (a.commits, a.aborts, a.violations) == \
            (b.commits, b.aborts, b.violations)


def test_jobs_default_is_process_global():
    from repro.bench.parallel import default_jobs

    set_default_jobs(7)
    try:
        assert default_jobs() == 7
    finally:
        set_default_jobs(1)
    assert default_jobs() == 1


def test_fig8_entry_point_accepts_jobs():
    from repro.bench.experiments import _fig8_sweep

    curves = _fig8_sweep(
        "smallbank", dict(accounts_per_server=1200, hot_keys_fraction=0.25),
        (2, 4), systems=("xenic",), n_nodes=3, window_us=200.0,
        warmup_us=50.0, jobs=2)
    assert set(curves) == {"xenic"}
    assert [r.concurrency for r in curves["xenic"]] == [2, 4]


# ---------------------------------------------------------------------------
# perf harness
# ---------------------------------------------------------------------------


def test_run_perf_micro_smoke():
    results = run_perf(quick=True, repeats=1,
                       benches=["timeout_churn", "anyof_cancel"])
    assert set(results) == {"timeout_churn", "anyof_cancel"}
    for r in results.values():
        assert r["wall_s"] > 0
        assert r["events"] > 0
        assert r["events_per_sec"] > 0


def test_run_perf_rejects_unknown_bench():
    with pytest.raises(ValueError):
        run_perf(benches=["not_a_bench"])


def test_trajectory_roundtrip_and_regression_check(tmp_path):
    path = str(tmp_path / "traj.json")
    results = {"timeout_churn": {"wall_s": 0.1, "events": 100_000,
                                 "events_per_sec": 1_000_000.0}}
    entry = append_entry(results, quick=True, path=path, label="base")
    assert entry["label"] == "base"
    data = load_trajectory(path)
    assert data["schema"] == 1 and len(data["trajectory"]) == 1

    base = baseline_entry(True, path)
    assert base is not None and base["label"] == "base"
    assert baseline_entry(False, path) is None  # no full-scale entry

    ok = {"timeout_churn": {"wall_s": 0.12, "events": 100_000,
                            "events_per_sec": 833_333.0}}
    assert compare_entries(ok, base, max_regression=2.0) == []
    slow = {"timeout_churn": {"wall_s": 0.5, "events": 100_000,
                              "events_per_sec": 200_000.0}}
    failures = compare_entries(slow, base, max_regression=2.0)
    assert len(failures) == 1 and "timeout_churn" in failures[0]

    # appending keeps history: the newest same-scale entry wins
    append_entry(slow, quick=True, path=path, label="later")
    assert baseline_entry(True, path)["label"] == "later"
    assert len(load_trajectory(path)["trajectory"]) == 2


def test_committed_baseline_is_valid():
    """The repo ships BENCH_simperf.json; it must parse and hold at least
    one quick-scale entry with the core benches."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..",
                        "BENCH_simperf.json")
    data = load_trajectory(path)
    assert data["trajectory"], "committed trajectory is empty"
    base = baseline_entry(True, path)
    assert base is not None
    assert "timeout_churn" in base["results"]


def test_perf_cli_check_mode(tmp_path):
    from repro.__main__ import main

    path = str(tmp_path / "perf.json")
    # first --check run records a baseline and passes
    assert main(["perf", "--repeats", "1", "--bench", "timeout_churn",
                 "--baseline", path, "--check"]) == 0
    # second run compares against it (same machine: well within 2x)
    assert main(["perf", "--repeats", "1", "--bench", "timeout_churn",
                 "--baseline", path, "--check"]) == 0
