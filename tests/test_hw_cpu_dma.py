"""Tests for the CPU core-group and DMA engine models."""

import pytest

from repro.hw import CoreGroup, DmaEngine, DmaOp, LIQUIDIO3_CPU, XEON_GOLD_5218
from repro.hw.params import DmaParams
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# CoreGroup
# ---------------------------------------------------------------------------


def test_nic_cores_slower_than_host():
    sim = Simulator()
    host = CoreGroup(sim, XEON_GOLD_5218, cores=1)
    nic = CoreGroup(sim, LIQUIDIO3_CPU, cores=1)
    assert host.service_us(1.0) == pytest.approx(1.0)
    # Table 1: Xeon per-thread is 3.26x the ARM, so ARM jobs stretch ~3.26x.
    assert nic.service_us(1.0) == pytest.approx(14771.0 / 4530.0, rel=1e-3)


def test_core_group_queues_beyond_capacity():
    sim = Simulator()
    cores = CoreGroup(sim, XEON_GOLD_5218, cores=2)
    done_times = []

    def proc(sim):
        yield cores.execute(10.0)
        done_times.append(sim.now)

    for _ in range(4):
        sim.spawn(proc(sim))
    sim.run()
    assert sorted(done_times) == [10.0, 10.0, 20.0, 20.0]


def test_core_group_run_generator_form():
    sim = Simulator()
    cores = CoreGroup(sim, XEON_GOLD_5218, cores=1)

    def proc(sim):
        yield from cores.run(5.0)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == 5.0


def test_core_group_utilization():
    sim = Simulator()
    cores = CoreGroup(sim, XEON_GOLD_5218, cores=1)

    def proc(sim):
        yield cores.execute(6.0)
        yield sim.timeout(4.0)

    sim.spawn(proc(sim))
    sim.run()
    assert cores.utilization() == pytest.approx(0.6)


def test_core_group_validates_core_count():
    sim = Simulator()
    with pytest.raises(ValueError):
        CoreGroup(sim, XEON_GOLD_5218, cores=0)


# ---------------------------------------------------------------------------
# DmaEngine
# ---------------------------------------------------------------------------


def test_dma_single_read_latency_includes_completion():
    sim = Simulator()
    engine = DmaEngine(sim)

    def proc(sim):
        yield engine.read(64)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    # queue service + read completion latency (1.295us) must be included
    assert p.value > DmaParams().read_completion_us
    assert p.value < 5.0


def test_dma_write_completion_faster_than_read():
    sim = Simulator()
    engine = DmaEngine(sim)

    def rd(sim):
        yield engine.read(64)
        return sim.now

    p_r = sim.spawn(rd(sim))
    sim.run()

    sim2 = Simulator()
    engine2 = DmaEngine(sim2)

    def wr(sim):
        yield engine2.write(64)
        return sim.now

    p_w = sim2.spawn(wr(sim2))
    sim2.run()
    assert p_w.value < p_r.value


def test_dma_vector_limit_enforced():
    sim = Simulator()
    engine = DmaEngine(sim)
    ops = [DmaOp(size=8, is_read=True) for _ in range(16)]
    with pytest.raises(ValueError):
        engine.submit(ops)
    with pytest.raises(ValueError):
        engine.submit([])


def test_dma_vectored_throughput_beats_single():
    """Figure 4a: vectored submission raises ops/s substantially."""

    def run(vector_size, total_ops=1200):
        sim = Simulator()
        engine = DmaEngine(sim)

        def submitter(sim):
            remaining = total_ops
            while remaining > 0:
                n = min(vector_size, remaining)
                ops = [DmaOp(size=32, is_read=False) for _ in range(n)]
                ev = engine.submit(ops)
                remaining -= n
                # 8 queues: keep them all fed by not waiting for completion,
                # but pace at the submission cost.
                yield sim.timeout(engine.submission_cost_us)
            yield ev

        sim.spawn(submitter(sim))
        sim.run()
        return total_ops / sim.now  # ops/us == Mops/s

    single = run(1)
    vectored = run(15)
    assert vectored > 1.2 * single
    # Hardware ceiling: 8.7 Mops/s, within modeling tolerance.
    assert vectored == pytest.approx(8.7, rel=0.2)
    assert single < 8.0


def test_dma_per_op_callbacks_fire():
    sim = Simulator()
    engine = DmaEngine(sim)
    completed = []
    ops = [
        DmaOp(size=16, is_read=True, on_complete=lambda i=i: completed.append(i))
        for i in range(5)
    ]
    ev = engine.submit(ops)
    sim.run()
    assert ev.triggered
    assert sorted(completed) == [0, 1, 2, 3, 4]


def test_dma_large_transfers_bounded_by_pcie_bandwidth():
    sim = Simulator()
    engine = DmaEngine(sim)
    total_bytes = 0

    def submitter(sim):
        nonlocal total_bytes
        evs = []
        for _ in range(100):
            ops = [DmaOp(size=4096, is_read=False) for _ in range(10)]
            evs.append(engine.submit(ops))
        for ev in evs:
            yield ev

    total_bytes = 100 * 10 * 4096
    sim.spawn(submitter(sim))
    sim.run()
    gbps = total_bytes * 8 / (sim.now * 1e3)  # bytes over us -> Gbit/s
    assert gbps <= DmaParams().pcie_bandwidth_gbps * 1.01


def test_dma_latency_stats_recorded():
    sim = Simulator()
    engine = DmaEngine(sim)

    def proc(sim):
        yield engine.read(64)
        yield engine.write(64)

    sim.spawn(proc(sim))
    sim.run()
    assert engine.read_latency.count == 1
    assert engine.write_latency.count == 1
    assert engine.read_latency.mean > engine.write_latency.mean
