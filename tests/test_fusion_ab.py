"""Delay-fusion A/B invariants (``REPRO_FUSION``).

Fusion must be a pure scheduler-work optimization: the simulated results
of a run are byte-identical between the ``off`` and ``on`` legs, on
either queue implementation, with or without an observer installed —
what changes is only how many queue entries the engine pushes to produce
them.  The tests here pin both halves: digest equality across the legs,
and the event-count reduction the fused paths exist to deliver.
"""

import os

import pytest

from repro.bench.golden import canonical_digest, fig8d_point_payload
from repro.core.cluster import XenicCluster
from repro.sim.core import Simulator

from .test_golden_digest import FIG8D_DIGEST


@pytest.fixture
def fusion_env():
    """Restore REPRO_FUSION/REPRO_QUEUE after a test that flips them."""
    saved = {k: os.environ.get(k) for k in ("REPRO_FUSION", "REPRO_QUEUE")}
    yield os.environ
    for k, v in saved.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v


@pytest.mark.parametrize("queue", ["heap", "calendar"])
def test_digests_identical_off_vs_on(fusion_env, queue):
    """Both fusion legs reproduce the pinned pre-fusion digest, on both
    queue kinds: fused paths change no simulated quantity anywhere."""
    fusion_env["REPRO_QUEUE"] = queue
    digests = {}
    for leg in ("off", "on"):
        fusion_env["REPRO_FUSION"] = leg
        digests[leg] = canonical_digest(fig8d_point_payload())
    assert digests["off"] == digests["on"] == FIG8D_DIGEST


def test_observer_neutral_with_fusion_on(fusion_env):
    """An observed run on the fused leg still matches the pinned digest:
    observer fallbacks reproduce the stepwise timestamps exactly."""
    fusion_env["REPRO_FUSION"] = "on"
    assert canonical_digest(fig8d_point_payload(obs=True)) == FIG8D_DIGEST


def test_attribution_sums_with_fusion_on(fusion_env):
    """Per-phase latency attribution stays exact on the fused leg (the
    observed run takes the stepwise fallbacks, so every annotation point
    still exists)."""
    from repro.bench.runner import Bench
    from repro.obs.attrib import attribute_bench
    from repro.workloads import Smallbank

    fusion_env["REPRO_FUSION"] = "on"
    bench = Bench(
        "xenic",
        Smallbank(3, accounts_per_server=1500, hot_keys_fraction=0.25),
        n_nodes=3, obs=True,
    )
    result = bench.measure(4, warmup_us=60.0, window_us=250.0)
    assert result.commits > 0
    res = attribute_bench(bench)
    assert res.count > 0
    assert res.events_dropped == 0
    # acceptance bar: phases cover end-to-end latency within 1%
    assert res.max_residual_frac() < 0.01


def test_fig8d_events_per_txn_reduction(fusion_env):
    """The headline fused-path win, pinned as a regression gate: the
    fig8d point needs >= 1.5x fewer scheduled events per committed txn
    with fusion on, at identical simulated results, and the fused leg's
    absolute events/txn stays under a ceiling with ~10% headroom over
    the measured value (26.4 at this scale)."""
    from repro.bench.runner import Bench
    from repro.workloads import Smallbank

    measured = {}
    for leg in ("off", "on"):
        fusion_env["REPRO_FUSION"] = leg
        bench = Bench(
            "xenic",
            Smallbank(3, accounts_per_server=2000, hot_keys_fraction=0.25),
            n_nodes=3,
        )
        result = bench.measure(16, warmup_us=100.0, window_us=300.0)
        measured[leg] = result
    off, on = measured["off"], measured["on"]
    # identical simulated outcome...
    assert (off.commits, off.aborts) == (on.commits, on.aborts)
    assert off.throughput_per_server == on.throughput_per_server
    # ...from 1.5x fewer scheduler entries
    assert off.events_scheduled / on.events_scheduled >= 1.5
    assert on.events_per_txn <= 29.0


@pytest.mark.parametrize("system", ["drtmh", "drtmr"])
def test_baseline_rdma_identical_off_vs_on(fusion_env, system):
    """The fused RDMA verb chains (wire+propagation merges) change no
    simulated quantity in the baseline systems.  DrTM+R is the sensitive
    one: its CAS linearization order flips if the on_target-carrying
    event is pushed early (the rejected RX+fixed-budget merge), so this
    scale is chosen to have caught exactly that."""
    from repro.bench.runner import Bench
    from repro.workloads import Smallbank

    legs = {}
    for leg in ("off", "on"):
        fusion_env["REPRO_FUSION"] = leg
        bench = Bench(
            system,
            Smallbank(3, accounts_per_server=1500, hot_keys_fraction=0.25),
            n_nodes=3,
        )
        result = bench.measure(8, warmup_us=80.0, window_us=300.0)
        legs[leg] = (result.commits, result.aborts,
                     result.throughput_per_server, bench.sim.now,
                     result.events_scheduled)
    off, on = legs["off"], legs["on"]
    assert off[:-1] == on[:-1]
    assert off[-1] > on[-1]  # and the fused leg did schedule less


def test_construction_is_event_free_and_linear(fusion_env):
    """Cluster construction + bulk load at 64 nodes schedules no events
    and allocates per-node state independent of cluster size (tables
    per node == replication factor, one port and one handler per node)."""
    fusion_env["REPRO_FUSION"] = "on"
    sim = Simulator()
    cluster = XenicCluster(sim, 64, keys_per_shard=64)
    cluster.load_keys(range(64 * 32))
    assert sim.events_scheduled == 0
    assert len(cluster.nodes) == 64
    rf = cluster.config.replication_factor
    assert all(len(n.tables) == rf for n in cluster.nodes)
    assert len(cluster.fabric._handlers) == 64
    assert len(cluster.fabric._ports) == 64
    # every key landed on exactly rf replicas
    total = sum(t.size for n in cluster.nodes for t in n.tables.values())
    assert total == 64 * 32 * rf


def test_load_key_backups_cached_once_per_shard():
    """The bulk-load fast path computes each shard's backup list once,
    and the cache changes nothing about what gets loaded where or in
    what order (Robinhood layout is insert-order sensitive)."""
    n, keys = 8, 256
    sim = Simulator()
    fast = XenicCluster(sim, n, keys_per_shard=64)
    calls = []
    orig = fast.backups_of
    fast.backups_of = lambda shard: (calls.append(shard), orig(shard))[1]
    fast.load_keys(range(keys))
    assert len(calls) == n  # once per shard, not once per key
    # reference: same load with the cache bypassed (non-empty failed set
    # forces the uncached path; no node id 999 exists so placement is
    # unchanged)
    ref = XenicCluster(Simulator(), n, keys_per_shard=64)
    ref.failed.add(999)
    ref.load_keys(range(keys))
    for a, b in zip(fast.nodes, ref.nodes):
        for shard in a.tables:
            akeys = [o.key for o in a.tables[shard].objects()]
            bkeys = [o.key for o in b.tables[shard].objects()]
            assert akeys == bkeys


def test_nodes64_bench_completes_quick(fusion_env):
    """The 64-node scale bench finishes a quick-mode point and reports
    commits (the quick budget gate: construction, load, and window all
    complete without timeout at scale)."""
    from repro.bench.perf import _bench_nodes64

    fusion_env["REPRO_FUSION"] = "on"
    wall, events, commits = _bench_nodes64(True)
    assert commits > 0
    assert events > 0
    assert wall < 60.0
