"""Tests for the Ethernet/fabric/RDMA/PCIe hardware models."""

import pytest

from repro.hw import (
    CoreGroup,
    EthernetPort,
    Fabric,
    NetMessage,
    OffPathNic,
    PcieChannel,
    RdmaNic,
    SmartNic,
    XEON_GOLD_5218,
)
from repro.hw.params import (
    BLUEFIELD_OFFPATH,
    CX5_RDMA,
    EthernetParams,
    STINGRAY_OFFPATH,
)
from repro.sim import Simulator


def make_fabric_pair(aggregation=True):
    sim = Simulator()
    fabric = Fabric(sim)
    received = []
    p0 = EthernetPort(sim, fabric, 0, aggregation=aggregation)
    fabric.register(1, lambda msg: received.append((sim.now, msg)))
    return sim, fabric, p0, received


def test_ethernet_delivers_message():
    sim, fabric, p0, received = make_fabric_pair()
    p0.send(NetMessage(0, 1, "ping", 100))
    sim.run()
    assert len(received) == 1
    t, msg = received[0]
    assert msg.kind == "ping"
    assert t >= EthernetParams().propagation_us


def test_ethernet_rejects_loopback():
    sim, fabric, p0, _ = make_fabric_pair()
    with pytest.raises(ValueError):
        p0.send(NetMessage(0, 0, "self", 10))


def test_ethernet_aggregation_batches_same_destination():
    sim, fabric, p0, received = make_fabric_pair(aggregation=True)
    for _ in range(50):
        p0.send(NetMessage(0, 1, "m", 64))
    sim.run()
    assert len(received) == 50
    # far fewer wire packets than messages
    assert p0.packets_sent < 20
    assert p0.mean_batch > 2.0


def test_ethernet_no_aggregation_one_packet_per_message():
    sim, fabric, p0, received = make_fabric_pair(aggregation=False)
    for _ in range(50):
        p0.send(NetMessage(0, 1, "m", 64))
    sim.run()
    assert len(received) == 50
    assert p0.packets_sent == 50


def test_ethernet_aggregation_improves_small_message_rate():
    def run(aggregation):
        sim, fabric, p0, received = make_fabric_pair(aggregation=aggregation)
        for _ in range(2000):
            p0.send(NetMessage(0, 1, "w", 32))
        sim.run()
        last = max(t for t, _ in received)
        return 2000 / last

    assert run(True) > 3.0 * run(False)


def test_unbatched_rate_matches_measured_ceiling():
    """§3.4: unbatched small remote writes measure 9.0-10.4 Mops/s."""
    sim, fabric, p0, received = make_fabric_pair(aggregation=False)
    for _ in range(3000):
        p0.send(NetMessage(0, 1, "w", 64))
    sim.run()
    last = max(t for t, _ in received)
    rate = 3000 / last  # Mops/s
    assert 8.0 <= rate <= 11.0


def test_fabric_duplicate_registration_rejected():
    sim = Simulator()
    fabric = Fabric(sim)
    fabric.register(0, lambda m: None)
    with pytest.raises(ValueError):
        fabric.register(0, lambda m: None)


def test_fabric_unknown_destination_raises():
    sim = Simulator()
    fabric = Fabric(sim)
    with pytest.raises(KeyError):
        fabric.deliver(9, NetMessage(0, 9, "x", 1))


# ---------------------------------------------------------------------------
# RDMA
# ---------------------------------------------------------------------------


def rdma_pair():
    sim = Simulator()
    host0 = CoreGroup(sim, XEON_GOLD_5218, cores=4)
    host1 = CoreGroup(sim, XEON_GOLD_5218, cores=4)
    a = RdmaNic(sim, 0, host_cores=host0)
    b = RdmaNic(sim, 1, host_cores=host1)
    return sim, a, b


@pytest.mark.parametrize(
    "verb,expected",
    [("read", CX5_RDMA.read_rtt_us), ("write", CX5_RDMA.write_rtt_us),
     ("atomic", CX5_RDMA.atomic_rtt_us)],
)
def test_rdma_one_sided_unloaded_rtt(verb, expected):
    sim, a, b = rdma_pair()

    def proc(sim):
        yield getattr(a, verb)(b, 256) if verb != "atomic" else a.atomic(b)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == pytest.approx(expected, rel=0.15)


def test_rdma_rpc_unloaded_rtt():
    sim, a, b = rdma_pair()

    def proc(sim):
        yield a.rpc(b, 128, 128)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == pytest.approx(CX5_RDMA.rpc_rtt_us, rel=0.15)


def test_rdma_read_faster_than_rpc():
    sim, a, b = rdma_pair()

    def reader(sim):
        yield a.read(b, 256)
        return sim.now

    p = sim.spawn(reader(sim))
    sim.run()
    t_read = p.value

    sim2, a2, b2 = rdma_pair()

    def rpcer(sim):
        yield a2.rpc(b2, 256, 256)
        return sim.now

    p2 = sim2.spawn(rpcer(sim2))
    sim2.run()
    assert t_read < p2.value


def test_rdma_rpc_consumes_target_host_cores():
    sim, a, b = rdma_pair()

    def proc(sim):
        evs = [a.rpc(b, 64, 64) for _ in range(32)]
        for ev in evs:
            yield ev

    sim.spawn(proc(sim))
    sim.run()
    assert b.host_cores.jobs_executed == 32
    assert a.host_cores.jobs_executed == 0


def test_rdma_one_sided_bypasses_host_cpu():
    sim, a, b = rdma_pair()

    def proc(sim):
        yield a.read(b, 256)
        yield a.write(b, 256)

    sim.spawn(proc(sim))
    sim.run()
    assert b.host_cores.jobs_executed == 0


def test_rdma_ops_rate_ceiling():
    sim, a, b = rdma_pair()

    def proc(sim):
        evs = [a.read(b, 16) for _ in range(3000)]
        for ev in evs:
            yield ev

    sim.spawn(proc(sim))
    sim.run()
    rate = 3000 / sim.now
    # §3.4: 13.5-15.0 Mops/s ceiling; both endpoint pipes serialize, so the
    # pairwise rate lands at about half the per-NIC ceiling.
    assert rate <= CX5_RDMA.max_ops_per_us * 1.05
    assert rate > 4.0


def test_rdma_invalid_verb_rejected():
    sim, a, b = rdma_pair()
    with pytest.raises(ValueError):
        a.one_sided(b, "send", 8)


def test_rdma_rpc_without_host_cores_raises():
    sim = Simulator()
    a = RdmaNic(sim, 0)
    b = RdmaNic(sim, 1)
    with pytest.raises(RuntimeError):
        sim.spawn(iter([a.rpc(b, 8, 8)]))
        sim.run()


# ---------------------------------------------------------------------------
# PCIe channel and SmartNic assembly
# ---------------------------------------------------------------------------


def test_pcie_channel_roundtrip():
    sim = Simulator()
    got = {"host": [], "nic": []}
    chan = PcieChannel(
        sim,
        crossing_us=1.25,
        deliver_to_host=lambda p: got["host"].append((sim.now, p)),
        deliver_to_nic=lambda p: got["nic"].append((sim.now, p)),
    )
    chan.host_to_nic(256, "txn-state")
    sim.run()
    assert got["nic"][0][1] == "txn-state"
    assert got["nic"][0][0] >= 1.25
    chan.nic_to_host(64, "result")
    sim.run()
    assert got["host"][0][1] == "result"


def test_smartnic_routes_wire_messages_to_handler():
    sim = Simulator()
    fabric = Fabric(sim)
    handled = []
    nic0 = SmartNic(sim, fabric, 0)
    nic1 = SmartNic(sim, fabric, 1)
    nic1.set_handler(lambda msg: handled.append(msg.kind))
    nic0.set_handler(lambda msg: None)
    nic0.send(NetMessage(0, 1, "execute", 128))
    sim.run()
    assert handled == ["execute"]
    assert nic1.messages_handled == 1


def test_smartnic_without_handler_raises():
    sim = Simulator()
    fabric = Fabric(sim)
    nic0 = SmartNic(sim, fabric, 0)
    nic1 = SmartNic(sim, fabric, 1)
    nic0.set_handler(lambda m: None)
    nic0.send(NetMessage(0, 1, "x", 10))
    with pytest.raises(RuntimeError):
        sim.run()


# ---------------------------------------------------------------------------
# Off-path NICs (§3.1)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("params", [BLUEFIELD_OFFPATH, STINGRAY_OFFPATH])
def test_offpath_soc_path_slower_than_direct(params):
    nic = OffPathNic(Simulator(), params)
    assert nic.offload_penalty_us() > 0


def test_offpath_measured_medians():
    sim = Simulator()
    nic = OffPathNic(sim, BLUEFIELD_OFFPATH)

    def proc(sim):
        yield nic.remote_write_to_host()
        t1 = sim.now
        yield nic.remote_write_to_soc()
        t2 = sim.now
        yield nic.soc_write_to_host()
        t3 = sim.now
        return t1, t2 - t1, t3 - t2

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == (3.5, 4.5, 5.1)
