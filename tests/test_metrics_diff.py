"""metrics --diff: structured comparison of two metrics exports."""

import json

from repro.obs.export import diff_metrics, format_metrics_diff


def export(counters=None, histograms=None, gauges=None):
    return {"metrics": {"counters": counters or {},
                        "histograms": histograms or {},
                        "gauges": gauges or {}}}


def test_counter_deltas_and_missing_sides():
    a = export(counters={"n0/commits": 10, "n0/only_a": 1})
    b = export(counters={"n0/commits": 25, "n0/only_b": 2})
    d = diff_metrics(a, b)
    assert d["counters"]["n0/commits"] == {"a": 10, "b": 25, "delta": 15}
    assert d["counters"]["n0/only_a"]["b"] is None
    assert d["counters"]["n0/only_a"]["delta"] is None
    assert d["counters"]["n0/only_b"]["a"] is None


def test_histogram_quantile_shifts():
    a = export(histograms={"cluster/txn_latency_us":
                           {"count": 100, "p50": 8.0, "p99": 20.0,
                            "p999": 30.0}})
    b = export(histograms={"cluster/txn_latency_us":
                           {"count": 120, "p50": 9.0, "p99": 26.0,
                            "p999": 50.0}})
    d = diff_metrics(a, b)
    h = d["histograms"]["cluster/txn_latency_us"]
    assert h["count_a"] == 100 and h["count_b"] == 120
    assert h["p99"]["shift"] == 6.0
    assert h["p999"]["shift"] == 20.0


def test_gauges_compare_last_sample():
    a = export(gauges={"n0/nic_in_use": {"last": 2.0}})
    b = export(gauges={"n0/nic_in_use": {"last": 5.0}})
    d = diff_metrics(a, b)
    assert d["gauges"]["n0/nic_in_use"]["delta"] == 3.0


def test_format_only_changed_and_no_changes():
    a = export(counters={"x": 1, "y": 2})
    b = export(counters={"x": 1, "y": 5})
    text = format_metrics_diff(diff_metrics(a, b))
    assert "y" in text and "3" in text
    assert "\nx" not in text  # unchanged counters are hidden by default
    text_all = format_metrics_diff(diff_metrics(a, b), only_changed=False)
    assert "x" in text_all
    same = format_metrics_diff(diff_metrics(a, a))
    assert same == "metrics diff: no changes"


def test_metrics_diff_cli(tmp_path, capsys):
    from repro.__main__ import main

    pa = tmp_path / "a.json"
    pb = tmp_path / "b.json"
    pa.write_text(json.dumps(export(counters={"n0/commits": 10})))
    pb.write_text(json.dumps(export(counters={"n0/commits": 12})))
    rc = main(["metrics", "--diff", str(pa), str(pb)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "n0/commits" in out
