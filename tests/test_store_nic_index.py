"""Tests for the SmartNIC caching index: locks, versions, cache pinning,
and DMA miss-cost accounting."""

import pytest

from repro.store import NicIndex, RobinhoodTable, VersionedObject


def make_pair(capacity=256, dm=8, cache=8, value_size=64):
    table = RobinhoodTable(capacity, dm=dm, segment_size=8)
    index = NicIndex(table, cache_capacity=cache, value_size=value_size)
    return table, index


def load(table, n, value_size=64):
    for k in range(n):
        table.insert(k, VersionedObject(k, value="v%d" % k, size=value_size))


# ---------------------------------------------------------------------------
# locks and versions
# ---------------------------------------------------------------------------


def test_lock_acquire_release():
    table, index = make_pair()
    load(table, 10)
    assert index.try_lock(3, txn_id=100)
    assert index.is_locked(3)
    assert not index.is_locked(3, txn_id=100)  # own lock doesn't block
    assert not index.try_lock(3, txn_id=200)
    index.unlock(3, txn_id=100)
    assert not index.is_locked(3)
    assert index.try_lock(3, txn_id=200)


def test_lock_reentrant_same_txn():
    table, index = make_pair()
    load(table, 5)
    assert index.try_lock(1, txn_id=7)
    assert index.try_lock(1, txn_id=7)


def test_unlock_wrong_owner_raises():
    table, index = make_pair()
    load(table, 5)
    index.try_lock(1, txn_id=7)
    with pytest.raises(RuntimeError):
        index.unlock(1, txn_id=8)


def test_version_reads_host_when_no_meta():
    table, index = make_pair()
    load(table, 5)
    table.get_object(2).version = 9
    assert index.read_version(2) == 9


def test_commit_bumps_nic_version_ahead_of_host():
    table, index = make_pair()
    load(table, 5)
    v = index.apply_commit(2, "new-value")
    assert v == 1
    assert index.read_version(2) == 1
    assert table.get_object(2).version == 0  # host lags until worker applies
    hit, value = index.cache_lookup(2)
    assert hit and value == "new-value"


def test_metadata_purged_after_unlock_when_consistent():
    table, index = make_pair()
    load(table, 5)
    index.try_lock(4, txn_id=1)
    index.unlock(4, txn_id=1)
    assert index.meta_for(4) is None  # purged: host is consistent


def test_metadata_retained_while_host_lags():
    table, index = make_pair()
    load(table, 5)
    index.apply_commit(3, "x")
    index.log_acked(3)
    # host version still behind -> metadata must survive
    assert index.meta_for(3) is not None
    # after the host applies, purge happens on the next transition
    table.get_object(3).version = 1
    index.try_lock(3, txn_id=1)
    index.unlock(3, txn_id=1)
    # cache entry still holds the value (unpinned), meta kept alongside
    assert index.cache_contains(3)


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------


def test_cache_hit_miss_accounting():
    table, index = make_pair()
    load(table, 10)
    hit, _ = index.cache_lookup(1)
    assert not hit
    index.install_cache(1, "v1")
    hit, val = index.cache_lookup(1)
    assert hit and val == "v1"
    assert index.hits == 1 and index.misses == 1


def test_cache_lru_eviction():
    table, index = make_pair(cache=3)
    load(table, 10)
    for k in (1, 2, 3):
        index.install_cache(k, "v%d" % k)
    index.cache_lookup(1)  # make 1 most-recent
    index.install_cache(4, "v4")  # evicts LRU (2)
    assert index.cache_contains(1)
    assert not index.cache_contains(2)
    assert index.evictions == 1


def test_pinned_entries_not_evicted():
    table, index = make_pair(cache=2)
    load(table, 10)
    index.apply_commit(1, "pinned")  # install + pin
    index.install_cache(2, "v2")
    index.install_cache(3, "v3")  # must evict 2, not pinned 1
    assert index.cache_contains(1)
    assert not index.cache_contains(2)


def test_all_pinned_allows_over_capacity():
    table, index = make_pair(cache=2)
    load(table, 10)
    index.apply_commit(1, "a")
    index.apply_commit(2, "b")
    index.apply_commit(3, "c")
    assert index.cache_size == 3  # over capacity rather than stale reads


def test_log_ack_unpins():
    table, index = make_pair(cache=2)
    load(table, 10)
    index.apply_commit(1, "a")
    assert index.is_pinned(1)
    index.log_acked(1)
    assert not index.is_pinned(1)


def test_pin_uncached_raises():
    table, index = make_pair()
    load(table, 5)
    with pytest.raises(KeyError):
        index.pin(99)


# ---------------------------------------------------------------------------
# DMA miss-cost accounting
# ---------------------------------------------------------------------------


def test_miss_cost_common_case_single_roundtrip():
    table, index = make_pair(capacity=256, dm=8)
    load(table, 128)  # 50% occupancy: displacements tiny
    costs = [index.miss_cost(k) for k in range(128)]
    single = [c for c in costs if c.roundtrips == 1]
    assert len(single) / len(costs) > 0.9
    for c in costs:
        assert c.found
        assert c.objects_read >= 1
        assert c.first_read_bytes > 0


def test_miss_cost_bounded_by_dm():
    table, index = make_pair(capacity=256, dm=8)
    load(table, 230)  # 90% occupancy
    for k in range(230):
        c = index.miss_cost(k)
        assert c.objects_read <= (8 + 1) + table.overflow_bucket_len(
            table.segment_of_key(k)
        )


def test_miss_cost_overflow_needs_two_roundtrips():
    table, index = make_pair(capacity=64, dm=2)
    load(table, 48)
    overflow_keys = [k for k in range(48) if table.lookup(k).in_overflow]
    assert overflow_keys
    for k in overflow_keys:
        c = index.miss_cost(k)
        assert c.roundtrips == 2
        assert c.second_read_bytes > 0


def test_miss_cost_large_object_pointer_chase():
    table, index = make_pair(capacity=256, dm=8, value_size=64)
    table.insert(1, VersionedObject(1, value="big", size=660))  # TPC-C max
    c = index.miss_cost(1)
    assert c.extra_object_bytes == 660
    # pointer slots are cheaper than value slots on the region read
    assert c.first_read_bytes < (8 + 2) * (64 + 16)


def test_miss_cost_absent_key():
    table, index = make_pair()
    load(table, 10)
    c = index.miss_cost(999)
    assert not c.found


def test_hit_rate_property():
    table, index = make_pair(cache=100)
    load(table, 50)
    for k in range(50):
        index.install_cache(k, k)
    for k in range(50):
        index.cache_lookup(k)
    assert index.hit_rate > 0.4


def test_stale_location_hint_falls_back_to_second_read():
    """§4.1.3: insertions can move a key beyond its learned hint; the
    lookup pays a second adjacent read instead of failing."""
    table, index = make_pair(capacity=256, dm=8)
    load(table, 180)
    # learn hints for all current keys
    for k in range(180):
        index.miss_cost(k)
    # insert more keys: displacements shift
    for k in range(1000, 1040):
        table.insert(k, VersionedObject(k, value="n", size=64))
    moved = 0
    for k in range(180):
        res = table.lookup(k)
        if res.in_overflow or res.displacement is None:
            continue
        hint = index._loc_hints.get(k)
        if hint is not None and res.displacement > hint:
            cost = index.miss_cost(k)
            assert cost.roundtrips == 2
            assert cost.second_read_bytes > 0
            moved += 1
            # the hint was re-learned: next lookup is single-roundtrip
            assert index.miss_cost(k).roundtrips == 1
    # with 40 inserts at ~80% occupancy some keys must have moved
    assert moved >= 1


def test_hint_learning_shrinks_reads():
    table, index = make_pair(capacity=256, dm=8)
    load(table, 200)
    first = index.miss_cost(5)
    second = index.miss_cost(5)
    assert second.first_read_bytes <= first.first_read_bytes
