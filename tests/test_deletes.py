"""Tests for transactional deletes (§4.1.3: deletions ride the commit
protocol as tombstone writes)."""

import pytest

from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.core.txn import TOMBSTONE
from repro.sim import Simulator


def make_cluster(n_nodes=3):
    sim = Simulator()
    cluster = XenicCluster(sim, n_nodes, config=XenicConfig(),
                           keys_per_shard=256, value_size=64)
    for k in range(n_nodes * 64):
        cluster.load_key(k, value=("init", k))
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proc = sim.spawn(cluster.protocols[node_id].run_transaction(spec))
    return sim.run_until_event(proc, limit=1e7)


def delete_spec(key):
    return TxnSpec(read_keys=[key], write_keys=[key],
                   logic=lambda r, s: {key: TOMBSTONE}, label="delete")


def test_tombstone_singleton():
    from repro.core.txn import _Tombstone

    assert _Tombstone() is TOMBSTONE
    assert repr(TOMBSTONE) == "<TOMBSTONE>"


def test_delete_removes_from_primary_and_backups():
    sim, cluster = make_cluster()
    k = 1
    run_txn(sim, cluster, 0, delete_spec(k))
    sim.run()
    assert cluster.read_committed_value(k) is None
    assert cluster.nodes[1].tables[1].get_object(k) is None
    for backup in cluster.backups_of(1):
        assert cluster.nodes[backup].tables[1].get_object(k) is None


def test_read_after_delete_returns_none():
    sim, cluster = make_cluster()
    k = 1
    run_txn(sim, cluster, 0, delete_spec(k))
    sim.run()
    txn = run_txn(sim, cluster, 2,
                  TxnSpec(read_keys=[k], write_keys=[], read_only=True))
    assert txn.read_values[k][0] is None


def test_reinsert_after_delete():
    sim, cluster = make_cluster()
    k = 1
    run_txn(sim, cluster, 0, delete_spec(k))
    sim.run()
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "reborn"}))
    sim.run()
    assert cluster.read_committed_value(k) == "reborn"
    obj = cluster.nodes[1].tables[1].get_object(k)
    assert obj is not None and obj.value == "reborn"


def test_delete_then_delete_is_idempotent():
    sim, cluster = make_cluster()
    k = 1
    run_txn(sim, cluster, 0, delete_spec(k))
    sim.run()
    run_txn(sim, cluster, 2, delete_spec(k))
    sim.run()
    assert cluster.read_committed_value(k) is None


def test_delete_conflicts_with_concurrent_write():
    """A delete and a write racing on the same key serialize; the final
    state is one of the two outcomes, never a corrupt mix."""
    sim, cluster = make_cluster()
    k = 2
    done = []

    def deleter():
        txn = yield from cluster.protocols[0].run_transaction(delete_spec(k))
        done.append("delete")

    def writer():
        txn = yield from cluster.protocols[1].run_transaction(
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "written"}))
        done.append("write")

    sim.spawn(deleter())
    sim.spawn(writer())
    sim.run()
    assert sorted(done) == ["delete", "write"]
    final = cluster.read_committed_value(k)
    assert final in (None, "written")
    # version advanced twice regardless of order
    assert cluster.nodes[2].index.read_version(k) == 2


def test_local_delete_fast_path():
    sim, cluster = make_cluster()
    k = 0  # local to node 0
    run_txn(sim, cluster, 0, delete_spec(k))
    sim.run()
    assert cluster.read_committed_value(k) is None
    assert cluster.nodes[0].tables[0].get_object(k) is None
