"""Tests for the Robinhood hash table, including property-based checks of
the structural invariants and the DMA-consistent swap ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import RobinhoodTable, VersionedObject


def make_table(capacity=64, dm=8, segment_size=8):
    return RobinhoodTable(capacity, dm=dm, segment_size=segment_size)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def test_capacity_must_be_multiple_of_segment():
    with pytest.raises(ValueError):
        RobinhoodTable(65, dm=8, segment_size=8)


def test_dm_validation():
    with pytest.raises(ValueError):
        RobinhoodTable(64, dm=0)


def test_unlimited_table_has_huge_dm():
    t = RobinhoodTable.unlimited(64)
    assert t.dm > 1 << 20


# ---------------------------------------------------------------------------
# basic operations
# ---------------------------------------------------------------------------


def test_insert_lookup_roundtrip():
    t = make_table()
    t.insert(42)
    res = t.lookup(42)
    assert res.found and not res.in_overflow
    assert res.displacement is not None and res.displacement >= 0


def test_duplicate_insert_rejected():
    t = make_table()
    t.insert(1)
    with pytest.raises(KeyError):
        t.insert(1)


def test_lookup_missing_key():
    t = make_table()
    t.insert(1)
    assert not t.lookup(999).found


def test_insert_stores_object():
    t = make_table()
    obj = VersionedObject(5, value="hello", size=32)
    t.insert(5, obj)
    assert t.get_object(5) is obj
    assert t.get_object(6) is None


def test_delete_removes_key():
    t = make_table()
    for k in range(20):
        t.insert(k)
    t.delete(7)
    assert not t.lookup(7).found
    assert 7 not in t
    with pytest.raises(KeyError):
        t.delete(7)


def test_delete_backward_shift_keeps_others_findable():
    t = make_table(capacity=32, dm=8)
    keys = list(range(100, 125))
    for k in keys:
        t.insert(k)
    t.delete(keys[3])
    for k in keys:
        if k != keys[3]:
            assert t.lookup(k).found, "lost key %d after delete" % k
    t.check_invariants()


def test_displacement_limit_sends_to_overflow():
    # Tiny Dm forces overflow at modest occupancy.
    t = make_table(capacity=64, dm=2, segment_size=8)
    for k in range(48):
        t.insert(k)
    assert t.overflow_count > 0
    # every key still findable
    for k in range(48):
        assert t.lookup(k).found
    t.check_invariants()


def test_overflow_lookup_flagged():
    t = make_table(capacity=64, dm=2, segment_size=8)
    for k in range(48):
        t.insert(k)
    overflow_keys = [k for k in range(48) if t.lookup(k).in_overflow]
    assert overflow_keys
    for k in overflow_keys:
        res = t.lookup(k)
        assert res.found and res.slot is None


def test_occupancy_and_len():
    t = make_table(capacity=64)
    for k in range(32):
        t.insert(k)
    assert len(t) == 32
    assert t.occupancy == pytest.approx(0.5)


def test_full_table_raises():
    t = RobinhoodTable.unlimited(8, segment_size=8)
    for k in range(8):
        t.insert(k)
    with pytest.raises(RuntimeError):
        t.insert(100)


def test_segment_max_displacement_tracks_inserts():
    t = make_table(capacity=64, dm=8)
    assert all(
        t.segment_max_displacement(s) == 0 for s in range(t.n_segments)
    )
    for k in range(57):  # ~89% occupancy
        t.insert(k)
    # hints must be an upper bound on every key's displacement
    for k in range(57):
        res = t.lookup(k)
        if res.in_overflow:
            continue
        seg = t.segment_of_key(k)
        assert res.displacement <= t.segment_max_displacement(seg)


def test_displacement_never_exceeds_dm():
    t = make_table(capacity=256, dm=4, segment_size=8)
    for k in range(230):
        t.insert(k)
    t.check_invariants()
    for k in range(230):
        res = t.lookup(k)
        assert res.found
        if not res.in_overflow:
            assert res.displacement < 4 or res.displacement == 0


# ---------------------------------------------------------------------------
# property-based invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10**9), unique=True,
                  min_size=1, max_size=100),
    dm=st.sampled_from([2, 4, 8, 16]),
)
def test_property_inserts_preserve_invariants(keys, dm):
    t = RobinhoodTable(128, dm=dm, segment_size=8)
    for k in keys:
        t.insert(k)
    t.check_invariants()
    for k in keys:
        assert t.lookup(k).found


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10**9), unique=True,
                  min_size=4, max_size=80),
    data=st.data(),
)
def test_property_mixed_insert_delete(keys, data):
    t = RobinhoodTable(128, dm=8, segment_size=8)
    live = set()
    for k in keys:
        t.insert(k)
        live.add(k)
        if len(live) > 2 and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(sorted(live)))
            t.delete(victim)
            live.remove(victim)
    t.check_invariants()
    for k in keys:
        assert t.lookup(k).found == (k in live)


@settings(max_examples=25, deadline=None)
@given(
    existing=st.lists(st.integers(min_value=0, max_value=10**9), unique=True,
                      min_size=10, max_size=90),
)
def test_property_dma_consistent_swapping(existing):
    """§4.1.2: while an insertion's swap chain is being applied, a
    concurrent DMA probe-scan must find every pre-existing key after
    every atomic step."""
    t = RobinhoodTable(128, dm=8, segment_size=8)
    unique = list(dict.fromkeys(existing))
    new_key = max(unique) + 1
    for k in unique:
        t.insert(k)
    pre_existing = list(unique)
    for _step in t.insert_steps(new_key):
        for k in pre_existing:
            assert t.lookup(k).found, (
                "concurrent reader lost key %d mid-insertion" % k
            )
    # after completion the new key is also findable
    assert t.lookup(new_key).found
    t.check_invariants()


def test_robinhood_reduces_probe_variance_vs_fifo_order():
    """The displacement-balancing property: max probe length stays small
    at high occupancy."""
    t = RobinhoodTable(1024, dm=16, segment_size=8, hash_salt=7)
    n = int(1024 * 0.9)
    for k in range(n):
        t.insert(k)
    probes = [t.lookup(k).probe_len for k in range(n) if not t.lookup(k).in_overflow]
    mean = sum(probes) / len(probes)
    assert mean < 6.0
    assert max(probes) <= 17
