"""Golden-digest determinism pins: one committed seed per experiment family.

These digests hash *every simulated metric* of a committed-seed run
(committed state, counters, latencies, simulated clock — never
wall-clock).  They were captured before the model-layer fast-path pass
and must never change under a wall-clock-only optimization: if a change
here fails, the "optimization" altered simulated behaviour (RNG draw
order, event interleaving, or protocol logic) and must be fixed or
reclassified as a modeling change (with an explicit digest re-pin and a
note in EXPERIMENTS.md).

Observer neutrality rides on the same pins: the ``--obs`` variants must
produce the *same* digest as the bare runs.
"""

from repro.bench.golden import (
    canonical_digest,
    chaos_payload,
    fig8d_point_payload,
)

# Captured from the pre-optimization model layer (PR 4 tree); simulated
# results are frozen at these values for the committed seeds.
FIG8D_DIGEST = "4829497d19fcb834dabcd8f6df4f856c1e012a07f14171c651dcb765841ed7af"
CHAOS_DIGEST = "261dcd150aeaee14626773601d2b4aeead9bfe1633c1491f43acf2137d30cfe1"


def test_fig8d_point_digest_pinned():
    assert canonical_digest(fig8d_point_payload()) == FIG8D_DIGEST


def test_fig8d_point_digest_observer_neutral():
    assert canonical_digest(fig8d_point_payload(obs=True)) == FIG8D_DIGEST


def test_chaos_seed_digest_pinned():
    assert canonical_digest(chaos_payload()) == CHAOS_DIGEST


def test_chaos_seed_digest_observer_neutral():
    assert canonical_digest(chaos_payload(obs=True)) == CHAOS_DIGEST
