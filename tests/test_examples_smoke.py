"""Smoke tests: every example script runs to completion without error.

These are the repository's end-to-end acceptance tests: each example
exercises the public API the way a downstream user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "recovery_drill.py",
    "latency_breakdown.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_output_contents():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "multi-hop txn committed" in proc.stdout
    assert "replica divergence after drain: none" in proc.stdout


def test_recovery_drill_output_contents():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "recovery_drill.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "promoted node 2" in proc.stdout
    assert "post-recovery" in proc.stdout
