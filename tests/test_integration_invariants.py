"""Cross-system integration invariants: serializability audits.

These run the same transfer-style workload on Xenic and every baseline
and audit global invariants that any serializable execution must keep:
money conservation, version monotonicity, replica convergence, and
lock hygiene.
"""

import pytest

from repro.baselines import SYSTEMS, BaselineCluster
from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.sim import RngStream, Simulator

N_NODES = 3
KEYS = N_NODES * 40
INITIAL = 1000


def build(system):
    sim = Simulator()
    if system == "xenic":
        cluster = XenicCluster(sim, N_NODES, config=XenicConfig(),
                               keys_per_shard=128, value_size=16)
    else:
        cluster = BaselineCluster(sim, N_NODES, SYSTEMS[system],
                                  keys_per_shard=128, value_size=16)
    for k in range(KEYS):
        cluster.load_key(k, value=INITIAL)
    cluster.start()
    return sim, cluster


def transfer_spec(rng):
    a = rng.randrange(KEYS)
    b = rng.randrange(KEYS)
    while b == a:
        b = rng.randrange(KEYS)
    amount = 1 + rng.randrange(20)

    def logic(reads, state):
        bal_a = reads[a]
        if bal_a < amount:
            return {a: bal_a, b: reads[b]}
        return {a: bal_a - amount, b: reads[b] + amount}

    return TxnSpec(read_keys=[a, b], write_keys=[a, b], logic=logic,
                   label="transfer")


def run_mix(sim, cluster, n_contexts=6, txns_per_context=25, seed=17):
    completed = []

    def context(node_id, ctx):
        rng = RngStream(seed, "ctx/%d/%d" % (node_id, ctx))
        proto = cluster.protocols[node_id]
        for _ in range(txns_per_context):
            txn = yield from proto.run_transaction(transfer_spec(rng))
            completed.append(txn)

    for node_id in range(N_NODES):
        for ctx in range(n_contexts // N_NODES or 1):
            sim.spawn(context(node_id, ctx), name="ctx")
    sim.run()
    return completed


ALL_SYSTEMS = ["xenic"] + sorted(SYSTEMS)


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_money_conserved_under_concurrency(system):
    sim, cluster = build(system)
    completed = run_mix(sim, cluster)
    assert len(completed) >= 25
    total = sum(cluster.read_committed_value(k) for k in range(KEYS))
    assert total == KEYS * INITIAL, (
        "%s lost/created money: %d != %d" % (system, total, KEYS * INITIAL)
    )


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_no_negative_balances(system):
    sim, cluster = build(system)
    run_mix(sim, cluster)
    for k in range(KEYS):
        assert cluster.read_committed_value(k) >= 0


def test_xenic_replicas_converge_after_drain():
    sim, cluster = build("xenic")
    run_mix(sim, cluster)
    assert cluster.replica_divergence() == {}


def test_xenic_versions_match_write_counts():
    sim, cluster = build("xenic")
    k = 1  # shard 1
    n_writes = 7
    for i in range(n_writes):
        proc = sim.spawn(cluster.protocols[0].run_transaction(
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s, i=i: {k: r[k] + 1})))
        sim.run_until_event(proc, limit=1e7)
    sim.run()
    assert cluster.nodes[1].index.read_version(k) == n_writes
    assert cluster.read_committed_value(k) == INITIAL + n_writes


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_no_lock_leaks_after_mix(system):
    sim, cluster = build(system)
    run_mix(sim, cluster)
    if system == "xenic":
        for node in cluster.nodes:
            for idx in node.indexes.values():
                for key, meta in idx._meta.items():
                    assert meta.lock_owner is None
    else:
        for node in cluster.nodes:
            for table in node.tables.values():
                for obj in table.objects():
                    assert not obj.locked


def test_xenic_deterministic_replay():
    """Two identical runs produce identical simulated outcomes."""
    def run_once():
        sim, cluster = build("xenic")
        run_mix(sim, cluster, seed=99)
        return (
            sim.now,
            [cluster.read_committed_value(k) for k in range(KEYS)],
            sum(p.stats.get("commits") for p in cluster.protocols),
        )

    assert run_once() == run_once()


def test_read_only_snapshot_consistency():
    """A read-only transaction over two keys updated together must never
    observe a half-applied transfer (sum changes)."""
    sim, cluster = build("xenic")
    a, b = 1, 2  # different shards
    stop = [False]
    violations = []

    def writer():
        proto = cluster.protocols[0]
        for i in range(40):
            spec = TxnSpec(read_keys=[a, b], write_keys=[a, b],
                           logic=lambda r, s: {a: r[a] - 5, b: r[b] + 5})
            yield from proto.run_transaction(spec)
        stop[0] = True

    def reader():
        proto = cluster.protocols[2]
        while not stop[0]:
            spec = TxnSpec(read_keys=[a, b], write_keys=[], read_only=True)
            txn = yield from proto.run_transaction(spec)
            total = txn.read_values[a][0] + txn.read_values[b][0]
            if total != 2 * INITIAL:
                violations.append(total)

    sim.spawn(writer(), name="w")
    sim.spawn(reader(), name="r")
    sim.run()
    assert violations == [], "inconsistent snapshots: %r" % violations[:5]
