"""Tests for RNG streams, distribution samplers, and statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    HotspotGenerator,
    LatencyRecorder,
    LogHistogram,
    OnlineStats,
    RngStream,
    Simulator,
    ThroughputMeter,
    ZipfGenerator,
)
from repro.sim.link import BatchingLink, SerialLink


# ---------------------------------------------------------------------------
# RngStream
# ---------------------------------------------------------------------------


def test_rng_deterministic_for_same_seed():
    a = RngStream(42, "x")
    b = RngStream(42, "x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_differs_across_names():
    a = RngStream(42, "x")
    b = RngStream(42, "y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_rng_split_independent():
    root = RngStream(1)
    c1 = root.split("child")
    seq1 = [c1.randint(0, 100) for _ in range(5)]
    # draw from another child; re-derive the first and compare
    root.split("other").random()
    c1b = RngStream(1).split("child")
    assert [c1b.randint(0, 100) for _ in range(5)] == seq1


# ---------------------------------------------------------------------------
# Zipf and hotspot samplers
# ---------------------------------------------------------------------------


def test_zipf_zero_alpha_is_uniform():
    z = ZipfGenerator(100, 0.0, RngStream(3, "z"))
    draws = [z.next() for _ in range(5000)]
    assert min(draws) >= 0 and max(draws) < 100
    # roughly uniform: first decile gets ~10%
    frac = sum(1 for d in draws if d < 10) / len(draws)
    assert 0.05 < frac < 0.15


def test_zipf_skew_favors_low_ranks():
    z = ZipfGenerator(10000, 0.99, RngStream(3, "z"))
    draws = [z.next() for _ in range(20000)]
    top_frac = sum(1 for d in draws if d < 100) / len(draws)
    assert top_frac > 0.3  # heavy head


def test_zipf_alpha_half_moderate_skew():
    """Retwis uses alpha=0.5: mild skew."""
    z = ZipfGenerator(10000, 0.5, RngStream(3, "z"))
    draws = [z.next() for _ in range(20000)]
    top_frac = sum(1 for d in draws if d < 1000) / len(draws)
    assert 0.15 < top_frac < 0.6


def test_zipf_bounds_and_validation():
    with pytest.raises(ValueError):
        ZipfGenerator(0, 0.5, RngStream(1))
    with pytest.raises(ValueError):
        ZipfGenerator(10, -1.0, RngStream(1))
    z = ZipfGenerator(1, 0.9, RngStream(1))
    assert z.next() == 0


def test_hotspot_fractions():
    h = HotspotGenerator(10000, hot_fraction_keys=0.04,
                         hot_fraction_ops=0.90, rng=RngStream(5, "h"))
    draws = [h.next() for _ in range(20000)]
    hot = sum(1 for d in draws if d < 400)
    assert 0.85 < hot / len(draws) < 0.95
    assert max(draws) < 10000


def test_hotspot_validation():
    with pytest.raises(ValueError):
        HotspotGenerator(10, 0.0, 0.9, RngStream(1))
    with pytest.raises(ValueError):
        HotspotGenerator(10, 0.5, 1.5, RngStream(1))


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


def test_online_stats_mean_var():
    s = OnlineStats()
    xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for x in xs:
        s.add(x)
    assert s.mean == pytest.approx(5.0)
    assert s.stdev == pytest.approx(2.138, rel=1e-3)
    assert s.min == 2.0 and s.max == 9.0


def test_online_stats_merge():
    a, b, ref = OnlineStats(), OnlineStats(), OnlineStats()
    for i in range(10):
        a.add(float(i))
        ref.add(float(i))
    for i in range(10, 30):
        b.add(float(i))
        ref.add(float(i))
    a.merge(b)
    assert a.count == ref.count
    assert a.mean == pytest.approx(ref.mean)
    assert a.variance == pytest.approx(ref.variance)


def test_online_stats_merge_both_empty():
    a, b = OnlineStats(), OnlineStats()
    a.merge(b)
    assert a.count == 0
    assert a.mean == 0.0 and a.variance == 0.0


def test_online_stats_merge_into_empty():
    a, b = OnlineStats(), OnlineStats()
    for x in (1.0, 2.0, 3.0):
        b.add(x)
    a.merge(b)
    assert a.count == 3
    assert a.mean == pytest.approx(2.0)
    assert a.min == 1.0 and a.max == 3.0
    # the source is not mutated
    assert b.count == 3


def test_online_stats_merge_empty_other_is_noop():
    a, b = OnlineStats(), OnlineStats()
    for x in (4.0, 6.0):
        a.add(x)
    a.merge(b)
    assert a.count == 2
    assert a.mean == pytest.approx(5.0)
    assert a.min == 4.0 and a.max == 6.0


@settings(max_examples=30, deadline=None)
@given(xs=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False), min_size=2, max_size=200))
def test_online_stats_property_matches_numpy(xs):
    import numpy as np

    s = OnlineStats()
    for x in xs:
        s.add(x)
    assert s.mean == pytest.approx(float(np.mean(xs)), rel=1e-6, abs=1e-6)
    assert s.variance == pytest.approx(float(np.var(xs, ddof=1)),
                                       rel=1e-5, abs=1e-3)


def test_log_histogram_exact_for_distinct_integers():
    h = LogHistogram()
    for i in range(1, 101):
        h.add(float(i))
    # growth=1.01 separates every integer <= 100 into its own bucket
    assert h.percentile(50) == 50.0
    assert h.percentile(99) == 99.0
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 100.0
    assert h.mean == pytest.approx(50.5)
    assert h.min == 1.0 and h.max == 100.0


def test_log_histogram_relative_error_bounded():
    h = LogHistogram()
    rng = RngStream(9, "hist")
    xs = sorted(rng.uniform(0.01, 1e6) for _ in range(2000))
    for x in xs:
        h.add(x)
    for p in (10, 50, 90, 99):
        exact = xs[max(0, math.ceil(p / 100 * len(xs)) - 1)]
        assert h.percentile(p) == pytest.approx(exact, rel=0.02)


def test_log_histogram_under_and_overflow():
    h = LogHistogram(min_value=1.0, max_value=100.0)
    h.add(0.5)     # underflow bucket
    h.add(1e9)     # overflow bucket
    assert h.count == 2
    assert h.percentile(0) == 0.5
    assert h.percentile(100) == 1e9
    assert h.min == 0.5 and h.max == 1e9


def test_log_histogram_validation_and_clear():
    with pytest.raises(ValueError):
        LogHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        LogHistogram(growth=1.0)
    h = LogHistogram()
    with pytest.raises(ValueError):
        h.percentile(-1)
    h.add(5.0)
    h.clear()
    assert h.count == 0
    assert h.percentile(50) == 0.0
    assert h.mean == 0.0


def test_latency_recorder_percentiles():
    r = LatencyRecorder()
    for i in range(1, 101):
        r.record(float(i))
    assert r.median == 50.0
    assert r.p99 == 99.0
    assert r.percentile(100) == 100.0
    assert r.count == 100


def test_latency_recorder_empty():
    r = LatencyRecorder()
    assert r.median == 0.0 and r.mean == 0.0


def test_latency_recorder_percentile_validation():
    r = LatencyRecorder()
    r.record(1.0)
    with pytest.raises(ValueError):
        r.percentile(101)


def test_throughput_meter_window():
    m = ThroughputMeter()
    for _ in range(10):
        m.record()
    m.start_window(100.0)
    for _ in range(50):
        m.record()
    m.end_window(150.0)
    assert m.window_count == 50
    assert m.rate_per_us() == pytest.approx(1.0)
    assert m.rate_per_s() == pytest.approx(1e6)


def test_throughput_meter_errors():
    m = ThroughputMeter()
    with pytest.raises(RuntimeError):
        m.end_window(1.0)
    with pytest.raises(RuntimeError):
        m.rate_per_us()


# ---------------------------------------------------------------------------
# links
# ---------------------------------------------------------------------------


def test_serial_link_serialization_time():
    sim = Simulator()
    link = SerialLink(sim, bandwidth_gbps=100.0)
    # 1250 bytes at 100 Gbps = 0.1 us
    assert link.serialization_us(1250) == pytest.approx(0.1)


def test_serial_link_fifo_queueing():
    sim = Simulator()
    link = SerialLink(sim, bandwidth_gbps=100.0, overhead_us=1.0)
    times = []

    def send(sim):
        ev1 = link.transfer(0)
        ev2 = link.transfer(0)
        ev1.add_callback(lambda e: times.append(sim.now))
        ev2.add_callback(lambda e: times.append(sim.now))
        yield ev2

    sim.spawn(send(sim))
    sim.run()
    assert times == [1.0, 2.0]


def test_batching_link_backlog_grows_batches():
    sim = Simulator()
    delivered = []
    link = BatchingLink(
        sim, bandwidth_gbps=100.0, overhead_us=0.1, propagation_us=0.0,
        deliver=lambda dst, ps: delivered.extend(ps), aggregation=True,
    )

    def producer(sim):
        for i in range(400):
            link.send(0, 64, i)
            yield sim.timeout(0.02)  # 50M msg/s >> link packet rate

    sim.spawn(producer(sim))
    sim.run()
    assert delivered == list(range(400))
    assert link.mean_batch > 2.0


def test_batching_link_low_load_no_window_penalty():
    sim = Simulator()
    arrival = []
    link = BatchingLink(
        sim, bandwidth_gbps=100.0, overhead_us=0.1, propagation_us=0.5,
        deliver=lambda dst, ps: arrival.append(sim.now), aggregation=True,
    )
    link.send(0, 100, "x")
    sim.run()
    # single sporadic message: overhead + serialization + propagation only
    assert arrival[0] < 0.7


def test_percentile_of_sorted_helper():
    from repro.sim.stats import percentile_of_sorted

    xs = [float(i) for i in range(1, 11)]
    assert percentile_of_sorted(xs, 50) == 5.0
    assert percentile_of_sorted(xs, 100) == 10.0
    assert percentile_of_sorted([], 50) == 0.0


def test_sliding_percentile_bounded():
    from repro.sim.stats import SlidingPercentile

    sp = SlidingPercentile(limit=100)
    for i in range(1000):
        sp.add(float(i % 250))
    assert len(sp._values) <= 100
    med = sp.percentile(50)
    assert 0 <= med <= 250


def test_counter_ops():
    from repro.sim.stats import Counter

    c = Counter()
    c.inc("a")
    c.inc("a", 4)
    assert c.get("a") == 5
    assert c.get("missing") == 0
    assert c.as_dict() == {"a": 5}
    c.clear()
    assert c.as_dict() == {}
