"""Compiled-engine leg (``REPRO_COMPILED``, PR 10).

Covers the selection contract (auto/on/off, invalid values, the
``on``-without-extension error), the same-process flip the
``perf --ab-compiled`` harness relies on, the compiled queue twins
behind ``make_queue``, and — most importantly — behavioural identity:
the compiled methods must produce the same simulated results, the same
exceptions, and the same counters as the pure-Python originals.

Everything guarded by ``needs_ckern`` is skipped when the extension is
not built (the pure-Python fallback leg); the selection tests run
everywhere.
"""

import pytest

from repro.sim import compiled
from repro.sim.compiled import (
    COMPILED_KINDS,
    DEFAULT_COMPILED,
    compiled_active,
    compiled_available,
    ensure_leg,
    selected_compiled,
)
from repro.sim.core import (AnyOf, Event, SimulationError, Simulator,
                            Timeout)
from repro.sim.equeue import make_queue

needs_ckern = pytest.mark.skipif(
    not compiled_available(),
    reason="repro.sim._ckern extension not built")


@pytest.fixture
def leg(monkeypatch):
    """Set REPRO_COMPILED for the test; realign process state after
    (monkeypatch restores the env, ensure_leg applies it)."""

    def set_leg(kind):
        monkeypatch.setenv("REPRO_COMPILED", kind)

    yield set_leg
    monkeypatch.undo()
    try:
        ensure_leg()
    except RuntimeError:
        pass


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


def test_selected_compiled_env(leg):
    for kind in COMPILED_KINDS:
        leg(kind)
        assert selected_compiled() == kind
    leg("ON")  # case-insensitive
    assert selected_compiled() == "on"
    leg("not-a-leg")
    assert selected_compiled() == DEFAULT_COMPILED


def test_off_leg_is_pure_python(leg):
    leg("off")
    sim = Simulator()
    assert not compiled_active()
    fired = []
    Timeout(sim, 1.0).add_callback(lambda _e: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]


def test_on_without_extension_raises(leg):
    # Simulate a build-less environment regardless of whether the
    # extension actually exists here.
    leg("off")
    Simulator()  # deactivate first so state stays consistent
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(compiled, "_kern", None)
        mp.setattr(compiled, "_import_failed", True)
        mp.setenv("REPRO_COMPILED", "on")
        with pytest.raises(RuntimeError, match="REPRO_COMPILED=on"):
            ensure_leg()
        # auto degrades silently in the same situation.
        mp.setenv("REPRO_COMPILED", "auto")
        assert ensure_leg() is False


def test_fallback_import_is_clean(leg):
    # The selection module itself must never require the extension.
    leg("off")
    assert ensure_leg() is False
    assert compiled_active() is False


# ---------------------------------------------------------------------------
# the compiled leg proper
# ---------------------------------------------------------------------------


@needs_ckern
def test_on_leg_activates_and_flips_back(leg):
    leg("on")
    Simulator()
    assert compiled_active()
    leg("off")
    Simulator()  # construction re-reads the env and deactivates
    assert not compiled_active()
    leg("on")
    Simulator()
    assert compiled_active()


@needs_ckern
def test_make_queue_returns_compiled_twins(leg):
    leg("on")
    Simulator()
    heap, cal = make_queue("heap"), make_queue("calendar")
    assert heap.kind == "heap" and cal.kind == "calendar"
    assert type(heap).__module__ == "repro.sim._ckern"
    assert type(cal).__module__ == "repro.sim._ckern"


@needs_ckern
def test_compiled_error_semantics(leg):
    leg("on")
    sim = Simulator()
    e = Event(sim)
    e.succeed(1)
    with pytest.raises(SimulationError, match="already triggered"):
        e.succeed(2)
    with pytest.raises(ValueError, match="negative timeout delay"):
        Timeout(sim, -1.0)


@needs_ckern
def test_compiled_non_event_yield_fails_process(leg):
    leg("on")
    sim = Simulator()

    def bad():
        yield 42

    p = sim.spawn(bad())
    sim.run()
    assert p._ok is False
    assert isinstance(p._value, SimulationError)


# ---------------------------------------------------------------------------
# behavioural identity across legs
# ---------------------------------------------------------------------------


def _trace(queue_kind):
    """A small but busy workload: timeouts, AnyOf cancellation storms,
    process chaining, call_at — every compiled fast path fires."""
    sim = Simulator(queue=queue_kind)
    log = []

    def racer(tag):
        for i in range(40):
            got = yield AnyOf(sim, [Timeout(sim, 0.5 + i % 3, value="near"),
                                    Timeout(sim, 100.0 + i, value="far")])
            log.append((tag, sim.now, got[1]))

    def chained():
        for i in range(25):
            yield Timeout(sim, 1.5)
            log.append(("chain", sim.now, i))
        return "done"

    sim.spawn(racer("a"))
    sim.spawn(racer("b"))
    p = sim.spawn(chained())
    p.add_callback(lambda e: log.append(("end", sim.now, e._value)))
    for i in range(10):
        sim.call_at(3.0 + i, lambda _ev, i=i: log.append(("at", sim.now, i)))
    sim.run(until=37.5)
    sim.run()
    return log, sim.now, sim.events_scheduled


@needs_ckern
@pytest.mark.parametrize("queue_kind", ["heap", "calendar"])
def test_trace_identical_across_legs(leg, queue_kind):
    leg("off")
    off = _trace(queue_kind)
    leg("on")
    on = _trace(queue_kind)
    assert off == on


@needs_ckern
@pytest.mark.parametrize("fusion", ["off", "on"])
def test_trace_identical_across_legs_per_fusion(leg, monkeypatch, fusion):
    monkeypatch.setenv("REPRO_FUSION", fusion)
    leg("off")
    off = _trace("calendar")
    leg("on")
    on = _trace("calendar")
    assert off == on


@needs_ckern
def test_message_defaults_identical(leg):
    from repro.core import messages
    from repro.core.messages import Request, Response

    def probe():
        req = Request("read", 7, 3, 0, read_keys=[5], versions=None)
        resp = Response("read_ok", 7, 3, True, reason=None)
        # The None-default fields must land on the shared singletons
        # (identity, not just equality — the free-list reuse contract).
        assert req.write_keys is messages._EMPTY_LIST
        assert req.versions is messages._EMPTY_DICT
        assert resp.read_values is messages._EMPTY_DICT
        return ([getattr(req, s) for s in Request.__slots__],
                [getattr(resp, s) for s in Response.__slots__])

    leg("off")
    Simulator()
    off = probe()
    leg("on")
    Simulator()
    on = probe()
    assert off == on
