"""Unit tests for Resource, Semaphore, and Store primitives."""

import pytest

from repro.sim import Resource, Semaphore, Simulator, Store
from repro.sim.core import SimulationError


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = []

    def proc(sim, tag):
        yield res.acquire()
        granted.append((sim.now, tag))
        yield sim.timeout(10.0)
        res.release()

    for tag in "abc":
        sim.spawn(proc(sim, tag))
    sim.run()
    times = dict((tag, t) for t, tag in granted)
    assert times["a"] == 0.0 and times["b"] == 0.0
    assert times["c"] == 10.0


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def proc(sim, tag):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(1.0)
        res.release()

    for tag in "abcd":
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == list("abcd")


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_utilization_tracks_busy_time():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def proc(sim):
        yield res.acquire()
        yield sim.timeout(10.0)
        res.release()
        yield sim.timeout(10.0)

    sim.spawn(proc(sim))
    sim.run()
    # one of two slots busy for 10 of 20 us -> 25%
    assert res.utilization() == pytest.approx(0.25)


def test_semaphore_blocks_until_up():
    sim = Simulator()
    sem = Semaphore(sim, initial=0)
    seen = []

    def consumer(sim):
        yield sem.down()
        seen.append(sim.now)

    def producer(sim):
        yield sim.timeout(4.0)
        sem.up()

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert seen == [4.0]


def test_semaphore_up_n():
    sim = Simulator()
    sem = Semaphore(sim, initial=0)
    sem.up(3)
    assert sem.count == 3


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(sim):
        for i in range(3):
            yield sim.timeout(1.0)
            yield store.put(i)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert got == [0, 1, 2]


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer(sim):
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer(sim):
        yield sim.timeout(5.0)
        item = yield store.get()
        events.append(("got-" + item, sim.now))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events


def test_store_try_get_and_try_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    ok, item = store.try_get()
    assert not ok and item is None
    assert store.try_put("x")
    assert not store.try_put("y")
    ok, item = store.try_get()
    assert ok and item == "x"


def test_store_drain_returns_all():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.try_put(i)
    assert store.drain() == [0, 1, 2, 3, 4]
    assert len(store) == 0


def test_store_drain_admits_blocked_putters():
    sim = Simulator()
    store = Store(sim, capacity=2)
    put_done = []

    def producer(sim):
        for i in range(4):
            yield store.put(i)
            put_done.append(i)

    sim.spawn(producer(sim))
    sim.run()
    assert put_done == [0, 1]
    drained = store.drain()
    assert drained == [0, 1]
    sim.run()
    assert put_done == [0, 1, 2, 3]
    assert len(store) == 2
