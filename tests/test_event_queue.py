"""Scheduler edge cases, exercised identically on both event-queue
implementations (PR 6): the pluggable-queue contract says pop order,
stale-entry handling, and the simulated clock are byte-identical between
the heap and the calendar queue, so every test here is parametrized over
both ``Simulator(queue=...)`` kinds and several also assert cross-impl
identity directly.
"""

import os

import pytest

from repro.sim import Simulator, Timeout
from repro.sim.core import AnyOf
from repro.sim.equeue import (
    _COMPACT_MIN_CANCELLED,
    CalendarEventQueue,
    DEFAULT_QUEUE,
    HeapEventQueue,
    make_queue,
    selected_queue_kind,
)

KINDS = ["heap", "calendar"]


# ---------------------------------------------------------------------------
# selection / construction
# ---------------------------------------------------------------------------


def test_make_queue_by_name():
    # With the compiled leg active (REPRO_COMPILED, PR 10) make_queue
    # returns the extension's queue twins; the contract is the kind
    # name plus the EventQueue protocol, not the concrete class.
    from repro.sim.compiled import compiled_active

    heap, cal = make_queue("heap"), make_queue("calendar")
    assert heap.kind == "heap" and cal.kind == "calendar"
    if not compiled_active():
        assert isinstance(heap, HeapEventQueue)
        assert isinstance(cal, CalendarEventQueue)
    with pytest.raises(ValueError):
        make_queue("splay")


def test_simulator_accepts_kind_string_and_instance():
    assert Simulator(queue="heap").queue_kind == "heap"
    assert Simulator(queue="calendar").queue_kind == "calendar"
    q = CalendarEventQueue()
    sim = Simulator(queue=q)
    assert sim.queue_kind == "calendar"
    Timeout(sim, 1.0)
    assert len(q) == 1


def test_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_QUEUE", "heap")
    assert selected_queue_kind() == "heap"
    assert Simulator().queue_kind == "heap"
    monkeypatch.setenv("REPRO_QUEUE", "not-a-queue")
    assert selected_queue_kind() == DEFAULT_QUEUE
    monkeypatch.delenv("REPRO_QUEUE")
    assert selected_queue_kind() == DEFAULT_QUEUE


# ---------------------------------------------------------------------------
# empty-queue peek_time
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
def test_empty_queue_peek_time(kind):
    q = make_queue(kind)
    assert q.peek_time() is None
    assert q.pop_min() is None
    assert len(q) == 0
    # Still empty (and still None) after a push/pop cycle.
    sim = Simulator(queue=q)
    Timeout(sim, 5.0)
    assert q.peek_time() == 5.0
    sim.run()
    assert q.peek_time() is None
    assert q.pop_min() is None


# ---------------------------------------------------------------------------
# equal-timestamp FIFO ordering, including across bucket boundaries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
def test_equal_timestamp_fifo(kind):
    sim = Simulator(queue=kind)
    fired = []
    for i in range(50):
        Timeout(sim, 10.0).add_callback(lambda _e, i=i: fired.append(i))
    sim.run()
    assert fired == list(range(50))


@pytest.mark.parametrize("kind", KINDS)
def test_fifo_across_bucket_boundaries(kind):
    # Interleave schedule order across many distinct deadlines so bucket
    # routing (calendar) must still produce global (when, seq) order.
    sim = Simulator(queue=kind)
    fired = []
    lanes = [3.0, 3.5, 100.25, 7.0, 100.25, 0.5, 3.0]
    expect = []
    for i, delay in enumerate(lanes * 40):
        Timeout(sim, delay).add_callback(
            lambda _e, i=i, d=delay: fired.append((d, i)))
        expect.append((delay, i))
    expect.sort()  # (when, schedule order) — FIFO within equal deadlines
    sim.run()
    assert fired == expect


def test_pop_order_identical_across_impls():
    def trace(kind):
        sim = Simulator(queue=kind)
        out = []
        delays = [(i * 37 % 19) + (0.5 if i % 3 else 0.0) for i in range(400)]
        for i, d in enumerate(delays):
            Timeout(sim, float(d)).add_callback(
                lambda _e, i=i: out.append((sim.now, i)))
        sim.run()
        return out

    assert trace("heap") == trace("calendar")


# ---------------------------------------------------------------------------
# run(until) boundary with stale/abandoned head entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
def test_run_until_with_abandoned_head(kind):
    sim = Simulator(queue=kind)
    t_stale = Timeout(sim, 5.0)
    t_live = Timeout(sim, 30.0)
    fired = []
    t_live.add_callback(lambda _e: fired.append(sim.now))
    assert t_stale.cancel()
    # The stale head is <= until: it is discarded (advancing the clock
    # transiently) but never dispatched; the clock lands exactly on until.
    sim.run(until=10.0)
    assert fired == []
    assert sim.now == 10.0
    assert sim.pending_events == 1  # the live far timeout survived
    sim.run(until=40.0)
    assert fired == [30.0]
    assert sim.now == 40.0


@pytest.mark.parametrize("kind", KINDS)
def test_run_until_leaves_live_head_past_boundary(kind):
    sim = Simulator(queue=kind)
    fired = []
    Timeout(sim, 50.0).add_callback(lambda _e: fired.append(sim.now))
    sim.run(until=49.999)
    assert fired == [] and sim.now == 49.999
    sim.run(until=50.0)
    assert fired == [50.0] and sim.now == 50.0


# ---------------------------------------------------------------------------
# interleaved abandon-then-reschedule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
def test_abandon_then_reschedule_interleaved(kind):
    """A process that repeatedly races a near winner against a far loser:
    every iteration cancels the far timeout and schedules fresh ones, so
    stale entries interleave with live ones throughout the queue."""
    sim = Simulator(queue=kind)
    won = []

    def racer():
        for i in range(3 * _COMPACT_MIN_CANCELLED):  # cross compaction
            got = yield AnyOf(sim, [Timeout(sim, 1.0, value="near"),
                                    Timeout(sim, 1000.0, value="far")])
            won.append(got[1])

    sim.spawn(racer())
    sim.run()
    assert won == ["near"] * (3 * _COMPACT_MIN_CANCELLED)
    assert sim.pending_events == 0  # full drain retires every stale entry


@pytest.mark.parametrize("kind", KINDS)
def test_cancel_reschedule_same_horizon(kind):
    sim = Simulator(queue=kind)
    fired = []
    stale = [Timeout(sim, 10.0) for _ in range(2 * _COMPACT_MIN_CANCELLED)]
    for t in stale:
        assert t.cancel()
    # Reschedule live work at the same deadline as the abandoned batch.
    for i in range(5):
        Timeout(sim, 10.0).add_callback(lambda _e, i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 10.0


def test_final_clock_identical_after_cancel_storm():
    """Full-drain final clock is digest-visible: both impls must retire
    the same stale entries at the same logical instants."""

    def run(kind):
        sim = Simulator(queue=kind)
        log = []

        def storm():
            for i in range(200):
                got = yield AnyOf(sim, [Timeout(sim, 0.5, value=i),
                                        Timeout(sim, 500.0 + i, value=-i)])
                log.append((sim.now, got[1]))

        sim.spawn(storm())
        sim.run()
        return log, sim.now, sim.events_scheduled

    assert run("heap") == run("calendar")


# ---------------------------------------------------------------------------
# calendar internals: rebalance keeps order and population
# ---------------------------------------------------------------------------


def test_calendar_rebalance_preserves_order_and_len():
    q = CalendarEventQueue(width=1.0)
    sim = Simulator(queue=q)
    fired = []
    # Sparse far-flung population to force a first-activation rebalance.
    n = 300
    for i in range(n):
        Timeout(sim, 1.0 + 97.0 * i).add_callback(
            lambda _e, i=i: fired.append(i))
    assert len(q) == n
    sim.run()
    assert fired == list(range(n))
    assert q.width != 1.0  # the load-factor trigger actually fired
    assert len(q) == 0


def test_calendar_push_into_active_band():
    q = CalendarEventQueue(width=8.0)
    sim = Simulator(queue=q)
    fired = []

    def proc():
        yield Timeout(sim, 1.0)
        fired.append(sim.now)
        # Schedule behind and ahead within the active band; both must
        # fire in timestamp order even though the band is mid-drain.
        Timeout(sim, 0.5).add_callback(lambda _e: fired.append(sim.now))
        Timeout(sim, 2.0).add_callback(lambda _e: fired.append(sim.now))

    sim.spawn(proc())
    sim.run()
    assert fired == [1.0, 1.5, 3.0]


# ---------------------------------------------------------------------------
# property test: random op streams, identical across every queue impl
# ---------------------------------------------------------------------------


def _drive(queue_kind, compiled_leg, ops):
    """Replay one random op stream on one (queue, compiled) variant and
    return everything digest-visible: the fire/cancel log, the final
    clock, and the scheduled-event counter."""
    saved = os.environ.get("REPRO_COMPILED")
    os.environ["REPRO_COMPILED"] = compiled_leg
    try:
        sim = Simulator(queue=queue_kind)
        log = []
        handles = []
        for op in ops:
            if op[0] == "push":
                i = len(handles)
                t = Timeout(sim, op[1])
                cb = lambda _e, i=i: log.append(("fire", i, sim.now))  # noqa: E731
                t.add_callback(cb)
                handles.append((t, cb))
            elif op[0] == "cancel":
                if handles:
                    idx = op[1] % len(handles)
                    t, cb = handles[idx]
                    if t._ok is None:
                        # Detach first, the way the engine abandons a
                        # timeout (cancel refuses with live callbacks).
                        t.remove_callback(cb)
                        log.append(("cancel", idx, t.cancel()))
                    else:
                        log.append(("cancel", idx, False))
            else:  # ("run", dt): bounded drain, stale heads included
                sim.run(until=sim.now + op[1])
                log.append(("clock", sim.now))
        sim.run()
        return log, sim.now, sim.events_scheduled
    finally:
        if saved is None:
            os.environ.pop("REPRO_COMPILED", None)
        else:
            os.environ["REPRO_COMPILED"] = saved


_hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_delay = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                   allow_infinity=False)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _delay),
        st.tuples(st.just("cancel"), st.integers(min_value=0,
                                                 max_value=10 ** 6)),
        st.tuples(st.just("run"), _delay),
    ),
    max_size=50,
)


@settings(max_examples=30, deadline=None)
@given(ops=_ops)
def test_random_streams_identical_across_impls(ops):
    """Random push/cancel/run(until) streams must produce the identical
    pop order, final clock, and event counter on the heap queue, the
    calendar queue, and (when built) both compiled twins."""
    from repro.sim.compiled import compiled_available

    legs = ["off"] + (["on"] if compiled_available() else [])
    traces = [_drive(kind, leg, ops) for kind in KINDS for leg in legs]
    for t in traces[1:]:
        assert t == traces[0]


def test_queue_kind_metadata_roundtrip():
    saved = os.environ.get("REPRO_QUEUE")
    try:
        os.environ["REPRO_QUEUE"] = "heap"
        assert Simulator().queue_kind == "heap"
    finally:
        if saved is None:
            os.environ.pop("REPRO_QUEUE", None)
        else:
            os.environ["REPRO_QUEUE"] = saved
