"""Tests for the observability layer: registry, sampler, interposition,
the Observer, and the Chrome trace / metrics exporters."""

import json

import pytest

from repro.baselines import SYSTEMS, BaselineCluster
from repro.bench import Bench
from repro.bench.chaos import run_chaos
from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.obs import (
    EventLog,
    InstantEvent,
    MetricsRegistry,
    Observer,
    Sampler,
    SpanEvent,
    chrome_trace_events,
    dumps_chrome_trace,
    interpose,
    interposers_of,
    metrics_to_dict,
    remove_interposers,
)
from repro.sim import Simulator
from repro.workloads import Smallbank


# ---------------------------------------------------------------------------
# registry + sampler
# ---------------------------------------------------------------------------


def test_registry_counter_get_or_create():
    reg = MetricsRegistry()
    c1 = reg.counter("n0", "ops")
    c1.inc()
    c1.inc(4)
    assert reg.counter("n0", "ops") is c1
    assert c1.value == 5.0
    # distinct labels => distinct metric
    c2 = reg.counter("n0", "ops", shard=1)
    assert c2 is not c1
    assert len(reg) == 2


def test_registry_gauge_duplicate_raises():
    reg = MetricsRegistry()
    reg.gauge("n0", "depth", lambda: 1)
    with pytest.raises(ValueError):
        reg.gauge("n0", "depth", lambda: 2)
    # a different label set is a different gauge
    reg.gauge("n0", "depth", lambda: 3, queue=1)


def test_registry_histogram_and_as_dict():
    reg = MetricsRegistry()
    reg.counter("n0", "ops", shard=2).inc(7)
    reg.gauge("cluster", "util", lambda: 0.5)
    h = reg.histogram("n0", "probe_len")
    for x in (1.0, 2.0, 3.0, 4.0):
        h.observe(x)
    d = reg.as_dict()
    assert d["counters"]["n0/ops{shard=2}"] == 7.0
    assert d["gauges"]["cluster/util"]["samples"] == 0
    assert d["histograms"]["n0/probe_len"]["count"] == 4
    assert d["histograms"]["n0/probe_len"]["mean"] == pytest.approx(2.5)


def busy_until(sim, t_end, step=10.0):
    def proc():
        while sim.now + step <= t_end:
            yield sim.timeout(step)
    sim.spawn(proc())


def test_sampler_ticks_at_interval():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("n0", "x", lambda: sim.now)
    busy_until(sim, 100.0)
    sampler = Sampler(sim, reg, interval_us=10.0)
    sampler.start()
    sim.run(until=95.0)
    sampler.stop()
    gauge = next(iter(reg.gauges.values()))
    assert sampler.ticks == 9
    assert [t for t, _ in gauge.series] == [10.0 * i for i in range(1, 10)]


def test_sampler_bounded_by_max_ticks():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("n0", "x", lambda: 0)
    busy_until(sim, 1000.0, step=1.0)
    sampler = Sampler(sim, reg, interval_us=1.0, max_ticks=5)
    sampler.start()
    sim.run()  # open-ended run must still terminate
    assert sampler.ticks == 5


def test_sampler_stops_at_quiescence():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("n0", "x", lambda: 0)
    busy_until(sim, 50.0)  # workload ends at t=50
    sampler = Sampler(sim, reg, interval_us=20.0)
    sampler.start()
    sim.run(until=10_000.0)
    # ticks at 20 and 40 while busy, one final tick at 60, then no idle
    # tail even though the run extends to t=10000
    assert sampler.ticks == 3
    assert sim.now == 10_000.0


# ---------------------------------------------------------------------------
# event log
# ---------------------------------------------------------------------------


def test_event_log_bounded_counts_drops():
    log = EventLog(limit=3)
    for i in range(5):
        log.append(SpanEvent("s%d" % i, "c", 0, "t", float(i), 1.0))
    assert len(log) == 3
    assert log.dropped == 2
    assert [e.name for e in log] == ["s0", "s1", "s2"]
    log.clear()
    assert len(log) == 0 and log.dropped == 0


def test_event_log_partitions_spans_and_instants():
    log = EventLog()
    log.append(SpanEvent("a", "c", 0, "t", 0.0, 1.0))
    log.append(InstantEvent("b", "c", 0, "t", 2.0))
    assert [e.name for e in log.spans()] == ["a"]
    assert [e.name for e in log.instants()] == ["b"]


# ---------------------------------------------------------------------------
# interposition
# ---------------------------------------------------------------------------


class Victim:
    def work(self, x):
        return x * 2


def tagging_factory(tag, calls):
    def factory(call_inner):
        def wrapper(*args, **kw):
            calls.append(tag)
            return call_inner(*args, **kw)
        return wrapper
    return factory


def test_interpose_stacks_and_removes_in_any_order():
    v = Victim()
    calls = []
    a, b = object(), object()
    interpose(v, "work", a, tagging_factory("a", calls))
    interpose(v, "work", b, tagging_factory("b", calls))
    assert interposers_of(v, "work") == [b, a]
    assert v.work(3) == 6
    assert calls == ["b", "a"]
    # remove the *inner* interposer; the outer one must keep working
    assert remove_interposers(v, "work", a) == 1
    calls.clear()
    assert v.work(3) == 6
    assert calls == ["b"]
    assert remove_interposers(v, "work", b) == 1
    # chain empty: the class method shows through again (no instance attr)
    assert "work" not in vars(v)
    assert v.work(3) == 6


def test_interpose_idempotent_per_owner():
    v = Victim()
    calls = []
    owner = object()
    interpose(v, "work", owner, tagging_factory("x", calls))
    interpose(v, "work", owner, tagging_factory("y", calls))
    v.work(1)
    assert calls == ["x"]  # second attach was a no-op
    assert remove_interposers(v, "work", owner) == 1


def test_remove_unknown_owner_is_noop():
    v = Victim()
    calls = []
    interpose(v, "work", "real", tagging_factory("r", calls))
    assert remove_interposers(v, "work", "stranger") == 0
    assert v.work(2) == 4
    assert calls == ["r"]


def test_interpose_preserves_instance_assigned_base():
    v = Victim()
    v.work = lambda x: x + 100  # instance-level override, not the class method
    owner = object()
    interpose(v, "work", owner, tagging_factory("t", []))
    remove_interposers(v, "work", owner)
    assert v.work(1) == 101  # the override survived the round trip


# ---------------------------------------------------------------------------
# Observer on real clusters
# ---------------------------------------------------------------------------


def make_xenic(n_keys=96):
    sim = Simulator()
    cluster = XenicCluster(sim, 3, config=XenicConfig(), keys_per_shard=128)
    for k in range(n_keys):
        cluster.load_key(k, value=k)
    cluster.start()
    return sim, cluster


def run_txns(sim, cluster, keys):
    for k in keys:
        spec = TxnSpec(read_keys=[k], write_keys=[k],
                       logic=lambda r, s, k=k: {k: "x"})
        sim.spawn(cluster.protocols[0].run_transaction(spec))
    sim.run(until=5000.0)


def test_observer_collects_spans_and_gauges_on_xenic():
    sim, cluster = make_xenic()
    obs = Observer(sim, sample_interval_us=20.0).install(cluster)
    run_txns(sim, cluster, [1, 2, 4, 8])
    cats = {e.cat for e in obs.log.spans()}
    assert "txn" in cats      # commits recorded as txn spans
    assert "core" in cats     # NIC/host core lanes
    assert "phase" in cats    # interposed coordinator phases
    assert obs.sampler.ticks > 0
    assert any(g.series for g in obs.registry.gauges.values())
    obs.snapshot_counters()
    d = obs.registry.as_dict()
    assert d["counters"]["n0/proto_commits"] >= 4


def test_observer_double_install_raises():
    sim, cluster = make_xenic()
    obs = Observer(sim).install(cluster)
    with pytest.raises(RuntimeError):
        obs.install(cluster)


def test_observer_uninstall_reverses_hooks():
    sim, cluster = make_xenic()
    proto = cluster.protocols[0]
    obs = Observer(sim).install(cluster)
    assert interposers_of(proto, "_phase_execute") == [obs]
    obs.uninstall()
    assert interposers_of(proto, "_phase_execute") == []
    assert proto.obs is None
    assert cluster.nodes[0].nic.cores.obs_sink is None
    assert cluster.nodes[0].nic.dma.obs_sink is None
    # events after uninstall are not recorded
    n = len(obs.log)
    run_txns(sim, cluster, [3])
    assert len(obs.log) == n


def test_observer_on_baseline_cluster():
    sim = Simulator()
    cluster = BaselineCluster(sim, 3, SYSTEMS["fasst"], host_threads=4,
                              keys_per_shard=128, value_size=16)
    for k in range(96):
        cluster.load_key(k, value=k)
    cluster.start()
    obs = Observer(sim).install(cluster)
    run_txns(sim, cluster, [1, 2, 4])
    assert any(e.cat == "txn" for e in obs.log.spans())
    obs.snapshot_counters()
    d = obs.registry.as_dict()
    assert any(name.endswith("rdma_ops{verb=read}")
               or "rdma_ops" in name for name in d["counters"])


def test_observer_neutral_for_bench_results():
    """Acceptance: installing an Observer changes no simulated result."""
    def run(obs):
        wl = Smallbank(3, accounts_per_server=1500, hot_keys_fraction=0.25)
        bench = Bench("xenic", wl, n_nodes=3, obs=obs)
        r = bench.measure(4, warmup_us=50, window_us=150)
        return (r.throughput_per_server, r.median_latency_us,
                r.p99_latency_us, r.mean_latency_us, r.commits, r.aborts)

    assert run(False) == run(True)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def observed_run():
    sim, cluster = make_xenic()
    obs = Observer(sim, sample_interval_us=20.0).install(cluster)
    run_txns(sim, cluster, [1, 2, 4, 8, 16])
    return obs


def test_chrome_trace_is_valid_and_complete():
    obs = observed_run()
    doc = json.loads(dumps_chrome_trace(obs))
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "b", "e", "C"} <= phases
    # async txn spans pair up
    assert (len([e for e in events if e["ph"] == "b"])
            == len([e for e in events if e["ph"] == "e"]))
    # one named track per NIC core
    thread_names = {e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    nic_cores = {"nic.c%d" % c for c in range(3)}
    assert nic_cores <= thread_names
    assert doc["otherData"]["events_dropped"] == 0
    assert doc["otherData"]["events_recorded"] == len(obs.log)


def test_chrome_trace_byte_identical_for_same_seed():
    a = dumps_chrome_trace(observed_run())
    b = dumps_chrome_trace(observed_run())
    assert a == b


def test_chrome_trace_includes_fault_instants():
    r = run_chaos(seed=3, faults="delay=0.2:5,dup=0.05", n_txns=12, obs=True)
    assert r.observer is not None
    events = chrome_trace_events(r.observer, fault_trace=r.trace)
    faults = [e for e in events if e.get("cat") == "fault"]
    assert faults and all(e["ph"] == "i" for e in faults)
    assert {e["name"] for e in faults} <= {"delay", "dup", "drop", "reorder",
                                           "crash", "recover"}


def test_metrics_to_dict_shape():
    obs = observed_run()
    d = metrics_to_dict(obs)
    assert d["spans"] > 0
    assert d["sampler_ticks"] > 0
    assert d["events_dropped"] == 0
    assert "cluster/txn_latency_us" in d["metrics"]["histograms"]


def test_chaos_without_obs_has_no_observer():
    r = run_chaos(seed=3, faults="dup=0.05", n_txns=8)
    assert r.observer is None
