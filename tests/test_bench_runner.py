"""Tests for the benchmark harness and the microbenchmark experiments."""

import pytest

from repro.bench import Bench, run_point, run_sweep
from repro.bench.report import format_table
from repro.bench.runner import RunResult
from repro.workloads import Retwis, Smallbank, TpccNewOrder


def small_smallbank(n=3):
    return Smallbank(n, accounts_per_server=1500, hot_keys_fraction=0.25)


def test_bench_builds_all_systems():
    for system in ("xenic", "drtmh", "drtmh_nc", "fasst", "drtmr"):
        bench = Bench(system, small_smallbank(), n_nodes=3)
        assert len(bench.cluster.protocols) == 3


def test_bench_rejects_unknown_system():
    with pytest.raises(ValueError):
        Bench("nope", small_smallbank(), n_nodes=3)


def test_measure_produces_sane_result():
    bench = Bench("xenic", small_smallbank(), n_nodes=3)
    r = bench.measure(4, warmup_us=50, window_us=150)
    assert isinstance(r, RunResult)
    assert r.throughput_per_server > 0
    assert r.median_latency_us > 0
    assert r.p99_latency_us >= r.median_latency_us
    assert r.commits > 0
    assert "nic_core_util" in r.extra


def test_sweep_requires_ascending_concurrency():
    bench = Bench("xenic", small_smallbank(), n_nodes=3)
    bench.measure(8, warmup_us=30, window_us=60)
    with pytest.raises(ValueError):
        bench.measure(4)


def test_sweep_reuses_cluster_and_increases_load():
    results = run_sweep("xenic", small_smallbank, [2, 8],
                        n_nodes=3, warmup_us=50, window_us=150)
    assert [r.concurrency for r in results] == [2, 8]
    assert results[1].throughput_per_server > results[0].throughput_per_server


def test_run_point_baseline():
    r = run_point("fasst", small_smallbank(), concurrency=4, n_nodes=3,
                  warmup_us=50, window_us=150)
    assert r.system == "fasst" and r.throughput_per_server > 0
    assert "host_util" in r.extra


def test_tpcc_counted_label_filters_throughput():
    from repro.workloads import TpccFull

    wl = TpccFull(3, warehouses_per_server=4, stock_per_warehouse=200,
                  customers_per_warehouse=20)
    wl.counted_label = "new_order"
    bench = Bench("xenic", wl, n_nodes=3)
    r = bench.measure(8, warmup_us=80, window_us=250)
    # counted new-orders are a strict subset of all commits
    assert 0 < r.throughput_per_server
    assert r.commits > r.throughput_per_server * r.window_us * 3 / 1e6 * 0.9


def test_workload_thread_hints_applied():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=100,
                      customers_per_warehouse=10)
    bench = Bench("xenic", wl, n_nodes=3)
    node = bench.cluster.nodes[0]
    assert node.host_app_cores.cores == wl.xenic_app_threads
    assert node.worker_cores.cores == wl.xenic_worker_threads
    b2 = Bench("fasst", wl, n_nodes=3)
    assert b2.cluster.nodes[0].host_cores.cores == wl.baseline_host_threads


def test_xenic_prewarm_fills_cache():
    bench = Bench("xenic", small_smallbank(), n_nodes=3)
    node = bench.cluster.nodes[0]
    assert node.index.cache_size == len(node.tables[0])


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 10000.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "10000" in lines[3]


def test_retwis_runs_on_all_systems_quickly():
    for system in ("xenic", "drtmr"):
        bench = Bench(system, Retwis(3, keys_per_server=1500), n_nodes=3)
        r = bench.measure(4, warmup_us=50, window_us=120)
        assert r.commits > 0


def test_bench_hardware_override_applies_to_both_system_kinds():
    from repro.hw.params import testbed_params

    hw = testbed_params(50.0)
    b1 = Bench("xenic", small_smallbank(), n_nodes=3, hardware=hw)
    assert b1.cluster.nodes[0].nic.port.params.bandwidth_gbps == 50.0
    b2 = Bench("drtmh", small_smallbank(), n_nodes=3, hardware=hw)
    assert b2.cluster.nodes[0].rdma.params.bandwidth_gbps == 50.0
