"""Tests for the benchmark harness and the microbenchmark experiments."""

import pytest

from repro.bench import Bench, run_point, run_sweep
from repro.bench.report import format_table
from repro.bench.runner import RunResult
from repro.workloads import Retwis, Smallbank, TpccNewOrder


def small_smallbank(n=3):
    return Smallbank(n, accounts_per_server=1500, hot_keys_fraction=0.25)


def test_bench_builds_all_systems():
    for system in ("xenic", "drtmh", "drtmh_nc", "fasst", "drtmr"):
        bench = Bench(system, small_smallbank(), n_nodes=3)
        assert len(bench.cluster.protocols) == 3


def test_bench_rejects_unknown_system():
    with pytest.raises(ValueError):
        Bench("nope", small_smallbank(), n_nodes=3)


def test_measure_produces_sane_result():
    bench = Bench("xenic", small_smallbank(), n_nodes=3)
    r = bench.measure(4, warmup_us=50, window_us=150)
    assert isinstance(r, RunResult)
    assert r.throughput_per_server > 0
    assert r.median_latency_us > 0
    assert r.p99_latency_us >= r.median_latency_us
    assert r.commits > 0
    assert "nic_core_util" in r.extra


def test_sweep_requires_ascending_concurrency():
    bench = Bench("xenic", small_smallbank(), n_nodes=3)
    bench.measure(8, warmup_us=30, window_us=60)
    with pytest.raises(ValueError):
        bench.measure(4)


def test_sweep_reuses_cluster_and_increases_load():
    results = run_sweep("xenic", small_smallbank, [2, 8],
                        n_nodes=3, warmup_us=50, window_us=150)
    assert [r.concurrency for r in results] == [2, 8]
    assert results[1].throughput_per_server > results[0].throughput_per_server


def test_run_point_baseline():
    r = run_point("fasst", small_smallbank(), concurrency=4, n_nodes=3,
                  warmup_us=50, window_us=150)
    assert r.system == "fasst" and r.throughput_per_server > 0
    assert "host_util" in r.extra


def test_tpcc_counted_label_filters_throughput():
    from repro.workloads import TpccFull

    wl = TpccFull(3, warehouses_per_server=4, stock_per_warehouse=200,
                  customers_per_warehouse=20)
    wl.counted_label = "new_order"
    bench = Bench("xenic", wl, n_nodes=3)
    r = bench.measure(8, warmup_us=80, window_us=250)
    # counted new-orders are a strict subset of all commits
    assert 0 < r.throughput_per_server
    assert r.commits > r.throughput_per_server * r.window_us * 3 / 1e6 * 0.9


def test_workload_thread_hints_applied():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=100,
                      customers_per_warehouse=10)
    bench = Bench("xenic", wl, n_nodes=3)
    node = bench.cluster.nodes[0]
    assert node.host_app_cores.cores == wl.xenic_app_threads
    assert node.worker_cores.cores == wl.xenic_worker_threads
    b2 = Bench("fasst", wl, n_nodes=3)
    assert b2.cluster.nodes[0].host_cores.cores == wl.baseline_host_threads


def test_xenic_prewarm_fills_cache():
    bench = Bench("xenic", small_smallbank(), n_nodes=3)
    node = bench.cluster.nodes[0]
    assert node.index.cache_size == len(node.tables[0])


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 10000.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "10000" in lines[3]


def test_format_table_float_edge_cases():
    out = format_table(
        ["v"],
        [[float("nan")], [float("inf")], [float("-inf")],
         [-12.5], [-3.456], [-12345.6], [0.0]])
    cells = [line.strip() for line in out.splitlines()[2:]]
    assert cells == ["nan", "inf", "-inf", "-12.5", "-3.46", "-12346", "0"]


def test_to_jsonable_handles_dataclasses_and_non_finite():
    import json

    from repro.bench import to_jsonable

    r = RunResult(system="xenic", workload="w", concurrency=2,
                  throughput_per_server=1.5, median_latency_us=float("nan"),
                  p99_latency_us=float("inf"), mean_latency_us=2.0,
                  commits=3, aborts=0, window_us=100.0,
                  extra={"util": 0.5, "obj": object()})
    out = to_jsonable([r, {"k": (1, 2)}, None, True])
    json.dumps(out)  # everything must be serializable
    assert out[0]["median_latency_us"] is None
    assert out[0]["p99_latency_us"] is None
    assert out[0]["mean_latency_us"] == 2.0
    assert out[0]["extra"]["obj"].startswith("<object")
    assert out[1] == {"k": [1, 2]}
    assert out[2] is None and out[3] is True


def test_write_results_json(tmp_path):
    import json

    from repro.bench import write_results_json

    r = RunResult(system="xenic", workload="w", concurrency=2,
                  throughput_per_server=1.0, median_latency_us=1.0,
                  p99_latency_us=2.0, mean_latency_us=1.5,
                  commits=3, aborts=0, window_us=100.0)
    path = write_results_json(str(tmp_path / "out.json"), "exp", [r])
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["experiment"] == "exp"
    assert doc["results"][0]["system"] == "xenic"


def test_workload_by_name():
    from repro.bench import workload_by_name

    wl = workload_by_name("smallbank", 3, seed=2)
    assert isinstance(wl, Smallbank)
    with pytest.raises(ValueError):
        workload_by_name("nope", 3)


def test_cli_trace_command_writes_valid_trace(tmp_path):
    import json

    from repro.__main__ import main

    out = tmp_path / "t.json"
    rc = main(["trace", "--workload", "smallbank", "--nodes", "3",
               "--warmup", "30", "--window", "80", "--concurrency", "2",
               "--trace-out", str(out)])
    assert rc == 0
    with open(out) as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert any(e["ph"] == "b" for e in events)  # txn spans
    assert any(e["ph"] == "C" for e in events)  # counter samples
    assert any(e.get("cat") == "fault" for e in events)  # default faults


def test_cli_list_and_metrics(capsys, tmp_path):
    import json

    from repro.__main__ import main

    assert main(["list"]) == 0
    assert "trace" in capsys.readouterr().out
    out = tmp_path / "m.json"
    rc = main(["metrics", "--workload", "smallbank", "--nodes", "3",
               "--warmup", "30", "--window", "80", "--concurrency", "2",
               "--faults", "none", "--metrics-out", str(out)])
    assert rc == 0
    with open(out) as fh:
        doc = json.load(fh)
    assert doc["metrics"]["counters"]
    assert doc["sampler_ticks"] > 0


def test_retwis_runs_on_all_systems_quickly():
    for system in ("xenic", "drtmr"):
        bench = Bench(system, Retwis(3, keys_per_server=1500), n_nodes=3)
        r = bench.measure(4, warmup_us=50, window_us=120)
        assert r.commits > 0


def test_bench_hardware_override_applies_to_both_system_kinds():
    from repro.hw.params import testbed_params

    hw = testbed_params(50.0)
    b1 = Bench("xenic", small_smallbank(), n_nodes=3, hardware=hw)
    assert b1.cluster.nodes[0].nic.port.params.bandwidth_gbps == 50.0
    b2 = Bench("drtmh", small_smallbank(), n_nodes=3, hardware=hw)
    assert b2.cluster.nodes[0].rdma.params.bandwidth_gbps == 50.0
