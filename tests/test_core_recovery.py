"""Tests for leases, backup promotion, and lock/txn recovery (§4.2.1)."""

import pytest

from repro.core import RecoveryManager, TxnSpec, XenicCluster, XenicConfig
from repro.core.recovery import ClusterManager
from repro.sim import Simulator
from repro.store.log import LogRecord


def make_cluster(n_nodes=4, rf=3):
    sim = Simulator()
    cluster = XenicCluster(
        sim, n_nodes,
        config=XenicConfig(replication_factor=rf),
        keys_per_shard=128, value_size=64,
    )
    for k in range(n_nodes * 32):
        cluster.load_key(k, value=("init", k))
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proc = sim.spawn(cluster.protocols[node_id].run_transaction(spec))
    return sim.run_until_event(proc, limit=1e6)


# ---------------------------------------------------------------------------
# leases
# ---------------------------------------------------------------------------


def test_lease_registration_and_renewal():
    sim = Simulator()
    mgr = ClusterManager(sim, lease_us=100.0)
    mgr.register(0)
    mgr.register(1)
    assert mgr.live_nodes() == {0, 1}

    def advance(sim):
        yield sim.timeout(60.0)
        mgr.renew(0)
        yield sim.timeout(60.0)

    sim.spawn(advance(sim))
    sim.run()
    # node 1 never renewed: expired at t=100; node 0 renewed at t=60
    assert mgr.live_nodes() == {0}
    expired = mgr.check_expiry()
    assert expired == [1]
    assert mgr.config_epoch == 1


def test_lease_renewal_loop_keeps_node_alive():
    sim = Simulator()
    mgr = ClusterManager(sim, lease_us=100.0)
    mgr.register(0)
    alive = {"v": True}

    def stopper(sim):
        yield sim.timeout(500.0)
        alive["v"] = False

    sim.spawn(mgr.renewal_loop(0, alive=lambda: alive["v"]))
    sim.spawn(stopper(sim))
    sim.run(until=450.0)
    assert mgr.live_nodes() == {0}
    sim.run()
    sim._now = 700.0
    assert mgr.live_nodes() == set()


def test_renew_unknown_node_raises():
    mgr = ClusterManager(Simulator())
    with pytest.raises(KeyError):
        mgr.renew(5)


def test_lease_renewed_at_expiry_instant_is_live():
    """Boundary pin: a lease renewed at exactly its expiry instant
    (``expires_at == now``) is still live — the holder acted within its
    lease — and ``check_expiry`` (the strict complement) must not expire
    it, so a node is never simultaneously live and expired."""
    sim = Simulator()
    mgr = ClusterManager(sim, lease_us=100.0)
    mgr.register(0)

    def at_expiry(sim):
        yield sim.timeout(100.0)  # now == expires_at, to the instant
        assert mgr.live_nodes() == {0}
        assert mgr.check_expiry() == []
        assert mgr.config_epoch == 0
        mgr.renew(0)

    sim.spawn(at_expiry(sim))
    sim.run()
    # renewed at t=100 -> expires at t=200; live through the boundary
    sim._now = 200.0
    assert mgr.live_nodes() == {0}
    assert mgr.check_expiry() == []
    sim._now = 200.5
    assert mgr.live_nodes() == set()
    assert mgr.check_expiry() == [0]
    assert mgr.config_epoch == 1


def test_revoke_drops_lease_immediately():
    """fail_node-style revocation removes the lease regardless of the
    expiry boundary and bumps the epoch exactly once."""
    sim = Simulator()
    mgr = ClusterManager(sim, lease_us=100.0)
    mgr.register(0)
    mgr.register(1)
    mgr.revoke(1)
    assert mgr.live_nodes() == {0}
    assert mgr.expired_log == [(0.0, 1)]
    assert mgr.config_epoch == 1
    mgr.revoke(1)  # idempotent
    assert mgr.config_epoch == 1


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


def test_recover_shard_promotes_backup():
    sim, cluster = make_cluster()
    rm = RecoveryManager(cluster)
    # commit some data to shard 1 first
    k = next(kk for kk in range(200) if cluster.shard_of(kk) == 1)
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[k],
                                     logic=lambda r, s: {k: "pre-failure"}))
    sim.run()
    rm.fail_node(1)
    report = rm.recover_shard(1)
    assert report.old_primary == 1
    assert report.new_primary == 2  # first surviving backup
    assert cluster.primary_node_id(1) == 2
    # the promoted node can now serve the shard with the committed data
    obj = cluster.nodes[2].tables[1].get_object(k)
    assert obj.value == "pre-failure"


def test_recovery_requires_failed_primary():
    sim, cluster = make_cluster()
    rm = RecoveryManager(cluster)
    with pytest.raises(RuntimeError):
        rm.recover_shard(1)


def test_recovery_commits_fully_logged_txn():
    """A LOG record present on every surviving backup must be committed
    during recovery (it may have been acknowledged to the coordinator)."""
    sim, cluster = make_cluster()
    rm = RecoveryManager(cluster)
    k = next(kk for kk in range(200) if cluster.shard_of(kk) == 1)
    # simulate an in-flight txn: LOG records appended at both backups
    # (nodes 2 and 3), primary crashed before COMMIT
    writes = [(k, "recovered-value", 1)]
    for backup in (2, 3):
        cluster.nodes[backup].log.append(LogRecord(777, "log", 1, list(writes)))
    rm.fail_node(1)
    report = rm.recover_shard(1)
    assert 777 in report.recovering_txns
    assert 777 in report.committed
    assert report.locks_rebuilt >= 1
    obj = cluster.nodes[2].tables[1].get_object(k)
    assert obj.value == "recovered-value"
    assert obj.version == 1


def test_recovery_aborts_partially_logged_txn():
    """A LOG record missing from some surviving backup aborts."""
    sim, cluster = make_cluster()
    rm = RecoveryManager(cluster)
    k = next(kk for kk in range(200) if cluster.shard_of(kk) == 1)
    cluster.nodes[2].log.append(LogRecord(888, "log", 1, [(k, "partial", 1)]))
    # node 3 never got the record
    rm.fail_node(1)
    report = rm.recover_shard(1)
    assert 888 in report.aborted
    obj = cluster.nodes[2].tables[1].get_object(k)
    assert obj.value == ("init", k)  # unchanged


def test_recovery_releases_rebuilt_locks():
    sim, cluster = make_cluster()
    rm = RecoveryManager(cluster)
    k = next(kk for kk in range(200) if cluster.shard_of(kk) == 1)
    for backup in (2, 3):
        cluster.nodes[backup].log.append(LogRecord(999, "log", 1, [(k, "x", 1)]))
    rm.fail_node(1)
    rm.recover_shard(1)
    index = cluster.nodes[2].index_for(1)
    assert not index.is_locked(k)


def test_cluster_serves_transactions_after_recovery():
    sim, cluster = make_cluster()
    rm = RecoveryManager(cluster)
    k = next(kk for kk in range(200) if cluster.shard_of(kk) == 1)
    rm.fail_node(1)
    rm.recover_shard(1)
    # a new transaction against shard 1 is served by node 2 now
    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k], write_keys=[k],
                          logic=lambda r, s: {k: "post-recovery"}))
    sim.run()
    assert txn.status.value == "committed"
    obj = cluster.nodes[2].tables[1].get_object(k)
    assert obj.value == "post-recovery"
    # replication now goes to the remaining live backup only
    obj3 = cluster.nodes[3].tables[1].get_object(k)
    assert obj3.value == "post-recovery"


def test_recovery_with_all_replicas_lost_raises():
    sim, cluster = make_cluster(n_nodes=3, rf=2)
    rm = RecoveryManager(cluster)
    rm.fail_node(1)
    rm.fail_node(2)  # the only backup of shard 1
    with pytest.raises(RuntimeError):
        rm.recover_shard(1)
