"""Tests for the Hopscotch and chained hash tables (Table 2 comparators)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import ChainedTable, HopscotchTable


# ---------------------------------------------------------------------------
# Hopscotch
# ---------------------------------------------------------------------------


def test_hopscotch_insert_lookup():
    t = HopscotchTable(64, neighborhood=8)
    t.insert(10)
    res = t.lookup(10)
    assert res.found and res.roundtrips == 1
    assert res.objects_read == 8  # always reads the full neighborhood


def test_hopscotch_duplicate_rejected():
    t = HopscotchTable(64)
    t.insert(1)
    with pytest.raises(KeyError):
        t.insert(1)


def test_hopscotch_missing_key():
    t = HopscotchTable(64)
    assert not t.lookup(5).found


def test_hopscotch_keys_stay_in_neighborhood():
    t = HopscotchTable(256, neighborhood=8, hash_salt=3)
    n = int(256 * 0.9)
    for k in range(n):
        t.insert(k)
    for k in range(n):
        res = t.lookup(k)
        assert res.found
        if not res.in_overflow:
            assert res.objects_read == 8 and res.roundtrips == 1


def test_hopscotch_overflow_costs_second_roundtrip():
    t = HopscotchTable(16, neighborhood=4, hash_salt=1)
    overflowed = []
    for k in range(15):
        if not t.insert(k):
            overflowed.append(k)
    if overflowed:
        res = t.lookup(overflowed[0])
        assert res.found and res.in_overflow and res.roundtrips == 2


def test_hopscotch_delete():
    t = HopscotchTable(64)
    for k in range(30):
        t.insert(k)
    t.delete(11)
    assert not t.lookup(11).found
    with pytest.raises(KeyError):
        t.delete(11)


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=10**9), unique=True,
                     min_size=1, max_size=100))
def test_hopscotch_property_all_findable(keys):
    t = HopscotchTable(160, neighborhood=8)
    for k in keys:
        t.insert(k)
    for k in keys:
        assert t.lookup(k).found
    assert len(t) == len(keys)


# ---------------------------------------------------------------------------
# Chained
# ---------------------------------------------------------------------------


def test_chained_insert_lookup():
    t = ChainedTable(8, bucket_size=4)
    t.insert(1)
    res = t.lookup(1)
    assert res.found and res.roundtrips == 1 and res.objects_read == 4


def test_chained_duplicate_rejected():
    t = ChainedTable(8, bucket_size=4)
    t.insert(2)
    with pytest.raises(KeyError):
        t.insert(2)


def test_chained_chains_grow_under_load():
    t = ChainedTable(4, bucket_size=2)
    for k in range(16):
        t.insert(k)
    assert t.linked_buckets > 0
    deep = [k for k in range(16) if t.lookup(k).roundtrips > 1]
    assert deep  # some keys require chain traversal


def test_chained_read_amplification_scales_with_bucket_size():
    """Table 2: larger B reads proportionally more objects per lookup."""
    results = {}
    for b in (4, 8, 16):
        n_keys = 1440
        t = ChainedTable(n_keys // b * 10 // 9, bucket_size=b, hash_salt=5)
        for k in range(n_keys):
            t.insert(k)
        total = sum(t.lookup(k).objects_read for k in range(n_keys))
        results[b] = total / n_keys
    assert results[4] < results[8] < results[16]
    assert results[8] >= 8.0


def test_chained_delete():
    t = ChainedTable(4, bucket_size=2)
    for k in range(10):
        t.insert(k)
    t.delete(3)
    assert not t.lookup(3).found
    with pytest.raises(KeyError):
        t.delete(3)


def test_chained_occupancy():
    t = ChainedTable(10, bucket_size=4)
    for k in range(20):
        t.insert(k)
    assert t.occupancy == pytest.approx(0.5)


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=10**9), unique=True,
                     min_size=1, max_size=120))
def test_chained_property_all_findable(keys):
    t = ChainedTable(16, bucket_size=4)
    for k in keys:
        t.insert(k)
    for k in keys:
        assert t.lookup(k).found
