"""End-to-end tests of the Xenic commit protocol on a small cluster."""

import pytest

from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.sim import Simulator


def make_cluster(n_nodes=3, config=None, keys_per_node=64, value_size=64):
    sim = Simulator()
    cluster = XenicCluster(
        sim, n_nodes, config=config or XenicConfig(),
        keys_per_shard=keys_per_node * 2, value_size=value_size,
    )
    for k in range(n_nodes * keys_per_node):
        cluster.load_key(k, value=("init", k))
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proto = cluster.protocols[node_id]
    proc = sim.spawn(proto.run_transaction(spec), name="txn")
    return sim.run_until_event(proc, limit=1e6)


def key_on(cluster, node_id, i=0):
    """i-th key whose primary shard is node_id."""
    found = []
    k = 0
    while len(found) <= i:
        if cluster.shard_of(k) == node_id:
            found.append(k)
        k += 1
    return found[i]


# ---------------------------------------------------------------------------
# basic commit paths
# ---------------------------------------------------------------------------


def test_remote_read_only_txn_commits():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    txn = run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                           read_only=True))
    assert txn.read_values[k][0] == ("init", k)
    assert txn.committed_at > txn.started_at


def test_remote_write_txn_commits_and_updates_value():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    logic = lambda reads, state: {k: ("new", k)}
    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    sim.run()
    assert cluster.read_committed_value(k) == ("new", k)


def test_local_read_only_txn_no_network():
    sim, cluster = make_cluster()
    k = key_on(cluster, 0)
    node = cluster.nodes[0]
    sent_before = node.nic.port.messages_sent
    pcie_before = node.pcie.to_nic_count
    txn = run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                           read_only=True))
    assert txn.read_values[k][0] == ("init", k)
    assert node.pcie.to_nic_count == pcie_before  # §4.2.4: no PCIe
    # replication traffic may exist from other txns; none here
    assert node.nic.port.messages_sent == sent_before


def test_local_write_txn_replicates_to_backups():
    sim, cluster = make_cluster()
    k = key_on(cluster, 0)
    logic = lambda reads, state: {k: "local-write"}
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    sim.run()
    # backups hold the new value after workers apply the log
    for backup in cluster.backups_of(0):
        obj = cluster.nodes[backup].tables[0].get_object(k)
        assert obj.value == "local-write"
        assert obj.version == 1


def test_write_applies_to_primary_host_table_via_worker():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    logic = lambda reads, state: {k: "applied"}
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    sim.run()
    obj = cluster.nodes[1].tables[1].get_object(k)
    assert obj.value == "applied"
    assert obj.version == 1


def test_version_increments_across_repeated_writes():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    for i in range(4):
        logic = lambda reads, state, i=i: {k: ("v", i)}
        run_txn(sim, cluster, 0,
                TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    sim.run()
    assert cluster.nodes[1].index.read_version(k) == 4
    obj = cluster.nodes[1].tables[1].get_object(k)
    assert obj.version == 4 and obj.value == ("v", 3)


def test_multi_shard_txn_commits_atomically():
    sim, cluster = make_cluster()
    k1, k2 = key_on(cluster, 1), key_on(cluster, 2)
    logic = lambda reads, state: {k1: "a", k2: "b"}
    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k1, k2], write_keys=[k1, k2], logic=logic))
    sim.run()
    assert cluster.read_committed_value(k1) == "a"
    assert cluster.read_committed_value(k2) == "b"
    assert txn.attempts == 1


def test_blind_write_no_read():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    logic = lambda reads, state: {k: "blind"}
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[], write_keys=[k], logic=logic))
    sim.run()
    assert cluster.read_committed_value(k) == "blind"


def test_read_your_writes_across_txns():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    logic = lambda reads, state: {k: "first"}
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    txn = run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                           read_only=True))
    assert txn.read_values[k][0] == "first"


# ---------------------------------------------------------------------------
# conflicts and aborts
# ---------------------------------------------------------------------------


def test_concurrent_writers_conflict_then_both_commit():
    sim, cluster = make_cluster()
    k = key_on(cluster, 2)
    results = []

    def writer(proto, tag):
        logic = lambda reads, state: {k: tag}
        txn = yield from proto.run_transaction(
            TxnSpec(read_keys=[k], write_keys=[k], logic=logic)
        )
        results.append((tag, txn.attempts))

    sim.spawn(writer(cluster.protocols[0], "w0"))
    sim.spawn(writer(cluster.protocols[1], "w1"))
    sim.run()
    assert len(results) == 2
    final = cluster.read_committed_value(k)
    assert final in ("w0", "w1")
    version = cluster.nodes[2].index.read_version(k)
    assert version == 2  # both committed, serialized


def test_lock_conflict_aborts_and_releases():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    index = cluster.nodes[1].index
    index.try_lock(k, txn_id=999999)  # simulate a stuck holder

    def writer(proto):
        logic = lambda reads, state: {k: "blocked"}
        txn = yield from proto.run_transaction(
            TxnSpec(read_keys=[k], write_keys=[k], logic=logic)
        )
        return txn

    proc = sim.spawn(writer(cluster.protocols[0]))
    # let it abort a few times, then release the lock
    sim.run(until=200.0)
    assert not proc.triggered
    assert cluster.protocols[0].stats.get("aborts") > 0
    index.unlock(k, 999999)
    txn = sim.run_until_event(proc, limit=1e6)
    assert txn.attempts > 1
    sim.run()
    assert cluster.read_committed_value(k) == "blocked"


def test_validation_abort_on_version_change():
    """A read-only multi-shard txn whose read key changes mid-flight
    retries and eventually commits."""
    sim, cluster = make_cluster()
    k1, k2 = key_on(cluster, 1), key_on(cluster, 2)

    outcome = {}

    def reader(proto):
        txn = yield from proto.run_transaction(
            TxnSpec(read_keys=[k1, k2], write_keys=[], read_only=True)
        )
        outcome["reader"] = txn

    def writer(proto):
        yield proto.sim.timeout(1.0)
        logic = lambda reads, state: {k1: "changed"}
        yield from proto.run_transaction(
            TxnSpec(read_keys=[k1], write_keys=[k1], logic=logic)
        )

    sim.spawn(reader(cluster.protocols[0]))
    sim.spawn(writer(cluster.protocols[2]))
    sim.run()
    txn = outcome["reader"]
    vals = {k: v for k, (v, _) in txn.read_values.items()}
    # the reader saw a consistent snapshot: either pre- or post-write
    assert vals[k1] in (("init", k1), "changed")


# ---------------------------------------------------------------------------
# feature flags
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("flags", [
    dict(smart_remote_ops=False),
    dict(ethernet_aggregation=False),
    dict(async_dma=False),
    dict(nic_execution=False),
    dict(multihop_occ=False),
    dict(smart_remote_ops=False, ethernet_aggregation=False,
         async_dma=False, nic_execution=False, multihop_occ=False),
])
def test_all_feature_combinations_still_commit(flags):
    config = XenicConfig().with_flags(**flags)
    sim, cluster = make_cluster(config=config)
    k1, k2 = key_on(cluster, 1), key_on(cluster, 0)
    logic = lambda reads, state: {k1: "x", k2: "y"}
    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k1, k2], write_keys=[k1, k2], logic=logic))
    sim.run()
    assert cluster.read_committed_value(k1) == "x"
    assert cluster.read_committed_value(k2) == "y"


def test_multihop_used_for_local_plus_one_remote():
    sim, cluster = make_cluster()
    k_local, k_remote = key_on(cluster, 0), key_on(cluster, 1)
    logic = lambda reads, state: {k_local: "l", k_remote: "r"}
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k_local, k_remote],
                    write_keys=[k_local, k_remote], logic=logic))
    sim.run()
    assert cluster.protocols[0].stats.get("multihop") == 1
    assert cluster.protocols[1].stats.get("shipped_executions") == 1
    assert cluster.read_committed_value(k_local) == "l"
    assert cluster.read_committed_value(k_remote) == "r"


def test_multihop_disabled_uses_standard_path():
    config = XenicConfig(multihop_occ=False)
    sim, cluster = make_cluster(config=config)
    k_local, k_remote = key_on(cluster, 0), key_on(cluster, 1)
    logic = lambda reads, state: {k_local: "l", k_remote: "r"}
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k_local, k_remote],
                    write_keys=[k_local, k_remote], logic=logic))
    sim.run()
    assert cluster.protocols[0].stats.get("multihop") == 0


def test_nic_execution_vs_host_execution_counts():
    for nic_exec, field in ((True, "nic_executions"), (False, "host_executions")):
        config = XenicConfig(nic_execution=nic_exec, multihop_occ=False)
        sim, cluster = make_cluster(config=config)
        k = key_on(cluster, 1, 1)
        k2 = key_on(cluster, 2, 1)
        logic = lambda reads, state: {k: 1, k2: 2}
        run_txn(sim, cluster, 0,
                TxnSpec(read_keys=[k, k2], write_keys=[k, k2], logic=logic))
        sim.run()
        assert cluster.protocols[0].stats.get(field) == 1


def test_three_shard_txn_not_multihop():
    sim, cluster = make_cluster()
    ks = [key_on(cluster, i) for i in range(3)]
    logic = lambda reads, state: {k: "v" for k in ks}
    run_txn(sim, cluster, 0, TxnSpec(read_keys=ks, write_keys=ks, logic=logic))
    sim.run()
    assert cluster.protocols[0].stats.get("multihop") == 0
    for k in ks:
        assert cluster.read_committed_value(k) == "v"


# ---------------------------------------------------------------------------
# bookkeeping sanity
# ---------------------------------------------------------------------------


def test_no_stray_responses_or_pending_leaks():
    sim, cluster = make_cluster()
    keys = [key_on(cluster, i, j) for i in range(3) for j in range(2)]
    for i, k in enumerate(keys):
        logic = lambda reads, state, k=k: {k: "z"}
        run_txn(sim, cluster, i % 3, TxnSpec(read_keys=[k], write_keys=[k],
                                             logic=logic))
    sim.run()
    for proto in cluster.protocols:
        assert proto.stats.get("stray_responses") == 0
        assert proto.stats.get("stray_done") == 0
        assert len(proto.runtime.pending) == 0
        assert len(proto.host_pending) == 0


def test_logs_fully_drain():
    sim, cluster = make_cluster()
    k = key_on(cluster, 1)
    logic = lambda reads, state: {k: "drained"}
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    sim.run()
    for node in cluster.nodes:
        assert node.log.in_log == 0
        assert node.log.appended == node.log.acked


def test_no_locks_leak_after_commits():
    sim, cluster = make_cluster()
    keys = [key_on(cluster, i, j) for i in range(3) for j in range(3)]
    for i, k in enumerate(keys):
        logic = lambda reads, state, k=k: {k: i}
        run_txn(sim, cluster, (i + 1) % 3,
                TxnSpec(read_keys=[k], write_keys=[k], logic=logic))
    sim.run()
    for node in cluster.nodes:
        for idx in node.indexes.values():
            for key, meta in idx._meta.items():
                assert meta.lock_owner is None, (
                    "lock leaked on key %d at node %d" % (key, node.node_id)
                )
