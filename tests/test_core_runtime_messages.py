"""Tests for the NIC runtime (async DMA, coalescing, pending futures),
message sizing, and configuration ladders."""

import pytest

from repro.core.config import (
    XenicConfig,
    ablation_ladder_latency,
    ablation_ladder_throughput,
)
from repro.core.messages import (
    EXECUTE,
    LOG,
    Request,
    Response,
    request_size,
    response_size,
)
from repro.core.nic_runtime import NicRuntime, PendingTable
from repro.core.txn import Transaction, TxnSpec, TxnStatus, make_txn_id
from repro.core.txn import txn_node
from repro.hw import Fabric, SmartNic
from repro.sim import Simulator


def make_runtime(**flags):
    sim = Simulator()
    fabric = Fabric(sim)
    nic = SmartNic(sim, fabric, 0)
    nic.set_handler(lambda m: None)
    runtime = NicRuntime(sim, nic, XenicConfig(**flags))
    return sim, nic, runtime


# ---------------------------------------------------------------------------
# PendingTable
# ---------------------------------------------------------------------------


def test_pending_expect_resolve():
    sim = Simulator()
    table = PendingTable(sim)
    fut = table.expect("a")
    assert not fut.triggered
    assert table.resolve("a", 42)
    assert fut.value == 42
    assert not table.resolve("a", 1)  # already gone


def test_pending_duplicate_key_rejected():
    table = PendingTable(Simulator())
    table.expect("x")
    with pytest.raises(RuntimeError):
        table.expect("x")


def test_pending_count_future():
    sim = Simulator()
    table = PendingTable(sim)
    fut = table.expect_count("acks", 3)
    table.resolve_one("acks", "a")
    table.resolve_one("acks", "b")
    assert not fut.triggered
    table.resolve_one("acks", "c")
    assert fut.value == ["a", "b", "c"]


def test_pending_count_zero_fires_immediately():
    table = PendingTable(Simulator())
    fut = table.expect_count("none", 0)
    assert fut.triggered and fut.value == []


def test_pending_cancel():
    table = PendingTable(Simulator())
    table.expect("gone")
    assert table.cancel("gone")
    assert not table.cancel("gone")
    assert not table.resolve("gone")


# ---------------------------------------------------------------------------
# NicRuntime DMA paths
# ---------------------------------------------------------------------------


def test_async_dma_vectors_accumulate():
    sim, nic, runtime = make_runtime(async_dma=True)

    def proc():
        evs = [runtime.dma_read(64) for _ in range(20)]
        for ev in evs:
            yield ev

    sim.spawn(proc(), name="p")
    sim.run()
    assert runtime.dma_reads == 20
    # 15-op vector + burst-flushed remainder: far fewer submissions
    assert nic.dma.vectors_submitted <= 3
    assert nic.dma.vector_sizes.max == 15


def test_blocking_dma_one_submission_each():
    sim, nic, runtime = make_runtime(async_dma=False)

    def proc():
        for _ in range(5):
            yield runtime.dma_read(64)

    sim.spawn(proc(), name="p")
    sim.run()
    assert nic.dma.vectors_submitted == 5
    assert nic.dma.vector_sizes.max == 1


def test_blocking_dma_occupies_a_core():
    sim, nic, runtime = make_runtime(async_dma=False)

    def proc():
        yield runtime.dma_read(64)

    sim.spawn(proc(), name="p")
    sim.run()
    assert nic.cores.busy_us > 0.5  # core spun for the DMA duration


def test_log_append_coalesces_to_one_dma_op():
    sim, nic, runtime = make_runtime(async_dma=True)

    def proc():
        evs = [runtime.dma_log_append(100) for _ in range(10)]
        for ev in evs:
            yield ev

    sim.spawn(proc(), name="p")
    sim.run()
    assert runtime.log_appends == 10
    assert runtime.log_flushes <= 2
    # coalesced: the engine saw far fewer ops than appends
    assert nic.dma.ops_submitted <= 2


def test_log_append_flushes_at_size_threshold():
    sim, nic, runtime = make_runtime(async_dma=True)

    def proc():
        evs = [runtime.dma_log_append(3000) for _ in range(6)]  # 18 KB
        for ev in evs:
            yield ev

    sim.spawn(proc(), name="p")
    sim.run()
    assert runtime.log_flushes >= 2  # crossed the 8 KB threshold twice


def test_log_append_blocking_mode_per_record():
    sim, nic, runtime = make_runtime(async_dma=False)

    def proc():
        for _ in range(4):
            yield runtime.dma_log_append(100)

    sim.spawn(proc(), name="p")
    sim.run()
    assert nic.dma.ops_submitted == 4


def test_handle_cost_scales_with_keys():
    sim, nic, runtime = make_runtime()

    def proc():
        yield from runtime.handle_message_cost(0)
        t0 = sim.now
        yield from runtime.handle_message_cost(10)
        return sim.now - t0

    p = sim.spawn(proc(), name="p")
    sim.run()
    assert p.value > runtime.msg_handle_us


def test_aggregation_lowers_message_handle_cost():
    _, _, agg = make_runtime(ethernet_aggregation=True)
    _, _, noagg = make_runtime(ethernet_aggregation=False)
    assert agg.msg_handle_us < noagg.msg_handle_us


# ---------------------------------------------------------------------------
# messages
# ---------------------------------------------------------------------------


def test_request_size_counts_keys_and_values():
    base = Request(EXECUTE, 1, 0, 0)
    small = request_size(base, 64)
    withkeys = request_size(
        Request(EXECUTE, 1, 0, 0, read_keys=[1, 2], write_keys=[3]), 64
    )
    assert withkeys == small + 3 * 10
    withvalues = request_size(
        Request(LOG, 1, 0, 0, write_values={1: "a", 2: "b"}), 64
    )
    assert withvalues == small + 2 * (10 + 64)


def test_response_size_counts_payloads():
    empty = response_size(Response(EXECUTE, 1, 0, True), 64)
    filled = response_size(
        Response(EXECUTE, 1, 0, True, read_values={1: ("v", 0), 2: ("w", 1)}),
        64,
    )
    assert filled == empty + 2 * (10 + 6 + 64)


# ---------------------------------------------------------------------------
# txn helpers and config
# ---------------------------------------------------------------------------


def test_txn_id_packs_node():
    txn_id = make_txn_id(5, 1234)
    assert txn_node(txn_id) == 5


def test_txn_default_logic_and_retry_reset():
    spec = TxnSpec(read_keys=[1], write_keys=[2])
    txn = Transaction(make_txn_id(0, 1), 0, spec)
    txn.read_values[1] = ("v", 3)
    out = txn.run_logic()
    assert set(out) == {2}
    txn.record_lock(0, 2)
    txn.reset_for_retry()
    assert txn.attempts == 2
    assert not txn.read_values and not txn.locked
    assert txn.status is TxnStatus.PENDING


def test_spec_all_keys_dedupes_in_order():
    spec = TxnSpec(read_keys=[3, 1], write_keys=[1, 2])
    assert spec.all_keys() == [3, 1, 2]


def test_ablation_ladders_shape():
    tladder = ablation_ladder_throughput()
    assert [l for l, _ in tladder] == [
        "Xenic baseline", "+Smart remote ops", "+Eth aggregation", "+Async DMA"
    ]
    assert not tladder[0][1].smart_remote_ops
    assert tladder[-1][1].async_dma
    # throughput ladder never enables the latency features
    assert not tladder[-1][1].nic_execution

    lladder = ablation_ladder_latency()
    assert lladder[0][1].async_dma  # latency ladder keeps async DMA on
    assert lladder[-1][1].multihop_occ


def test_config_with_flags_immutable():
    base = XenicConfig()
    derived = base.with_flags(nic_execution=False)
    assert base.nic_execution and not derived.nic_execution
