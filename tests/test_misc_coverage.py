"""Coverage for assorted helpers: cluster loading, log draining, store
edges, and report formatting."""

import pytest

from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.sim import Simulator


def test_cluster_load_keys_with_value_fn():
    sim = Simulator()
    cluster = XenicCluster(sim, 3, keys_per_shard=64)
    cluster.load_keys(range(9), value_fn=lambda k: k * 10)
    assert cluster.read_committed_value(4) == 40


def test_cluster_drain_logs():
    sim = Simulator()
    cluster = XenicCluster(sim, 3, keys_per_shard=64)
    cluster.load_keys(range(9), value_fn=lambda k: 0)
    cluster.start()
    proc = sim.spawn(cluster.protocols[0].run_transaction(
        TxnSpec(read_keys=[1], write_keys=[1],
                logic=lambda r, s: {1: 1})))
    sim.run_until_event(proc, limit=1e7)
    cluster.drain_logs()
    for node in cluster.nodes:
        assert node.log.in_log == 0


def test_cluster_validates_node_count():
    with pytest.raises(ValueError):
        XenicCluster(Simulator(), 0)


def test_robinhood_delete_via_overflow_swap():
    from repro.store import RobinhoodTable

    t = RobinhoodTable(64, dm=2, segment_size=8, hash_salt=3)
    for k in range(52):
        t.insert(k)
    assert t.overflow_count > 0
    # delete in-table keys until an overflow swap occurs
    swaps = 0
    for k in range(52):
        res = t.lookup(k)
        if res.found and not res.in_overflow:
            out = t.delete(k)
            if out.overflow_swap:
                swaps += 1
            t.check_invariants()
            if swaps:
                break
    assert swaps >= 1


def test_hopscotch_repr_contains():
    from repro.store import HopscotchTable

    t = HopscotchTable(32, neighborhood=4)
    t.insert(7)
    assert 7 in t
    assert 8 not in t
    assert t.occupancy > 0


def test_chained_contains_and_objects():
    from repro.store import ChainedTable, VersionedObject

    t = ChainedTable(4, bucket_size=2)
    t.insert(3, VersionedObject(3, value="v"))
    assert 3 in t
    assert t.get_object(3).value == "v"
    assert [o.key for o in t.objects()] == [3]
    t.delete(3)
    assert t.get_object(3) is None


def test_log_record_size_property():
    from repro.store import LogRecord, VersionedObject

    rec = LogRecord(1, "log", 0, [(5, VersionedObject(5, size=100), 1)])
    assert rec.size_bytes == 24 + 16 + 100


def test_event_fail_requires_exception():
    from repro.sim import Simulator

    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_fail_propagates():
    sim = Simulator()

    def waiter(sim, ev):
        with pytest.raises(RuntimeError):
            yield ev
        return "caught"

    ev = sim.event()
    p = sim.spawn(waiter(sim, ev))
    ev.fail(RuntimeError("x"))
    sim.run()
    assert p.value == "caught"


def test_run_until_in_past_rejected():
    from repro.sim.core import SimulationError

    sim = Simulator()
    sim.spawn(iter([sim.timeout(10.0)]))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_print_helpers_smoke(capsys):
    from repro.bench.report import print_curves, print_table
    from repro.bench.runner import RunResult

    print_table("t", ["a"], [[1]])
    r = RunResult("xenic", "wl", 2, 1000.0, 5.0, 9.0, 6.0, 10, 0, 100.0)
    print_curves("c", {"xenic": [r]})
    out = capsys.readouterr().out
    assert "xenic" in out and "1000" in out
