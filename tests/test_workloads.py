"""Tests for the TPC-C / Retwis / Smallbank workload generators."""

import pytest

from repro.sim.rng import RngStream
from repro.workloads import (
    Retwis,
    Smallbank,
    TpccFull,
    TpccNewOrder,
    make_key,
    shard_of_key,
)


def rng():
    return RngStream(11, "t")


# ---------------------------------------------------------------------------
# key layout
# ---------------------------------------------------------------------------


def test_make_key_shard_roundtrip():
    for shard in (0, 3, 5):
        for idx in (0, 1, 99999):
            assert shard_of_key(make_key(shard, idx)) == shard


def test_make_key_range_check():
    with pytest.raises(ValueError):
        make_key(0, 1 << 22)


# ---------------------------------------------------------------------------
# Smallbank
# ---------------------------------------------------------------------------


def test_smallbank_keys_follow_customer_shard():
    wl = Smallbank(6, accounts_per_server=100)
    for c in range(60):
        assert shard_of_key(wl.checking_key(c)) == c % 6
        assert shard_of_key(wl.savings_key(c)) == c % 6
        assert wl.checking_key(c) != wl.savings_key(c)


def test_smallbank_mix_fractions():
    wl = Smallbank(3, accounts_per_server=1000)
    r = rng()
    labels = {}
    for _ in range(4000):
        spec = wl.next_spec(r, 0)
        labels[spec.label] = labels.get(spec.label, 0) + 1
    assert 0.10 < labels["balance"] / 4000 < 0.20  # 15% read-only
    assert 0.20 < labels["send_payment"] / 4000 < 0.30
    # up to 3 keys per transaction
    for _ in range(200):
        spec = wl.next_spec(r, 0)
        assert len(spec.all_keys()) <= 3


def test_smallbank_read_only_flag():
    wl = Smallbank(3, accounts_per_server=1000)
    r = rng()
    for _ in range(300):
        spec = wl.next_spec(r, 0)
        assert spec.read_only == (spec.label == "balance")


def test_smallbank_hotspot_concentration():
    wl = Smallbank(3, accounts_per_server=10000)
    r = rng()
    hot_n = int(30000 * 0.04)
    hot = 0
    total = 0
    for _ in range(2000):
        spec = wl.next_spec(r, 0)
        for k in spec.all_keys():
            total += 1
    # direct customer draws
    picks = [wl._customer(r.split("probe")) for _ in range(5000)]
    hot = sum(1 for c in picks if c < hot_n)
    assert hot / 5000 > 0.8


def test_smallbank_logic_conserves_money_send_payment():
    wl = Smallbank(3, accounts_per_server=100)
    r = rng()
    while True:
        spec = wl.next_spec(r, 0)
        if spec.label == "send_payment":
            break
    reads = {k: 1000 for k in spec.read_keys}
    out = spec.logic(reads, None)
    assert sum(out.values()) == sum(reads[k] for k in out)


def test_smallbank_amalgamate_moves_everything():
    wl = Smallbank(3, accounts_per_server=100)
    r = rng()
    while True:
        spec = wl.next_spec(r, 0)
        if spec.label == "amalgamate":
            break
    reads = {k: 100 for k in spec.read_keys}
    out = spec.logic(reads, None)
    zeros = [v for v in out.values() if v == 0]
    assert len(zeros) == 2
    assert max(out.values()) == 300


# ---------------------------------------------------------------------------
# Retwis
# ---------------------------------------------------------------------------


def test_retwis_mix_half_read_only():
    wl = Retwis(3, keys_per_server=5000)
    r = rng()
    ro = 0
    n = 3000
    for _ in range(n):
        spec = wl.next_spec(r, 0)
        if spec.read_only:
            ro += 1
        assert 1 <= len(spec.all_keys()) <= 10
    assert 0.42 < ro / n < 0.58


def test_retwis_keys_unique_within_txn():
    wl = Retwis(3, keys_per_server=5000)
    r = rng()
    for _ in range(200):
        spec = wl.next_spec(r, 0)
        keys = spec.all_keys()
        assert len(keys) == len(set(keys))


def test_retwis_hot_keys_spread_across_shards():
    wl = Retwis(3, keys_per_server=5000)
    shards = {shard_of_key(wl.key_at(rank)) for rank in range(6)}
    assert shards == {0, 1, 2}


# ---------------------------------------------------------------------------
# TPC-C
# ---------------------------------------------------------------------------


def test_tpcc_key_layout_no_collisions():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=100,
                      customers_per_warehouse=30)
    keys = set()
    for wid in range(6):
        keys.add(wl.warehouse_key(wid))
        for did in range(10):
            keys.add(wl.district_key(wid, did))
        for cid in range(30):
            keys.add(wl.customer_key(wid, cid))
        for item in range(100):
            keys.add(wl.stock_key(wid, item))
    assert len(keys) == 6 * (1 + 10 + 30 + 100)


def test_tpcc_warehouse_partitioning():
    wl = TpccNewOrder(3, warehouses_per_server=2)
    for wid in range(6):
        node = wid % 3
        assert shard_of_key(wl.warehouse_key(wid)) == node
        assert shard_of_key(wl.stock_key(wid, 5)) == node


def test_tpcc_new_order_shape():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=200)
    r = rng()
    for _ in range(100):
        spec = wl.next_spec(r, 0)
        assert spec.label == "new_order"
        assert 6 <= len(spec.all_keys()) <= 16  # district + 5..15 stocks
        assert spec.local_compute_us > 1.0  # B+ tree work
        assert spec.ship_execution


def test_tpcc_new_order_logic_decrements_stock():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=200)
    r = rng()
    spec = wl.next_spec(r, 0)
    reads = {}
    for k in spec.read_keys:
        reads[k] = {"next_o_id": 5, "ytd": 0} if k == spec.read_keys[0] \
            else {"qty": 50}
    out = spec.logic(reads, None)
    assert out[spec.read_keys[0]]["next_o_id"] == 6
    for k in spec.read_keys[1:]:
        assert out[k]["qty"] == 49


def test_tpcc_new_order_restock_rule():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=200)
    r = rng()
    spec = wl.next_spec(r, 0)
    reads = {k: {"qty": 10} for k in spec.read_keys}
    reads[spec.read_keys[0]] = {"next_o_id": 1, "ytd": 0}
    out = spec.logic(reads, None)
    for k in spec.read_keys[1:]:
        assert out[k]["qty"] == 100  # 10 - 1 + 91


def test_tpcc_full_mix_fractions():
    wl = TpccFull(3, warehouses_per_server=2, stock_per_warehouse=200)
    r = rng()
    labels = {}
    for _ in range(3000):
        spec = wl.next_spec(r, 0)
        labels[spec.label] = labels.get(spec.label, 0) + 1
    assert 0.38 < labels["new_order"] / 3000 < 0.52
    assert 0.36 < labels["payment"] / 3000 < 0.50
    assert labels.get("order_status", 0) > 0
    assert labels.get("delivery", 0) > 0
    assert labels.get("stock_level", 0) > 0


def test_tpcc_full_mostly_local_supply():
    wl = TpccFull(6, warehouses_per_server=2, stock_per_warehouse=500)
    r = rng()
    remote = 0
    total = 0
    for _ in range(300):
        spec = wl.new_order_spec(r, 0)
        home_shard = shard_of_key(spec.read_keys[0])
        for k in spec.read_keys[1:]:
            total += 1
            if shard_of_key(k) != home_shard:
                remote += 1
    assert remote / total < 0.05  # ~1% per item in spec mode


def test_tpcc_new_order_only_uniform_supply():
    wl = TpccNewOrder(6, warehouses_per_server=2, stock_per_warehouse=500)
    r = rng()
    remote = 0
    total = 0
    for _ in range(300):
        spec = wl.next_spec(r, 0)
        home_shard = shard_of_key(spec.read_keys[0])
        for k in spec.read_keys[1:]:
            total += 1
            if shard_of_key(k) != home_shard:
                remote += 1
    assert remote / total > 0.6  # uniform across 6 nodes


def test_tpcc_post_commit_inserts_orders():
    wl = TpccNewOrder(3, warehouses_per_server=2, stock_per_warehouse=200)
    r = rng()
    spec = wl.next_spec(r, 0)
    assert spec.post_commit is not None
    spec.post_commit()
    assert len(wl.order_trees[0]) == 1
    assert len(wl.order_line_trees[0]) >= 5


def test_workload_spec_streams_deterministic():
    wl1 = Smallbank(3, accounts_per_server=500, seed=9)
    wl2 = Smallbank(3, accounts_per_server=500, seed=9)
    g1 = wl1.generator_for(0, "s")
    g2 = wl2.generator_for(0, "s")
    for _ in range(50):
        assert g1.next().label == g2.next().label
