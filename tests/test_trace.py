"""Tests for the transaction tracer."""

from repro.bench.trace import PhaseSample, Tracer, TxnTrace
from repro.core import TxnSpec, XenicCluster, XenicConfig
from repro.sim import Simulator


def make_cluster():
    sim = Simulator()
    cluster = XenicCluster(sim, 3, config=XenicConfig(), keys_per_shard=128)
    for k in range(96):
        cluster.load_key(k, value=k)
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proc = sim.spawn(cluster.protocols[node_id].run_transaction(spec))
    return sim.run_until_event(proc, limit=1e7)


def test_tracer_records_phases_for_standard_path():
    sim, cluster = make_cluster()
    tracer = Tracer(cluster.protocols[0])
    ks = [1, 2]  # two remote shards -> standard (non-multihop) path
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=ks, write_keys=ks,
                    logic=lambda r, s: {k: "t" for k in ks}))
    sim.run()
    tracer.detach()
    assert len(tracer.traces) == 1
    trace = tracer.traces[0]
    totals = trace.phase_totals()
    assert "phase_execute" in totals
    assert "phase_log" in totals
    assert all(v >= 0 for v in totals.values())
    assert trace.latency_us > 0


def test_tracer_records_multihop():
    sim, cluster = make_cluster()
    tracer = Tracer(cluster.protocols[0])
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[1], write_keys=[1],
                    logic=lambda r, s: {1: "m"}))
    sim.run()
    tracer.detach()
    totals = tracer.traces[0].phase_totals()
    assert "multihop" in totals


def test_tracer_mean_breakdown_and_latency():
    sim, cluster = make_cluster()
    tracer = Tracer(cluster.protocols[0])
    for k in (1, 2, 4):
        run_txn(sim, cluster, 0,
                TxnSpec(read_keys=[k], write_keys=[k],
                        logic=lambda r, s, k=k: {k: "x"}))
    sim.run()
    tracer.detach()
    assert len(tracer.traces) == 3
    assert tracer.mean_latency_us() > 0
    breakdown = tracer.mean_phase_breakdown()
    assert breakdown


def test_tracer_detach_restores_methods():
    sim, cluster = make_cluster()
    proto = cluster.protocols[0]
    before = proto.run_transaction
    tracer = Tracer(proto)
    assert proto.run_transaction != before
    tracer.detach()
    assert proto.run_transaction == before  # bound method equality


def test_two_tracers_stack_and_detach_in_either_order():
    sim, cluster = make_cluster()
    proto = cluster.protocols[0]
    before = proto.run_transaction
    t1 = Tracer(proto)
    t2 = Tracer(proto)
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[1], write_keys=[1], logic=lambda r, s: {1: "a"}))
    sim.run()
    assert len(t1.traces) == 1 and len(t2.traces) == 1
    # detach the FIRST-attached (inner) tracer while the outer stays live
    t1.detach()
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[2], write_keys=[2], logic=lambda r, s: {2: "b"}))
    sim.run()
    assert len(t1.traces) == 1  # stopped recording
    assert len(t2.traces) == 2  # still recording
    t2.detach()
    assert proto.run_transaction == before


def test_tracer_reattach_after_detach():
    sim, cluster = make_cluster()
    proto = cluster.protocols[0]
    tracer = Tracer(proto)
    tracer.detach()
    tracer.attach()
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[1], write_keys=[1], logic=lambda r, s: {1: "c"}))
    sim.run()
    assert len(tracer.traces) == 1
    tracer.detach()


def test_tracer_attach_and_detach_idempotent():
    sim, cluster = make_cluster()
    proto = cluster.protocols[0]
    before = proto.run_transaction
    tracer = Tracer(proto)
    tracer.attach()  # second attach must not double-wrap
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[1], write_keys=[1], logic=lambda r, s: {1: "d"}))
    sim.run()
    assert len(tracer.traces) == 1
    tracer.detach()
    tracer.detach()  # second detach is a no-op
    assert proto.run_transaction == before


def test_phase_sample_duration():
    s = PhaseSample("x", 1.0, 3.5)
    assert s.duration_us == 2.5
    t = TxnTrace(1, "t", 0.0, committed_at=10.0)
    assert t.latency_us == 10.0
