"""Regression tests for the event-loop hot-path work: run(until)
boundary semantics with stale heap entries, combinator detach/cancel
behavior, lazy heap deletion + compaction, and the resource fast path."""

import pytest

from repro.sim.core import (AllOf, AnyOf, SimulationError, Simulator,
                            Timeout)
from repro.sim.resources import Resource


# ---------------------------------------------------------------------------
# run(until=...) boundary
# ---------------------------------------------------------------------------


def test_run_until_not_overrun_by_stale_entries():
    """A cancelled (stale) entry at t <= until must not make run(until)
    fire a live event scheduled *past* until: the clock lands exactly on
    until and the later event stays pending."""
    sim = Simulator()
    fired = []

    stale = Timeout(sim, 3.0)
    assert stale.cancel()

    def proc():
        yield Timeout(sim, 10.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not fired
    assert sim.pending_events >= 1  # the live t=10 event is still queued
    sim.run()
    assert fired == [10.0]


def test_run_until_fires_event_exactly_at_boundary():
    sim = Simulator()
    fired = []

    def proc():
        yield Timeout(sim, 5.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == [5.0]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


# ---------------------------------------------------------------------------
# combinator detach / no double dispatch
# ---------------------------------------------------------------------------


def test_anyof_winner_detaches_and_cancels_losing_timeout():
    sim = Simulator()
    winner = Timeout(sim, 1.0)
    loser = Timeout(sim, 1000.0)
    race = AnyOf(sim, [winner, loser])
    dispatches = []
    race.add_callback(lambda e: dispatches.append(e.value))
    sim.run()
    assert dispatches == [(0, None)]  # fired exactly once, index 0 won
    assert loser.cancelled
    assert loser.callback_count == 0
    # the stale loser entry may advance the clock when popped, but the
    # loser itself never dispatches — nothing ran after t=1 here
    assert not race.callback_count


def test_allof_fail_fast_detaches_pending_children():
    sim = Simulator()
    gate = sim.event()
    late = Timeout(sim, 1000.0)
    combo = AllOf(sim, [gate, late])
    dispatches = []
    combo.add_callback(lambda e: dispatches.append(e.ok))

    def failer():
        yield Timeout(sim, 1.0)
        gate.fail(RuntimeError("boom"))

    sim.spawn(failer())
    sim.run()
    assert dispatches == [False]  # failed exactly once
    assert late.cancelled
    assert late.callback_count == 0


def test_anyof_immediate_winner_skips_registration():
    sim = Simulator()
    done = sim.event().succeed("v")
    loser = Timeout(sim, 50.0)
    race = AnyOf(sim, [done, loser])
    assert race.triggered and race.value == (0, "v")
    # the loser was never registered on, so it is free to be cancelled
    assert loser.callback_count == 0


def test_event_double_trigger_still_rejected():
    sim = Simulator()
    ev = sim.event().succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_cancel_with_registered_callback_rejected():
    sim = Simulator()
    t = Timeout(sim, 1.0)
    t.add_callback(lambda e: None)
    with pytest.raises(SimulationError):
        t.cancel()


# ---------------------------------------------------------------------------
# lazy deletion + in-place compaction
# ---------------------------------------------------------------------------


def test_heap_compaction_discards_cancelled_entries():
    sim = Simulator()
    doomed = [Timeout(sim, 10.0) for _ in range(300)]
    keeper_fired = []

    def keeper():
        yield Timeout(sim, 20.0)
        keeper_fired.append(sim.now)

    sim.spawn(keeper())
    for t in doomed:
        assert t.cancel()
    # enough cancellations force in-place compactions: the heap shrinks
    # to the live entries plus at most one sub-threshold tail of
    # not-yet-compacted cancellations
    from repro.sim.core import _COMPACT_MIN_CANCELLED

    assert sim.pending_events <= 2 + _COMPACT_MIN_CANCELLED
    sim.run()
    assert keeper_fired == [20.0]


def test_cancelled_timeouts_never_dispatch():
    sim = Simulator()
    t = Timeout(sim, 5.0)
    assert t.cancel()
    assert not t.cancel()  # second cancel reports already-dead
    sim.run()
    assert t.cancelled and not t.ok


# ---------------------------------------------------------------------------
# resource fast path
# ---------------------------------------------------------------------------


def test_try_acquire_fast_path_counts_like_acquire():
    sim = Simulator()
    res = Resource(sim, 2)
    assert res.try_acquire()
    assert res.try_acquire()
    assert not res.try_acquire()  # full
    assert res.in_use == 2
    res.release()
    assert res.try_acquire()
    res.release()
    res.release()
    assert res.in_use == 0


def test_try_acquire_defers_to_waiters():
    """A free slot must not be stolen past queued waiters (FIFO)."""
    sim = Simulator()
    res = Resource(sim, 1)
    order = []

    def holder():
        yield res.acquire()
        yield Timeout(sim, 5.0)
        order.append("holder-release")
        res.release()

    def waiter():
        yield Timeout(sim, 1.0)
        yield res.acquire()
        order.append("waiter-got-it")
        res.release()

    def opportunist():
        yield Timeout(sim, 2.0)
        # waiter is queued: the fast path must refuse even though
        # in_use briefly drops at release time
        assert not res.try_acquire()
        order.append("opportunist-refused")

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(opportunist())
    sim.run()
    assert order == ["opportunist-refused", "holder-release",
                     "waiter-got-it"]


def test_rdma_public_utilization_accessor():
    from repro.hw.rdma import RdmaNic

    sim = Simulator()
    a = RdmaNic(sim, 0)
    b = RdmaNic(sim, 1)
    assert a.utilization() == 0.0
    assert a.wire_bytes == 0
    done = a.write(b, 256)
    sim.run_until_event(done)
    assert a.wire_bytes > 0
    assert a.utilization() == a._wire.utilization(0.0)
